"""Helpers shared by the benchmark modules (kept out of conftest so the
module can be imported explicitly without clashing with tests/conftest)."""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).parent / "results"


def host_record() -> dict:
    """Hardware/software facts every benchmark artifact must carry.

    Host speed drifts between sessions (the same code has measured 2-7x
    apart across runs of this suite), so cross-session latency deltas
    are meaningless; artifacts record the host so readers can tell which
    numbers are comparable, and benchmarks that claim speedups must
    re-measure their baseline in the same run.
    """
    import numpy
    import scipy

    return {
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


@dataclass(frozen=True)
class BenchScale:
    """Dataset / training sizes for one benchmark scale."""

    name: str
    samples: int
    epochs: int
    finetune_epochs: int
    batch_size: int
    lr: float


# lr 6e-3 is the calibrated setting where joint training stays stable on
# every backbone (1e-2 can collapse the hard 8-way size task under MTL).
SCALES = {
    "quick": BenchScale("quick", samples=1300, epochs=6, finetune_epochs=6,
                        batch_size=64, lr=6e-3),
    "full": BenchScale("full", samples=4000, epochs=10, finetune_epochs=8,
                       batch_size=64, lr=6e-3),
}


def current_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


def provenance_stamp(deployment) -> dict:
    """``spec_digest``/``plan_digest`` of a live deployment, as the two
    payload keys every ``BENCH_*.json`` must carry (docs/benchmarking.md:
    a latency number without the digests of the program that produced it
    is not reproducible evidence)."""
    spec_digest, plan_digest = deployment.provenance()
    return {"spec_digest": spec_digest, "plan_digest": plan_digest}


def spec_stamp(spec) -> dict:
    """Stamp for benches that hand their :class:`DeploymentSpec` to a
    driver and never hold the deployment themselves: a throwaway
    deployment computes the provenance (seeded model build + pure IR
    work, no traffic)."""
    from repro.serve import deploy

    with deploy(spec) as deployment:
        return provenance_stamp(deployment)


def pipeline_stamp(pipeline, batch_shape, split_index=None) -> dict:
    """Stamp for a raw :class:`SplitPipeline` built from an in-memory
    (trained) net.  No ``DeploymentSpec`` exists behind these benches, so
    ``spec_digest`` is empty by contract; the plan digest still covers
    both halves' optimized plan IR for ``batch_shape``."""
    from repro.serve.cache.keys import provenance_digest

    edge_text = pipeline.edge.plan_provenance(tuple(batch_shape))
    z_shape = pipeline.edge.output_shape(tuple(batch_shape))
    server_text = pipeline.server.plan_provenance(z_shape)
    parts = [f"split:{split_index}", edge_text, server_text]
    return {"spec_digest": "", "plan_digest": provenance_digest(parts)}


def session_stamp(session, batch_shape, header: str = "") -> dict:
    """Plan digest for a bare fused engine session (benches below the
    serve layer entirely, e.g. the quant8 edge sweep).  ``spec_digest``
    is empty by contract; the plan IR is lowered with ``probe=False`` so
    the digest never depends on depthwise-probe timings."""
    from repro.nn.engine import PlanStats, Unplannable, lower_session, run_passes
    from repro.serve.cache.keys import provenance_digest

    try:
        ir = lower_session(session, tuple(batch_shape))
        run_passes(ir, PlanStats(), probe=False)
        text = ir.describe()
    except Unplannable:
        text = session.describe()
    return {"spec_digest": "", "plan_digest": provenance_digest([header, text])}


def combined_stamp(stamps: dict) -> dict:
    """Fold per-row stamps into one top-level digest pair for matrix
    benches (scenario sweeps): any row's program changing changes the
    artifact's headline digests."""
    from repro.serve.cache.keys import provenance_digest

    spec_parts = [f"{name}:{stamps[name]['spec_digest']}" for name in sorted(stamps)]
    plan_parts = [f"{name}:{stamps[name]['plan_digest']}" for name in sorted(stamps)]
    return {
        "spec_digest": provenance_digest(spec_parts),
        "plan_digest": provenance_digest(plan_parts),
    }


def emit(results_dir: Path, name: str, text: str, data: Optional[dict] = None) -> None:
    """Print a result block and persist it under benchmarks/results/.

    When ``data`` is given, a machine-readable ``BENCH_<name>.json`` is
    written alongside the text block so successive PRs can diff the perf
    trajectory without parsing the prose.
    """
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (results_dir / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        payload = {
            "benchmark": name,
            "scale": current_scale().name,
            "host": host_record(),
            **data,
        }
        (results_dir / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
