"""Helpers shared by the benchmark modules (kept out of conftest so the
module can be imported explicitly without clashing with tests/conftest)."""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).parent / "results"


def host_record() -> dict:
    """Hardware/software facts every benchmark artifact must carry.

    Host speed drifts between sessions (the same code has measured 2-7x
    apart across runs of this suite), so cross-session latency deltas
    are meaningless; artifacts record the host so readers can tell which
    numbers are comparable, and benchmarks that claim speedups must
    re-measure their baseline in the same run.
    """
    import numpy
    import scipy

    return {
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


@dataclass(frozen=True)
class BenchScale:
    """Dataset / training sizes for one benchmark scale."""

    name: str
    samples: int
    epochs: int
    finetune_epochs: int
    batch_size: int
    lr: float


# lr 6e-3 is the calibrated setting where joint training stays stable on
# every backbone (1e-2 can collapse the hard 8-way size task under MTL).
SCALES = {
    "quick": BenchScale("quick", samples=1300, epochs=6, finetune_epochs=6,
                        batch_size=64, lr=6e-3),
    "full": BenchScale("full", samples=4000, epochs=10, finetune_epochs=8,
                       batch_size=64, lr=6e-3),
}


def current_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


def emit(results_dir: Path, name: str, text: str, data: Optional[dict] = None) -> None:
    """Print a result block and persist it under benchmarks/results/.

    When ``data`` is given, a machine-readable ``BENCH_<name>.json`` is
    written alongside the text block so successive PRs can diff the perf
    trajectory without parsing the prose.
    """
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (results_dir / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        payload = {
            "benchmark": name,
            "scale": current_scale().name,
            "host": host_record(),
            **data,
        }
        (results_dir / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
