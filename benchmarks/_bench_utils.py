"""Helpers shared by the benchmark modules (kept out of conftest so the
module can be imported explicitly without clashing with tests/conftest)."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchScale:
    """Dataset / training sizes for one benchmark scale."""

    name: str
    samples: int
    epochs: int
    finetune_epochs: int
    batch_size: int
    lr: float


# lr 6e-3 is the calibrated setting where joint training stays stable on
# every backbone (1e-2 can collapse the hard 8-way size task under MTL).
SCALES = {
    "quick": BenchScale("quick", samples=1300, epochs=6, finetune_epochs=6,
                        batch_size=64, lr=6e-3),
    "full": BenchScale("full", samples=4000, epochs=10, finetune_epochs=8,
                       batch_size=64, lr=6e-3),
}


def current_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


def emit(results_dir: Path, name: str, text: str, data: Optional[dict] = None) -> None:
    """Print a result block and persist it under benchmarks/results/.

    When ``data`` is given, a machine-readable ``BENCH_<name>.json`` is
    written alongside the text block so successive PRs can diff the perf
    trajectory without parsing the prose.
    """
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (results_dir / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        payload = {"benchmark": name, "scale": current_scale().name, **data}
        (results_dir / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
