"""Sec. 4.2 RoC analysis — transfer latency of raw inputs vs ``Z_b``.

Paper reference: transferring 100 raw FACES inputs (2835x3543x3 float32,
~115 MB each) over a gigabit channel takes ~98 s, while 100 MTL-Split
payloads of ~1.5 MB take ~12 s — "an improvement of ~87% in the overall
latency time".  (The exact arithmetic for 1.5 MB payloads gives ~1.2 s;
we report the measured value and the paper's claim side by side.)

A channel-degradation sweep extends the analysis to the degraded-channel
conditions the introduction motivates.
"""

from __future__ import annotations

from repro import models
from repro.deployment import (
    GIGABIT_ETHERNET,
    JETSON_NANO,
    RTX3090_SERVER,
    WireFormat,
    roc_report,
    sc_report,
)

from _bench_utils import emit

_MB = 1024 * 1024
FACES_HW = (2835, 3543)
N_INPUTS = 100


def run_analysis():
    spec = models.get_spec("efficientnet_b0")
    roc = roc_report(
        spec, 3, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET, raw_input_hw=FACES_HW
    )
    # Z_b at the paper's high-resolution profile (~1.5 MB payloads).
    sc_paper = sc_report(
        spec, 3, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET, input_size=1024
    )
    sc_224 = sc_report(
        spec, 3, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET, input_size=224
    )
    lines = [
        f"transfer of {N_INPUTS} inferences over {GIGABIT_ETHERNET.name}:",
        f"  RoC raw inputs {FACES_HW[0]}x{FACES_HW[1]}x3 float32: "
        f"{roc.transfer_bytes_per_inference / _MB:8.1f} MB each -> "
        f"{N_INPUTS * roc.transfer_seconds:7.1f} s   (paper: ~115 MB, ~98 s)",
        "  SC  Z_b @1024px (float32):                 "
        f"{sc_paper.transfer_bytes_per_inference / _MB:8.3f} MB each -> "
        f"{N_INPUTS * sc_paper.transfer_seconds:7.2f} s   (paper: ~1.5 MB, ~12 s)",
        "  SC  Z_b @224px (float32):                  "
        f"{sc_224.transfer_bytes_per_inference / _MB:8.3f} MB each -> "
        f"{N_INPUTS * sc_224.transfer_seconds:7.2f} s",
        "  latency saving (SC@1024 vs RoC): "
        f"{1 - sc_paper.transfer_seconds / roc.transfer_seconds:.1%}   (paper: ~87%)",
        "",
        "channel-degradation sweep (SC Z_b @1024 vs RoC raw, 100 inferences):",
        f"  {'bandwidth':<14}{'RoC (s)':>12}{'SC (s)':>12}{'speedup':>10}",
    ]
    series = []
    for factor in (1, 4, 16, 64):
        channel = GIGABIT_ETHERNET.degraded(factor) if factor > 1 else GIGABIT_ETHERNET
        roc_d = roc_report(
            spec, 3, JETSON_NANO, RTX3090_SERVER, channel, raw_input_hw=FACES_HW
        )
        sc_d = sc_report(
            spec, 3, JETSON_NANO, RTX3090_SERVER, channel, input_size=1024
        )
        speedup = roc_d.transfer_seconds / sc_d.transfer_seconds
        series.append((factor, roc_d, sc_d, speedup))
        lines.append(
            f"  {channel.bandwidth_bps / 1e6:>8.0f} Mbps"
            f"{N_INPUTS * roc_d.transfer_seconds:>12.1f}"
            f"{N_INPUTS * sc_d.transfer_seconds:>12.2f}{speedup:>9.0f}x"
        )
    return "\n".join(lines), roc, sc_paper, series


def test_roc_latency(benchmark, results_dir):
    text, roc, sc_paper, series = benchmark.pedantic(run_analysis, rounds=1, iterations=1)
    emit(results_dir, "roc_latency", text)

    # Paper checkpoints.
    assert abs(roc.transfer_bytes_per_inference / _MB - 115) < 2
    assert abs(N_INPUTS * roc.transfer_seconds - 98) < 6
    assert 1 - sc_paper.transfer_seconds / roc.transfer_seconds > 0.87

    # The SC advantage is channel-independent in ratio terms.
    speedups = [s for _f, _r, _s, s in series]
    assert max(speedups) / min(speedups) < 1.01


def test_quantised_payload_shrinks_transfer(benchmark, results_dir):
    spec = models.get_spec("efficientnet_b0")

    def run():
        rows = []
        for fmt in ("float32", "float16", "quant8"):
            report = sc_report(
                spec, 3, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
                input_size=1024, wire_format=WireFormat(fmt),
            )
            rows.append((fmt, report.transfer_bytes_per_inference, report.transfer_seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"Z_b wire format {fmt:>8}: {nbytes / _MB:6.3f} MB -> "
        f"{N_INPUTS * seconds:6.2f} s per 100 inferences"
        for fmt, nbytes, seconds in rows
    )
    emit(results_dir, "roc_latency_wire_formats", text)
    assert rows[0][1] > rows[1][1] > rows[2][1]
