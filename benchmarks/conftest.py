"""Fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  Two scales are provided:

* ``quick`` (default) — small datasets / few epochs; finishes in minutes
  and reproduces the *shape* of each result;
* ``full`` — larger datasets / more epochs for closer numbers
  (``REPRO_BENCH_SCALE=full pytest benchmarks/ --benchmark-only``).

Accuracy rows are printed to stdout as each benchmark finishes and are
also written to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from _bench_utils import RESULTS_DIR, BenchScale, current_scale


def pytest_collection_modifyitems(config, items):
    """Every benchmark trains models and runs minutes-long measurements;
    mark them all ``slow`` so CI's default lane (-m "not slow") skips them."""
    for item in items:
        if "benchmarks" in str(item.fspath):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return current_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
