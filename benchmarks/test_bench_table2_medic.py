"""Table 2 — STL vs MTL accuracy on the MEDIC-like disaster workload.

Paper configuration: T1 = damage severity (3 classes), T2 = disaster type
(4 classes).  Paper reference values (accuracy %):

    model          STL T1   STL T2   MTL T1          MTL T2
    VGG16          61.78    59.14    62.65 (+0.87)   60.54 (+1.40)
    MobileNetV3    61.73    52.66    61.90 (+0.17)   52.29 (-0.37)
    EfficientNet   61.00    53.94    62.42 (+1.42)   55.74 (+1.80)

The reproduced regime: a *hard* dataset with heavy label noise where
accuracies sit well below ceiling and MTL deltas are small — mostly
positive, with an occasional harmless negative cell (the paper observes
one too, -0.37, and argues it is not negative transfer).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import data
from repro.core import ComparisonTable, TrainConfig, run_stl_mtl_experiment
from repro.data import train_val_test_split

from _bench_utils import emit

BACKBONES = ("vgg_tiny", "mobilenet_v3_tiny", "efficientnet_tiny")
TASK_LABELS = {"damage_severity": "T1 (severity)", "disaster_type": "T2 (type)"}

PAPER_REFERENCE = """paper (full-scale models, real MEDIC, RTX 3090):
VGG16          STL 61.78/59.14  MTL 62.65 (+0.87) / 60.54 (+1.40)
MobileNetV3    STL 61.73/52.66  MTL 61.90 (+0.17) / 52.29 (-0.37)
EfficientNet   STL 61.00/53.94  MTL 62.42 (+1.42) / 55.74 (+1.80)"""


@pytest.fixture(scope="module")
def splits(scale):
    dataset = data.make_medic(scale.samples, seed=21)
    train, _val, test = train_val_test_split(
        dataset, val_fraction=0.0, test_fraction=0.25, rng=np.random.default_rng(22)
    )
    return train, test


@pytest.fixture(scope="module")
def table():
    return ComparisonTable(
        title="Table 2 — MEDIC-like (T1 = damage severity, T2 = disaster type)",
        task_labels=TASK_LABELS,
    )


@pytest.mark.parametrize("backbone", BACKBONES)
def test_table2_backbone(benchmark, backbone, splits, table, scale):
    train, test = splits
    cfg = TrainConfig(
        epochs=scale.epochs, batch_size=scale.batch_size, lr=scale.lr, seed=0
    )

    def run():
        return run_stl_mtl_experiment(
            backbone, train, test,
            task_groups=[
                ["damage_severity"], ["disaster_type"],
                ["damage_severity", "disaster_type"],
            ],
            config=cfg,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table.add(result)
    group = "damage_severity+disaster_type"
    for task in ("damage_severity", "disaster_type"):
        assert result.mtl[group][task] > 0.5 * result.stl[task] - 0.02


def test_table2_render(benchmark, table, results_dir):
    assert len(table.results) == len(BACKBONES)
    text = benchmark.pedantic(
        lambda: table.render() + "\n\n" + PAPER_REFERENCE, rounds=1, iterations=1
    )
    emit(results_dir, "table2_medic", text)
    # Hard-dataset regime: every accuracy should sit clearly below ceiling
    # (the label noise caps it) but above chance.
    for result in table.results:
        assert result.stl["damage_severity"] < 0.95
        assert result.stl["disaster_type"] > 0.25
