"""Fig. 1, executed — measured end-to-end split pipeline.

The architecture diagram of the paper as a runnable system: edge half →
serialised ``Z_b`` → channel → server half (task heads).  This benchmark
measures real forward-pass times of the two halves on this machine,
models the transfer with the channel, and verifies the split changes no
predictions.
"""

from __future__ import annotations

import numpy as np

import time

from repro import data, nn
from repro.core import MTLSplitNet, MultiTaskTrainer, TrainConfig
from repro.deployment import GIGABIT_ETHERNET, LTE_UPLINK, WireFormat
from repro.nn.engine import ExecutionPlan
from repro.serve import SplitPipeline
from repro.nn.tensor import Tensor

from _bench_utils import emit, pipeline_stamp

_BATCHES = 8
_BATCH_SIZE = 16

# The hires scenario point the depthwise rewrites target: whole backbone
# on the edge at 224px, batch 2 (the mobilenetv3_hires_224px config).
_HIRES_PX = 224
_HIRES_BATCH = 2
_HIRES_BACKBONE = "mobilenet_v3_tiny"


def build_net():
    dataset = data.make_shapes3d(320, tasks=("scale", "shape"), seed=41)
    net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(dataset.tasks), 32, seed=41)
    MultiTaskTrainer(TrainConfig(epochs=1, batch_size=64, seed=41)).fit(net, dataset)
    net.eval()
    return net, dataset


def _stream_interleaved(net, batches, rounds=9):
    """A/B the optimized pipeline against the unoptimized one, interleaved.

    Host speed drifts *within* a session (the same code has measured 2x
    apart minutes apart on the CI container), so the baseline and the
    optimized pipeline must alternate round by round — measuring one
    after the other lets a speed shift between the two blocks invert
    the comparison.  The order flips every round (A/B, B/A, ...) to
    cancel short-scale drift, and min-of-rounds keeps each side's
    fastest-regime number so the ratio compares like with like.
    """
    baseline = SplitPipeline.from_net(
        net, GIGABIT_ETHERNET, input_size=32, optimize=False
    )
    pipeline = SplitPipeline.from_net(
        net, GIGABIT_ETHERNET, input_size=32, optimize=True
    )
    baseline.warmup(batches[0])
    pipeline.warmup(batches[0])
    base_edge = edge = None
    base_outputs = outputs = report = None

    def run_baseline():
        nonlocal base_edge, base_outputs
        baseline.traces.clear()
        base_outputs, _ = baseline.infer_stream(batches)
        round_base = sum(t.edge_seconds for t in baseline.traces)
        base_edge = round_base if base_edge is None else min(base_edge, round_base)

    def run_optimized():
        nonlocal edge, outputs, report
        pipeline.traces.clear()
        outputs, report = pipeline.infer_stream(batches)
        round_edge = sum(t.edge_seconds for t in pipeline.traces)
        edge = round_edge if edge is None else min(edge, round_edge)

    for round_index in range(rounds):
        if round_index % 2 == 0:
            run_baseline()
            run_optimized()
        else:
            run_optimized()
            run_baseline()
    baseline.close()
    return pipeline, outputs, report, edge, base_edge, base_outputs


def _hires_depthwise_ab(rounds=9, batches=3):
    """Interleaved A/B of the depthwise-blocked plan at the hires tier.

    The 32px quick tier never triggers the depthwise probe (its matrices
    sit below DW_PROBE_MIN_BYTES), so the pipeline measurement above
    cannot see the rewrite.  This measures the edge half (the whole
    backbone — where every depthwise conv lives) at the hires scenario
    point against a same-run baseline compiled with the *pre-PR* pass
    pipeline (layout repacking and depthwise rewriting disabled), with
    the same round-interleaved, min-of-rounds discipline as the quick
    tier: host drift must not be able to invert the comparison.
    """
    tasks = data.make_shapes3d(4, tasks=("scale", "shape"), seed=7).tasks
    net = MTLSplitNet.from_tasks(_HIRES_BACKBONE, list(tasks), _HIRES_PX, seed=31)
    net.eval()
    n_stages = len(list(net.backbone.stages))
    edge, _ = net.split(n_stages, input_size=_HIRES_PX)
    session = edge.compile_for_inference()

    shape = (_HIRES_BATCH, 3, _HIRES_PX, _HIRES_PX)
    rng = np.random.default_rng(17)
    xs = [rng.standard_normal(shape).astype(np.float32) for _ in range(batches)]

    plan = ExecutionPlan(session, shape)
    baseline = ExecutionPlan(
        session, shape, disabled_passes=("repack_layouts", "block_depthwise")
    )
    # Bit-identity gate for the depthwise rewrite alone: against a plan
    # differing *only* in block_depthwise (layout repacking changes GEMM
    # summation order, so the pre-PR baseline is compared with allclose).
    dw_off = ExecutionPlan(session, shape, disabled_passes=("block_depthwise",))
    for x in xs:
        np.testing.assert_array_equal(plan.run(x).copy(), dw_off.run(x))
        np.testing.assert_allclose(plan.run(x), baseline.run(x), atol=1e-4)

    def timed(p):
        t0 = time.perf_counter()
        for x in xs:
            p.run(x)
        return time.perf_counter() - t0

    timed(plan), timed(baseline)  # warmup
    best = base_best = None
    for round_index in range(rounds):
        order = (plan, baseline) if round_index % 2 == 0 else (baseline, plan)
        for p in order:
            t = timed(p)
            if p is plan:
                best = t if best is None else min(best, t)
            else:
                base_best = t if base_best is None else min(base_best, t)

    stats = plan.stats
    return {
        "hires_backbone": _HIRES_BACKBONE,
        "hires_input_size": _HIRES_PX,
        "hires_batch_size": _HIRES_BATCH,
        "hires_edge_ms": best * 1e3,
        "hires_edge_ms_baseline_pre_pr": base_best * 1e3,
        "hires_edge_speedup_vs_pre_pr": base_best / best if best else 0.0,
        "hires_depthwise_probes": stats.depthwise_probes,
        "hires_depthwise_grouped_ops": stats.depthwise_grouped_ops,
        "hires_depthwise_stencil_ops": stats.depthwise_stencil_ops,
        "hires_layout_repacks": stats.layout_repacks,
    }


def test_pipeline_end_to_end(benchmark, results_dir):
    net, dataset = build_net()
    images = dataset.images[: _BATCHES * _BATCH_SIZE]
    batches = [
        images[start : start + _BATCH_SIZE]
        for start in range(0, len(images), _BATCH_SIZE)
    ]

    def run():
        # Same-run baseline: the identical pipeline with the plan-IR
        # optimizer passes disabled (PR 2's straight-line lowering and
        # reference kernels), interleaved round by round with the
        # optimized pipeline.  Host speed drifts between sessions *and*
        # within them, so a speedup claim is only meaningful against a
        # baseline measured in the same process, interleaved.
        return _stream_interleaved(net, batches)

    pipeline, outputs, report, edge, base_edge, base_outputs = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Predictions match the monolith (fused/compiled halves, atol 1e-4)
    # and the unoptimized plan (the optimizer changes no semantics).
    with nn.no_grad():
        full = net(Tensor(images[:_BATCH_SIZE]))
    for name in net.task_names:
        np.testing.assert_allclose(outputs[0][name], full[name].data, atol=1e-4)
        np.testing.assert_allclose(outputs[0][name], base_outputs[0][name], atol=1e-4)

    # The engine contract the optimizer must preserve: planning removed
    # every steady-state allocation, and the passes actually fired.
    assert report.steady_state_allocs == 0
    assert report.fused_steps > 0
    # elided_copies counts only real rewrites (in-place acts); views are
    # aliases in the baseline too, so they are reported separately.
    assert report.elided_copies + report.aliased_views > 0

    # Hires tier: the depthwise rewrites only engage on 224px matrices.
    hires = _hires_depthwise_ab()

    transfer = pipeline.total_transfer_seconds()
    server = sum(t.server_seconds for t in pipeline.traces)
    speedup = base_edge / edge if edge else 0.0
    text = (
        f"{_BATCHES} batches x {_BATCH_SIZE} images, mobilenet_v3_tiny @32px, "
        f"{GIGABIT_ETHERNET.name}, planned engine "
        f"({report.num_workers} worker(s), "
        f"{report.arena_bytes / 1024:.0f} KiB arena, "
        f"{report.steady_state_allocs} allocs/batch, "
        f"{report.fused_steps} fused epilogues, "
        f"{report.elided_copies} elided copies, "
        f"{report.aliased_views} aliased views), overlapped stages\n"
        f"  edge compute:   {edge * 1e3:8.2f} ms (measured; unoptimized "
        f"same-run baseline {base_edge * 1e3:.2f} ms -> {speedup:.2f}x)\n"
        f"  Z_b transfer:   {transfer * 1e3:8.2f} ms (modelled, "
        f"{pipeline.mean_payload_bytes() / 1024:.1f} KiB/batch)\n"
        f"  server compute: {server * 1e3:8.2f} ms (measured)\n"
        f"  serial total:   {pipeline.total_seconds() * 1e3:8.2f} ms\n"
        f"  pipelined:      {report.pipelined_seconds * 1e3:8.2f} ms "
        f"({report.overlap_speedup:.2f}x overlap, "
        f"{report.batches_per_second:.1f} batches/s, "
        f"critical stage: {report.critical_stage})\n"
        f"  hires edge ({hires['hires_backbone']} @{_HIRES_PX}px b{_HIRES_BATCH}, "
        f"depthwise-blocked float32): {hires['hires_edge_ms']:.2f} ms "
        f"(pre-PR same-run baseline {hires['hires_edge_ms_baseline_pre_pr']:.2f} ms "
        f"-> {hires['hires_edge_speedup_vs_pre_pr']:.2f}x; "
        f"{hires['hires_depthwise_grouped_ops']} grouped / "
        f"{hires['hires_depthwise_stencil_ops']} stencil rewrite(s) of "
        f"{hires['hires_depthwise_probes']} probed)"
    )
    emit(
        results_dir,
        "pipeline_end_to_end",
        text,
        data={
            "edge_ms": edge * 1e3,
            "edge_ms_baseline_unoptimized": base_edge * 1e3,
            "edge_speedup_vs_unoptimized": speedup,
            "transfer_ms": transfer * 1e3,
            "server_ms": server * 1e3,
            "serial_ms": pipeline.total_seconds() * 1e3,
            "pipelined_ms": report.pipelined_seconds * 1e3,
            "batches_per_second": report.batches_per_second,
            "images_per_second": report.images_per_second,
            "critical_stage": report.critical_stage,
            "payload_bytes_per_batch": pipeline.mean_payload_bytes(),
            "num_workers": report.num_workers,
            "arena_bytes": report.arena_bytes,
            "steady_state_allocs": report.steady_state_allocs,
            "fused_steps": report.fused_steps,
            "elided_copies": report.elided_copies,
            "aliased_views": report.aliased_views,
            "spmm_row_blocks": report.spmm_row_blocks,
            **hires,
            # In-memory trained net, so no DeploymentSpec: spec_digest is
            # empty by contract (docs/benchmarking.md).
            **pipeline_stamp(pipeline, (_BATCH_SIZE, 3, 32, 32)),
        },
    )
    assert pipeline.link.messages_sent == _BATCHES * 9  # 9 timed rounds; warmup is not charged
    # Overlap must beat strictly serial execution on multi-batch runs.
    assert report.pipelined_seconds < report.serial_seconds


def test_pipeline_split_point_sweep(benchmark, results_dir):
    """Payload size and edge share across every possible cut (ablation).

    The paper cuts at the backbone/heads boundary; this sweep shows that
    boundary is where the payload is smallest — the architecture-based
    rationale of Sbai et al. [24] applied to our backbone.
    """
    net, dataset = build_net()
    images = dataset.images[:_BATCH_SIZE]
    n_stages = len(list(net.backbone.stages))

    def run():
        rows = []
        for index in range(1, n_stages + 1):
            pipeline = SplitPipeline.from_net(
                net, LTE_UPLINK, split_index=index, input_size=32
            )
            pipeline.infer(images)
            trace = pipeline.traces[0]
            rows.append((index, trace.payload_bytes, trace.transfer_seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'split after stage':>18}{'payload (KiB)':>16}{'transfer (ms)':>16}"]
    for index, payload, transfer in rows:
        lines.append(f"{index:>18}{payload / 1024:>16.1f}{transfer * 1e3:>16.2f}")
    emit(results_dir, "pipeline_split_sweep", "\n".join(lines))

    payloads = {index: payload for index, payload, _ in rows}
    # The minimum-payload cut sits in the deep half of the backbone.  It is
    # NOT necessarily the very last stage: MobileNetV3 ends with a 1x1 conv
    # that *expands* channels (24 -> 64 here), so the cut just before that
    # expansion transmits less — the same effect the Neurosurgeon ablation
    # measures at full scale.
    min_index = min(payloads, key=payloads.get)
    assert min_index > n_stages // 2
    assert payloads[n_stages] < payloads[1]


def test_pipeline_wire_formats(benchmark, results_dir):
    net, dataset = build_net()
    images = dataset.images[:_BATCH_SIZE]

    def run():
        rows = []
        for fmt in ("float32", "float16", "quant8"):
            pipeline = SplitPipeline.from_net(
                net, LTE_UPLINK, input_size=32, wire_format=WireFormat(fmt)
            )
            logits = pipeline.infer(images)
            rows.append((fmt, pipeline.traces[0].payload_bytes, logits))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base = rows[0][2]
    lines = []
    for fmt, payload, logits in rows:
        agreement = min(
            float((logits[t].argmax(1) == base[t].argmax(1)).mean())
            for t in net.task_names
        )
        lines.append(
            f"wire {fmt:>8}: payload {payload / 1024:7.1f} KiB, "
            f"prediction agreement vs float32 {agreement:.0%}"
        )
    emit(results_dir, "pipeline_wire_formats", "\n".join(lines))
    assert rows[2][1] < rows[0][1] / 3
