"""Sec. 4.2 LoC analysis — edge memory of N single-task networks vs one
shared MTL-Split backbone on the 4 GB Jetson Nano.

Paper reference: MobileNetV3 needs ~1.5 GB for the two 3D-Shapes/MEDIC
tasks and ~2.1 GB for the three FACES tasks; EfficientNet needs ~6.9 GB
and ~10.3 GB — infeasible on the Nano — while the shared backbone makes
every configuration fit ("memory size improvements of ~38% ... and ~57%
for the FACES dataset").
"""

from __future__ import annotations

from repro import models
from repro.deployment import (
    GIGABIT_ETHERNET,
    JETSON_NANO,
    RTX3090_SERVER,
    loc_report,
    sc_report,
)

from _bench_utils import emit

_GB = 1024**3
PAPER_INPUT = 1024  # resolution reproducing the paper's activation sizes

WORKLOADS = [
    ("mobilenet_v3_small", 2, "3D Shapes / MEDIC (2 tasks)", 1.5),
    ("mobilenet_v3_small", 3, "FACES (3 tasks)", 2.1),
    ("efficientnet_b0", 2, "3D Shapes / MEDIC (2 tasks)", 6.9),
    ("efficientnet_b0", 3, "FACES (3 tasks)", 10.3),
]


def run_analysis():
    lines = [
        f"{'backbone':<22}{'workload':<28}{'LoC STL (GB)':>14}{'paper':>8}"
        f"{'SC edge (GB)':>14}{'saving':>9}{'LoC fits 4GB?':>15}{'SC fits 4GB?':>14}"
    ]
    rows = []
    for name, tasks, label, paper_gb in WORKLOADS:
        spec = models.get_spec(name)
        stl = loc_report(spec, tasks, JETSON_NANO, input_size=PAPER_INPUT)
        shared = sc_report(
            spec, tasks, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
            input_size=PAPER_INPUT,
        )
        saving = 1.0 - shared.edge_memory_bytes / stl.edge_memory_bytes
        lines.append(
            f"{name:<22}{label:<28}{stl.edge_memory_bytes / _GB:>14.2f}{paper_gb:>8.1f}"
            f"{shared.edge_memory_bytes / _GB:>14.2f}{saving:>8.0%}"
            f"{str(stl.feasible_on_edge):>15}{str(shared.feasible_on_edge):>14}"
        )
        rows.append((name, tasks, stl, shared, saving))
    return "\n".join(lines), rows


def test_loc_memory(benchmark, results_dir):
    text, rows = benchmark.pedantic(run_analysis, rounds=1, iterations=1)
    emit(results_dir, "loc_memory", text)

    by_key = {(name, tasks): (stl, shared, saving) for name, tasks, stl, shared, saving in rows}

    # Paper's magnitudes for N single-task networks.
    stl, _, _ = by_key[("mobilenet_v3_small", 2)]
    assert abs(stl.edge_memory_bytes / _GB - 1.5) < 0.3
    stl, _, _ = by_key[("efficientnet_b0", 2)]
    assert abs(stl.edge_memory_bytes / _GB - 6.9) < 1.0
    stl, _, _ = by_key[("efficientnet_b0", 3)]
    assert abs(stl.edge_memory_bytes / _GB - 10.3) < 1.5

    # Feasibility verdicts: EfficientNet STL does not fit the Nano; the
    # shared backbone always does (the paper's central LoC claim).
    for (name, tasks), (stl, shared, _saving) in by_key.items():
        if name == "efficientnet_b0":
            assert not stl.feasible_on_edge
        assert shared.feasible_on_edge

    # Savings grow with the number of tasks.
    _, _, saving2 = by_key[("efficientnet_b0", 2)]
    _, _, saving3 = by_key[("efficientnet_b0", 3)]
    assert saving3 > saving2 >= 0.38
