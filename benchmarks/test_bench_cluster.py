"""Replica-cluster benchmark: fan-out overhead and chaos-run accounting.

Three runs of the same deployment on the same host, same session:

* ``baseline`` — a 1-replica cluster (one worker process).  This is the
  honest baseline for process fan-out: it pays the same pipe/codec tax
  as the real cluster, so the replicas=2 delta isolates the *extra
  replica*, not the IPC machinery.
* ``cluster`` — replicas=2, fault-free.  On the 1-core CI host this is
  expected to be *overhead*, not speedup (two processes share one
  core); the artifact records the ratio rather than gating on it.
* ``chaos`` — replicas=2 with a seeded, digest-stamped
  :class:`WorkerFaultPlan` that SIGKILLs the serving replica at two
  scheduled dispatch indices.  The gates are the robustness invariants:
  every kill delivered, detected and restarted; every request completes
  anyway (failover); the conservation ledger balances; the plan digest
  is stamped into the artifact.

CI gates on invariants only — never on absolute latency or throughput
(host speed drifts 2-7x between sessions; see ``_bench_utils``).

Artifacts: ``serve_cluster.txt`` and ``BENCH_serve_cluster.json``.
"""

from __future__ import annotations

import os

from repro.serve import (
    ClusterSpec,
    DeploymentSpec,
    WorkerFaultPlan,
    render_cluster_bench,
    run_cluster_bench,
)

from _bench_utils import emit

_REQUESTS = 48
_MAX_BATCH_SIZE = 4
_KILL_INDICES = (1, 3)
_FAULT_SEED = 7


def _deployment_spec() -> DeploymentSpec:
    return DeploymentSpec(
        model="mobilenet_v3_tiny",
        tasks=(("scale", 8), ("shape", 4)),
        input_size=32,
        max_batch_size=_MAX_BATCH_SIZE,
        max_queue_delay_ms=1.0,
        seed=41,
    )


def _assert_conservation(result: dict) -> None:
    totals = result["batcher_conservation"]
    assert totals["submitted"] == totals["shed"] + totals["requests"]
    assert totals["requests"] == (
        totals["completed"] + totals["expired"] + totals["failed"]
        + totals["cancelled"]
    )


def test_serve_cluster(benchmark, results_dir):
    dspec = _deployment_spec()
    plan = WorkerFaultPlan(kill_indices=_KILL_INDICES, seed=_FAULT_SEED)

    def run_all():
        baseline = run_cluster_bench(
            ClusterSpec(deployment=dspec, replicas=1), requests=_REQUESTS,
            seed=41,
        )
        cluster = run_cluster_bench(
            ClusterSpec(deployment=dspec, replicas=2), requests=_REQUESTS,
            seed=41,
        )
        chaos = run_cluster_bench(
            ClusterSpec(deployment=dspec, replicas=2, worker_faults=plan),
            requests=_REQUESTS,
            seed=41,
        )
        return baseline, cluster, chaos

    baseline, cluster, chaos = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    # -- fault-free invariants: nothing shed, nothing lost -------------
    for result in (baseline, cluster):
        assert result["completed"] == _REQUESTS, render_cluster_bench(result)
        assert result["failed"] == 0
        assert result["shed"] == 0 and result["expired"] == 0
        assert result["report"]["kills_injected"] == 0
        assert result["report"]["state"] == "HEALTHY"
        _assert_conservation(result)
    assert baseline["replicas"] == 1
    assert cluster["replicas"] == 2
    assert len(cluster["report"]["per_replica"]) == 2

    # -- chaos invariants: the acceptance gate -------------------------
    # Both scheduled kills were actually delivered (SIGKILL mid-request),
    # detected by the supervisor, and the slots restarted; every request
    # still completed via failover, and the ledger balances.
    assert chaos["report"]["kills_injected"] == len(_KILL_INDICES), (
        render_cluster_bench(chaos)
    )
    supervisor = chaos["report"]["supervisor"]
    assert supervisor["crashes_detected"] >= len(_KILL_INDICES)
    assert supervisor["restarts"] >= 1
    aggregate = chaos["report"]["aggregate"]
    assert aggregate["failovers"] >= len(_KILL_INDICES)
    assert any(
        step["to"] == "DEGRADED" for step in chaos["report"]["state_history"]
    ), "chaos run never observed DEGRADED"
    assert chaos["completed"] == _REQUESTS, render_cluster_bench(chaos)
    assert chaos["failed"] == 0
    _assert_conservation(chaos)

    # -- provenance: the kill schedule is stamped, replayably ----------
    assert chaos["worker_fault_digest"] == plan.digest()
    assert plan.schedule(64) == _KILL_INDICES
    assert baseline["worker_fault_digest"] is None

    # Spec/plan digests travel from the worker processes through the
    # aggregate report (repro.attest stamping): every run of the same
    # spec must agree on them.
    stamps = {
        name: (r["report"]["aggregate"]["spec_digest"],
               r["report"]["aggregate"]["plan_digest"])
        for name, r in (("baseline", baseline), ("cluster", cluster),
                        ("chaos", chaos))
    }
    for name, (spec_digest, plan_digest) in stamps.items():
        assert spec_digest and plan_digest, f"{name} report lost its digests"
    assert len(set(stamps.values())) == 1, stamps

    # Honest overhead on this host — recorded, never gated (replicas
    # share the core count they get; on 1 core, 2 replicas cost, not pay).
    overhead = (
        baseline["throughput_rps"] / cluster["throughput_rps"]
        if cluster["throughput_rps"] else float("inf")
    )

    text = (
        f"mobilenet_v3_tiny @32px, max_batch_size={_MAX_BATCH_SIZE}, "
        f"{_REQUESTS} requests/run, {os.cpu_count()} cpu core(s) on this "
        "host\n\n"
        f"-- baseline (1 replica) --\n{render_cluster_bench(baseline)}\n\n"
        f"-- cluster (2 replicas) --\n{render_cluster_bench(cluster)}\n\n"
        f"-- chaos (2 replicas, kills at {list(_KILL_INDICES)}, "
        f"seed={_FAULT_SEED}) --\n{render_cluster_bench(chaos)}\n\n"
        f"replicas=1 vs replicas=2 throughput ratio on this host: "
        f"{overhead:.2f}x (recorded, not gated)"
    )
    emit(
        results_dir,
        "serve_cluster",
        text,
        data={
            "host_cpu_cores": os.cpu_count(),
            "requests_per_run": _REQUESTS,
            "max_batch_size": _MAX_BATCH_SIZE,
            "worker_fault_plan": plan.to_dict(),
            "worker_fault_digest": plan.digest(),
            "kill_schedule": list(plan.schedule(64)),
            "throughput_ratio_1v2": overhead,
            "spec_digest": stamps["chaos"][0],
            "plan_digest": stamps["chaos"][1],
            "baseline": baseline,
            "cluster": cluster,
            "chaos": chaos,
        },
    )
