"""Dynamic-batching serving benchmark (the `repro.serve` front-end).

The ROADMAP's serving gap: the planned engine is batch-sharded, but
request-level traffic arrives one image at a time, so batch-1 clients
left the engine idle.  This benchmark drives a deployment with synthetic
concurrent closed-loop clients through ``Deployment.submit()`` — the
dynamic micro-batching path — and compares against the sequential
batch-1 baseline on the same host and deployment.

Artifacts: ``serve_dynamic_batching.txt`` (human table) and
``BENCH_serve_dynamic_batching.json`` with p50/p95 latency and
throughput for 1, 8 and 64 clients plus the baseline.
"""

from __future__ import annotations

import os

from repro.serve import DeploymentSpec, render_serve_bench, run_serve_bench

from _bench_utils import emit, spec_stamp

_CLIENT_COUNTS = (1, 8, 64)
_REQUESTS_PER_CLIENT = 12
_MAX_BATCH_SIZE = 16
_MAX_DELAY_MS = 2.0


def test_serve_dynamic_batching(benchmark, results_dir):
    spec = DeploymentSpec(
        model="mobilenet_v3_tiny",
        tasks=(("scale", 8), ("shape", 4)),
        input_size=32,
        max_batch_size=_MAX_BATCH_SIZE,
        max_queue_delay_ms=_MAX_DELAY_MS,
        seed=41,
    )

    result = benchmark.pedantic(
        lambda: run_serve_bench(
            spec,
            client_counts=_CLIENT_COUNTS,
            requests_per_client=_REQUESTS_PER_CLIENT,
            seed=41,
        ),
        rounds=1,
        iterations=1,
    )

    # The point of the front-end: concurrent submit() throughput must beat
    # the sequential batch-1 baseline on this same host/deployment.
    assert result["best_speedup_vs_sequential"] > 1.0, (
        "dynamic batching failed to beat sequential batch-1:\n"
        + render_serve_bench(result)
    )
    # With 8+ closed-loop clients the dispatcher must actually coalesce.
    many_clients = [row for row in result["concurrent"] if row["clients"] >= 8]
    assert any(row["mean_batch_size"] > 1.5 for row in many_clients), (
        "concurrent load never coalesced into micro-batches:\n"
        + render_serve_bench(result)
    )

    text = (
        "mobilenet_v3_tiny @32px, gigabit ethernet, planned engine, "
        f"max_batch_size={_MAX_BATCH_SIZE}, "
        f"max_queue_delay={_MAX_DELAY_MS:g} ms, "
        f"{os.cpu_count()} cpu core(s) on this host\n"
        + render_serve_bench(result)
    )
    emit(
        results_dir,
        "serve_dynamic_batching",
        text,
        data={
            "host_cpu_cores": os.cpu_count(),
            "max_batch_size": _MAX_BATCH_SIZE,
            "max_queue_delay_ms": _MAX_DELAY_MS,
            "requests_per_client": _REQUESTS_PER_CLIENT,
            **result,
            **spec_stamp(spec),
        },
    )
