"""Assert every ``BENCH_*.json`` artifact carries its provenance stamp.

The contract (docs/benchmarking.md): a benchmark artifact without the
digests of the program that produced it is not reproducible evidence, so
every machine-readable artifact must carry ``spec_digest`` and
``plan_digest`` at the top level.  ``plan_digest`` must always be
non-empty; ``spec_digest`` may be the empty string only for benches that
run below the serve layer (an in-memory trained net or a bare engine
session, where no :class:`DeploymentSpec` exists to digest).

Run by the CI bench lanes after each benchmark smoke; also valid against
the committed artifacts on a clean checkout:

    python benchmarks/check_bench_stamps.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS = Path(__file__).parent / "results"


def main() -> int:
    paths = sorted(RESULTS.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json artifacts found under benchmarks/results/",
              file=sys.stderr)
        return 1
    bad = []
    for path in paths:
        data = json.loads(path.read_text())
        for key in ("spec_digest", "plan_digest"):
            if key not in data:
                bad.append(f"{path.name}: missing {key}")
        if not data.get("plan_digest"):
            bad.append(f"{path.name}: empty plan_digest")
    for line in bad:
        print(line, file=sys.stderr)
    print(f"{len(paths)} artifact(s) checked, {len(bad)} stamp problem(s)")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
