"""Ablations beyond the paper's tables (E8 in DESIGN.md).

* Loss weighting: uniform (the paper's Eq. 4) vs static vs the
  uncertainty weighting of Kendall et al. [16] the paper cites as the
  loss-centric alternative.
* Head capacity: linear probe vs the paper's 2-layer MLP.
* Split-point choice: compression-vs-saliency recommendation.
"""

from __future__ import annotations

import numpy as np

from repro import data
from repro.core import (
    BottleneckedSplit,
    MTLSplitNet,
    MultiTaskTrainer,
    TrainConfig,
    evaluate,
    recommend_split,
    stage_activation_profile,
    train_bottleneck,
)
from repro.data import train_val_test_split
from repro.deployment import (
    GIGABIT_ETHERNET,
    JETSON_NANO,
    RTX3090_SERVER,
    latency_profile,
    optimal_split_index,
)
from repro.models import LinearHead, MLPHead, create_backbone, get_spec

from _bench_utils import emit


def make_splits(samples):
    dataset = data.make_shapes3d(samples, tasks=("scale", "shape"), seed=51)
    train, _val, test = train_val_test_split(
        dataset, val_fraction=0.0, test_fraction=0.25, rng=np.random.default_rng(52)
    )
    return train, test


def test_loss_weighting_ablation(benchmark, results_dir, scale):
    train, test = make_splits(max(800, scale.samples // 2))

    def run():
        rows = []
        for weighting in ("uniform", "static", "uncertainty"):
            cfg = TrainConfig(
                epochs=scale.epochs, batch_size=scale.batch_size, lr=scale.lr,
                seed=0, weighting=weighting,
                static_weights={"scale": 2.0, "shape": 1.0} if weighting == "static" else None,
            )
            net = MTLSplitNet.from_tasks(
                "mobilenet_v3_tiny", list(train.tasks), 32, seed=0
            )
            MultiTaskTrainer(cfg).fit(net, train)
            rows.append((weighting, evaluate(net, test)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{w:>12}: scale={acc['scale']:.3f} shape={acc['shape']:.3f}"
        for w, acc in rows
    ]
    emit(results_dir, "ablation_loss_weighting", "\n".join(lines))
    # Every strategy must learn something; none may collapse below chance.
    for _w, acc in rows:
        assert acc["shape"] >= 0.25


def test_head_capacity_ablation(benchmark, results_dir, scale):
    train, test = make_splits(max(800, scale.samples // 2))
    rng_seed = 0

    def run():
        rows = []
        for label, head_factory in (
            ("linear probe", lambda d, k, r: LinearHead(d, k, rng=r)),
            ("2-layer MLP (paper)", lambda d, k, r: MLPHead(d, k, rng=r)),
            ("wide MLP", lambda d, k, r: MLPHead(d, k, hidden_features=128, rng=r)),
        ):
            rng = np.random.default_rng(rng_seed)
            backbone = create_backbone("mobilenet_v3_tiny", rng=rng)
            z_dim = backbone.feature_dim(32)
            heads = {
                task.name: head_factory(z_dim, task.num_classes, rng)
                for task in train.tasks
            }
            net = MTLSplitNet(backbone, heads)
            cfg = TrainConfig(epochs=scale.epochs, batch_size=scale.batch_size,
                              lr=scale.lr, seed=0)
            MultiTaskTrainer(cfg).fit(net, train)
            rows.append((label, net.num_parameters(), evaluate(net, test)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{label:>20}: params={params:>7} scale={acc['scale']:.3f} shape={acc['shape']:.3f}"
        for label, params, acc in rows
    ]
    emit(results_dir, "ablation_head_capacity", "\n".join(lines))


def test_split_point_recommendation(benchmark, results_dir):
    train, test = make_splits(600)
    net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(train.tasks), 32, seed=0)
    MultiTaskTrainer(TrainConfig(epochs=2, batch_size=64, lr=1e-2, seed=0)).fit(net, train)
    images = test.images[:32]
    targets = {k: v[:32] for k, v in test.labels.items()}

    def run():
        profile = stage_activation_profile(net.backbone.spec, 32)
        recommended = recommend_split(net, images, targets, input_size=32)
        return profile, recommended

    profile, recommended = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'stage':>8}{'transmit elems':>16}{'compression':>14}"]
    for point in profile:
        marker = "  <- recommended" if point.stage_index == recommended.stage_index else ""
        lines.append(
            f"{point.stage_name:>8}{point.transmit_elements:>16}"
            f"{point.compression:>14.1f}{marker}"
        )
    emit(results_dir, "ablation_split_point", "\n".join(lines))
    # The recommendation should sit in the compressing tail of the network,
    # consistent with the paper's choice of splitting at the backbone end.
    assert recommended.stage_index >= len(profile) // 2


def test_bottleneck_payload_accuracy_tradeoff(benchmark, results_dir, scale):
    """Extension (refs [11], [20]): a learned bottleneck shrinks the wire
    payload further; this bench maps the payload-vs-accuracy frontier."""
    train, test = make_splits(max(800, scale.samples // 2))
    net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(train.tasks), 32, seed=0)
    MultiTaskTrainer(
        TrainConfig(epochs=scale.epochs, batch_size=scale.batch_size, lr=scale.lr, seed=0)
    ).fit(net, train)
    baseline = evaluate(net, test)
    z_dim = net.backbone.feature_dim(32)

    def run():
        rows = []
        for latent in (z_dim // 2, z_dim // 4, z_dim // 16):
            autoencoder = train_bottleneck(
                net, train, latent_dim=latent, epochs=2, lr=3e-3, seed=0
            )
            split = BottleneckedSplit(net, autoencoder)
            rows.append((latent, autoencoder.compression_ratio, split.accuracy(test)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"raw Z_b ({z_dim} elems):      scale={baseline['scale']:.3f} "
        f"shape={baseline['shape']:.3f}"
    ]
    for latent, ratio, acc in rows:
        lines.append(
            f"bottleneck {latent:>4} elems ({ratio:4.1f}x): "
            f"scale={acc['scale']:.3f} shape={acc['shape']:.3f}"
        )
    emit(results_dir, "ablation_bottleneck", "\n".join(lines))
    # Mild compression should roughly preserve accuracy.
    _latent, _ratio, mild = rows[0]
    assert mild["shape"] > baseline["shape"] - 0.15


def test_neurosurgeon_latency_sweep(benchmark, results_dir):
    """Extension (ref [15]): latency-optimal split point across channels.

    Shows the crossover the SC literature predicts: fast channels favour
    early offload (RoC-like), slow channels favour MTL-Split's late cut.
    """
    spec = get_spec("mobilenet_v3_small")

    def run():
        rows = []
        for factor in (1, 100, 10000):
            channel = (
                GIGABIT_ETHERNET.degraded(factor) if factor > 1 else GIGABIT_ETHERNET
            )
            best = optimal_split_index(
                spec, JETSON_NANO, RTX3090_SERVER, channel, input_size=224
            )
            profile = latency_profile(
                spec, JETSON_NANO, RTX3090_SERVER, channel, input_size=224
            )
            default = profile[-1]  # MTL-Split's backbone/heads boundary
            rows.append((channel, best, default))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'channel':<30}{'best cut':>12}{'best (ms)':>12}{'default cut (ms)':>18}"
    ]
    for channel, best, default in rows:
        lines.append(
            f"{channel.name:<30}{best.stage_name:>12}"
            f"{best.total_seconds * 1e3:>12.2f}{default.total_seconds * 1e3:>18.2f}"
        )
    emit(results_dir, "ablation_neurosurgeon", "\n".join(lines))
    # The optimum moves deeper into the network as the channel degrades.
    fast_best, slow_best = rows[0][1], rows[-1][1]
    assert slow_best.stage_index >= fast_best.stage_index
    assert slow_best.stage_index >= len(spec.layers) // 2
    # The optimiser never does worse than MTL-Split's fixed default cut.
    for _channel, best, default in rows:
        assert best.total_seconds <= default.total_seconds * (1 + 1e-9)
    # Interesting measured fact: MobileNetV3's final 1x1 conv expands to
    # 576 channels, so the backbone end is NOT the min-payload cut — the
    # optimiser finds the cheaper cut just before the expansion.
    slow_profile = latency_profile(
        spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET.degraded(10000),
        input_size=224,
    )
    assert slow_best.transmit_elements == min(
        p.transmit_elements for p in slow_profile
    )
