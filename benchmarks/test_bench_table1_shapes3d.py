"""Table 1 — STL vs MTL classification accuracy on (noisy) 3D Shapes.

Paper configuration: T1 = object size (8-way scale factor), T2 = object
type (4-way shape factor), 15 % salt-and-pepper noise, three backbones.
Paper reference values (accuracy %):

    model          STL T1   STL T2   MTL T1          MTL T2
    VGG16          12.50    25.50    51.10 (+38.60)  81.74 (+56.24)
    MobileNetV3    74.85    93.95    77.23 (+2.38)   94.00 (+0.05)
    EfficientNet   95.49    99.07    96.66 (+1.17)   99.48 (+2.28)

Our models are width-scaled for CPU training and the dataset is the
procedural stand-in, so absolute accuracies differ; the reproduced shape
is "MTL >= STL on (nearly) every cell".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import data
from repro.core import ComparisonTable, TrainConfig, run_stl_mtl_experiment
from repro.data import train_val_test_split

from _bench_utils import emit

BACKBONES = ("vgg_tiny", "mobilenet_v3_tiny", "efficientnet_tiny")
TASK_LABELS = {"scale": "T1 (size)", "shape": "T2 (type)"}

PAPER_REFERENCE = """paper (full-scale models, real 3D Shapes, RTX 3090):
VGG16          STL 12.50/25.50  MTL 51.10 (+38.60) / 81.74 (+56.24)
MobileNetV3    STL 74.85/93.95  MTL 77.23 (+2.38)  / 94.00 (+0.05)
EfficientNet   STL 95.49/99.07  MTL 96.66 (+1.17)  / 99.48 (+2.28)"""


@pytest.fixture(scope="module")
def splits(scale):
    dataset = data.make_shapes3d(
        scale.samples, tasks=("scale", "shape"), noise_amount=0.15, seed=11
    )
    train, _val, test = train_val_test_split(
        dataset, val_fraction=0.0, test_fraction=0.25, rng=np.random.default_rng(12)
    )
    return train, test


@pytest.fixture(scope="module")
def table():
    return ComparisonTable(
        title="Table 1 — 3D Shapes (T1 = object size, T2 = object type)",
        task_labels=TASK_LABELS,
    )


@pytest.mark.parametrize("backbone", BACKBONES)
def test_table1_backbone(benchmark, backbone, splits, table, scale):
    train, test = splits
    cfg = TrainConfig(
        epochs=scale.epochs, batch_size=scale.batch_size, lr=scale.lr, seed=0
    )

    def run():
        return run_stl_mtl_experiment(
            backbone, train, test,
            task_groups=[["scale"], ["shape"], ["scale", "shape"]],
            config=cfg,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table.add(result)
    # The load-bearing claim of Table 1: joint training does not collapse —
    # each MTL cell keeps a substantial fraction of its STL baseline.
    for task in ("scale", "shape"):
        mtl = result.mtl["scale+shape"][task]
        assert mtl > 0.5 * result.stl[task] - 0.02, (
            f"{backbone}/{task}: MTL {mtl:.3f} collapsed vs STL {result.stl[task]:.3f}"
        )


def test_table1_render(benchmark, table, results_dir):
    assert len(table.results) == len(BACKBONES)
    text = benchmark.pedantic(
        lambda: table.render() + "\n\n" + PAPER_REFERENCE, rounds=1, iterations=1
    )
    emit(results_dir, "table1_shapes3d", text)
    # Shape check across the whole table: MTL improves the majority of cells.
    deltas = [
        result.delta("scale+shape", task)
        for result in table.results
        for task in ("scale", "shape")
    ]
    improved = sum(1 for d in deltas if d >= -0.02)
    assert improved >= len(deltas) // 2, f"MTL deltas {deltas}"
