"""Worker scaling of the arena-planned edge stage (repro.nn.engine).

PR 1's pipeline benchmark identified the edge stage as the critical path;
this benchmark records how the planned engine's batch-sharded executor
behaves as ``num_workers`` grows on this host.  On a single-core machine
the curve is expected to be flat (or slightly worse, from thread
switching) — the artifact records the host's core count so the numbers
can be read honestly.  It also records the headline planned-vs-unplanned
edge speedup that the engine delivers independent of threading.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import data
from repro.core import MTLSplitNet
from repro.nn import engine

from _bench_utils import emit, session_stamp

_BATCH_SIZE = 16
_WORKER_COUNTS = (1, 2, 4)
_REPEATS = 20


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_edge_worker_scaling(benchmark, results_dir):
    dataset = data.make_shapes3d(64, tasks=("scale", "shape"), seed=41)
    net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(dataset.tasks), 32, seed=41)
    net.eval()
    edge_model, _ = net.split(None, input_size=32)
    session = edge_model.compile_for_inference()
    x = dataset.images[:_BATCH_SIZE]
    reference = session.run(x)

    def run():
        rows = {}
        # Unplanned compiled session (the PR 1 execution mode).
        for _ in range(3):
            session.run(x)
        rows["unplanned"] = _best_of(lambda: session.run(x), _REPEATS)
        for workers in _WORKER_COUNTS:
            executor = engine.PlannedExecutor(session, num_workers=workers)
            np.testing.assert_allclose(executor.run(x), reference, atol=1e-6)
            for _ in range(3):
                executor.run(x)
            rows[workers] = _best_of(lambda: executor.run(x), _REPEATS)
        # Intra-op row parallelism: the lone-request (batch-1) latency
        # lever — a single step's output rows split across the pool.
        x1 = x[:1]
        ref1 = session.run(x1)
        for workers in _WORKER_COUNTS:
            executor = engine.PlannedExecutor(
                session, num_workers=workers, intra_op=workers > 1
            )
            np.testing.assert_allclose(executor.run(x1), ref1, atol=1e-6)
            for _ in range(3):
                executor.run(x1)
            rows[("intra", workers)] = _best_of(lambda: executor.run(x1), _REPEATS)
            executor.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    unplanned_ms = rows["unplanned"] * 1e3
    single_ms = rows[1] * 1e3
    lines = [
        f"edge half (mobilenet_v3_tiny @32px), batch {_BATCH_SIZE}, "
        f"{os.cpu_count()} cpu core(s) on this host",
        f"  unplanned fused session: {unplanned_ms:8.3f} ms/batch",
    ]
    payload = {
        # Bare engine session below the serve layer, so no DeploymentSpec:
        # spec_digest is empty by contract (docs/benchmarking.md).
        **session_stamp(session, x.shape, header="mobilenet_v3_tiny@32 edge"),
        "cpu_count": os.cpu_count(),
        "batch_size": _BATCH_SIZE,
        "unplanned_ms": unplanned_ms,
        "planned_speedup": unplanned_ms / single_ms,
        "workers": {},
    }
    for workers in _WORKER_COUNTS:
        ms = rows[workers] * 1e3
        payload["workers"][str(workers)] = {
            "edge_ms_per_batch": ms,
            "speedup_vs_one_worker": single_ms / ms,
        }
        lines.append(
            f"  planned, {workers} worker(s):   {ms:8.3f} ms/batch "
            f"({single_ms / ms:4.2f}x vs 1 worker, "
            f"{unplanned_ms / ms:4.2f}x vs unplanned)"
        )
    intra_single_ms = rows[("intra", 1)] * 1e3
    payload["intra_op_batch1"] = {}
    lines.append(
        "  intra-op row parallelism, batch 1 (single-request latency; "
        f"expect no speedup on a {os.cpu_count()}-core host):"
    )
    for workers in _WORKER_COUNTS:
        ms = rows[("intra", workers)] * 1e3
        payload["intra_op_batch1"][str(workers)] = {
            "edge_ms_per_image": ms,
            "speedup_vs_one_worker": intra_single_ms / ms,
        }
        lines.append(
            f"    {workers} worker(s): {ms:8.3f} ms/image "
            f"({intra_single_ms / ms:4.2f}x vs 1 worker)"
        )
    emit(results_dir, "edge_worker_scaling", "\n".join(lines), data=payload)

    # The planned engine must beat the unplanned session; the 1.2x headroom
    # keeps shared-runner timing noise from flaking the CI slow lane.
    assert rows[1] < rows["unplanned"] * 1.2
