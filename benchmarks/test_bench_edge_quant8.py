"""Quant8 compute tier: accuracy-vs-latency, every hires scenario.

The quant8 tier trades numerical exactness for int8 operands; whether it
also trades *latency* depends on the host (int32 matmul has no BLAS fast
path, so on BLAS-rich hosts float32 usually wins — an honest loser this
artifact records rather than hides).  Policy (docs/benchmarking.md): the
accuracy deltas are recorded and bounded; the latency ratio is recorded
but never gated — host speed varies run to run, and the per-scenario
float32 baseline is re-measured interleaved in the same process.
"""

from __future__ import annotations

import time

import numpy as np

from repro import data
from repro.core import MTLSplitNet
from repro.nn.engine import ExecutionPlan, QuantizedPlan
from repro.scenarios import scenario_matrix

from _bench_utils import combined_stamp, emit, session_stamp

_ROUNDS = 5
_BATCHES = 2
_DELTA_BOUND = 0.5  # sanity ceiling on |quant8 - float32| edge features


def _measure_scenario(scenario):
    tasks = data.make_shapes3d(4, tasks=("scale", "shape"), seed=7).tasks
    net = MTLSplitNet.from_tasks(
        scenario.backbone, list(tasks), scenario.input_size, seed=31
    )
    net.eval()
    n_stages = len(list(net.backbone.stages))
    edge, _ = net.split(n_stages, input_size=scenario.input_size)
    session = edge.compile_for_inference()

    shape = (scenario.batch_size, 3, scenario.input_size, scenario.input_size)
    rng = np.random.default_rng(23)
    xs = [rng.standard_normal(shape).astype(np.float32) for _ in range(_BATCHES)]

    float_plan = ExecutionPlan(session, shape)
    qplan = QuantizedPlan(ExecutionPlan(session, shape))
    qplan.run(xs[0])  # calibration batch (runs the float plan, bit-exact)

    # Accuracy: max |quant8 - float32| over the edge feature map, with
    # the float reference's own magnitude alongside for scale.
    max_delta = absmax = 0.0
    for x in xs:
        reference = np.asarray(float_plan.run(x))
        quant = np.asarray(qplan.run(x))
        max_delta = max(max_delta, float(np.max(np.abs(quant - reference))))
        absmax = max(absmax, float(np.max(np.abs(reference))))

    def timed(p):
        t0 = time.perf_counter()
        for x in xs:
            p.run(x)
        return time.perf_counter() - t0

    timed(float_plan), timed(qplan)  # warmup
    float_best = quant_best = None
    for round_index in range(_ROUNDS):
        order = (
            (float_plan, qplan) if round_index % 2 == 0 else (qplan, float_plan)
        )
        for p in order:
            t = timed(p)
            if p is float_plan:
                float_best = t if float_best is None else min(float_best, t)
            else:
                quant_best = t if quant_best is None else min(quant_best, t)

    return {
        "backbone": scenario.backbone,
        "input_size": scenario.input_size,
        "batch_size": scenario.batch_size,
        "float32_ms": float_best * 1e3,
        "quant8_ms": quant_best * 1e3,
        "latency_ratio_quant8_vs_float32": quant_best / float_best,
        "max_abs_delta": max_delta,
        "float32_absmax": absmax,
        "quant_steps": qplan.stats.quant_steps,
        "quant_chains": qplan.stats.quant_chains,
        # Scenario spec digest + the float32 edge session's plan digest.
        # quant8 outputs themselves are policy-excluded from exact
        # attestation (calibration-dependent); the stamp identifies the
        # program whose float reference this row is measured against.
        "spec_digest": scenario.deployment_spec().digest(),
        "plan_digest": session_stamp(
            session, shape,
            header=f"{scenario.backbone}@{scenario.input_size} edge-full",
        )["plan_digest"],
    }


def test_edge_quant8(benchmark, results_dir):
    scenarios = [
        s for s in scenario_matrix("hires") if s.compute == "quant8"
    ]
    assert scenarios, "quant8 hires scenarios must be registered"

    def run():
        return {s.name: _measure_scenario(s) for s in scenarios}

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{'scenario':<34}{'float32 ms':>12}{'quant8 ms':>12}"
        f"{'ratio':>8}{'max |delta|':>13}{'|ref| max':>11}"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:<34}{row['float32_ms']:>12.2f}{row['quant8_ms']:>12.2f}"
            f"{row['latency_ratio_quant8_vs_float32']:>8.2f}"
            f"{row['max_abs_delta']:>13.2e}{row['float32_absmax']:>11.2e}"
        )
    lines.append(
        "policy: accuracy deltas are bounded; the latency ratio is recorded, "
        "never gated (see docs/benchmarking.md)"
    )
    emit(
        results_dir,
        "edge_quant8",
        "\n".join(lines),
        data={"scenarios": rows, **combined_stamp(rows)},
    )

    for name, row in rows.items():
        # The accuracy gate: quant8 must stay a faithful approximation of
        # the float edge features on every hires scenario.
        assert np.isfinite(row["max_abs_delta"]), name
        assert row["max_abs_delta"] < _DELTA_BOUND, (name, row["max_abs_delta"])
        assert row["quant_steps"] > 0, name
