"""Table 3 — STL vs MTL on the FACES-like workload with fine-tuning.

Paper configuration: T1 = perceived age (3), T2 = gender (2),
T3 = expression (3); training starts from ImageNet-pretrained backbones
and fine-tunes (Sec. 3.3); task groups T1+T3, T2+T3 and T1+T2+T3.
Paper reference values (accuracy %), EfficientNet row:

    STL 99.76/99.76/94.63 ; MTL(T1+T3) 100/95.61 ;
    MTL(T2+T3) 99.76/97.32 ; MTL(T1+T2+T3) 100/100/95.61

Pre-training here uses an auxiliary synthetic dataset (no ImageNet
offline); fine-tuning uses the paper's two-rate rule (alpha >> eta).
Reproduced shape: near-ceiling accuracies, MTL at or above STL.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import data
from repro.core import (
    ComparisonTable,
    FineTuneConfig,
    TrainConfig,
    pretrain_backbone,
    run_stl_mtl_experiment,
)
from repro.data import train_val_test_split

from _bench_utils import emit

BACKBONES = ("vgg_tiny", "mobilenet_v3_tiny", "efficientnet_tiny")
TASK_LABELS = {"age": "T1 (age)", "gender": "T2 (gender)", "expression": "T3 (expr)"}
GROUPS = [
    ["age"], ["gender"], ["expression"],
    ["age", "expression"], ["gender", "expression"],
    ["age", "gender", "expression"],
]

PAPER_REFERENCE = """paper (pretrained full-scale models, real FACES, RTX 3090):
VGG16        STL 96.83/95.61/19.02  MTL(T1+T2+T3) 98.54 (+1.71) / 99.51 (+3.90) / 89.27 (+70.25)
MobileNetV3  STL 97.07/99.51/95.12  MTL(T1+T2+T3) 99.27 (+2.20) / 99.51 (+0.00) / 95.85 (+0.73)
EfficientNet STL 99.76/99.76/94.63  MTL(T1+T2+T3) 100 (+0.24)   / 100 (+0.24)   / 95.61 (+0.98)"""


@pytest.fixture(scope="module")
def splits(scale):
    # FACES is a small dataset (2,052 photos); keep the stand-in small too.
    dataset = data.make_faces(max(600, scale.samples // 2), seed=31)
    train, _val, test = train_val_test_split(
        dataset, val_fraction=0.0, test_fraction=0.25, rng=np.random.default_rng(32)
    )
    return train, test


@pytest.fixture(scope="module")
def pretrained(scale):
    """Backbone weights pre-trained on an auxiliary synthetic task.

    Emulates the paper's ImageNet initialisation: the backbone has seen
    related imagery (clean 3D-Shapes factors) before fine-tuning on faces.
    """
    auxiliary = data.make_shapes3d(800, tasks=("shape", "object_hue"), seed=33,
                                   noise_amount=0.0)
    cfg = TrainConfig(epochs=2, batch_size=scale.batch_size, lr=scale.lr, seed=33)
    return {
        name: pretrain_backbone(name, auxiliary, input_size=32, config=cfg, seed=33)
        for name in BACKBONES
    }


@pytest.fixture(scope="module")
def table():
    return ComparisonTable(
        title="Table 3 — FACES-like (T1 = age, T2 = gender, T3 = expression), fine-tuned",
        task_labels=TASK_LABELS,
    )


@pytest.mark.parametrize("backbone", BACKBONES)
def test_table3_backbone(benchmark, backbone, splits, pretrained, table, scale):
    train, test = splits
    finetune_cfg = FineTuneConfig(
        alpha=6e-3, eta=6e-4, epochs=scale.finetune_epochs,
        batch_size=scale.batch_size, seed=0,
    )

    def run():
        return run_stl_mtl_experiment(
            backbone, train, test,
            task_groups=GROUPS,
            pretrained_backbone=pretrained[backbone],
            finetune_config=finetune_cfg,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table.add(result)
    # Gender is the paper's easy task: expect a high score even fine-tuned
    # briefly from an auxiliary-task backbone.
    assert result.stl["gender"] > 0.6


def test_table3_render(benchmark, table, results_dir):
    assert len(table.results) == len(BACKBONES)
    text = benchmark.pedantic(
        lambda: table.render() + "\n\n" + PAPER_REFERENCE, rounds=1, iterations=1
    )
    emit(results_dir, "table3_faces", text)
    # Near-ceiling regime: the best cells should be high.
    best = max(
        acc
        for result in table.results
        for group in result.mtl.values()
        for acc in group.values()
    )
    assert best > 0.7
