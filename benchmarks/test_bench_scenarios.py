"""The scenario matrix, measured — quick 32px through hires 224px.

Sweeps every scenario in the curated `repro.scenarios` registry through
a real deployment and records per-scenario engine accounting to
``BENCH_scenario_matrix.json``.  This is the benchmark the ROADMAP's
SpMM-blocking item asked for: at 32px every non-VGG conv working set
fits the engine's 1 MiB L2 budget and `spmm_row_blocks` stays 0; the
224px hires tier is where the blocking pass (and the arena sizing)
finally operate in the regime they were built for.

Honesty rules (see docs/benchmarking.md):

* every scenario's `optimize=False` baseline is re-measured in the same
  run, interleaved round by round with the optimized pipeline (host
  speed drifts within sessions; block-wise A/B has measured inverted
  ratios here before);
* scenarios where the blocking pass does not fire record *why not*
  (`spmm_note`, with the configured L2 budget) instead of omitting the
  field;
* the artifact stamps `cpu_count` + numpy/scipy versions via
  ``host_record()`` — cross-session latency deltas are meaningless.
"""

from __future__ import annotations

import numpy as np

from repro.nn.engine.passes import L2_BUDGET_BYTES
from repro.scenarios import scenario_matrix
from repro.serve import deploy

from _bench_utils import combined_stamp, emit, provenance_stamp

_ROUNDS = 3  # interleaved A/B rounds per scenario (min-of-rounds kept)


def _assert_optimizer_preserves_semantics(scenario):
    """Optimized ≡ unoptimized on this scenario's workload, float32 wire.

    Deliberately *not* checked on the scenario's own wire: the engine's
    contract is 1e-6 equivalence, and quant8 can turn a sub-1e-6 edge
    difference landing on a quantization-bin boundary into a full quant
    step downstream — a flaky failure that would indict the optimizer
    for something the wire did.  The float32 wire carries the engine
    outputs exactly, so this checks the contract the passes actually
    make (the timed runs below still use the scenario's declared wire).
    """
    batch = scenario.make_batches(1)[0]
    optimized = deploy(scenario.deployment_spec(wire="float32"))
    baseline = deploy(scenario.deployment_spec(wire="float32", optimize=False))
    try:
        opt_out = optimized.infer(batch)
        base_out = baseline.infer(batch)
        for task in opt_out:
            np.testing.assert_allclose(opt_out[task], base_out[task], atol=1e-4)
    finally:
        optimized.close()
        baseline.close()


def _measure_scenario(scenario):
    """Interleaved optimized-vs-baseline measurement for one scenario."""
    traffic = scenario.make_batches()
    optimized = deploy(scenario.deployment_spec())
    baseline = deploy(scenario.deployment_spec(optimize=False))
    try:
        optimized.warmup([scenario.batch_size])
        baseline.warmup([scenario.batch_size])

        edge = base_edge = report = None

        def run_optimized():
            nonlocal edge, report
            optimized.pipeline.traces.clear()
            _, round_report = optimized.stream(traffic)
            round_edge = sum(t.edge_seconds for t in optimized.traces)
            if edge is None or round_edge < edge:
                # Keep the report from the min-edge round so every field
                # in the artifact row shares one provenance (the fastest
                # regime), not whichever round happened to run last.
                edge, report = round_edge, round_report

        def run_baseline():
            nonlocal base_edge
            baseline.pipeline.traces.clear()
            baseline.stream(traffic)
            round_base = sum(t.edge_seconds for t in baseline.traces)
            base_edge = round_base if base_edge is None else min(base_edge, round_base)

        for round_index in range(_ROUNDS):
            if round_index % 2 == 0:  # flip order to cancel short-scale drift
                run_baseline()
                run_optimized()
            else:
                run_optimized()
                run_baseline()

        payload = optimized.pipeline.mean_payload_bytes()
        row = {
            "tier": scenario.tier,
            "backbone": scenario.backbone,
            "input_size": scenario.input_size,
            "batch_size": scenario.batch_size,
            "batches": scenario.batches,
            "wire": scenario.wire,
            "split_index": scenario.split_index,
            "resolved_split": optimized.split_index,
            "edge_ms": edge * 1e3,
            "edge_ms_baseline_unoptimized": base_edge * 1e3,
            "edge_speedup_vs_unoptimized": base_edge / edge if edge else 0.0,
            "payload_bytes_per_batch": payload,
            "images_per_second": report.images_per_second,
            "arena_bytes": report.arena_bytes,
            "steady_state_allocs": report.steady_state_allocs,
            "fused_steps": report.fused_steps,
            "elided_copies": report.elided_copies,
            "aliased_views": report.aliased_views,
            "spmm_row_blocks": report.spmm_row_blocks,
            **provenance_stamp(optimized),
        }
        if report.spmm_row_blocks == 0:
            row["spmm_note"] = (
                "blocking pass did not fire: every conv working set fits the "
                f"{L2_BUDGET_BYTES}-byte L2 budget at {scenario.input_size}px"
            )
        return row
    finally:
        optimized.close()
        baseline.close()


def test_scenario_matrix(benchmark, results_dir):
    scenarios = scenario_matrix()

    def run():
        rows = {}
        for s in scenarios:
            _assert_optimizer_preserves_semantics(s)
            rows[s.name] = _measure_scenario(s)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # -- the engine contract, matrix-wide ------------------------------
    for name, row in rows.items():
        assert row["steady_state_allocs"] == 0, name
        assert row["fused_steps"] > 0, name

    # -- coverage: at least one 224px scenario per backbone family -----
    hires = {n: r for n, r in rows.items() if r["input_size"] >= 224}
    hires_backbones = {r["backbone"] for r in hires.values()}
    for family_backbone in ("mobilenet_v3_tiny", "efficientnet_tiny", "vgg_tiny"):
        assert family_backbone in hires_backbones, (
            f"no 224px scenario for {family_backbone}"
        )

    # -- the ROADMAP claim: blocking earns its keep at 224px -----------
    # At quick scale the pass only ever fired on VGG; at 224px it must
    # fire on at least one non-VGG backbone too.
    non_vgg_blocked = [
        n for n, r in hires.items()
        if r["spmm_row_blocks"] > 0 and not r["backbone"].startswith("vgg")
    ]
    assert non_vgg_blocked, (
        "expected spmm_row_blocks > 0 on a non-VGG backbone at 224px; "
        f"got {[(n, r['spmm_row_blocks']) for n, r in hires.items()]}"
    )

    # -- render + artifact ---------------------------------------------
    lines = [
        f"{'scenario':<28}{'edge ms':>9}{'base ms':>9}{'x':>6}"
        f"{'arena KiB':>11}{'blocks':>8}{'KiB/batch':>11}"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:<28}{row['edge_ms']:>9.2f}"
            f"{row['edge_ms_baseline_unoptimized']:>9.2f}"
            f"{row['edge_speedup_vs_unoptimized']:>6.2f}"
            f"{row['arena_bytes'] / 1024:>11.0f}{row['spmm_row_blocks']:>8}"
            f"{row['payload_bytes_per_batch'] / 1024:>11.1f}"
        )
    lines.append(
        f"(baselines re-measured interleaved in this run; "
        f"L2 budget {L2_BUDGET_BYTES} B; min over {_ROUNDS} rounds)"
    )
    emit(
        results_dir,
        "scenario_matrix",
        "\n".join(lines),
        data={
            "l2_budget_bytes": L2_BUDGET_BYTES,
            "rounds": _ROUNDS,
            "scenarios": rows,
            # Matrix-wide fold of the per-row digests: any scenario's
            # program changing changes the artifact's headline digests.
            **combined_stamp(rows),
        },
    )
