"""Open-loop overload benchmark for the `repro.serve` robustness layer.

The closed-loop serve bench can never overload the server: each client
waits for its reply, so offered load self-throttles to capacity.  Real
traffic does not wait.  This benchmark drives one deployment *open-loop*
— Poisson arrivals on a seeded schedule, submitted regardless of how far
behind the server is — at offered loads from 0.25x to 4x a closed-loop
calibrated capacity, with admission control (bounded queue) and
per-request deadlines armed.

What the artifact shows per load point: offered rate, completed
throughput, p50/p95 latency, and the overload outcome split
(completed / shed / expired).  Below saturation everything completes;
past saturation the deployment sheds instead of collapsing, and the
sweep finishing at all is the no-deadlock evidence the CI lane gates on.

Discipline (PR-4 rules): the capacity baseline is calibrated on the same
deployment in the same run, before *and after* the sweep (drift is
stamped, not hidden); artifacts carry the host record, the arrival
process spec and the fault-plan digest (none here — fault runs belong to
the unit tests, which also assert numeric equivalence).  CI never gates
on absolute latency numbers.

Artifacts: ``serve_overload.txt`` and ``BENCH_serve_overload.json``.
"""

from __future__ import annotations

import os

from repro.serve import DeploymentSpec, render_overload_bench, run_overload_bench

from _bench_utils import emit, spec_stamp

_LOAD_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)
_REQUESTS_PER_POINT = 48
_MAX_BATCH_SIZE = 16
_MAX_QUEUE_DEPTH = 32
_DEADLINE_MS = 2000.0


def test_serve_overload(benchmark, results_dir):
    spec = DeploymentSpec(
        model="mobilenet_v3_tiny",
        tasks=(("scale", 8), ("shape", 4)),
        input_size=32,
        max_batch_size=_MAX_BATCH_SIZE,
        max_queue_delay_ms=2.0,
        max_queue_depth=_MAX_QUEUE_DEPTH,
        deadline_ms=_DEADLINE_MS,
        seed=41,
    )

    result = benchmark.pedantic(
        lambda: run_overload_bench(
            spec,
            load_factors=_LOAD_FACTORS,
            requests_per_point=_REQUESTS_PER_POINT,
            arrival="poisson",
            seed=41,
        ),
        rounds=1,
        iterations=1,
    )

    points = {row["load_factor"]: row for row in result["points"]}

    # Below saturation nothing may shed: offered load fits in capacity
    # and the queue bound is never the constraint.
    for factor, row in points.items():
        if factor <= 0.5:
            assert row["shed"] == 0, (
                f"shed {row['shed']} requests at {factor}x load (below "
                "saturation):\n" + render_overload_bench(result)
            )

    # Past saturation the pipeline must degrade, not deadlock: every
    # offered request is accounted for (completed, shed or expired) —
    # the sweep returning at all means no future hung.
    for factor, row in points.items():
        accounted = row["completed"] + row["shed"] + row["expired"] + row["failed"]
        assert accounted == row["requests"], (
            f"{row['requests'] - accounted} requests unaccounted at "
            f"{factor}x load:\n" + render_overload_bench(result)
        )
        assert row["failed"] == 0, (
            f"{row['failed']} requests failed outright at {factor}x load:\n"
            + render_overload_bench(result)
        )

    # Conservation across the whole sweep (same invariant the property
    # tests assert): everything submitted is shed or accepted, and
    # everything accepted resolved one way or another.
    totals = result["batcher_conservation"]
    assert totals["submitted"] == totals["shed"] + totals["requests"]
    assert totals["requests"] == (
        totals["completed"] + totals["expired"] + totals["failed"]
        + totals["cancelled"]
    )

    text = (
        "mobilenet_v3_tiny @32px, gigabit ethernet, planned engine, "
        f"max_batch_size={_MAX_BATCH_SIZE}, "
        f"max_queue_depth={_MAX_QUEUE_DEPTH}, "
        f"deadline={_DEADLINE_MS:g} ms, "
        f"{os.cpu_count()} cpu core(s) on this host\n"
        + render_overload_bench(result)
    )
    emit(
        results_dir,
        "serve_overload",
        text,
        data={
            "host_cpu_cores": os.cpu_count(),
            "max_batch_size": _MAX_BATCH_SIZE,
            "max_queue_depth": _MAX_QUEUE_DEPTH,
            "deadline_ms": _DEADLINE_MS,
            "requests_per_point": _REQUESTS_PER_POINT,
            **result,
            **spec_stamp(spec),
        },
    )
