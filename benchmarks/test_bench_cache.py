"""Duplicate-fraction sweep for the content-addressed serve cache.

Real serving traffic repeats itself — stuck cameras, viral items,
polling dashboards — and the response/feature cache tiers
(:mod:`repro.serve.cache`) exist to exploit exactly that.  This
benchmark quantifies the claim honestly: per duplicate-rate point
(0% / 50% / 90% ``repeat`` streams plus one small-universe Zipf point
at ≥90% duplicates), a cache-off and a cache-on deployment of the same
spec are driven back-to-back on the *identical* seeded open-loop
request stream at several multiples of calibrated capacity — the
interleaved-baseline discipline applied across the cache axis.

What CI gates on is equivalence and accounting, never speed:

* zero-duplicate traffic must record **zero** response-tier activity
  (no hits, no single-flight joins) — caching nothing costs nothing;
* every cache-on result matches the cache-off result for the same
  request within 1e-6, and every repeated image inside the cache-on
  run returns bytes identical to its first occurrence;
* the extended admission ledger balances:
  ``submitted == shed + cache_hits + requests``.

The throughput ratios (cache-on vs cache-off per point, ≥2x expected at
the 90%-duplicate Zipf point on an unloaded host) are *recorded* in the
artifact for human reading, like every absolute number in this suite.

Artifacts: ``serve_cache.txt`` and ``BENCH_serve_cache.json``.
"""

from __future__ import annotations

import os

from repro.serve import DeploymentSpec, render_cache_bench, run_cache_bench

from _bench_utils import emit, spec_stamp

_DUPLICATE_RATES = (0.0, 0.5, 0.9)
_REQUESTS_PER_POINT = 64
_LOAD_FACTOR = 8.0
_INPUT_SIZE = 96  # heavy enough per request that hits visibly pay off
_MAX_BATCH_SIZE = 8
_MAX_QUEUE_DEPTH = 512


def test_serve_cache(benchmark, results_dir):
    spec = DeploymentSpec(
        model="mobilenet_v3_tiny",
        tasks=(("scale", 8), ("shape", 4)),
        input_size=_INPUT_SIZE,
        max_batch_size=_MAX_BATCH_SIZE,
        max_queue_delay_ms=1.0,
        max_queue_depth=_MAX_QUEUE_DEPTH,
        cache="both",
        seed=43,
    )

    result = benchmark.pedantic(
        lambda: run_cache_bench(
            spec,
            duplicate_rates=_DUPLICATE_RATES,
            requests_per_point=_REQUESTS_PER_POINT,
            load_factor=_LOAD_FACTOR,
            seed=43,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [*result["points"], result["zipf_point"]]

    # Gate 1: caching nothing costs nothing.  The 0%-duplicate point may
    # record no response-tier activity at all — no stored hit could
    # exist and no in-flight computation may be joined.
    zero = result["points"][0]
    assert zero["offered_duplicate_rate"] == 0.0, render_cache_bench(result)
    assert zero["cache"].get("response_hits", 0) == 0, (
        "response hits on unique-only traffic:\n" + render_cache_bench(result)
    )
    assert zero["cache"].get("response_coalesced", 0) == 0, (
        "single-flight joins on unique-only traffic:\n"
        + render_cache_bench(result)
    )

    # Gate 2: cache-on is numerically the cache-off path.  Every request
    # completed by both runs agrees within 1e-6, and every duplicate in
    # the cache-on run is bit-identical to its first occurrence.
    for row in rows:
        assert row["compared"] > 0, (
            f"nothing comparable at {row['label']!r}:\n"
            + render_cache_bench(result)
        )
        assert row["max_abs_diff"] <= 1e-6, (
            f"cache-on diverged from cache-off at {row['label']!r} "
            f"(max |diff| {row['max_abs_diff']:.3e}):\n"
            + render_cache_bench(result)
        )
        assert row["duplicates_bit_identical"], (
            f"a cached repeat was not byte-identical at {row['label']!r}:\n"
            + render_cache_bench(result)
        )

    # Gate 3: the high-duplicate points actually exercised the cache —
    # hits or single-flight joins, depending on arrival spacing.
    for row in rows:
        if row["offered_duplicate_rate"] >= 0.5:
            served_cheap = row["cache"].get("response_hits", 0) + row[
                "cache"
            ].get("response_coalesced", 0)
            assert served_cheap > 0, (
                f"no cache activity at {row['label']!r} despite "
                f"{row['offered_duplicate_rate']:.0%} duplicates:\n"
                + render_cache_bench(result)
            )

    # Gate 4: the extended conservation ledger balances on both sides.
    for side, ledger in result["batcher_conservation"].items():
        assert ledger["submitted"] == (
            ledger["shed"] + ledger["cache_hits"] + ledger["requests"]
        ), (side, ledger)
        assert ledger["requests"] == (
            ledger["completed"] + ledger["expired"] + ledger["failed"]
            + ledger["cancelled"]
        ), (side, ledger)
    assert result["batcher_conservation"]["off"]["cache_hits"] == 0

    text = (
        f"mobilenet_v3_tiny @{_INPUT_SIZE}px, planned engine, "
        f"max_batch_size={_MAX_BATCH_SIZE}, "
        f"max_queue_depth={_MAX_QUEUE_DEPTH}, "
        f"{os.cpu_count()} cpu core(s) on this host\n"
        + render_cache_bench(result)
    )
    emit(
        results_dir,
        "serve_cache",
        text,
        data={
            "host_cpu_cores": os.cpu_count(),
            "input_size": _INPUT_SIZE,
            "max_batch_size": _MAX_BATCH_SIZE,
            "max_queue_depth": _MAX_QUEUE_DEPTH,
            "requests_per_point": _REQUESTS_PER_POINT,
            "duplicate_rates": list(_DUPLICATE_RATES),
            **result,
            **spec_stamp(spec),
        },
    )
