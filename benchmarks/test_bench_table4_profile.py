"""Table 4 — analytic size of the backbone ``M_b`` and its output ``Z_b``.

Paper reference row (MobileNetV3 / EfficientNet):

    Mb #params (M):        0.9    / 4
    Mb #params size (MB):  3.58   / 15.45
    Fwd/bwd pass (MB):     724.08 / 3452.09
    Mb estimated (MB):     727.66 / 3467.54
    Zb #elements (K):      55.3   / 406.06
    Zb size (MB):          0.21   / 1.56

The parameter columns match at any resolution (they are input-size
independent); the activation columns match when profiling at ~1024x1024
(the paper profiled at high resolution for the FACES deployment), so the
benchmark reports both 224 and 1024.  VGG16 is profiled too even though
the paper omits it ("not optimal for embedded systems") — the numbers
show why.
"""

from __future__ import annotations

from repro.deployment import render_table4, table4_rows

from _bench_utils import emit

PAPER_REFERENCE = {
    "mobilenet_v3_small": {
        "params_millions": 0.9, "params_mb": 3.58, "forward_backward_mb": 724.08,
        "estimated_mb": 727.66, "zb_kilo_elements": 55.3, "zb_mb": 0.21,
    },
    "efficientnet_b0": {
        "params_millions": 4.0, "params_mb": 15.45, "forward_backward_mb": 3452.09,
        "estimated_mb": 3467.54, "zb_kilo_elements": 406.06, "zb_mb": 1.56,
    },
}

BACKBONES = ("mobilenet_v3_small", "efficientnet_b0", "vgg16")


def test_table4_standard_resolution(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: table4_rows(BACKBONES, input_size=224), rounds=3, iterations=1
    )
    text = "input 224x224, batch 1\n" + render_table4(rows, PAPER_REFERENCE)
    emit(results_dir, "table4_profile_224", text)
    # Parameter columns are resolution-independent and must match the paper.
    assert abs(rows["mobilenet_v3_small"]["params_millions"] - 0.9) < 0.1
    assert abs(rows["efficientnet_b0"]["params_millions"] - 4.0) < 0.3
    assert abs(rows["efficientnet_b0"]["params_mb"] - 15.45) < 1.0


def test_table4_paper_resolution(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: table4_rows(BACKBONES, input_size=1024), rounds=3, iterations=1
    )
    text = "input 1024x1024, batch 1 (paper's activation magnitudes)\n" + render_table4(
        rows, PAPER_REFERENCE
    )
    emit(results_dir, "table4_profile_1024", text)
    # Activation columns land on the paper's magnitudes at this resolution.
    assert abs(rows["mobilenet_v3_small"]["forward_backward_mb"] - 724.08) / 724.08 < 0.1
    assert abs(rows["efficientnet_b0"]["forward_backward_mb"] - 3452.09) / 3452.09 < 0.1
    # EfficientNet's Z_b is several times MobileNetV3's (paper: 0.21 vs 1.56 MB).
    assert (
        rows["efficientnet_b0"]["zb_mb"] > 1.5 * rows["mobilenet_v3_small"]["zb_mb"]
    )
