"""Split-point analysis tests: activation profiles, architecture-based
candidates and saliency-guided recommendation."""

import numpy as np
import pytest

from repro import models
from repro.core import (
    architecture_split_candidates,
    recommend_split,
    saliency_profile,
    stage_activation_profile,
)


@pytest.fixture(scope="module")
def spec():
    return models.get_spec("mobilenet_v3_tiny")


class TestActivationProfile:
    def test_one_point_per_stage(self, spec):
        profile = stage_activation_profile(spec)
        assert len(profile) == len(spec.layers)

    def test_transmit_elements_match_feature_shape(self, spec):
        profile = stage_activation_profile(spec, 32)
        c, h, w = models.feature_shape(spec, 32)
        assert profile[-1].transmit_elements == c * h * w

    def test_compression_relative_to_input(self, spec):
        profile = stage_activation_profile(spec, 32)
        input_elements = 3 * 32 * 32
        for point in profile:
            assert point.compression == pytest.approx(
                input_elements / point.transmit_elements
            )

    def test_stage_names_sequential(self, spec):
        profile = stage_activation_profile(spec)
        assert [p.stage_name for p in profile] == [
            f"layer{i}" for i in range(len(profile))
        ]


class TestArchitectureCandidates:
    def test_candidates_strictly_shrinking(self, spec):
        candidates = architecture_split_candidates(spec, 32)
        sizes = [c.transmit_elements for c in candidates]
        assert sizes == sorted(sizes, reverse=True)
        assert len(set(sizes)) == len(sizes)

    def test_candidates_subset_of_profile(self, spec):
        profile = {p.stage_index for p in stage_activation_profile(spec, 32)}
        candidates = {c.stage_index for c in architecture_split_candidates(spec, 32)}
        assert candidates <= profile

    def test_min_compression_filter(self, spec):
        all_candidates = architecture_split_candidates(spec, 32, min_compression=0.0)
        strict = architecture_split_candidates(spec, 32, min_compression=4.0)
        assert len(strict) <= len(all_candidates)
        assert all(c.compression >= 4.0 for c in strict)

    def test_vgg_candidates_are_pool_stages(self):
        vgg = models.get_spec("vgg_tiny")
        candidates = architecture_split_candidates(vgg, 32)
        names = {spec_layer.__class__.__name__ for spec_layer in vgg.layers}
        assert "MaxPool" in names
        # every candidate after the first must compress more than the last
        assert all(c.compression >= 1.0 for c in candidates)


class TestSaliency:
    @pytest.fixture(scope="class")
    def net_and_batch(self, tiny_trained_net, shapes3d_small):
        images = shapes3d_small.images[:16]
        targets = {k: v[:16] for k, v in shapes3d_small.labels.items()}
        return tiny_trained_net, images, targets

    def test_one_score_per_stage(self, net_and_batch):
        net, images, targets = net_and_batch
        scores = saliency_profile(net, images, targets)
        assert len(scores) == len(list(net.backbone.stages))

    def test_scores_non_negative_finite(self, net_and_batch):
        net, images, targets = net_and_batch
        scores = saliency_profile(net, images, targets)
        assert all(s >= 0 and np.isfinite(s) for s in scores)

    def test_some_stage_carries_signal(self, net_and_batch):
        net, images, targets = net_and_batch
        scores = saliency_profile(net, images, targets)
        assert max(scores) > 0

    def test_gradients_cleared_after(self, net_and_batch):
        net, images, targets = net_and_batch
        saliency_profile(net, images, targets)
        assert all(p.grad is None for p in net.parameters())


class TestRecommendation:
    def test_recommendation_is_valid_stage(self, tiny_trained_net, shapes3d_small):
        images = shapes3d_small.images[:16]
        targets = {k: v[:16] for k, v in shapes3d_small.labels.items()}
        point = recommend_split(tiny_trained_net, images, targets, input_size=32)
        n_stages = len(list(tiny_trained_net.backbone.stages))
        assert 0 <= point.stage_index < n_stages
        assert point.saliency is not None

    def test_pure_compression_prefers_smallest(self, tiny_trained_net, shapes3d_small):
        images = shapes3d_small.images[:16]
        targets = {k: v[:16] for k, v in shapes3d_small.labels.items()}
        point = recommend_split(
            tiny_trained_net, images, targets, input_size=32, saliency_weight=0.0
        )
        profile = stage_activation_profile(tiny_trained_net.backbone.spec, 32)
        best = max(profile, key=lambda p: p.compression)
        assert point.stage_index == best.stage_index
