"""Tests for weight initialisers and `.npz` checkpointing."""

import numpy as np
import pytest

from repro import nn
from repro.nn import init
from repro.nn.serialization import load_module, load_state, save_module, save_state


class TestFans:
    def test_linear_fan(self):
        assert init.calculate_fan((8, 4)) == (4, 8)

    def test_conv_fan_includes_receptive_field(self):
        assert init.calculate_fan((16, 8, 3, 3)) == (8 * 9, 16 * 9)

    def test_fan_rejects_1d(self):
        with pytest.raises(ValueError):
            init.calculate_fan((5,))


class TestInitialisers:
    def test_kaiming_uniform_bound(self):
        w = init.kaiming_uniform((64, 64), rng=init.default_rng(0))
        bound = np.sqrt(2.0 / (1 + 5)) * np.sqrt(3.0 / 64)
        assert np.abs(w).max() <= bound + 1e-6

    def test_kaiming_normal_std(self):
        w = init.kaiming_normal((2000, 100), rng=init.default_rng(0))
        expected = np.sqrt(2.0 / 100)
        assert w.std() == pytest.approx(expected, rel=0.05)

    def test_xavier_uniform_bound(self):
        w = init.xavier_uniform((50, 30), rng=init.default_rng(0))
        bound = np.sqrt(6.0 / 80)
        assert np.abs(w).max() <= bound + 1e-6

    def test_xavier_normal_std(self):
        w = init.xavier_normal((1000, 1000), rng=init.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 2000), rel=0.05)

    def test_normal_mean_std(self):
        w = init.normal((10000,), mean=1.0, std=2.0, rng=init.default_rng(0))
        assert w.mean() == pytest.approx(1.0, abs=0.1)
        assert w.std() == pytest.approx(2.0, rel=0.05)

    def test_zeros_ones(self):
        assert (init.zeros((3, 3)) == 0).all()
        assert (init.ones((3,)) == 1).all()

    def test_all_float32(self):
        for fn in (init.kaiming_uniform, init.kaiming_normal, init.xavier_uniform,
                   init.xavier_normal):
            assert fn((4, 4), rng=init.default_rng(0)).dtype == np.float32

    def test_default_rng_reproducible(self):
        a = init.default_rng(5).random(3)
        b = init.default_rng(5).random(3)
        np.testing.assert_array_equal(a, b)

    def test_unknown_gain_raises(self):
        with pytest.raises(ValueError):
            init.kaiming_uniform((4, 4), nonlinearity="bogus")


class TestSerialization:
    def test_state_roundtrip(self, tmp_path):
        state = {"a": np.arange(5.0), "b.c": np.ones((2, 2))}
        path = tmp_path / "ckpt.npz"
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b.c"}
        np.testing.assert_array_equal(loaded["a"], state["a"])

    def test_module_roundtrip(self, tmp_path):
        net1 = nn.Sequential(nn.Linear(3, 4), nn.BatchNorm1d(4))
        net2 = nn.Sequential(nn.Linear(3, 4), nn.BatchNorm1d(4))
        path = tmp_path / "net.npz"
        save_module(net1, path)
        load_module(net2, path)
        for (n1, p1), (_, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_creates_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "ckpt.npz"
        save_state({"x": np.zeros(1)}, path)
        assert path.exists()

    def test_load_into_wrong_shape_raises(self, tmp_path):
        net1 = nn.Linear(3, 4)
        net2 = nn.Linear(3, 5)
        path = tmp_path / "lin.npz"
        save_module(net1, path)
        with pytest.raises(ValueError):
            load_module(net2, path)
