"""Tests for the rasterisation helpers behind the dataset generators."""

import numpy as np
import pytest

from repro.data import render


class TestCanvas:
    def test_blank_canvas_color(self):
        canvas = render.blank_canvas(4, 5, (0.2, 0.4, 0.6))
        assert canvas.shape == (4, 5, 3)
        np.testing.assert_allclose(canvas[0, 0], [0.2, 0.4, 0.6])

    def test_coordinate_grid(self):
        yy, xx = render.coordinate_grid(3, 4)
        assert yy.shape == (3, 4)
        assert yy[2, 0] == 2 and xx[0, 3] == 3


class TestHsv:
    def test_primary_hues(self):
        np.testing.assert_allclose(render.hsv_to_rgb(0.0, 1.0, 1.0), [1, 0, 0])
        np.testing.assert_allclose(render.hsv_to_rgb(1 / 3, 1.0, 1.0), [0, 1, 0])
        np.testing.assert_allclose(render.hsv_to_rgb(2 / 3, 1.0, 1.0), [0, 0, 1])

    def test_zero_saturation_is_grey(self):
        rgb = render.hsv_to_rgb(0.37, 0.0, 0.5)
        np.testing.assert_allclose(rgb, [0.5, 0.5, 0.5])

    def test_hue_wraps(self):
        np.testing.assert_allclose(
            render.hsv_to_rgb(1.25, 0.8, 0.9), render.hsv_to_rgb(0.25, 0.8, 0.9)
        )

    def test_value_bounds(self):
        for h in np.linspace(0, 1, 13):
            rgb = render.hsv_to_rgb(float(h), 0.9, 0.8)
            assert rgb.min() >= 0 and rgb.max() <= 0.8 + 1e-6


class TestShapes:
    def test_circle_center_filled_corner_not(self):
        canvas = render.blank_canvas(21, 21)
        render.fill_circle(canvas, 10, 10, 5, (1, 0, 0))
        assert canvas[10, 10, 0] == 1.0
        assert canvas[0, 0, 0] == 0.0

    def test_circle_area_approximates_pi_r2(self):
        canvas = render.blank_canvas(101, 101)
        render.fill_circle(canvas, 50, 50, 20, (1, 1, 1))
        area = (canvas[..., 0] > 0).sum()
        assert area == pytest.approx(np.pi * 400, rel=0.05)

    def test_rect_rotation_changes_mask(self):
        flat = render.blank_canvas(21, 21)
        turned = render.blank_canvas(21, 21)
        render.fill_rect(flat, 10, 10, 3, 8, (1, 1, 1))
        render.fill_rect(turned, 10, 10, 3, 8, (1, 1, 1), angle=0.7)
        assert not np.array_equal(flat, turned)

    def test_ellipse_axes(self):
        canvas = render.blank_canvas(31, 31)
        render.fill_ellipse(canvas, 15, 15, 4, 10, (1, 1, 1))
        assert canvas[15, 24, 0] == 1.0  # inside along x
        assert canvas[24, 15, 0] == 0.0  # outside along y

    def test_polygon_triangle(self):
        canvas = render.blank_canvas(21, 21)
        vertices = np.array([[18.0, 3.0], [18.0, 17.0], [4.0, 10.0]])
        render.fill_polygon(canvas, vertices, (1, 1, 1))
        assert canvas[15, 10, 0] == 1.0
        assert canvas[2, 2, 0] == 0.0

    def test_alpha_blend(self):
        canvas = render.blank_canvas(5, 5, (1, 1, 1))
        render.fill_rect(canvas, 2, 2, 5, 5, (0, 0, 0), alpha=0.5)
        np.testing.assert_allclose(canvas[2, 2], [0.5, 0.5, 0.5])

    def test_hline_band_clamped(self):
        canvas = render.blank_canvas(10, 10)
        render.draw_hline_band(canvas, -5, 100, (1, 1, 1))
        assert (canvas == 1).all()

    def test_hline_band_empty_range(self):
        canvas = render.blank_canvas(10, 10)
        render.draw_hline_band(canvas, 7, 3, (1, 1, 1))
        assert (canvas == 0).all()

    def test_vertical_gradient_darkens_bottom(self):
        canvas = render.blank_canvas(10, 10, (1, 1, 1))
        render.vertical_gradient(canvas, 1.0, 0.5)
        assert canvas[0, 0, 0] == pytest.approx(1.0)
        assert canvas[9, 0, 0] == pytest.approx(0.5, abs=1e-6)
