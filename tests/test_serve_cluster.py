"""Replica cluster: supervision, crash injection, failover, drain.

The chaos contract under test (the ISSUE's acceptance gate): SIGKILL a
replica mid-burst and the supervisor must detect it within one
heartbeat, restart it under backoff, the router must fail the in-flight
micro-batch over to a healthy replica, the conservation ledger
``submitted == shed + completed + expired + failed + cancelled`` must
keep balancing, and retried results must equal fault-free results to
1e-6.

Lane hygiene (the CI-lane satellite): ``pytest-timeout`` is not
installed, so every test runs under a ``signal.alarm`` hard timeout; an
autouse fixture asserts ``multiprocessing.active_children()`` is empty
after every test — no orphaned replica processes, ever.
"""

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    ClusterDeployment,
    ClusterSpec,
    Deployment,
    DeploymentSpec,
    NoHealthyReplicaError,
    ReplicaManager,
    ShutdownError,
    SpecError,
    WorkerFaultPlan,
    deploy,
    deploy_cluster,
)

# ---------------------------------------------------------------------------
# Lane hygiene: hard timeout + orphan-process leak check
# ---------------------------------------------------------------------------
_HARD_TIMEOUT_S = 180


@pytest.fixture(autouse=True)
def hard_timeout():
    """Per-test wall-clock ceiling via SIGALRM (pytest-timeout is not
    available in this environment)."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):  # pragma: no cover - only fires on hang
        raise TimeoutError(
            f"cluster test exceeded the {_HARD_TIMEOUT_S}s hard timeout"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(_HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def no_orphan_workers():
    """Every test must reap every replica process it spawned."""
    yield
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    leftovers = multiprocessing.active_children()
    assert leftovers == [], f"orphaned worker processes: {leftovers}"


# ---------------------------------------------------------------------------
# Shared shapes
# ---------------------------------------------------------------------------
TASKS = (("scale", 8), ("shape", 4))


def deployment_spec(**overrides):
    base = dict(
        model="mobilenet_v3_tiny",
        tasks=TASKS,
        input_size=32,
        max_batch_size=4,
        max_queue_delay_ms=1.0,
        seed=0,
    )
    base.update(overrides)
    return DeploymentSpec(**base)


def cluster_spec(replicas=2, **overrides):
    dep = overrides.pop("deployment", None) or deployment_spec()
    base = dict(
        deployment=dep,
        replicas=replicas,
        heartbeat_ms=25.0,
        backoff_base_ms=5.0,
        backoff_cap_ms=50.0,
        max_restarts=5,
    )
    base.update(overrides)
    return ClusterSpec(**base)


def images_pool(count=8):
    rng = np.random.default_rng(0)
    return rng.standard_normal((count, 3, 32, 32)).astype(np.float32)


@pytest.fixture(scope="module")
def reference_rows():
    """Fault-free single-process logits for the shared image pool — the
    1e-6 equivalence baseline every chaos test compares against."""
    pool = images_pool()
    with deploy(deployment_spec()) as dep:
        return pool, dep.infer(pool)


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def assert_conservation(stats):
    assert stats.submitted == stats.shed + stats.requests
    assert stats.requests == (
        stats.completed + stats.expired + stats.failed + stats.cancelled
    )


# ---------------------------------------------------------------------------
# ClusterSpec
# ---------------------------------------------------------------------------
class TestClusterSpec:
    def test_round_trips_through_json(self):
        spec = cluster_spec(
            replicas=3,
            worker_faults=WorkerFaultPlan(kill_indices=(2, 9), seed=5),
        )
        clone = ClusterSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.worker_faults.digest() == spec.worker_faults.digest()

    def test_accepts_dict_deployment_and_string_faults(self):
        spec = ClusterSpec(
            deployment=deployment_spec().to_dict(),
            replicas=2,
            worker_faults="at=1+4,max=2,seed=9",
        )
        assert isinstance(spec.deployment, DeploymentSpec)
        assert spec.worker_faults == WorkerFaultPlan(
            kill_indices=(1, 4), max_kills=2, seed=9
        )

    def test_replicas_default_from_deployment_spec(self):
        spec = ClusterSpec(deployment=deployment_spec(replicas=3))
        assert spec.replicas == 3

    def test_rejects_degenerate_knobs(self):
        with pytest.raises(SpecError, match="replicas"):
            ClusterSpec(deployment=deployment_spec(), replicas=0)
        with pytest.raises(SpecError, match="heartbeat_ms"):
            ClusterSpec(deployment=deployment_spec(), heartbeat_ms=0)
        with pytest.raises(SpecError, match="max_restarts"):
            ClusterSpec(deployment=deployment_spec(), max_restarts=-1)
        with pytest.raises(SpecError, match="worker_faults"):
            ClusterSpec(deployment=deployment_spec(), worker_faults=3.14)
        with pytest.raises(SpecError, match="unknown ClusterSpec keys"):
            ClusterSpec.from_dict({"deployment": deployment_spec().to_dict(),
                                   "heartbeats": 1})

    def test_replicas_above_one_require_registry_model(self):
        # Worker processes rebuild the net from the serialised spec, so a
        # live model object cannot be a multi-replica deployment.
        with pytest.raises(SpecError, match="registry"):
            DeploymentSpec(model=object(), tasks=TASKS, replicas=2)

    def test_describe_names_the_chaos(self):
        spec = cluster_spec(worker_faults="at=8,seed=3")
        text = spec.describe()
        assert "2 replica(s)" in text
        assert "worker_faults=at=8,seed=3" in text


# ---------------------------------------------------------------------------
# Plain serving: cluster ≡ single process
# ---------------------------------------------------------------------------
class TestClusterServing:
    def test_deploy_dispatches_on_replicas(self):
        with deploy(deployment_spec(replicas=2)) as dep:
            assert isinstance(dep, ClusterDeployment)
            assert dep.replicas == 2
        with deploy(deployment_spec()) as dep:
            assert isinstance(dep, Deployment)
        assert ReplicaManager is ClusterDeployment

    def test_results_match_single_process(self, reference_rows):
        pool, expected = reference_rows
        with deploy_cluster(cluster_spec()) as cluster:
            sync = cluster.infer(pool)
            futures = [cluster.submit(image) for image in pool]
            rows = [f.result(timeout=60) for f in futures]
        for name in ("scale", "shape"):
            np.testing.assert_allclose(
                sync[name], expected[name], atol=1e-6
            )
            got = np.stack([row[name] for row in rows])
            np.testing.assert_allclose(got, expected[name], atol=1e-6)

    def test_report_aggregates_per_replica(self, reference_rows):
        pool, _ = reference_rows
        with deploy_cluster(cluster_spec()) as cluster:
            cluster.warmup((1, 4))
            futures = [cluster.submit(image) for image in pool]
            for f in futures:
                f.result(timeout=60)
            report = cluster.report()
        assert report.state == "HEALTHY"
        assert len(report.per_replica) == 2
        assert all(entry["alive"] for entry in report.per_replica)
        assert {e["pid"] for e in report.per_replica if e["alive"]} != {
            os.getpid()
        }
        dispatched = sum(e["dispatches"] for e in report.per_replica)
        assert dispatched >= 1
        served = [e for e in report.per_replica if e["dispatches"]]
        assert all(e["p50_ms"] <= e["p95_ms"] for e in served)
        assert report.aggregate.replicas == 2
        assert report.aggregate.images >= len(pool)
        assert report.worker_fault_digest is None
        assert report.batching["submitted"] == len(pool)
        assert report.batching["completed"] == len(pool)
        payload = report.to_dict()
        assert payload["batching"]["completed"] == len(pool)

    def test_task_names_and_describe(self):
        with deploy_cluster(cluster_spec()) as cluster:
            assert cluster.task_names == ("scale", "shape")
            assert "2 replica(s)" in cluster.describe()
            assert cluster.queue_depth == 0


# ---------------------------------------------------------------------------
# Chaos: crash injection, detection, failover, recovery
# ---------------------------------------------------------------------------
class TestChaos:
    def test_injected_kill_fails_over_and_recovers(self, reference_rows):
        """The acceptance chaos run: a scheduled SIGKILL lands mid-request,
        the batch fails over, the replica restarts, results stay exact."""
        pool, expected = reference_rows
        spec = cluster_spec(
            worker_faults=WorkerFaultPlan(kill_indices=(1,), seed=7),
        )
        with deploy_cluster(spec) as cluster:
            futures = [cluster.submit(image) for image in pool]
            futures += [cluster.submit(image) for image in pool]
            rows = [f.result(timeout=60) for f in futures]

            assert cluster.stats.kills_injected == 1
            assert cluster.stats.failovers >= 1
            assert cluster.stats.failover_failures == 0

            # Supervisor saw the crash and brought the replica back.
            assert wait_until(
                lambda: cluster.supervisor.stats.restarts >= 1
            )
            assert wait_until(lambda: cluster.alive_replicas() == 2)
            sup = cluster.supervisor.stats
            assert sup.crashes_detected >= 1
            assert (
                sup.crashes_by_notification + sup.crashes_by_heartbeat
                == sup.crashes_detected
            )
            assert sup.restarts >= 1

            # The state machine proves DEGRADED happened and healed.
            assert wait_until(lambda: cluster.state == "HEALTHY")
            history = cluster.state_machine.history()
            assert any(step["to"] == "DEGRADED" for step in history)
            assert history[-1]["to"] == "HEALTHY"
            assert cluster.state_machine.degraded_events >= 1
            assert cluster.state_machine.recoveries >= 1

            # Conservation across the crash.
            stats = cluster.batching_stats
            assert stats.submitted == 2 * len(pool)
            assert stats.completed == 2 * len(pool)
            assert_conservation(stats)

            # Failed-over results ≡ fault-free results.
            for i, row in enumerate(rows):
                for name in ("scale", "shape"):
                    np.testing.assert_allclose(
                        row[name], expected[name][i % len(pool)], atol=1e-6
                    )

            report = cluster.report()
            assert report.kills_injected == 1
            assert report.worker_fault_digest == spec.worker_faults.digest()
            assert report.aggregate.worker_crashes >= 1
            assert report.aggregate.worker_restarts >= 1
            assert report.aggregate.failovers >= 1

    def test_idle_kill_detected_within_heartbeat(self):
        """Nobody is talking to the victim — only the heartbeat sweep can
        notice, and must, within roughly one heartbeat interval."""
        with deploy_cluster(cluster_spec()) as cluster:
            victim = cluster._handles[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            detected_at = time.monotonic()
            assert wait_until(
                lambda: cluster.supervisor.stats.crashes_by_heartbeat >= 1,
                timeout=5.0,
            )
            # Generous bound for a loaded 1-core CI host: within a few
            # heartbeat intervals, not "eventually".
            assert time.monotonic() - detected_at < 2.0
            assert wait_until(
                lambda: cluster.supervisor.stats.restarts >= 1
            )
            assert wait_until(lambda: cluster.alive_replicas() == 2)
            # The replacement serves.
            result = cluster.infer(images_pool(2))
            assert result["scale"].shape == (2, 8)

    def test_restart_backoff_is_charged(self):
        """Back-to-back kills of the same slot accrue exponential backoff."""
        spec = cluster_spec(backoff_base_ms=20.0, backoff_cap_ms=200.0)
        with deploy_cluster(spec) as cluster:
            for round_ in range(1, 4):
                victim = cluster._handles[0]
                os.kill(victim.process.pid, signal.SIGKILL)
                # ``is_alive()`` lags a SIGKILL, so wait on the restart
                # counter (not the census) before killing again.
                assert wait_until(
                    lambda: cluster.supervisor.stats.restarts >= round_,
                    timeout=10.0,
                )
            sup = cluster.supervisor.stats
            assert sup.restarts_per_slot.get(0, 0) >= 3
            # 2nd restart waits 20 ms, 3rd 40 ms (1st is free).
            assert sup.backoff_seconds >= 0.019

    def test_restart_budget_exhaustion_abandons_slot(self):
        spec = cluster_spec(max_restarts=0)
        with deploy_cluster(spec) as cluster:
            victim = cluster._handles[1]
            os.kill(victim.process.pid, signal.SIGKILL)
            assert wait_until(
                lambda: cluster.supervisor.abandoned_slots == (1,),
                timeout=5.0,
            )
            assert cluster.supervisor.stats.slots_abandoned == 1
            assert cluster.supervisor.stats.restarts == 0
            assert wait_until(lambda: cluster.state == "DEGRADED")
            # n-1 serving continues on the surviving replica.
            result = cluster.infer(images_pool(2))
            assert result["shape"].shape == (2, 4)
            report = cluster.report()
            entry = report.per_replica[1]
            assert entry["alive"] is False

    def test_all_replicas_dead_fails_requests_not_ledger(self):
        spec = cluster_spec(
            replicas=1, max_restarts=0, lease_timeout_s=0.5
        )
        with deploy_cluster(spec) as cluster:
            os.kill(cluster._handles[0].process.pid, signal.SIGKILL)
            assert wait_until(
                lambda: cluster.state == "DEAD", timeout=5.0
            )
            future = cluster.submit(images_pool(1)[0])
            with pytest.raises(NoHealthyReplicaError):
                future.result(timeout=30)
            stats = cluster.batching_stats
            assert stats.failed >= 1
            assert_conservation(stats)


# ---------------------------------------------------------------------------
# Conservation ledger under hypothesis-driven chaos bursts
# ---------------------------------------------------------------------------
class TestConservationUnderChaos:
    @settings(max_examples=3, deadline=None)
    @given(
        bursts=st.lists(
            st.tuples(
                st.integers(min_value=2, max_value=6),  # burst size
                st.booleans(),                          # kill mid-burst?
            ),
            min_size=1,
            max_size=3,
        )
    )
    def test_ledger_balances_across_kills(self, reference_rows, bursts):
        """Arbitrary burst schedules with SIGKILLs landing mid-burst:
        every future resolves, the ledger balances, completed results
        stay ≡ fault-free to 1e-6."""
        pool, expected = reference_rows
        submitted = 0
        with deploy_cluster(cluster_spec()) as cluster:
            for size, kill in bursts:
                futures = [
                    (i % len(pool), cluster.submit(pool[i % len(pool)]))
                    for i in range(submitted, submitted + size)
                ]
                submitted += size
                if kill:
                    with cluster._pool:
                        live = [
                            h for h in cluster._handles
                            if h is not None and h.is_alive()
                        ]
                    if live:
                        os.kill(live[0].process.pid, signal.SIGKILL)
                for index, future in futures:
                    row = future.result(timeout=60)
                    for name in ("scale", "shape"):
                        np.testing.assert_allclose(
                            row[name], expected[name][index], atol=1e-6
                        )
            assert wait_until(lambda: cluster.alive_replicas() == 2)
            stats = cluster.batching_stats
            assert stats.submitted == submitted
            assert stats.completed == submitted
            assert_conservation(stats)
        # ... and the ledger still balances after the drain.
        assert_conservation(cluster.batching_stats)


# ---------------------------------------------------------------------------
# Graceful drain + close semantics
# ---------------------------------------------------------------------------
class TestDrainAndClose:
    def test_drain_strands_no_future(self):
        """close() during in-flight traffic: every future resolves — with
        a result or the named ShutdownError — and the ledger balances."""
        pool = images_pool()
        cluster = deploy_cluster(cluster_spec())
        try:
            futures = [
                cluster.submit(pool[i % len(pool)]) for i in range(32)
            ]
        finally:
            cluster.close()
        outcomes = {"completed": 0, "shutdown": 0}
        for future in futures:
            assert future.done(), "close() stranded a future"
            try:
                row = future.result(timeout=0)
                assert row["scale"].shape == (8,)
                outcomes["completed"] += 1
            except ShutdownError:
                outcomes["shutdown"] += 1
        stats = cluster.batching_stats
        assert outcomes["completed"] == stats.completed
        assert outcomes["completed"] + outcomes["shutdown"] == 32
        assert_conservation(stats)
        assert cluster.closed

    def test_close_is_idempotent_and_concurrent_safe(self):
        cluster = deploy_cluster(cluster_spec())
        errors = []

        def closer():
            try:
                cluster.close()
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert cluster.closed
        cluster.close()  # idempotent
        with pytest.raises(RuntimeError):
            cluster.infer(images_pool(1))
        with pytest.raises(RuntimeError, match="closed"):
            cluster.submit(images_pool(1)[0])

    def test_context_manager_reclaims_threads(self):
        before = {
            t.name for t in threading.enumerate() if t.is_alive()
        }
        with deploy_cluster(cluster_spec()) as cluster:
            cluster.infer(images_pool(2))
            alive = {
                t.name
                for t in threading.enumerate()
                if t.is_alive() and t.name not in before
            }
            assert any(
                name.startswith("repro-serve-supervisor") for name in alive
            )
            assert any(
                name.startswith("repro-serve-batcher") for name in alive
            )
        leftover = {
            t.name
            for t in threading.enumerate()
            if t.is_alive()
            and t.name not in before
            and (
                t.name.startswith("repro-serve-supervisor")
                or t.name.startswith("repro-serve-batcher")
                or t.name.startswith("repro-serve-cache")
            )
        }
        assert leftover == set()

    def test_close_while_replica_dead_still_drains(self):
        cluster = deploy_cluster(cluster_spec(max_restarts=0))
        os.kill(cluster._handles[0].process.pid, signal.SIGKILL)
        wait_until(lambda: cluster.supervisor.abandoned_slots == (0,))
        futures = [cluster.submit(image) for image in images_pool(4)]
        cluster.close()
        for future in futures:
            assert future.done()
        assert_conservation(cluster.batching_stats)
        assert cluster.closed
