"""Latency-optimal split selection tests (Neurosurgeon-style analysis)."""

import pytest

from repro import models
from repro.deployment import (
    GIGABIT_ETHERNET,
    JETSON_NANO,
    RTX3090_SERVER,
    Device,
    NetworkChannel,
    WireFormat,
    latency_profile,
    optimal_split_index,
)


@pytest.fixture(scope="module")
def spec():
    return models.get_spec("mobilenet_v3_small")


class TestLatencyProfile:
    def test_includes_roc_reference(self, spec):
        profile = latency_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        assert profile[0].stage_index == -1
        assert profile[0].edge_seconds == 0.0

    def test_one_entry_per_stage_plus_roc(self, spec):
        profile = latency_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        assert len(profile) == len(spec.layers) + 1

    def test_edge_time_monotone_in_cut(self, spec):
        profile = latency_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        edge_times = [p.edge_seconds for p in profile]
        assert edge_times == sorted(edge_times)

    def test_server_time_decreases_with_cut(self, spec):
        profile = latency_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        server_times = [p.server_seconds for p in profile[1:]]
        assert server_times == sorted(server_times, reverse=True)

    def test_total_is_sum(self, spec):
        for point in latency_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET):
            assert point.total_seconds == pytest.approx(
                point.edge_seconds + point.transfer_seconds + point.server_seconds
            )

    def test_head_flops_charged_to_server(self, spec):
        without = latency_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        with_heads = latency_profile(
            spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET, head_flops=10**9
        )
        for a, b in zip(without, with_heads):
            assert b.server_seconds > a.server_seconds
            assert b.edge_seconds == a.edge_seconds

    def test_batch_scales_compute_and_payload(self, spec):
        one = latency_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        four = latency_profile(
            spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET, batch_size=4
        )
        assert four[-1].edge_seconds == pytest.approx(4 * one[-1].edge_seconds)


class TestOptimalSplit:
    def test_fast_channel_slow_edge_prefers_roc(self, spec):
        snail_edge = Device("snail", memory_bytes=2**30, flops_per_second=1e6)
        fat_pipe = NetworkChannel("fat", bandwidth_bps=1e12)
        best = optimal_split_index(spec, snail_edge, RTX3090_SERVER, fat_pipe)
        assert best.stage_index == -1

    def test_slow_channel_prefers_late_split(self, spec):
        thin_pipe = NetworkChannel("thin", bandwidth_bps=1e5)
        best = optimal_split_index(spec, JETSON_NANO, RTX3090_SERVER, thin_pipe)
        # With a very slow channel, the payload dominates: the optimum is
        # a cut with (near-)minimal transmit size, deep in the network.
        profile = latency_profile(spec, JETSON_NANO, RTX3090_SERVER, thin_pipe)
        min_payload = min(p.transmit_elements for p in profile)
        assert best.transmit_elements <= 2 * min_payload
        assert best.stage_index >= len(spec.layers) // 2

    def test_optimum_is_global_minimum(self, spec):
        best = optimal_split_index(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        profile = latency_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        assert best.total_seconds == min(p.total_seconds for p in profile)

    def test_quantised_wire_shifts_cost(self, spec):
        thin = NetworkChannel("thin", bandwidth_bps=1e6)
        f32 = optimal_split_index(
            spec, JETSON_NANO, RTX3090_SERVER, thin, wire_format=WireFormat("float32")
        )
        q8 = optimal_split_index(
            spec, JETSON_NANO, RTX3090_SERVER, thin, wire_format=WireFormat("quant8")
        )
        assert q8.total_seconds <= f32.total_seconds
