"""Dynamic batcher: coalescing, correctness under concurrency, lifecycle.

The headline property (the ISSUE's concurrency satellite): N threads
calling ``Deployment.submit()`` on random inputs get results identical
(<= 1e-6) to sequential ``infer()``, across worker counts and
``max_batch_size`` settings.
"""

import threading
import time
from concurrent.futures import wait

import numpy as np
import pytest

import repro
from repro.serve import DeploymentSpec, DynamicBatcher


# ---------------------------------------------------------------------------
# DynamicBatcher unit behaviour (cheap fake model, no network involved)
# ---------------------------------------------------------------------------
class _RecordingModel:
    """Identity-ish model recording every batch size it was called with."""

    def __init__(self, delay_seconds=0.0):
        self.batch_sizes = []
        self.delay_seconds = delay_seconds
        self.lock = threading.Lock()

    def __call__(self, images):
        with self.lock:
            self.batch_sizes.append(images.shape[0])
        if self.delay_seconds:
            time.sleep(self.delay_seconds)
        return {"logits": images.sum(axis=tuple(range(1, images.ndim)))[:, None]}


class TestDynamicBatcher:
    def test_single_submit_resolves(self):
        model = _RecordingModel()
        with DynamicBatcher(model, max_batch_size=4, max_queue_delay_ms=1.0) as b:
            result = b.submit(np.full((2, 2), 3.0)).result(timeout=10)
        np.testing.assert_allclose(result["logits"], [12.0])
        assert model.batch_sizes == [1]

    def test_concurrent_submissions_coalesce(self):
        # A slow first batch gives later submissions time to pile up; the
        # dispatcher must then run them together, not one by one.
        model = _RecordingModel(delay_seconds=0.05)
        with DynamicBatcher(model, max_batch_size=16, max_queue_delay_ms=0.0) as b:
            futures = [b.submit(np.ones((2, 2)) * i) for i in range(9)]
            wait(futures, timeout=30)
        for i, future in enumerate(futures):
            np.testing.assert_allclose(future.result()["logits"], [4.0 * i])
        assert sum(model.batch_sizes) == 9
        assert max(model.batch_sizes) > 1, f"never coalesced: {model.batch_sizes}"
        assert b.stats.requests == 9
        assert b.stats.images == 9
        assert b.stats.max_batch_size_seen == max(model.batch_sizes)

    def test_max_batch_size_respected(self):
        model = _RecordingModel(delay_seconds=0.02)
        with DynamicBatcher(model, max_batch_size=3, max_queue_delay_ms=50.0) as b:
            futures = [b.submit(np.ones((2,))) for _ in range(10)]
            wait(futures, timeout=30)
        assert max(model.batch_sizes) <= 3

    def test_mixed_shapes_grouped(self):
        model = _RecordingModel(delay_seconds=0.02)
        with DynamicBatcher(model, max_batch_size=8, max_queue_delay_ms=20.0) as b:
            small = [b.submit(np.ones((2,))) for _ in range(3)]
            large = [b.submit(np.ones((5,))) for _ in range(3)]
            wait(small + large, timeout=30)
        for future in small:
            np.testing.assert_allclose(future.result()["logits"], [2.0])
        for future in large:
            np.testing.assert_allclose(future.result()["logits"], [5.0])

    def test_model_error_propagates_to_futures(self):
        def broken(images):
            raise RuntimeError("kaboom")

        with DynamicBatcher(broken, max_batch_size=4, max_queue_delay_ms=0.0) as b:
            future = b.submit(np.ones((2,)))
            with pytest.raises(RuntimeError, match="kaboom"):
                future.result(timeout=10)
            # The dispatcher survives a failing batch and serves the next one.
            future2 = b.submit(np.ones((2,)))
            with pytest.raises(RuntimeError, match="kaboom"):
                future2.result(timeout=10)

    def test_close_flushes_pending_and_rejects_new(self):
        model = _RecordingModel(delay_seconds=0.01)
        b = DynamicBatcher(model, max_batch_size=2, max_queue_delay_ms=0.0)
        futures = [b.submit(np.ones((2,))) for _ in range(6)]
        b.close()
        for future in futures:  # flushed, not stranded
            np.testing.assert_allclose(future.result(timeout=10)["logits"], [2.0])
        with pytest.raises(RuntimeError, match="closed"):
            b.submit(np.ones((2,)))
        b.close()  # idempotent

    def test_dispatcher_thread_reclaimed(self):
        model = _RecordingModel()
        b = DynamicBatcher(model, name="repro-test-batcher")
        b.submit(np.ones((2,))).result(timeout=10)
        assert any(
            t.name == "repro-test-batcher" for t in threading.enumerate()
        )
        b.close()
        assert not any(
            t.name == "repro-test-batcher" and t.is_alive()
            for t in threading.enumerate()
        )

    def test_close_safe_under_concurrent_callers(self):
        """N racing close() calls: one drain, no exception, no stranded
        future, and every caller returns only after the drain is done."""
        model = _RecordingModel(delay_seconds=0.01)
        b = DynamicBatcher(model, max_batch_size=2, max_queue_delay_ms=0.0)
        futures = [b.submit(np.ones((2,))) for _ in range(8)]
        errors = []

        def closer():
            try:
                b.close()
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        assert not errors
        for future in futures:
            assert future.done(), "racing close() stranded a future"
        stats = b.stats
        assert stats.submitted == stats.shed + stats.requests
        assert stats.requests == (
            stats.completed + stats.expired + stats.failed + stats.cancelled
        )

    def test_non_dict_outputs_supported(self):
        with DynamicBatcher(
            lambda images: images * 2.0, max_batch_size=4, max_queue_delay_ms=0.0
        ) as b:
            result = b.submit(np.ones((3,))).result(timeout=10)
        np.testing.assert_allclose(result, [2.0, 2.0, 2.0])

    def test_rejects_degenerate_knobs(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            DynamicBatcher(lambda x: x, max_batch_size=0)
        with pytest.raises(ValueError, match="max_queue_delay_ms"):
            DynamicBatcher(lambda x: x, max_queue_delay_ms=-1.0)


# ---------------------------------------------------------------------------
# End-to-end concurrency correctness through a real deployment
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "num_workers,max_batch_size",
    [(1, 1), (1, 4), (2, 8)],
)
def test_concurrent_submit_matches_sequential_infer(num_workers, max_batch_size):
    spec = DeploymentSpec(
        model="mobilenet_v3_tiny",
        tasks=(("scale", 8), ("shape", 4)),
        num_workers=num_workers,
        max_batch_size=max_batch_size,
        max_queue_delay_ms=5.0,
        seed=11,
    )
    rng = np.random.default_rng(5)
    images = rng.standard_normal((12, 3, 32, 32), dtype=np.float32)
    with repro.deploy(spec) as deployment:
        expected = [
            {name: row[0].copy() for name, row in deployment.infer(img[None]).items()}
            for img in images
        ]

        results = [None] * len(images)
        errors = []
        barrier = threading.Barrier(6)

        def client(thread_index):
            try:
                barrier.wait(timeout=30)
                for i in range(thread_index, len(images), 6):
                    results[i] = deployment.submit(images[i]).result(timeout=60)
            except BaseException as error:
                errors.append(error)

        threads = [threading.Thread(target=client, args=(t,)) for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors

        for i, result in enumerate(results):
            assert set(result) == {"scale", "shape"}
            for name in result:
                np.testing.assert_allclose(
                    result[name], expected[i][name], atol=1e-6,
                    err_msg=f"image {i} task {name} diverged from sequential infer",
                )
        stats = deployment.batching_stats
        assert stats.requests == len(images)
        assert stats.images == len(images)
        assert stats.max_batch_size_seen <= max_batch_size
