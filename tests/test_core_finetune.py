"""Fine-tuning tests: the two-rate scheme of Eqs. 5-7, backbone freezing,
task addition and backbone pre-training."""

import numpy as np
import pytest

from repro import data
from repro.core import (
    FineTuneConfig,
    MTLSplitNet,
    add_task,
    evaluate,
    fine_tune,
    pretrain_backbone,
)


@pytest.fixture(scope="module")
def faces_tiny():
    return data.make_faces(120, seed=3)


def fresh_net(ds, tasks=None, seed=0):
    infos = [ds.task_info(t) for t in tasks] if tasks else list(ds.tasks)
    return MTLSplitNet.from_tasks("mobilenet_v3_tiny", infos, input_size=32, seed=seed)


class TestFineTuneConfig:
    def test_eta_must_not_exceed_alpha(self):
        with pytest.raises(ValueError):
            FineTuneConfig(alpha=1e-4, eta=1e-3)

    def test_negative_eta_rejected(self):
        with pytest.raises(ValueError):
            FineTuneConfig(eta=-1e-5)

    def test_non_positive_alpha_rejected(self):
        with pytest.raises(ValueError):
            FineTuneConfig(alpha=0.0)

    def test_zero_eta_allowed(self):
        assert FineTuneConfig(eta=0.0).eta == 0.0


class TestFineTune:
    def test_frozen_backbone_unchanged(self, faces_tiny):
        net = fresh_net(faces_tiny)
        before = {k: v.copy() for k, v in net.backbone.state_dict().items()
                  if "running" not in k and "num_batches" not in k}
        fine_tune(net, faces_tiny, FineTuneConfig(alpha=1e-3, eta=0.0, epochs=1))
        after = net.backbone.state_dict()
        for key, value in before.items():
            np.testing.assert_array_equal(value, after[key])

    def test_frozen_backbone_heads_still_learn(self, faces_tiny):
        net = fresh_net(faces_tiny)
        before = [p.data.copy() for p in net.head_parameters()]
        fine_tune(net, faces_tiny, FineTuneConfig(alpha=1e-3, eta=0.0, epochs=1))
        after = [p.data for p in net.head_parameters()]
        assert any(not np.allclose(a, b) for a, b in zip(before, after))

    def test_small_eta_changes_backbone_slightly(self, faces_tiny):
        net = fresh_net(faces_tiny)
        before = {k: v.copy() for k, v in net.backbone.state_dict().items()
                  if "running" not in k and "num_batches" not in k}
        fine_tune(net, faces_tiny, FineTuneConfig(alpha=1e-3, eta=1e-5, epochs=1))
        after = net.backbone.state_dict()
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed

    def test_backbone_left_trainable_after(self, faces_tiny):
        net = fresh_net(faces_tiny)
        fine_tune(net, faces_tiny, FineTuneConfig(eta=0.0, epochs=1))
        assert all(p.requires_grad for p in net.backbone_parameters())

    def test_history_returned(self, faces_tiny):
        net = fresh_net(faces_tiny)
        history = fine_tune(net, faces_tiny, FineTuneConfig(epochs=2))
        assert len(history.epochs) == 2


class TestAddTask:
    def test_new_head_added(self, faces_tiny):
        net = fresh_net(faces_tiny, tasks=["age", "gender"])
        extended = add_task(net, faces_tiny.task_info("expression"), input_size=32)
        assert extended.task_names == ("age", "gender", "expression")

    def test_existing_heads_preserved(self, faces_tiny):
        net = fresh_net(faces_tiny, tasks=["age"])
        age_weight = net.head("age").fc1.weight
        extended = add_task(net, faces_tiny.task_info("gender"), input_size=32)
        assert extended.head("age").fc1.weight is age_weight

    def test_backbone_shared(self, faces_tiny):
        net = fresh_net(faces_tiny, tasks=["age"])
        extended = add_task(net, faces_tiny.task_info("gender"), input_size=32)
        assert extended.backbone is net.backbone

    def test_duplicate_task_rejected(self, faces_tiny):
        net = fresh_net(faces_tiny, tasks=["age"])
        with pytest.raises(ValueError):
            add_task(net, faces_tiny.task_info("age"), input_size=32)

    def test_extended_net_runs(self, faces_tiny):
        net = fresh_net(faces_tiny, tasks=["age"])
        extended = add_task(net, faces_tiny.task_info("expression"), input_size=32)
        acc = evaluate(extended, faces_tiny.select_tasks(["age", "expression"]))
        assert set(acc) == {"age", "expression"}


class TestPretrainBackbone:
    def test_returns_loadable_state(self, faces_tiny):
        from repro.core import TrainConfig

        state = pretrain_backbone(
            "mobilenet_v3_tiny", faces_tiny, input_size=32,
            config=TrainConfig(epochs=1, batch_size=64),
        )
        net = fresh_net(faces_tiny)
        net.backbone.load_state_dict(state)  # must not raise

    def test_pretrained_differs_from_fresh(self, faces_tiny):
        from repro.core import TrainConfig

        state = pretrain_backbone(
            "mobilenet_v3_tiny", faces_tiny, input_size=32,
            config=TrainConfig(epochs=1, batch_size=64),
        )
        fresh = fresh_net(faces_tiny).backbone.state_dict()
        diffs = [
            not np.allclose(state[k], fresh[k])
            for k in state
            if "running" not in k and "num_batches" not in k
        ]
        assert any(diffs)
