"""Unit tests for the autograd Tensor: graph construction, backward,
broadcasting adjoints, shape ops and gradient accumulation."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack


class TestConstruction:
    def test_from_list_is_float32(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == np.float32
        assert t.shape == (3,)

    def test_integer_arrays_stay_integer(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "i"

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a
        assert isinstance(as_tensor(2.0), Tensor)

    def test_repr_mentions_requires_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert "requires_grad=True" in repr(t)

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestBackwardBasics:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_matmul_backward_2d(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 4)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 4.0))
        np.testing.assert_allclose(b.grad, np.full((3, 4), 2.0))

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [6.0])

    def test_neg_backward(self):
        a = Tensor([1.0], requires_grad=True)
        (-a).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_chained_reuse_accumulates(self):
        # y = a*a + a -> dy/da = 2a + 1
        a = Tensor([3.0], requires_grad=True)
        (a * a + a).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [7.0])

    def test_diamond_graph(self):
        # b = a+a; c = b*b -> dc/da = 2b * 2 = 8a
        a = Tensor([1.5], requires_grad=True)
        b = a + a
        (b * b).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [12.0])

    def test_backward_requires_scalar_or_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_detached_raises(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_grad_accumulates_over_calls(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward(np.array([1.0]))
        (a * 2).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward(np.array([1.0]))
        a.zero_grad()
        assert a.grad is None

    def test_retain_grad_on_intermediate(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3).retain_grad()
        (b * b).backward(np.array([1.0]))
        np.testing.assert_allclose(b.grad, [12.0])
        np.testing.assert_allclose(a.grad, [36.0])


class TestBroadcasting:
    def test_add_broadcast_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_mul_broadcast_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 2), 3.0))

    def test_broadcast_keepdim_axis(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        scale = Tensor(np.full((2, 1), 2.0), requires_grad=True)
        (x * scale).sum().backward()
        np.testing.assert_allclose(scale.grad, np.full((2, 1), 3.0))

    def test_rsub_and_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (1.0 - a).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [-1.0])
        b = Tensor([2.0], requires_grad=True)
        (1.0 / b).backward(np.array([1.0]))
        np.testing.assert_allclose(b.grad, [-0.25])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        y = x.sum(axis=1, keepdims=True)
        assert y.shape == (2, 1)
        y.backward(np.ones((2, 1), dtype=np.float32))
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_multiple_axes(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        x.sum(axis=(0, 2)).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_mean_scales_gradient(self):
        x = Tensor(np.ones((4,)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))

    def test_var_matches_numpy(self):
        data = np.random.default_rng(0).standard_normal((5, 7)).astype(np.float32)
        x = Tensor(data)
        np.testing.assert_allclose(x.var(axis=0).data, data.var(axis=0), atol=1e-5)

    def test_max_forward_and_tie_split(self):
        x = Tensor(np.array([[1.0, 2.0, 2.0]]), requires_grad=True)
        y = x.max(axis=1)
        np.testing.assert_allclose(y.data, [2.0])
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [[0.0, 0.5, 0.5]])

    def test_reshape_roundtrip(self):
        x = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.flatten(1).shape == (2, 12)

    def test_transpose_default_and_axes(self):
        x = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        assert x.T.shape == (4, 3, 2)
        y = x.transpose(1, 0, 2)
        assert y.shape == (3, 2, 4)
        y.sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_getitem_scatter(self):
        x = Tensor(np.arange(5, dtype=np.float32), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 1, 0, 0])

    def test_pad2d_and_backward(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        y = x.pad2d((1, 1))
        assert y.shape == (1, 1, 4, 4)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert x.pad2d((0, 0)) is x


class TestElementwiseMath:
    def test_exp_log_roundtrip_grad(self):
        x = Tensor(np.array([0.5, 1.5]), requires_grad=True)
        x.exp().log().sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0], atol=1e-6)

    def test_sqrt(self):
        x = Tensor(np.array([4.0]), requires_grad=True)
        x.sqrt().backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [0.25])

    def test_tanh_grad(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        x.tanh().backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [1.0])

    def test_abs_grad_sign(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])

    def test_clip_grad_mask(self):
        x = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        x.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_tie_goes_to_self(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([1.0]), requires_grad=True)
        a.maximum(b).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [0.0])


class TestNoGrad:
    def test_no_grad_detaches(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad
        assert b.is_leaf

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad


class TestConcatenateStack:
    def test_concatenate_forward_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)

    def test_stack_forward_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))
