"""Content-addressed serve caching: keys, policy, store, tiers, serving.

The contract under test (see ``docs/caching.md``):

* **Keys** — the tensor digest is a pure function of (dtype, shape,
  values): memory layout (C vs Fortran order, negative strides, views)
  must not change it, while any dtype or shape difference must.
* **Policy** — :class:`~repro.serve.CachePolicy` round-trips exactly
  through dict/JSON/compact string, like every other spec in the repo.
* **Store** — byte-accurate LRU with optional TTL on an *injected*
  clock, so expiry is tested deterministically, not with sleeps.
* **Serving** — cache-on must be indistinguishable from cache-off
  except faster: results within 1e-6 of the uncached path, repeats
  bit-identical to their first occurrence, the admission ledger
  extended to ``submitted == shed + cache_hits + requests``, and
  duplicate storms against a gated model computing exactly once
  (single-flight).
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import DeploymentSpec, SpecError, deploy
from repro.serve.batching import DynamicBatcher
from repro.serve.cache import (
    CACHE_TIERS,
    ByteLRUStore,
    CachePolicy,
    FeatureCache,
    ResponseCache,
    ServeCache,
    combine_digests,
    provenance_digest,
    tensor_digest,
)

TASKS = (("scale", 8), ("shape", 4))


# ---------------------------------------------------------------------------
# Lane hygiene: no cache thread may survive any test in this file
# ---------------------------------------------------------------------------
@pytest.fixture(autouse=True)
def no_cache_thread_leak():
    yield
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [
            t.name
            for t in threading.enumerate()
            if t.is_alive() and t.name.startswith("repro-serve-cache")
        ]
        if not leaked:
            return
        time.sleep(0.02)
    assert leaked == [], f"leaked cache threads: {leaked}"


def serving_spec(**overrides):
    base = dict(
        model="mobilenet_v3_tiny",
        tasks=TASKS,
        input_size=32,
        max_batch_size=4,
        max_queue_delay_ms=1.0,
        seed=0,
    )
    base.update(overrides)
    return DeploymentSpec(**base)


def images(count=4, seed=0, size=32):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((count, 3, size, size)).astype(np.float32)


# ---------------------------------------------------------------------------
# Keys: canonicalization properties
# ---------------------------------------------------------------------------
class TestTensorDigest:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(2, 5),
        st.integers(2, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_layout_never_changes_the_key(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        c_order = np.ascontiguousarray(
            rng.standard_normal((rows, cols)).astype(np.float32)
        )
        f_order = np.asfortranarray(c_order)
        # A negative-stride view with the same values: store the rows
        # reversed, then view them reversed back.
        flipped = np.ascontiguousarray(c_order[::-1])[::-1]
        assert flipped.strides[0] < 0
        reference = tensor_digest(c_order)
        assert tensor_digest(f_order) == reference
        assert tensor_digest(flipped) == reference
        # A view into a larger buffer with the same values matches too.
        padded = np.zeros((rows + 2, cols + 2), dtype=np.float32)
        padded[1 : rows + 1, 1 : cols + 1] = c_order
        assert tensor_digest(padded[1 : rows + 1, 1 : cols + 1]) == reference

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_dtype_always_changes_the_key(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 100, size=(3, 3))
        keys = {
            tensor_digest(values.astype(dtype))
            for dtype in (np.float32, np.float64, np.int32, np.int64)
        }
        assert len(keys) == 4

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_shape_always_changes_the_key(self, seed):
        rng = np.random.default_rng(seed)
        flat = rng.standard_normal(12).astype(np.float32)
        keys = {
            tensor_digest(flat.reshape(shape))
            for shape in ((12,), (3, 4), (4, 3), (2, 6), (2, 2, 3))
        }
        assert len(keys) == 5

    def test_value_changes_the_key(self):
        a = np.zeros((2, 2), dtype=np.float32)
        b = a.copy()
        b[0, 0] = np.float32(1e-30)
        assert tensor_digest(a) != tensor_digest(b)

    def test_combine_prefixes_with_provenance(self):
        array = np.ones((2, 2), dtype=np.float32)
        p1 = provenance_digest(["plan A"])
        p2 = provenance_digest(["plan B"])
        k1 = combine_digests(p1, tensor_digest(array))
        k2 = combine_digests(p2, tensor_digest(array))
        assert k1 != k2
        assert k1.split(":")[1] == k2.split(":")[1]

    def test_provenance_parts_are_length_prefixed(self):
        # ["ab", "c"] and ["a", "bc"] must not collide.
        assert provenance_digest(["ab", "c"]) != provenance_digest(["a", "bc"])


# ---------------------------------------------------------------------------
# Policy: validation + round-trips
# ---------------------------------------------------------------------------
class TestCachePolicy:
    def test_defaults(self):
        policy = CachePolicy()
        assert policy.tier == "both"
        assert policy.enabled
        assert policy.response_enabled and policy.feature_enabled

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            CachePolicy(tier="l2")
        with pytest.raises(ValueError, match="capacity_bytes"):
            CachePolicy(capacity_bytes=0)
        with pytest.raises(ValueError, match="max_entries"):
            CachePolicy(max_entries=0)
        with pytest.raises(ValueError, match="ttl_s"):
            CachePolicy(ttl_s=0.0)

    @pytest.mark.parametrize("tier", CACHE_TIERS)
    def test_tier_selection(self, tier):
        policy = CachePolicy(tier=tier)
        assert policy.response_enabled == (tier in ("response", "both"))
        assert policy.feature_enabled == (tier in ("feature", "both"))

    @pytest.mark.parametrize("text", [
        "both",
        "response",
        "feature:capacity=1048576",
        "both:entries=16,ttl=2.5",
        "off",
        "response:enabled=0",
    ])
    def test_string_round_trip(self, text):
        policy = CachePolicy.from_string(text)
        again = CachePolicy.from_string(policy.to_string())
        assert again == policy
        assert CachePolicy.from_dict(policy.to_dict()) == policy
        assert CachePolicy.from_json(policy.to_json()) == policy

    @given(
        st.sampled_from(CACHE_TIERS),
        st.booleans(),
        st.integers(1, 2**30),
        st.integers(1, 10_000),
        st.one_of(st.none(), st.floats(0.001, 3600.0)),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, tier, enabled, capacity, entries, ttl):
        policy = CachePolicy(
            tier=tier,
            enabled=enabled,
            capacity_bytes=capacity,
            max_entries=entries,
            ttl_s=ttl,
        )
        assert CachePolicy.from_string(policy.to_string()) == policy
        assert CachePolicy.from_json(policy.to_json()) == policy

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            CachePolicy.from_dict({"tier": "both", "capactiy": 1})
        with pytest.raises(ValueError, match="key"):
            CachePolicy.from_string("both:capactiy=1")

    def test_off_shorthand_disables(self):
        assert not CachePolicy.from_string("off").enabled

    def test_spec_coerces_and_round_trips(self):
        spec = serving_spec(cache="response:entries=32")
        assert isinstance(spec.cache, CachePolicy)
        assert spec.cache.max_entries == 32
        again = DeploymentSpec.from_json(spec.to_json())
        assert again.cache == spec.cache
        assert DeploymentSpec.from_dict(spec.to_dict()).cache == spec.cache

    def test_spec_rejects_garbage_cache(self):
        with pytest.raises(SpecError, match="cache"):
            serving_spec(cache=42)
        with pytest.raises(SpecError, match="cache"):
            serving_spec(cache="l2:capacity=1")

    def test_cache_changes_spec_digest(self):
        assert (
            serving_spec(cache="both").digest()
            != serving_spec(cache=None).digest()
        )
        assert serving_spec(cache="both").digest() == serving_spec(
            cache="both"
        ).digest()


# ---------------------------------------------------------------------------
# Store: byte-accurate LRU + TTL on an injected clock
# ---------------------------------------------------------------------------
class TestByteLRUStore:
    def test_lru_eviction_order(self):
        store = ByteLRUStore(capacity_bytes=300, max_entries=16)
        for name in ("a", "b", "c"):
            assert store.put(name, name, 100)
        assert store.get("a") is not None  # refresh a: b is now coldest
        assert store.put("d", "d", 100)
        assert store.get("b") is None
        assert store.get("a") == "a"
        assert store.get("c") == "c"
        assert store.get("d") == "d"
        assert store.stats.lru_evictions == 1

    def test_byte_accounting_is_exact(self):
        store = ByteLRUStore(capacity_bytes=1000, max_entries=100)
        store.put("a", "a", 400)
        store.put("b", "b", 400)
        assert store.bytes_used == 800
        store.put("c", "c", 400)  # over budget: evict "a"
        assert store.bytes_used == 800
        assert len(store) == 2
        store.put("b", "B", 100)  # replace shrinks the account
        assert store.bytes_used == 500
        store.clear()
        assert store.bytes_used == 0 and len(store) == 0

    def test_max_entries_budget(self):
        store = ByteLRUStore(capacity_bytes=1 << 20, max_entries=2)
        for name in ("a", "b", "c"):
            store.put(name, name, 10)
        assert len(store) == 2
        assert store.get("a") is None

    def test_oversize_rejected_not_thrashing(self):
        store = ByteLRUStore(capacity_bytes=100, max_entries=8)
        store.put("small", "s", 50)
        assert not store.put("huge", "h", 500)
        assert store.get("small") == "s"  # nothing was evicted for it
        assert store.stats.oversize_rejections == 1

    def test_ttl_expiry_on_injected_clock(self):
        now = [0.0]
        store = ByteLRUStore(
            capacity_bytes=1000, max_entries=8, ttl_s=10.0, clock=lambda: now[0]
        )
        store.put("a", "a", 10)
        now[0] = 9.9
        assert store.get("a") == "a"
        now[0] = 10.1
        assert store.get("a") is None
        assert store.stats.ttl_evictions == 1
        assert store.bytes_used == 0

    def test_sweep_reclaims_expired_bytes(self):
        now = [0.0]
        store = ByteLRUStore(
            capacity_bytes=1000, max_entries=8, ttl_s=5.0, clock=lambda: now[0]
        )
        store.put("a", "a", 10)
        store.put("b", "b", 10)
        now[0] = 6.0
        store.put("c", "c", 10)
        assert store.sweep() == 2
        assert store.bytes_used == 10
        assert store.stats.ttl_evictions == 2

    def test_peek_has_no_side_effects(self):
        store = ByteLRUStore(capacity_bytes=300, max_entries=16)
        store.put("a", "a", 100)
        store.put("b", "b", 100)
        store.peek("a")  # must NOT refresh recency
        store.put("c", "c", 100)
        store.put("d", "d", 100)
        assert store.get("a") is None
        hits, misses = store.stats.hits, store.stats.misses
        store.peek("zzz")
        assert (store.stats.hits, store.stats.misses) == (hits, misses)


# ---------------------------------------------------------------------------
# Tiers: defensive copies + provenance namespaces
# ---------------------------------------------------------------------------
class TestTiers:
    def test_response_put_freezes_and_shares(self):
        cache = ResponseCache(CachePolicy(tier="response"), "prov")
        row = np.arange(4, dtype=np.float32)
        key = cache.key_for(row)
        stored = cache.put(key, {"scale": row})
        row[0] = 99.0  # client mutation must not reach the cache
        hit = cache.get(key)
        assert hit["scale"][0] == 0.0
        assert not hit["scale"].flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            hit["scale"][0] = 1.0
        hit["extra"] = "mine"  # dict is the client's to mutate
        assert "extra" not in cache.get(key)
        assert stored["scale"][0] == 0.0

    def test_feature_put_returns_usable_copy_even_when_oversize(self):
        policy = CachePolicy(tier="feature", capacity_bytes=64, max_entries=4)
        cache = FeatureCache(policy, "prov")
        big = np.zeros(1024, dtype=np.float32)
        key = cache.key_for(big)
        frozen = cache.put(key, big)
        assert frozen is not None and frozen.shape == big.shape
        assert cache.get(key) is None  # too big to keep
        assert cache.stats.oversize_rejections == 1

    def test_provenance_separates_namespaces(self):
        a = ResponseCache(CachePolicy(), provenance_digest(["plan A"]))
        b = ResponseCache(CachePolicy(), provenance_digest(["plan B"]))
        row = np.ones(3, dtype=np.float32)
        assert a.key_for(row) != b.key_for(row)


# ---------------------------------------------------------------------------
# ServeCache lifecycle: sweeper thread + close()
# ---------------------------------------------------------------------------
class TestServeCacheLifecycle:
    def test_no_sweeper_without_ttl(self):
        cache = ServeCache(CachePolicy(), "prov")
        assert cache._sweeper is None
        cache.close()

    def test_sweeper_starts_and_close_reclaims_it(self):
        policy = CachePolicy(ttl_s=30.0, sweep_interval_s=0.01)
        cache = ServeCache(policy, "prov")
        assert cache._sweeper is not None and cache._sweeper.is_alive()
        assert cache._sweeper.name == "repro-serve-cache-sweeper"
        cache.close()
        assert cache._sweeper is None
        assert not any(
            t.name.startswith("repro-serve-cache")
            for t in threading.enumerate()
            if t.is_alive()
        )
        cache.close()  # idempotent

    def test_sweeper_actually_sweeps(self):
        policy = CachePolicy(tier="response", ttl_s=0.02, sweep_interval_s=0.01)
        with ServeCache(policy, "prov") as cache:
            row = np.ones(4, dtype=np.float32)
            key = cache.response.key_for(row)
            cache.response.put(key, row)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if cache.response.stats.snapshot()["bytes_used"] == 0:
                    break
                time.sleep(0.01)
            assert cache.response.stats.snapshot()["bytes_used"] == 0

    def test_stats_lists_enabled_tiers_only(self):
        with ServeCache(CachePolicy(tier="response"), "p") as cache:
            assert set(cache.stats()) == {"response"}
        with ServeCache(CachePolicy(tier="both"), "p") as cache:
            assert set(cache.stats()) == {"response", "feature"}


# ---------------------------------------------------------------------------
# Batcher integration: admission hits, single-flight, conservation
# ---------------------------------------------------------------------------
def response_cache(**policy_overrides):
    policy = CachePolicy(tier="response", **policy_overrides)
    return ResponseCache(policy, provenance_digest(["test"]))


class TestBatcherCache:
    def test_hit_resolves_at_admission(self):
        calls = []

        def infer(batch):
            calls.append(len(batch))
            return {"out": np.asarray(batch).sum(axis=(1,)) * 0 + len(calls)}

        batcher = DynamicBatcher(
            infer, max_batch_size=4, max_queue_delay_ms=0.0,
            response_cache=response_cache(),
        )
        try:
            image = np.ones(3, dtype=np.float32)
            first = batcher.submit(image).result(timeout=10)
            second = batcher.submit(image).result(timeout=10)
            assert sum(calls) == 1
            np.testing.assert_array_equal(first["out"], second["out"])
            assert second["out"].tobytes() == first["out"].tobytes()
            stats = batcher.stats
            assert stats.submitted == 2
            assert stats.cache_hits == 1
            assert stats.requests == 1
            assert stats.submitted == (
                stats.shed + stats.cache_hits + stats.requests
            )
        finally:
            batcher.close()

    def test_single_flight_storm_computes_once(self):
        gate = threading.Event()
        calls = []

        def infer(batch):
            calls.append(np.asarray(batch).shape[0])
            assert gate.wait(timeout=30)
            return {"out": np.zeros((np.asarray(batch).shape[0], 2),
                                    dtype=np.float32)}

        batcher = DynamicBatcher(
            infer, max_batch_size=1, max_queue_delay_ms=0.0,
            response_cache=response_cache(),
        )
        try:
            image = np.full(8, 3.0, dtype=np.float32)
            futures = [batcher.submit(image) for _ in range(16)]
            # One primary is (gated) in flight; the other 15 joined it.
            gate.set()
            results = [f.result(timeout=30) for f in futures]
            assert sum(calls) == 1
            reference = results[0]["out"].tobytes()
            assert all(r["out"].tobytes() == reference for r in results)
            stats = batcher.stats
            assert stats.submitted == 16
            assert stats.requests == 1
            assert stats.cache_hits == 15
            cache = batcher._response_cache
            assert cache.stats.coalesced == 15
        finally:
            gate.set()
            batcher.close()

    def test_follower_shares_primary_error(self):
        gate = threading.Event()

        def infer(batch):
            assert gate.wait(timeout=30)
            raise RuntimeError("engine exploded")

        batcher = DynamicBatcher(
            infer, max_batch_size=1, max_queue_delay_ms=0.0,
            response_cache=response_cache(),
        )
        try:
            image = np.ones(4, dtype=np.float32)
            primary = batcher.submit(image)
            follower = batcher.submit(image)
            gate.set()
            with pytest.raises(RuntimeError, match="engine exploded"):
                primary.result(timeout=30)
            with pytest.raises(RuntimeError, match="engine exploded"):
                follower.result(timeout=30)
            stats = batcher.stats
            assert stats.submitted == stats.shed + stats.cache_hits + stats.requests
            assert stats.requests == (
                stats.completed + stats.expired + stats.failed + stats.cancelled
            )
        finally:
            gate.set()
            batcher.close()

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    @settings(max_examples=20, deadline=None)
    def test_conservation_with_cache_hits(self, draws):
        def infer(batch):
            return {"out": np.asarray(batch) * 2.0}

        batcher = DynamicBatcher(
            infer, max_batch_size=4, max_queue_delay_ms=0.0,
            response_cache=response_cache(),
        )
        try:
            pool = [
                np.full(4, float(value), dtype=np.float32) for value in range(6)
            ]
            futures = [batcher.submit(pool[index]) for index in draws]
            for future in futures:
                future.result(timeout=30)
        finally:
            batcher.close()
        stats = batcher.stats
        assert stats.submitted == len(draws)
        assert stats.submitted == stats.shed + stats.cache_hits + stats.requests
        assert stats.requests == (
            stats.completed + stats.expired + stats.failed + stats.cancelled
        )
        assert stats.requests <= len(set(draws))


# ---------------------------------------------------------------------------
# End-to-end: deployments with caching on ≡ off
# ---------------------------------------------------------------------------
class TestDeploymentCaching:
    def test_response_hits_are_bit_identical_and_ledger_extends(self):
        with deploy(serving_spec(cache="response")) as dep:
            image = images(1)[0]
            first = dep.submit(image).result(timeout=60)
            second = dep.submit(image).result(timeout=60)
            for task in first:
                assert first[task].tobytes() == second[task].tobytes()
            stats = dep.batching_stats
            assert stats.cache_hits >= 1
            assert stats.submitted == (
                stats.shed + stats.cache_hits + stats.requests
            )
            snapshot = dep.cache_stats()
            assert snapshot["response"]["hits"] + snapshot["response"][
                "coalesced"
            ] >= 1

    def test_cache_on_matches_cache_off_numerics(self):
        batch = images(4)
        with deploy(serving_spec(cache=None)) as off:
            reference = off.infer(batch)
        with deploy(serving_spec(cache="both")) as on:
            cold = on.infer(batch)     # populates the feature tier
            warm = on.infer(batch)     # served from it
            for task in reference:
                np.testing.assert_allclose(
                    cold[task], reference[task], atol=1e-6
                )
                np.testing.assert_allclose(
                    warm[task], reference[task], atol=1e-6
                )
            stats = on.cache_stats()
            assert stats["feature"]["hits"] >= len(batch)

    def test_feature_tier_counters_reach_the_report(self):
        batch = images(4)
        with deploy(serving_spec(cache="feature")) as dep:
            dep.infer(batch)
            _, report = dep.stream([batch, batch])
        assert report.feature_hits + report.feature_misses > 0
        assert report.feature_hits >= len(batch)

    def test_cache_off_spec_has_no_cache_machinery(self):
        with deploy(serving_spec(cache=None)) as dep:
            assert dep.cache is None
            assert dep.cache_stats() == {}
            assert dep.pipeline.feature_cache is None
        with deploy(serving_spec(cache="off")) as dep:
            assert dep.cache is None

    def test_ttl_evicts_between_submits(self):
        spec = serving_spec(cache="response:ttl=0.01,sweep=0.005")
        with deploy(spec) as dep:
            image = images(1)[0]
            dep.submit(image).result(timeout=60)
            time.sleep(0.1)  # sweeper runs on its own thread
            snapshot = dep.cache_stats()["response"]
            assert snapshot["ttl_evictions"] >= 1 or snapshot["entries"] == 0

    def test_provenance_differs_across_optimize_flag(self):
        with deploy(
            serving_spec(cache="both", planned=True, optimize=True)
        ) as a, deploy(
            serving_spec(cache="both", planned=True, optimize=False)
        ) as b:
            assert a.cache.provenance != b.cache.provenance

    def test_provenance_stable_for_same_registry_spec(self):
        spec = serving_spec(cache="both")
        with deploy(spec) as a, deploy(spec) as b:
            assert a.cache.provenance == b.cache.provenance

    def test_in_memory_models_get_private_namespaces(self, tiny_trained_net):
        spec = serving_spec(model=tiny_trained_net, cache="response")
        with deploy(spec) as a, deploy(spec) as b:
            assert a.cache.provenance != b.cache.provenance


# ---------------------------------------------------------------------------
# Cluster: router-side response tier
# ---------------------------------------------------------------------------
class TestClusterCache:
    def test_router_cache_hits_and_clean_close(self):
        spec = serving_spec(cache="both", replicas=2)
        with deploy(spec) as cluster:
            image = images(1)[0]
            first = cluster.submit(image).result(timeout=120)
            second = cluster.submit(image).result(timeout=120)
            for task in first:
                assert first[task].tobytes() == second[task].tobytes()
            report = cluster.report()
            assert report.batching["cache_hits"] >= 1
            assert report.aggregate.response_hits >= 1
            stats = cluster.batching_stats
            assert stats.submitted == (
                stats.shed + stats.cache_hits + stats.requests
            )
