"""Additional framework tests: training-dynamics edge cases, batch-norm
averaging modes, scheduler/optimizer interplay, and graph hygiene."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestBatchNormModes:
    def test_cumulative_running_mean_is_true_average(self):
        bn = nn.BatchNorm1d(1)  # momentum=None -> cumulative
        batches = [np.full((4, 1), v, dtype=np.float32) for v in (1.0, 3.0, 5.0)]
        for batch in batches:
            bn(Tensor(batch))
        assert bn._buffers["running_mean"][0] == pytest.approx(3.0, abs=1e-5)
        assert bn._buffers["num_batches_tracked"][0] == 3

    def test_exponential_mode_weights_recent(self):
        bn = nn.BatchNorm1d(1, momentum=0.5)
        for v in (0.0, 10.0):
            bn(Tensor(np.full((4, 1), v, dtype=np.float32)))
        # 0.5-momentum EMA of [0, 10] = 5 after the second batch... starting
        # from init 0: 0*0.5 + 0*0.5 = 0, then 0*0.5 + 10*0.5 = 5.
        assert bn._buffers["running_mean"][0] == pytest.approx(5.0, abs=1e-5)

    def test_eval_reliable_after_one_batch(self):
        # The motivating bug: with cumulative averaging, one training batch
        # is enough for eval-mode statistics to be exact.
        bn = nn.BatchNorm2d(2)
        x = Tensor(np.random.default_rng(0).standard_normal((32, 2, 4, 4)).astype(np.float32) * 7)
        y_train = bn(x)
        bn.eval()
        y_eval = bn(x)
        np.testing.assert_allclose(y_train.data, y_eval.data, atol=0.15)

    def test_cumulative_state_in_state_dict(self):
        bn = nn.BatchNorm2d(3)
        assert "num_batches_tracked" in bn.state_dict()


class TestGraphHygiene:
    def test_eval_forward_builds_no_graph_under_no_grad(self):
        net = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), nn.BatchNorm2d(4), nn.ReLU())
        net.eval()
        x = Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32))
        with nn.no_grad():
            out = net(x)
        assert out.is_leaf

    def test_second_backward_independent(self):
        w = nn.Parameter(np.ones(3, dtype=np.float32))
        x = Tensor(np.ones(3, dtype=np.float32))
        (w * x).sum().backward()
        first = w.grad.copy()
        w.zero_grad()
        (w * x).sum().backward()
        np.testing.assert_array_equal(first, w.grad)

    def test_loss_graph_reaches_all_parameters(self):
        net = nn.Sequential(
            nn.Conv2d(1, 2, 3, padding=1), nn.BatchNorm2d(2), nn.ReLU(),
            nn.AdaptiveAvgPool2d(1), nn.Flatten(), nn.Linear(2, 3),
        )
        x = Tensor(np.random.default_rng(0).standard_normal((4, 1, 6, 6)).astype(np.float32))
        loss = F.cross_entropy(net(x), np.array([0, 1, 2, 0]))
        loss.backward()
        for name, param in net.named_parameters():
            assert param.grad is not None, name

    def test_deep_graph_backward_no_recursion_error(self):
        x = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [1.0])


class TestOptimizerSchedulerInterplay:
    def test_scheduler_respects_groups(self):
        fast = nn.Parameter(np.zeros(1, dtype=np.float32))
        slow = nn.Parameter(np.zeros(1, dtype=np.float32))
        opt = nn.SGD([dict(params=[fast], lr=1.0), dict(params=[slow], lr=0.1)], lr=1.0)
        sched = nn.StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.5)
        assert opt.param_groups[1]["lr"] == pytest.approx(0.05)

    def test_adamw_state_per_parameter(self):
        a = nn.Parameter(np.zeros(2, dtype=np.float32))
        b = nn.Parameter(np.zeros(3, dtype=np.float32))
        opt = nn.AdamW([a, b], lr=0.1)
        a.grad = np.ones(2, dtype=np.float32)
        b.grad = np.ones(3, dtype=np.float32)
        opt.step()
        assert opt.state[id(a)]["exp_avg"].shape == (2,)
        assert opt.state[id(b)]["exp_avg"].shape == (3,)

    def test_training_with_clipping_converges(self):
        rng = np.random.default_rng(0)
        lin = nn.Linear(5, 1, rng=rng)
        target_w = rng.standard_normal((1, 5)).astype(np.float32)
        x = rng.standard_normal((64, 5)).astype(np.float32)
        y = x @ target_w.T
        opt = nn.Adam(lin.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            loss = F.mse_loss(lin(Tensor(x)), Tensor(y))
            loss.backward()
            nn.clip_grad_norm(list(lin.parameters()), 1.0)
            opt.step()
        assert loss.item() < 1e-2


class TestDtypeDiscipline:
    def test_float32_network_stays_float32(self):
        net = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        out = net(Tensor(np.zeros((2, 4), dtype=np.float32)))
        assert out.dtype == np.float32

    def test_parameters_are_float32(self):
        net = nn.Conv2d(3, 4, 3)
        for p in net.parameters():
            assert p.dtype == np.float32

    def test_gradients_match_parameter_dtype(self):
        lin = nn.Linear(3, 2)
        out = lin(Tensor(np.zeros((1, 3), dtype=np.float32)))
        out.sum().backward()
        assert lin.weight.grad.dtype == np.float32
