"""Evaluation-protocol tests: the STL-vs-MTL experiment runner and the
paper-style comparison tables."""

import numpy as np
import pytest

from repro import data
from repro.core import (
    ComparisonTable,
    ExperimentResult,
    FineTuneConfig,
    TrainConfig,
    format_accuracy_table,
    pretrain_backbone,
    run_stl_mtl_experiment,
)
from repro.data import train_val_test_split


@pytest.fixture(scope="module")
def splits():
    dataset = data.make_shapes3d(260, tasks=("scale", "shape"), seed=61)
    train, _val, test = train_val_test_split(
        dataset, val_fraction=0.0, test_fraction=0.3, rng=np.random.default_rng(62)
    )
    return train, test


@pytest.fixture(scope="module")
def quick_cfg():
    return TrainConfig(epochs=1, batch_size=64, lr=5e-3, seed=0)


@pytest.fixture(scope="module")
def result(splits, quick_cfg):
    train, test = splits
    return run_stl_mtl_experiment(
        "mobilenet_v3_tiny", train, test,
        task_groups=[["scale"], ["shape"], ["scale", "shape"]],
        config=quick_cfg,
    )


@pytest.mark.slow
class TestExperimentRunner:
    def test_stl_covers_all_tasks(self, result):
        assert set(result.stl) == {"scale", "shape"}

    def test_mtl_group_present(self, result):
        assert "scale+shape" in result.mtl
        assert set(result.mtl["scale+shape"]) == {"scale", "shape"}

    def test_accuracies_valid(self, result):
        for value in result.stl.values():
            assert 0.0 <= value <= 1.0
        for group in result.mtl.values():
            for value in group.values():
                assert 0.0 <= value <= 1.0

    def test_delta(self, result):
        delta = result.delta("scale+shape", "scale")
        assert delta == pytest.approx(
            result.mtl["scale+shape"]["scale"] - result.stl["scale"]
        )

    def test_singleton_groups_not_in_mtl(self, result):
        assert "scale" not in result.mtl

    def test_pretrained_path(self, splits, quick_cfg):
        train, test = splits
        state = pretrain_backbone(
            "mobilenet_v3_tiny", train, input_size=32, config=quick_cfg
        )
        result = run_stl_mtl_experiment(
            "mobilenet_v3_tiny", train, test,
            task_groups=[["scale"], ["scale", "shape"]],
            pretrained_backbone=state,
            finetune_config=FineTuneConfig(alpha=1e-3, eta=1e-5, epochs=1),
        )
        assert "scale" in result.stl
        assert "scale+shape" in result.mtl


class TestComparisonTable:
    def test_render_contains_rows_and_deltas(self, result):
        table = ComparisonTable(
            title="Test table",
            task_labels={"scale": "T1", "shape": "T2"},
        )
        table.add(result)
        text = table.render()
        assert "Test table" in text
        assert "mobilenet_v3_tiny" in text
        assert "MTL" in text and "STL" in text
        assert "(+" in text or "(-" in text

    def test_format_helper(self, result):
        text = format_accuracy_table("Title", [result], {"scale": "T1", "shape": "T2"})
        assert "Title" in text

    def test_missing_cells_rendered_as_dash(self):
        partial = ExperimentResult(backbone="x", dataset="d", stl={"a": 0.5},
                                   mtl={"a+b": {"a": 0.6, "b": 0.4}})
        other = ExperimentResult(backbone="y", dataset="d", stl={"a": 0.5}, mtl={})
        table = ComparisonTable(title="t", task_labels={"a": "T1", "b": "T2"})
        table.add(partial)
        table.add(other)
        assert "-" in table.render()
