"""Property tests for the plan-IR optimizer (repro.nn.engine.passes).

The optimizer's contract: rewritten plans are *semantically invisible* —
optimized ≡ unoptimized ≡ the fused session within 1e-6 across
backbones, split points and batch sizes — while the engine's existing
guarantees (zero steady-state allocations, bounded plan cache) survive
every rewrite, and the passes actually fire where the acceptance
criteria say they must (fused epilogues and elided copies on VGG-style
and residual backbones).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import data, nn
from repro.core import MTLSplitNet
from repro.nn import engine, fuse
from repro.nn.engine import ExecutionPlan, PlannedExecutor

_ATOL = 1e-6
_BACKBONES = ("mobilenet_v3_tiny", "vgg_tiny", "efficientnet_tiny")


@pytest.fixture(scope="module")
def images():
    return data.make_shapes3d(32, tasks=("scale", "shape"), seed=7).images


@pytest.fixture(scope="module", params=_BACKBONES)
def split_net(request):
    tasks = data.make_shapes3d(4, tasks=("scale", "shape"), seed=7).tasks
    net = MTLSplitNet.from_tasks(request.param, list(tasks), 32, seed=31)
    net.eval()
    return net


def _assert_outputs_match(lhs, rhs, atol=_ATOL):
    if isinstance(rhs, dict):
        assert set(lhs) == set(rhs)
        for name in rhs:
            np.testing.assert_allclose(lhs[name], rhs[name], atol=atol)
    else:
        np.testing.assert_allclose(lhs, rhs, atol=atol)


class TestOptimizedEquivalence:
    """optimized ≡ unoptimized ≡ session, and the engine contract holds."""

    def test_full_net_optimized_matches_unoptimized_and_session(
        self, split_net, images
    ):
        session = split_net.compile_for_inference()
        x = images[:8]
        reference = session.run(x)
        optimized = PlannedExecutor(session)
        unoptimized = PlannedExecutor(session, optimize=False)
        _assert_outputs_match(optimized.run(x), reference)
        _assert_outputs_match(unoptimized.run(x), reference)
        _assert_outputs_match(optimized.run(x), unoptimized.run(x))

    @pytest.mark.parametrize("batch", [1, 3, 16])
    def test_split_halves_and_batch_sizes(self, split_net, images, batch):
        n_stages = len(list(split_net.backbone.stages))
        for split_index in (1, n_stages):
            edge, server = split_net.split(split_index, input_size=32)
            edge_session = edge.compile_for_inference()
            server_session = server.compile_for_inference()
            x = images[:batch]
            z = edge_session.run(x)
            _assert_outputs_match(PlannedExecutor(edge_session).run(x), z)
            _assert_outputs_match(
                PlannedExecutor(server_session).run(z), server_session.run(z)
            )

    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(1, 12), split_fraction=st.floats(0.1, 1.0))
    def test_property_random_batch_and_split(self, batch, split_fraction):
        net = _PROPERTY_NET
        n_stages = len(list(net.backbone.stages))
        split_index = max(1, min(n_stages, round(split_fraction * n_stages)))
        edge, _ = net.split(split_index, input_size=32)
        session = edge.compile_for_inference()
        x = _PROPERTY_IMAGES[:batch]
        reference = session.run(x)
        np.testing.assert_allclose(
            PlannedExecutor(session).run(x), reference, atol=_ATOL
        )
        np.testing.assert_allclose(
            PlannedExecutor(session, optimize=False).run(x), reference, atol=_ATOL
        )

    def test_zero_steady_state_allocs_survive_rewrites(self, split_net, images):
        edge, _ = split_net.split(None, input_size=32)
        executor = PlannedExecutor(edge.compile_for_inference())
        executor.run(images[:8])
        stats = executor.stats
        assert stats.steady_state_allocs == 0
        assert stats.fallback_ops == 0
        assert stats.arena_bytes > 0
        assert stats.arena_bytes < stats.requested_bytes

    def test_passes_fire_on_every_backbone(self, split_net, images):
        """Acceptance: ≥1 fused epilogue and ≥1 elided copy, VGG + residual."""
        executor = PlannedExecutor(split_net.compile_for_inference())
        executor.run(images[:4])
        stats = executor.stats
        assert stats.fused_steps >= 1
        assert stats.elided_copies + stats.aliased_views >= 1

    def test_describe_shows_fusion_and_elision(self, split_net, images):
        edge, _ = split_net.split(None, input_size=32)
        plan = ExecutionPlan(edge.compile_for_inference(), (4, 3, 32, 32))
        described = plan.describe()
        assert "fused epilogue" in described
        assert "+bias" in described or "+relu" in described or "+hard_swish" in described
        assert "elided" in described


class TestEdgeCases:
    """Residual joins, squeeze-excite, reshape aliasing, standalone acts."""

    def _check(self, module, x, **plan_kwargs):
        module.eval()
        session = module.compile_for_inference()
        reference = session.run(x)
        optimized = PlannedExecutor(session, **plan_kwargs)
        np.testing.assert_allclose(optimized.run(x), reference, atol=_ATOL)
        unoptimized = PlannedExecutor(session, optimize=False)
        np.testing.assert_allclose(unoptimized.run(x), reference, atol=_ATOL)
        return optimized

    def test_residual_join_fuses_into_epilogue(self, split_net, images):
        # The residual add must fold into the producing GEMM without
        # corrupting the skip buffer (its liveness spans the inner chain).
        if "mobilenet" not in type(split_net.backbone).__name__.lower():
            session = split_net.compile_for_inference()
            has_residual = any(
                isinstance(op, fuse.ResidualOp) for op in session._walk()
            )
            if not has_residual:
                pytest.skip("backbone has no residual blocks")
        executor = PlannedExecutor(split_net.compile_for_inference())
        _assert_outputs_match(
            executor.run(images[:8]),
            split_net.compile_for_inference().run(images[:8]),
        )

    def test_stacked_residuals_in_place_add_liveness(self, rng):
        # Regression: the in-place residual add takes over the inner
        # buffer's storage at bind time; the binder must extend that
        # block's liveness to the output's readers, or the arena frees
        # it mid-program and hands it to the next same-size value (the
        # following block's depthwise conv, which then zero-fills its
        # own live input).  Hit hardest with identity-expand blocks.
        from repro.models.blocks import InvertedResidualBlock
        from repro.models.specs import InvertedResidual

        module = nn.Sequential(
            InvertedResidualBlock(
                16, InvertedResidual(32, 16, 3, 1, False, "relu"), rng=rng
            ),
            InvertedResidualBlock(  # identity expand: inner starts depthwise
                16, InvertedResidual(16, 16, 3, 1, False, "relu"), rng=rng
            ),
        )
        x = rng.normal(size=(4, 16, 8, 8)).astype(np.float32)
        self._check(module, x)

    def test_squeeze_excite_mean_gemm(self, rng):
        # SE pooling runs as a GEMM after kernel selection; equivalence
        # must hold bit-tight on the gate path.
        from repro.models.blocks import SqueezeExciteBlock

        module = nn.Sequential(
            nn.Conv2d(8, 8, 1, rng=rng),
            SqueezeExciteBlock(8, reduced=2, rng=rng),
        )
        x = rng.normal(size=(5, 8, 6, 6)).astype(np.float32)
        self._check(module, x)

    def test_reshape_alias_chain(self, rng):
        # flatten -> linear: the view must stay a storage alias (no copy)
        # while the GEMM reads through the aliased shape.
        module = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=rng),
            nn.Flatten(),
            nn.Linear(4 * 6 * 6, 5, rng=rng),
        )
        x = rng.normal(size=(4, 3, 6, 6)).astype(np.float32)
        executor = self._check(module, x)
        assert executor.stats.aliased_views >= 1

    def test_standalone_act_elides_copy(self, rng):
        # conv+relu fuses; the trailing ReLU6 lowers to a standalone
        # ActOp whose copy the optimizer elides (sole reader -> in place).
        module = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, rng=rng), nn.ReLU(), nn.ReLU6()
        )
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        executor = self._check(module, x)
        assert executor.stats.elided_copies >= 1

    def test_affine_after_fused_act_joins_epilogue(self, rng):
        # conv+relu followed by BN: fuse-level folding is blocked by the
        # activation, so the plan-level pass must fuse the affine into
        # the epilogue (bit-exact) instead.
        module = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.BatchNorm2d(6),
        )
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        executor = self._check(module, x)
        assert executor.stats.fused_steps >= 1

    def test_exact_affine_fold_into_bias(self, rng):
        # A pure-shift affine (scale of all ones) folds exactly into the
        # producer's bias stream — the "fold where exact" branch.
        conv = fuse.ConvOp(
            rng.normal(size=(4, 3, 1, 1)).astype(np.float32),
            rng.normal(size=4).astype(np.float32),
            stride=1, padding=0,
        )
        affine = fuse.AffineOp(
            np.ones(4, dtype=np.float32),
            rng.normal(size=4).astype(np.float32),
            view=(1, -1, 1, 1),
        )
        session = fuse.InferenceSession([conv, affine])
        x = rng.normal(size=(3, 3, 5, 5)).astype(np.float32)
        plan = ExecutionPlan(session, x.shape)
        np.testing.assert_allclose(plan.run(x), session.run(x), atol=_ATOL)
        assert plan.stats.folded_affines == 1

    def test_blocked_spmm_equivalence(self, split_net, images):
        # Force row blocking with a tiny L2 budget; outputs must be
        # bit-identical (blocking never changes per-row sums).
        edge, _ = split_net.split(None, input_size=32)
        session = edge.compile_for_inference()
        blocked = ExecutionPlan(session, (6, 3, 32, 32), l2_bytes=1 << 14)
        whole = ExecutionPlan(session, (6, 3, 32, 32))
        x = images[:6]
        np.testing.assert_array_equal(blocked.run(x).copy(), whole.run(x))
        if blocked.stats.sparse_ops:
            assert blocked.stats.blocked_spmm_ops >= 1
            assert blocked.stats.spmm_row_blocks > blocked.stats.blocked_spmm_ops

    def test_intra_op_row_parallel_hook(self, split_net, images):
        # The lone-request latency lever: batch stays whole, eligible
        # steps split output rows across the pool.  Equivalence must
        # hold for batch 1 (the case batch sharding cannot help).
        session = split_net.compile_for_inference()
        executor = PlannedExecutor(session, num_workers=3, intra_op=True)
        for batch in (1, 8):
            x = images[:batch]
            _assert_outputs_match(executor.run(x), session.run(x))
        # One whole-batch plan per shape — the batch is never sharded.
        assert all(
            len(prepared.parts) == 1 for prepared in executor._prepared.values()
        )
        executor.close()

    def test_fallback_op_still_counts_allocs(self, rng):
        module = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, rng=rng),
            nn.GroupNorm(2, 6),  # no lowering rule: FallbackOp
            nn.ReLU(),
        )
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        executor = self._check(module, x)
        assert executor.stats.fallback_ops > 0
        assert executor.stats.steady_state_allocs > 0


class TestPlanCacheLRU:
    def test_lru_keeps_recently_used_shapes(self, split_net, images):
        edge, _ = split_net.split(None, input_size=32)
        executor = PlannedExecutor(edge.compile_for_inference(), max_plans=2)
        executor.run(images[:2])   # shape A
        executor.run(images[:3])   # shape B
        executor.run(images[:2])   # touch A -> B is now least recent
        executor.run(images[:4])   # shape C evicts B, not A
        shapes = {shape[0] for shape in executor._prepared}
        assert shapes == {2, 4}

    def test_max_plans_validated(self, split_net):
        with pytest.raises(ValueError, match="max_plans"):
            PlannedExecutor(split_net.compile_for_inference(), max_plans=0)

    def test_spec_threads_cache_limit_to_executors(self):
        import repro
        from repro.serve import DeploymentSpec

        spec = DeploymentSpec(
            model="vgg_tiny", tasks=(("scale", 8),), max_cached_plans=3
        )
        assert spec.to_dict()["max_cached_plans"] == 3
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec
        with repro.deploy(spec) as deployment:
            assert deployment.pipeline.edge.session.max_plans == 3
            assert deployment.pipeline.server.session.max_plans == 3

    def test_spec_rejects_bad_cache_limit(self):
        from repro.serve import DeploymentSpec, SpecError

        with pytest.raises(SpecError, match="max_cached_plans"):
            DeploymentSpec(
                model="vgg_tiny", tasks=(("scale", 8),), max_cached_plans=0
            )

    def test_spec_optimize_false_binds_reference_plan(self, images):
        import repro
        from repro.serve import DeploymentSpec

        spec = DeploymentSpec(
            model="mobilenet_v3_tiny",
            tasks=(("scale", 8), ("shape", 4)),
            optimize=False,
        )
        with repro.deploy(spec) as deployment:
            deployment.infer(images[:4])
            stats = deployment.pipeline.edge.plan_stats
            assert stats.fused_steps == 0
            assert stats.elided_copies == 0


_PROPERTY_NET = None
_PROPERTY_IMAGES = None


def setup_module(module):
    global _PROPERTY_NET, _PROPERTY_IMAGES
    dataset = data.make_shapes3d(16, tasks=("scale", "shape"), seed=7)
    net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(dataset.tasks), 32, seed=37)
    net.eval()
    _PROPERTY_NET = net
    _PROPERTY_IMAGES = dataset.images
