"""CLI tests: every subcommand runs and prints what it promises."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("profile", "paradigms", "dataset", "split-sweep", "train",
                        "pipeline"):
            args = parser.parse_args([command])
            assert callable(args.func)


class TestProfile:
    def test_summary(self, capsys):
        assert main(["profile", "--backbone", "mobilenet_v3_small"]) == 0
        out = capsys.readouterr().out
        assert "params" in out and "Z_b" in out

    def test_layers_flag(self, capsys):
        assert main(["profile", "--backbone", "vgg_tiny", "--layers",
                     "--input-size", "32"]) == 0
        out = capsys.readouterr().out
        assert "layer0.conv" in out

    def test_table4_flag(self, capsys):
        assert main(["profile", "--backbone", "efficientnet_b0", "--table4"]) == 0
        assert "Zb size (MB)" in capsys.readouterr().out


class TestParadigms:
    def test_comparison_printed(self, capsys):
        assert main(["paradigms", "--backbone", "mobilenet_v3_small",
                     "--tasks", "2", "--input-size", "224"]) == 0
        out = capsys.readouterr().out
        assert "LoC" in out and "RoC" in out and "SC" in out

    def test_degraded_bandwidth(self, capsys):
        assert main(["paradigms", "--backbone", "mobilenet_v3_small",
                     "--tasks", "2", "--input-size", "224",
                     "--bandwidth-mbps", "10"]) == 0
        assert "SC" in capsys.readouterr().out


class TestDataset:
    def test_summary(self, capsys):
        assert main(["dataset", "--name", "faces", "--samples", "30"]) == 0
        out = capsys.readouterr().out
        assert "age" in out and "entropy" in out

    def test_unknown_dataset(self, capsys):
        assert main(["dataset", "--name", "imagenet"]) == 2

    def test_export_grid(self, tmp_path, capsys):
        path = tmp_path / "grid.ppm"
        assert main(["dataset", "--name", "shapes3d", "--samples", "8",
                     "--export", str(path), "--grid", "8"]) == 0
        assert path.exists()


class TestSplitSweep:
    def test_sweep_marks_optimum(self, capsys):
        assert main(["split-sweep", "--backbone", "mobilenet_v3_small",
                     "--input-size", "224"]) == 0
        out = capsys.readouterr().out
        assert "<- optimal" in out
        assert "input (RoC)" in out


class TestPipeline:
    def test_throughput_report_printed(self, capsys):
        assert main(["pipeline", "--backbone", "mobilenet_v3_tiny",
                     "--batches", "2", "--batch-size", "8", "--epochs", "0"]) == 0
        out = capsys.readouterr().out
        assert "planned engine" in out
        assert "pipelined makespan" in out
        assert "critical path" in out
        assert "arena preallocated" in out

    def test_no_plan_falls_back_to_fused(self, capsys):
        assert main(["pipeline", "--backbone", "mobilenet_v3_tiny",
                     "--batches", "2", "--batch-size", "8", "--epochs", "0",
                     "--no-plan"]) == 0
        out = capsys.readouterr().out
        assert "fused/compiled halves" in out

    def test_num_workers_sharded_run(self, capsys):
        assert main(["pipeline", "--backbone", "mobilenet_v3_tiny",
                     "--batches", "2", "--batch-size", "8", "--epochs", "0",
                     "--num-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "planned engine (2 worker(s))" in out
        assert "2 worker(s)" in out

    def test_rejects_degenerate_arguments(self, capsys):
        assert main(["pipeline", "--batches", "0"]) == 2
        assert main(["pipeline", "--bandwidth-mbps", "0"]) == 2
        assert main(["pipeline", "--num-workers", "0"]) == 2

    def test_uncompiled_fallback(self, capsys):
        assert main(["pipeline", "--batches", "2", "--batch-size", "4",
                     "--epochs", "0", "--no-compiled", "--wire", "float16"]) == 0
        out = capsys.readouterr().out
        assert "eval-mode halves" in out
        assert "batches/s" in out


class TestTrain:
    def test_quick_training_run(self, capsys):
        assert main(["train", "--backbone", "mobilenet_v3_tiny",
                     "--samples", "90", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "test scale" in out and "test shape" in out


class TestAttest:
    def test_verify_quick_tier_matches(self, capsys):
        assert main(["attest", "verify"]) == 0
        out = capsys.readouterr().out
        assert "all attestations match" in out
        assert "host-gated tier" in out  # hires goldens named as skipped

    def test_verify_single_scenario(self, capsys):
        assert main(["attest", "verify", "--scenario", "vgg_quick_32px"]) == 0
        assert "ok       vgg_quick_32px" in capsys.readouterr().out

    def test_record_refuses_overwrite_without_update(self, capsys):
        assert main(["attest", "record", "--scenario", "vgg_quick_32px"]) == 0
        assert "exists" in capsys.readouterr().out

    def test_unknown_scenario_is_a_usage_error(self, capsys):
        assert main(["attest", "verify", "--scenario", "no_such_scenario"]) == 2
