"""Property + integration tests for the quant8 compute tier.

Three layers of contract:

1. the pure requantization helpers — round-trip error bounded by half a
   quantization step, hard saturation at the int8 edges, and NaN/Inf
   *rejected* rather than silently saturated (the same policy the PR 2
   wire-codec fix established);
2. the :class:`QuantizedPlan` overlay — the calibration batch runs the
   float plan and is bit-exact, steady-state batches stay within the
   documented accuracy envelope, and non-finite inputs raise;
3. the tier wiring — ``compute="quant8"`` threads through
   ``plan_session`` / ``compile_for_inference`` / ``DeploymentSpec`` /
   the scenario registry with the planned-engine precondition enforced.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import data
from repro.core import MTLSplitNet
from repro.nn.engine import ExecutionPlan, QuantizationError, QuantizedPlan
from repro.nn.engine.quant import (
    QMAX,
    dequantize,
    quantize_int8,
    requantize,
    symmetric_scale,
)
from repro.scenarios import get_scenario
from repro.serve import DeploymentSpec, SpecError

_FINITE = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False,
    width=32,
)


class TestRequantHelpers:
    """Pure-function properties of the quantization arithmetic."""

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(_FINITE, min_size=1, max_size=64))
    def test_round_trip_error_bounded_by_half_step(self, values):
        x = np.array(values, dtype=np.float32)
        scale = symmetric_scale(float(np.max(np.abs(x))))
        q = quantize_int8(x, scale)
        err = np.abs(dequantize(q, scale) - x)
        # scale derived from the actual amax: nothing saturates, so the
        # reconstruction error is at most half a quantization step
        assert np.all(err <= scale / 2 + 1e-7 * np.abs(x))

    @settings(max_examples=50, deadline=None)
    @given(
        magnitude=st.floats(min_value=1.0, max_value=1e4),
        scale=st.floats(min_value=1e-6, max_value=1.0),
    )
    def test_saturation_at_int8_edges(self, magnitude, scale):
        edge = QMAX * scale
        x = np.array(
            [edge * (1 + magnitude), -edge * (1 + magnitude)], dtype=np.float32
        )
        q = quantize_int8(x, scale)
        assert q.tolist() == [QMAX, -QMAX]

    def test_nan_inf_rejected_not_saturated(self):
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(QuantizationError):
                quantize_int8(np.array([1.0, bad], dtype=np.float32), 0.1)

    def test_bad_scales_rejected(self):
        x = np.ones(3, dtype=np.float32)
        for scale in (0.0, -1.0, np.nan, np.inf):
            with pytest.raises(QuantizationError):
                quantize_int8(x, scale)

    def test_symmetric_scale_rejects_and_floors(self):
        for amax in (-1.0, np.nan, np.inf):
            with pytest.raises(QuantizationError):
                symmetric_scale(amax)
        # all-zero tensors get a floored scale, not a division by zero
        assert symmetric_scale(0.0) == pytest.approx(1e-12 / QMAX)

    @settings(max_examples=50, deadline=None)
    @given(
        acc=st.lists(
            st.integers(-(2**30), 2**30), min_size=1, max_size=32
        ),
        multiplier=st.floats(min_value=1e-9, max_value=10.0),
    )
    def test_requantize_saturates_into_int8_range(self, acc, multiplier):
        out = requantize(np.array(acc, dtype=np.int32), multiplier)
        assert out.dtype == np.int32
        assert np.all(out >= -QMAX) and np.all(out <= QMAX)


@pytest.fixture(scope="module")
def quant_setup():
    tasks = data.make_shapes3d(4, tasks=("scale", "shape"), seed=7).tasks
    net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(tasks), 32, seed=31)
    net.eval()
    session = net.compile_for_inference()
    images = data.make_shapes3d(16, tasks=("scale", "shape"), seed=11).images
    return session, images


class TestQuantizedPlan:
    """The overlay's accuracy and failure contracts on a real backbone."""

    def test_calibration_batch_is_bit_exact_float(self, quant_setup):
        session, images = quant_setup
        x = images[:4]
        float_plan = ExecutionPlan(session, x.shape)
        qplan = QuantizedPlan(ExecutionPlan(session, x.shape))
        reference = float_plan.run(x)
        first = qplan.run(x)
        for name in reference:
            np.testing.assert_array_equal(first[name], reference[name])
        assert qplan.calibrated

    def test_steady_state_accuracy_envelope(self, quant_setup):
        session, images = quant_setup
        x = images[:4]
        float_plan = ExecutionPlan(session, x.shape)
        qplan = QuantizedPlan(ExecutionPlan(session, x.shape))
        qplan.run(x)  # calibration
        reference = float_plan.run(images[4:8])
        quant = qplan.run(images[4:8])
        for name in reference:
            delta = float(np.max(np.abs(quant[name] - reference[name])))
            assert delta < 1e-2, (name, delta)

    def test_nonfinite_input_raises(self, quant_setup):
        session, images = quant_setup
        x = images[:4]
        qplan = QuantizedPlan(ExecutionPlan(session, x.shape))
        qplan.run(x)
        bad = x.copy()
        bad[0, 0, 0, 0] = np.nan
        with pytest.raises(QuantizationError):
            qplan.run(bad)

    def test_describe_and_stats(self, quant_setup):
        session, images = quant_setup
        x = images[:4]
        qplan = QuantizedPlan(ExecutionPlan(session, x.shape))
        assert qplan.stats.quant_steps > 0
        text = qplan.describe()
        assert "quant8 overlay" in text
        assert "pending first batch" in text
        qplan.run(x)
        assert "calibrated" in qplan.describe()


class TestTierWiring:
    """compute='quant8' threads through every serving layer correctly."""

    def test_plan_session_compute_quant8(self, quant_setup):
        session, images = quant_setup
        from repro.nn.engine import plan_session

        executor = plan_session(session, compute="quant8")
        x = images[:4]
        first = executor.run(x)
        reference = ExecutionPlan(session, x.shape).run(x)
        for name in reference:
            np.testing.assert_array_equal(first[name], reference[name])

    def test_compile_for_inference_requires_planned_engine(self):
        tasks = data.make_shapes3d(4, tasks=("scale", "shape"), seed=7).tasks
        net = MTLSplitNet.from_tasks("vgg_tiny", list(tasks), 32, seed=31)
        net.eval()
        with pytest.raises(ValueError, match="quant8"):
            net.compile_for_inference(plan=False, compute="quant8")

    def test_deployment_spec_validates_compute(self):
        tasks = (("a", 2),)
        with pytest.raises(SpecError, match="compute"):
            DeploymentSpec(model="vgg_tiny", tasks=tasks, compute="int4")
        with pytest.raises(SpecError, match="planned"):
            DeploymentSpec(
                model="vgg_tiny", tasks=tasks, planned=False, compute="quant8"
            )
        spec = DeploymentSpec(model="vgg_tiny", tasks=tasks, compute="quant8")
        assert spec.to_dict()["compute"] == "quant8"
        assert "compute=quant8" in spec.describe()
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_quant8_scenarios_registered(self):
        for family in ("mobilenetv3", "efficientnet", "vgg"):
            scenario = get_scenario(f"{family}_hires_224px_quant8")
            assert scenario.compute == "quant8"
            assert scenario.input_size == 224
            assert scenario.tier == "hires"
            # the float32 hires reference row still exists alongside
            reference = get_scenario(f"{family}_hires_224px")
            assert reference.compute == "float32"
