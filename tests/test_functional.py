"""Forward-semantics tests for ``repro.nn.functional`` against manual
references (scipy correlate for convolution, closed forms elsewhere)."""

import numpy as np
import pytest
from scipy.ndimage import correlate

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestActivationsForward:
    def test_relu_values(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(F.relu(x).data, [0.0, 0.0, 2.0])

    def test_relu6_caps(self):
        x = Tensor(np.array([-1.0, 3.0, 9.0]))
        np.testing.assert_allclose(F.relu6(x).data, [0.0, 3.0, 6.0])

    def test_sigmoid_extremes_stable(self):
        x = Tensor(np.array([-500.0, 0.0, 500.0]))
        y = F.sigmoid(x).data
        assert np.isfinite(y).all()
        np.testing.assert_allclose(y, [0.0, 0.5, 1.0], atol=1e-6)

    def test_hard_sigmoid_piecewise(self):
        x = Tensor(np.array([-4.0, 0.0, 4.0]))
        np.testing.assert_allclose(F.hard_sigmoid(x).data, [0.0, 0.5, 1.0])

    def test_hard_swish_matches_definition(self):
        vals = np.array([-4.0, -1.0, 0.0, 1.0, 4.0], dtype=np.float32)
        expected = vals * np.clip(vals + 3, 0, 6) / 6
        np.testing.assert_allclose(F.hard_swish(Tensor(vals)).data, expected, atol=1e-6)

    def test_silu_matches_definition(self):
        vals = np.array([-2.0, 0.0, 2.0], dtype=np.float32)
        expected = vals / (1 + np.exp(-vals))
        np.testing.assert_allclose(F.silu(Tensor(vals)).data, expected, atol=1e-6)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((5, 7)))
        s = F.softmax(x).data
        np.testing.assert_allclose(s.sum(axis=1), np.ones(5), atol=1e-6)
        assert (s >= 0).all()

    def test_softmax_shift_invariant(self):
        x = np.random.default_rng(1).standard_normal((3, 4)).astype(np.float32)
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_log_softmax_large_logits_stable(self):
        x = Tensor(np.array([[1000.0, 0.0]], dtype=np.float32))
        y = F.log_softmax(x).data
        assert np.isfinite(y).all()


class TestConvForward:
    def test_matches_scipy_single_channel(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 1, 8, 8)).astype(np.float32)
        w = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), padding=1).data[0, 0]
        ref = correlate(x[0, 0], w[0, 0], mode="constant", cval=0.0)
        np.testing.assert_allclose(out, ref, atol=1e-4)

    def test_multi_channel_sums_inputs(self):
        x = np.ones((1, 3, 4, 4), dtype=np.float32)
        w = np.ones((2, 3, 1, 1), dtype=np.float32)
        out = F.conv2d(Tensor(x), Tensor(w)).data
        np.testing.assert_allclose(out, np.full((1, 2, 4, 4), 3.0))

    def test_bias_added(self):
        x = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w = np.zeros((2, 1, 1, 1), dtype=np.float32)
        b = np.array([1.5, -2.0], dtype=np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b)).data
        np.testing.assert_allclose(out[0, 0], np.full((3, 3), 1.5))
        np.testing.assert_allclose(out[0, 1], np.full((3, 3), -2.0))

    def test_stride_output_size(self):
        x = Tensor(np.zeros((1, 1, 9, 9), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        assert F.conv2d(x, w, stride=2).shape == (1, 1, 4, 4)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (1, 1, 5, 5)

    def test_depthwise_keeps_channels_independent(self):
        x = np.zeros((1, 2, 4, 4), dtype=np.float32)
        x[0, 0] = 1.0
        w = np.ones((2, 1, 1, 1), dtype=np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), groups=2).data
        np.testing.assert_allclose(out[0, 0], np.ones((4, 4)))
        np.testing.assert_allclose(out[0, 1], np.zeros((4, 4)))

    def test_group_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((4, 1, 1, 1), dtype=np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w, groups=2)

    def test_empty_output_raises(self):
        x = Tensor(np.zeros((1, 1, 2, 2), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 5, 5), dtype=np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_grouped_matches_blockwise_standard(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 4, 6, 6)).astype(np.float32)
        w = rng.standard_normal((6, 2, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), padding=1, groups=2).data
        ref0 = F.conv2d(Tensor(x[:, :2]), Tensor(w[:3]), padding=1).data
        ref1 = F.conv2d(Tensor(x[:, 2:]), Tensor(w[3:]), padding=1).data
        np.testing.assert_allclose(out, np.concatenate([ref0, ref1], axis=1), atol=1e-5)


class TestPoolingForward:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avg_pool_shape_and_value(self):
        x = np.ones((2, 3, 5, 5), dtype=np.float32) * 2.0
        out = F.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(out.data, np.full((2, 3, 1, 1), 2.0))

    def test_adaptive_pool_divisible(self):
        x = Tensor(np.ones((1, 2, 8, 8), dtype=np.float32))
        assert F.adaptive_avg_pool2d(x, 4).shape == (1, 2, 4, 4)

    def test_adaptive_pool_indivisible_raises(self):
        x = Tensor(np.ones((1, 2, 7, 7), dtype=np.float32))
        with pytest.raises(ValueError):
            F.adaptive_avg_pool2d(x, 3)

    def test_conv_output_size(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(7, 2, 2, 0) == 3


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((100,)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_p_is_identity(self):
        x = Tensor(np.ones((100,)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_training_mean_preserved(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((20000,)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_backward_uses_same_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((1000,)), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        zero_out = out.data == 0
        assert (x.grad[zero_out] == 0).all()
        assert (x.grad[~zero_out] > 0).all()


class TestLossesForward:
    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 5), dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(5), abs=1e-5)

    def test_cross_entropy_confident_correct_is_small(self):
        logits = np.full((2, 3), -10.0, dtype=np.float32)
        logits[0, 1] = 10.0
        logits[1, 2] = 10.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-4

    def test_nll_reduction_none(self):
        logp = F.log_softmax(Tensor(np.zeros((3, 2), dtype=np.float32)))
        loss = F.nll_loss(logp, np.array([0, 1, 0]), reduction="none")
        assert loss.shape == (3,)

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError):
            F.mse_loss(Tensor(np.zeros(3)), np.zeros(3), reduction="bogus")

    def test_mse_value(self):
        loss = F.mse_loss(Tensor(np.array([1.0, 3.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)

    def test_bce_matches_closed_form(self):
        z = np.array([0.5, -1.0], dtype=np.float32)
        y = np.array([1.0, 0.0], dtype=np.float32)
        loss = F.binary_cross_entropy_with_logits(Tensor(z), y)
        expected = np.mean(np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z))))
        assert loss.item() == pytest.approx(float(expected), abs=1e-6)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])


class TestBatchNormForward:
    def test_training_normalises_batch(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((16, 4, 3, 3)).astype(np.float32) * 5 + 2)
        w = Tensor(np.ones(4, dtype=np.float32))
        b = Tensor(np.zeros(4, dtype=np.float32))
        rm, rv = np.zeros(4, dtype=np.float32), np.ones(4, dtype=np.float32)
        y = F.batch_norm(x, w, b, rm, rv, training=True).data
        assert abs(y.mean()) < 1e-4
        assert y.std() == pytest.approx(1.0, abs=1e-2)

    def test_running_stats_updated(self):
        x = Tensor(np.full((8, 2, 2, 2), 3.0, dtype=np.float32))
        w = Tensor(np.ones(2, dtype=np.float32))
        b = Tensor(np.zeros(2, dtype=np.float32))
        rm, rv = np.zeros(2, dtype=np.float32), np.ones(2, dtype=np.float32)
        F.batch_norm(x, w, b, rm, rv, training=True, momentum=0.5)
        np.testing.assert_allclose(rm, [1.5, 1.5])

    def test_eval_uses_running_stats(self):
        x = Tensor(np.full((4, 1), 10.0, dtype=np.float32))
        w = Tensor(np.ones(1, dtype=np.float32))
        b = Tensor(np.zeros(1, dtype=np.float32))
        rm = np.array([10.0], dtype=np.float32)
        rv = np.array([4.0], dtype=np.float32)
        y = F.batch_norm(x, w, b, rm, rv, training=False).data
        np.testing.assert_allclose(y, np.zeros((4, 1)), atol=1e-5)
