"""DeploymentSpec: dict/JSON round-trip property, validation messages."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deployment import DEGRADED_EDGE_LINK, NetworkChannel
from repro.deployment.device import Device
from repro.serve import DeploymentSpec, SpecError

_BACKBONES = ("vgg_tiny", "mobilenet_v3_tiny", "efficientnet_tiny")
_CHANNEL_NAMES = ("gigabit_ethernet", "wifi_5", "lte_uplink", "degraded_edge_link")
_DEVICE_NAMES = ("jetson_nano", "rtx3090_server", "raspberry_pi_4", "generic_server")

_task_names = st.text(
    alphabet="abcdefghij_", min_size=1, max_size=8
)
_tasks = st.lists(
    st.tuples(_task_names, st.integers(1, 12)),
    min_size=1,
    max_size=4,
    unique_by=lambda pair: pair[0],
).map(tuple)

_channels = st.one_of(
    st.sampled_from(_CHANNEL_NAMES),
    st.builds(
        NetworkChannel,
        name=st.sampled_from(("custom-link", "lab wifi")),
        bandwidth_bps=st.floats(1e5, 1e10, allow_nan=False),
        rtt_seconds=st.floats(0.0, 0.5, allow_nan=False),
        overhead_fraction=st.floats(0.0, 0.5, allow_nan=False),
    ),
)

_devices = st.one_of(
    st.sampled_from(_DEVICE_NAMES),
    st.builds(
        Device,
        name=st.sampled_from(("bench-board", "lab server")),
        memory_bytes=st.integers(1, 2**36),
        flops_per_second=st.floats(1e6, 1e14, allow_nan=False),
    ),
)

_specs = st.builds(
    DeploymentSpec,
    model=st.sampled_from(_BACKBONES),
    tasks=_tasks,
    input_size=st.sampled_from((8, 16, 32, 64)),
    split_index=st.one_of(st.none(), st.just("auto"), st.integers(1, 6)),
    wire=st.sampled_from(("float32", "float16", "quant8")),
    channel=_channels,
    edge_device=_devices,
    server_device=_devices,
    compiled=st.booleans(),
    planned=st.booleans(),
    num_workers=st.integers(1, 8),
    max_batch_size=st.integers(1, 32),
    max_queue_delay_ms=st.floats(0.0, 50.0, allow_nan=False),
    seed=st.integers(0, 2**31 - 1),
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(spec=_specs)
    def test_dict_round_trip(self, spec):
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=60, deadline=None)
    @given(spec=_specs)
    def test_json_round_trip(self, spec):
        assert DeploymentSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=20, deadline=None)
    @given(spec=_specs)
    def test_to_dict_is_stable(self, spec):
        # Serialising twice (directly, and via the round-tripped spec)
        # yields the identical payload — configs can be diffed textually.
        again = DeploymentSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()

    def test_wireformat_instances_normalise(self):
        from repro.deployment import WireFormat

        spec = DeploymentSpec(
            model="vgg_tiny", tasks=(("a", 2),), wire=WireFormat("quant8")
        )
        assert spec.wire == "quant8"
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_module_specs_do_not_serialise(self, tiny_trained_net):
        spec = DeploymentSpec(model=tiny_trained_net)
        with pytest.raises(SpecError, match="in-memory"):
            spec.to_dict()

    def test_replace_revalidates(self):
        spec = DeploymentSpec(model="vgg_tiny", tasks=(("a", 2),))
        assert spec.replace(num_workers=3).num_workers == 3
        with pytest.raises(SpecError, match="num_workers"):
            spec.replace(num_workers=0)


class TestValidation:
    def test_unknown_backbone(self):
        with pytest.raises(SpecError, match="unknown backbone 'resnet50'"):
            DeploymentSpec(model="resnet50", tasks=(("a", 2),))

    def test_tasks_required_for_named_model(self):
        with pytest.raises(SpecError, match="tasks must be non-empty"):
            DeploymentSpec(model="vgg_tiny")

    def test_duplicate_task_names(self):
        with pytest.raises(SpecError, match="unique"):
            DeploymentSpec(model="vgg_tiny", tasks=(("a", 2), ("a", 3)))

    def test_bad_num_classes(self):
        with pytest.raises(SpecError, match="num_classes >= 1"):
            DeploymentSpec(model="vgg_tiny", tasks=(("a", 0),))

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "half"])
    def test_bad_split_index(self, bad):
        with pytest.raises(SpecError, match="split_index"):
            DeploymentSpec(model="vgg_tiny", tasks=(("a", 2),), split_index=bad)

    def test_non_positive_workers(self):
        with pytest.raises(SpecError, match="num_workers must be a positive int"):
            DeploymentSpec(model="vgg_tiny", tasks=(("a", 2),), num_workers=0)

    def test_bad_wire(self):
        with pytest.raises(SpecError, match="unknown wire dtype"):
            DeploymentSpec(model="vgg_tiny", tasks=(("a", 2),), wire="int4")

    def test_unknown_channel_preset(self):
        with pytest.raises(SpecError, match="unknown channel 'pigeon'"):
            DeploymentSpec(model="vgg_tiny", tasks=(("a", 2),), channel="pigeon")

    def test_unknown_device_preset(self):
        with pytest.raises(SpecError, match="unknown device"):
            DeploymentSpec(
                model="vgg_tiny", tasks=(("a", 2),), edge_device="abacus"
            )

    def test_bad_batching_knobs(self):
        with pytest.raises(SpecError, match="max_batch_size"):
            DeploymentSpec(model="vgg_tiny", tasks=(("a", 2),), max_batch_size=0)
        with pytest.raises(SpecError, match="max_queue_delay_ms"):
            DeploymentSpec(
                model="vgg_tiny", tasks=(("a", 2),), max_queue_delay_ms=-1.0
            )

    def test_small_input_size(self):
        with pytest.raises(SpecError, match="input_size"):
            DeploymentSpec(model="vgg_tiny", tasks=(("a", 2),), input_size=4)

    def test_from_dict_rejects_unknown_keys(self):
        spec = DeploymentSpec(model="vgg_tiny", tasks=(("a", 2),))
        data = spec.to_dict()
        data["wired"] = "float32"
        with pytest.raises(SpecError, match="unknown DeploymentSpec keys"):
            DeploymentSpec.from_dict(data)

    def test_from_json_rejects_non_objects(self):
        with pytest.raises(SpecError, match="JSON"):
            DeploymentSpec.from_json("[1, 2]")
        with pytest.raises(SpecError, match="invalid"):
            DeploymentSpec.from_json("{not json")

    def test_spec_error_is_value_error(self):
        with pytest.raises(ValueError):
            DeploymentSpec(model="vgg_tiny", tasks=(("a", 2),), num_workers=-1)

    def test_channel_dict_is_adopted(self):
        spec = DeploymentSpec(
            model="vgg_tiny",
            tasks=(("a", 2),),
            channel=dataclasses.asdict(DEGRADED_EDGE_LINK),
        )
        assert spec.channel == DEGRADED_EDGE_LINK
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec
