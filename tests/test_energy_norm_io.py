"""Tests for the energy model, batch-independent norms, optimizer
checkpointing and dataset-inspection utilities."""

import numpy as np
import pytest

from repro import data, models, nn
from repro.deployment import (
    GIGABIT_ETHERNET,
    JETSON_NANO,
    JETSON_NANO_ENERGY,
    LTE_UPLINK,
    RTX3090_SERVER,
    EnergyModel,
    energy_profile,
    latency_profile,
    lowest_edge_energy_split,
)
from repro.nn.autograd import gradcheck
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def spec():
    return models.get_spec("mobilenet_v3_small")


class TestEnergyModel:
    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(joules_per_flop=-1.0)

    def test_profile_aligned_with_latency(self, spec):
        energy = energy_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        latency = latency_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        assert len(energy) == len(latency)
        for e, l in zip(energy, latency):
            assert e.stage_index == l.stage_index

    def test_total_is_sum(self, spec):
        for point in energy_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET):
            assert point.total_joules == pytest.approx(
                point.compute_joules + point.transmit_joules + point.idle_joules
            )

    def test_roc_has_zero_compute_energy(self, spec):
        profile = energy_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        assert profile[0].stage_index == -1
        assert profile[0].compute_joules == 0.0
        assert profile[0].transmit_joules > 0.0

    def test_compute_energy_monotone_in_cut(self, spec):
        profile = energy_profile(spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET)
        compute = [p.compute_joules for p in profile]
        assert compute == sorted(compute)

    def test_optimum_is_minimum(self, spec):
        best = lowest_edge_energy_split(spec, JETSON_NANO, RTX3090_SERVER, LTE_UPLINK)
        profile = energy_profile(spec, JETSON_NANO, RTX3090_SERVER, LTE_UPLINK)
        assert best.total_joules == min(p.total_joules for p in profile)

    def test_expensive_radio_pushes_cut_deeper(self, spec):
        cheap_radio = EnergyModel(joules_per_flop=2e-10, joules_per_byte_tx=1e-9,
                                  idle_watts=0.0)
        costly_radio = EnergyModel(joules_per_flop=2e-10, joules_per_byte_tx=1e-5,
                                   idle_watts=0.0)
        best_cheap = lowest_edge_energy_split(
            spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET, cheap_radio
        )
        best_costly = lowest_edge_energy_split(
            spec, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET, costly_radio
        )
        assert best_costly.latency.transmit_elements <= best_cheap.latency.transmit_elements

    def test_preset_exists(self):
        assert JETSON_NANO_ENERGY.joules_per_flop > 0


class TestGroupLayerNorm:
    def test_group_norm_normalises_per_sample(self):
        gn = nn.GroupNorm(2, 8)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 8, 3, 3)).astype(np.float32) * 5)
        y = gn(x).data
        # per-sample, per-group statistics should be ~N(0,1)
        grouped = y.reshape(4, 2, -1)
        np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-4)
        np.testing.assert_allclose(grouped.std(axis=2), 1.0, atol=1e-2)

    def test_group_norm_same_train_eval(self):
        gn = nn.GroupNorm(4, 8)
        x = Tensor(np.random.default_rng(1).standard_normal((2, 8, 4, 4)).astype(np.float32))
        train_out = gn(x).data
        gn.eval()
        np.testing.assert_array_equal(gn(x).data, train_out)

    def test_group_norm_divisibility(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 8)

    def test_group_norm_wrong_channels(self):
        gn = nn.GroupNorm(2, 8)
        with pytest.raises(ValueError):
            gn(Tensor(np.zeros((1, 4, 2, 2), dtype=np.float32)))

    def test_group_norm_gradcheck(self):
        gn = nn.GroupNorm(2, 4)
        x = Tensor(
            np.random.default_rng(2).standard_normal((2, 4, 3, 3)), requires_grad=True
        )
        gn.weight.data = gn.weight.data.astype(np.float64)
        gn.bias.data = gn.bias.data.astype(np.float64)
        ok, msg = gradcheck(lambda t: gn(t), [x], atol=5e-4)
        assert ok, msg

    def test_layer_norm_normalises_features(self):
        ln = nn.LayerNorm(16)
        x = Tensor(np.random.default_rng(3).standard_normal((8, 16)).astype(np.float32) * 3 + 1)
        y = ln(x).data
        np.testing.assert_allclose(y.mean(axis=1), 0.0, atol=1e-4)

    def test_layer_norm_wrong_width(self):
        with pytest.raises(ValueError):
            nn.LayerNorm(8)(Tensor(np.zeros((2, 4), dtype=np.float32)))

    def test_layer_norm_gradcheck(self):
        ln = nn.LayerNorm(6)
        ln.weight.data = ln.weight.data.astype(np.float64)
        ln.bias.data = ln.bias.data.astype(np.float64)
        x = Tensor(np.random.default_rng(4).standard_normal((3, 6)), requires_grad=True)
        ok, msg = gradcheck(lambda t: ln(t), [x], atol=5e-4)
        assert ok, msg


class TestOptimizerCheckpoint:
    def _make(self):
        param = nn.Parameter(np.ones(4, dtype=np.float32))
        opt = nn.AdamW([param], lr=0.05)
        for _ in range(3):
            param.grad = np.ones(4, dtype=np.float32)
            opt.step()
        return param, opt

    def test_roundtrip_preserves_trajectory(self):
        param_a, opt_a = self._make()
        snapshot = opt_a.state_dict()

        param_b = nn.Parameter(param_a.data.copy())
        opt_b = nn.AdamW([param_b], lr=0.05)
        opt_b.load_state_dict(snapshot)

        for opt, param in ((opt_a, param_a), (opt_b, param_b)):
            param.grad = np.full(4, 0.5, dtype=np.float32)
            opt.step()
        np.testing.assert_allclose(param_a.data, param_b.data, atol=1e-7)

    def test_state_dict_copies(self):
        _param, opt = self._make()
        snapshot = opt.state_dict()
        key = next(iter(snapshot["state"]))
        snapshot["state"][key]["exp_avg"][...] = 99.0
        fresh = opt.state_dict()
        assert not (fresh["state"][key]["exp_avg"] == 99.0).all()

    def test_group_count_mismatch_raises(self):
        _param, opt = self._make()
        snapshot = opt.state_dict()
        snapshot["param_groups"].append({})
        with pytest.raises(ValueError):
            opt.load_state_dict(snapshot)

    def test_hyperparameters_restored(self):
        _param, opt = self._make()
        snapshot = opt.state_dict()
        opt.param_groups[0]["lr"] = 123.0
        opt.load_state_dict(snapshot)
        assert opt.param_groups[0]["lr"] == 0.05


class TestDatasetIO:
    def test_save_ppm_roundtrip_header(self, tmp_path):
        image = np.random.default_rng(0).random((3, 5, 7)).astype(np.float32)
        path = tmp_path / "img.ppm"
        data.save_ppm(image, path)
        raw = path.read_bytes()
        assert raw.startswith(b"P6\n7 5\n255\n")
        assert len(raw) == len(b"P6\n7 5\n255\n") + 5 * 7 * 3

    def test_save_ppm_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            data.save_ppm(np.zeros((1, 4, 4)), tmp_path / "x.ppm")

    def test_save_image_grid(self, tmp_path):
        images = np.random.default_rng(1).random((5, 3, 8, 8)).astype(np.float32)
        path = tmp_path / "grid.ppm"
        data.save_image_grid(images, path, columns=3)
        assert path.exists()
        # 2 rows x 3 cols of 8px tiles with 2px padding
        assert b"28 18" in path.read_bytes()[:20]

    def test_label_distribution_sums_to_one(self, shapes3d_small):
        dist = data.label_distribution(shapes3d_small)
        for freqs in dist.values():
            assert freqs.sum() == pytest.approx(1.0)

    def test_dataset_summary_mentions_tasks(self, shapes3d_small):
        text = data.dataset_summary(shapes3d_small)
        assert "scale" in text and "shape" in text
        assert "entropy" in text
