"""Mixed classification + regression MTL — the paper's motivating
automotive pairing ("identify the pedestrian" + "find the bounding box")."""

import numpy as np
import pytest

from repro import data
from repro.core import MTLSplitNet, MultiTaskLoss, MultiTaskTrainer, TrainConfig, evaluate
from repro.data.base import MultiTaskDataset, TaskInfo
from repro.nn.tensor import Tensor


class TestTaskInfoKinds:
    def test_classification_default(self):
        task = TaskInfo("t", 3)
        assert task.kind == "classification"
        assert not task.is_regression

    def test_regression_allows_dim_one(self):
        assert TaskInfo("r", 1, kind="regression").is_regression

    def test_classification_rejects_one_class(self):
        with pytest.raises(ValueError):
            TaskInfo("t", 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TaskInfo("t", 3, kind="ranking")


class TestRegressionDatasetValidation:
    def test_float_targets_accepted(self):
        images = np.zeros((4, 3, 8, 8), dtype=np.float32)
        targets = np.random.default_rng(0).random((4, 3)).astype(np.float32)
        ds = MultiTaskDataset(
            images, {"box": targets}, (TaskInfo("box", 3, kind="regression"),)
        )
        assert ds.labels["box"].dtype == np.float32
        _image, sample = ds[0]
        assert sample["box"].shape == (3,)

    def test_dim_one_targets_reshaped(self):
        images = np.zeros((4, 3, 8, 8), dtype=np.float32)
        ds = MultiTaskDataset(
            images, {"depth": np.ones(4)}, (TaskInfo("depth", 1, kind="regression"),)
        )
        assert ds.labels["depth"].shape == (4,)

    def test_wrong_dim_rejected(self):
        images = np.zeros((4, 3, 8, 8), dtype=np.float32)
        with pytest.raises(ValueError):
            MultiTaskDataset(
                images, {"box": np.zeros((4, 2))},
                (TaskInfo("box", 3, kind="regression"),),
            )

    def test_subset_preserves_regression_labels(self):
        images = np.zeros((6, 3, 8, 8), dtype=np.float32)
        targets = np.arange(18, dtype=np.float32).reshape(6, 3)
        ds = MultiTaskDataset(
            images, {"box": targets}, (TaskInfo("box", 3, kind="regression"),)
        )
        sub = ds.subset(np.array([1, 4]))
        np.testing.assert_array_equal(sub.labels["box"], targets[[1, 4]])


class TestMixedLoss:
    def test_regression_task_uses_mse(self):
        tasks = [TaskInfo("cls", 3), TaskInfo("box", 2, kind="regression")]
        criterion = MultiTaskLoss(tasks)
        outputs = {
            "cls": Tensor(np.zeros((4, 3), dtype=np.float32), requires_grad=True),
            "box": Tensor(np.ones((4, 2), dtype=np.float32), requires_grad=True),
        }
        targets = {"cls": np.zeros(4, dtype=np.int64), "box": np.zeros((4, 2))}
        losses = criterion.task_losses(outputs, targets)
        # MSE of constant-1 prediction vs 0 target is exactly 1.
        assert losses["box"].item() == pytest.approx(1.0)
        # CE of uniform logits is log(3).
        assert losses["cls"].item() == pytest.approx(np.log(3), abs=1e-5)

    def test_total_sums_both_kinds(self):
        tasks = [TaskInfo("cls", 3), TaskInfo("box", 2, kind="regression")]
        criterion = MultiTaskLoss(tasks)
        outputs = {
            "cls": Tensor(np.zeros((4, 3), dtype=np.float32), requires_grad=True),
            "box": Tensor(np.ones((4, 2), dtype=np.float32), requires_grad=True),
        }
        targets = {"cls": np.zeros(4, dtype=np.int64), "box": np.zeros((4, 2))}
        total, scalars = criterion(outputs, targets)
        assert total.item() == pytest.approx(scalars["cls"] + scalars["box"], rel=1e-6)

    def test_gradients_flow_to_regression_head(self):
        tasks = [TaskInfo("box", 2, kind="regression")]
        criterion = MultiTaskLoss(tasks)
        out = Tensor(np.ones((4, 2), dtype=np.float32), requires_grad=True)
        total, _ = criterion({"box": out}, {"box": np.zeros((4, 2))})
        total.backward()
        assert out.grad is not None


class TestDetectionWorkload:
    @pytest.fixture(scope="class")
    def detection(self):
        return data.make_shapes3d_detection(240, seed=5)

    @pytest.fixture(scope="class")
    def detection_clean(self):
        # Localisation needs the position signal unburied: no noise,
        # larger offsets (see test_joint_training docstring).
        return data.make_shapes3d_detection(
            640, noise_amount=0.0, max_offset=0.2, seed=5
        )

    def test_tasks(self, detection):
        assert detection.task_info("shape").kind == "classification"
        assert detection.task_info("bbox").kind == "regression"
        assert detection.labels["bbox"].shape == (240, 3)

    def test_bbox_targets_normalised(self, detection):
        boxes = detection.labels["bbox"]
        assert boxes.min() >= 0.0 and boxes.max() <= 1.0

    def test_offsets_give_positional_variance(self, detection):
        # centre-x must actually vary or localisation is degenerate
        assert detection.labels["bbox"][:, 1].std() > 0.02

    def test_reproducible(self):
        a = data.make_shapes3d_detection(20, seed=9)
        b = data.make_shapes3d_detection(20, seed=9)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels["bbox"], b.labels["bbox"])

    @pytest.mark.slow
    def test_joint_training_classify_and_localise(self, detection_clean):
        """Joint classification + localisation, with loss balancing.

        The MSE of normalised box coordinates is ~100x smaller than the
        cross-entropy, so the paper's plain sum (Eq. 4) gradient-starves
        the regression head; static weighting — one of the library's
        weighting strategies — restores the balance.  Verified behaviour:
        the box head beats the mean predictor by a wide margin (R^2).
        """
        train = detection_clean.subset(np.arange(512))
        test = detection_clean.subset(np.arange(512, 640))
        net = MTLSplitNet.from_tasks(
            "mobilenet_v3_tiny", list(detection_clean.tasks), input_size=32, seed=5
        )
        trainer = MultiTaskTrainer(
            TrainConfig(
                epochs=10, batch_size=64, lr=6e-3, seed=5, weighting="static",
                static_weights={"shape": 1.0, "bbox": 60.0},
            )
        )
        history = trainer.fit(net, train)
        assert history.final.total_loss < history.epochs[0].total_loss
        metrics = evaluate(net, test)
        assert metrics["bbox"] > 0.2, f"localisation failed: R^2={metrics['bbox']:.3f}"
        assert metrics["shape"] > 0.25  # above 4-way chance
