"""Overload semantics: admission control, deadlines, conservation.

The batcher owns the deployment's overload policy (bounded queue +
deadlines, ``docs/robustness.md``).  These tests pin the three promises
that policy makes:

* a full queue sheds *at the door* with :class:`RejectedError` — the
  backlog never grows past ``max_queue_depth``;
* a request that out-waits its deadline fails with
  :class:`DeadlineExceededError` and frees its batch slot;
* nothing is ever silently lost — the conservation law
  ``submitted == shed + requests`` and
  ``requests == completed + expired + failed + cancelled`` holds at
  quiescence under arbitrary burst patterns (hypothesis property).
"""

import threading
from concurrent.futures import wait

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    DeadlineExceededError,
    DeploymentSpec,
    DynamicBatcher,
    RejectedError,
    deploy,
)


def _identity_model(images):
    return {"logits": images.sum(axis=tuple(range(1, images.ndim)))[:, None]}


class _GatedModel:
    """Model that blocks until released — lets tests build real backlogs."""

    def __init__(self):
        self.gate = threading.Event()
        self.entered = threading.Event()

    def __call__(self, images):
        self.entered.set()
        assert self.gate.wait(timeout=30), "test never released the gate"
        return _identity_model(images)


class TestAdmissionControl:
    def test_full_queue_sheds_with_rejected_error(self):
        model = _GatedModel()
        batcher = DynamicBatcher(
            model, max_batch_size=1, max_queue_delay_ms=0.0, max_queue_depth=2
        )
        try:
            first = batcher.submit(np.ones((2,)))
            assert model.entered.wait(timeout=10)  # dispatcher busy on `first`
            queued = [batcher.submit(np.ones((2,))) for _ in range(2)]
            with pytest.raises(RejectedError, match="max_queue_depth=2"):
                batcher.submit(np.ones((2,)))
            assert batcher.stats.shed == 1
            assert batcher.stats.submitted == 4
            assert batcher.queue_depth == 2  # the bound really bounds
            model.gate.set()
            wait([first, *queued], timeout=30)
            for future in (first, *queued):
                np.testing.assert_allclose(future.result()["logits"], [2.0])
        finally:
            model.gate.set()
            batcher.close()
        # Shedding is backpressure, not loss: everything accepted completed.
        assert batcher.stats.completed == 3

    def test_unbounded_queue_never_sheds(self):
        with DynamicBatcher(
            _identity_model, max_batch_size=4, max_queue_delay_ms=0.0
        ) as batcher:
            futures = [batcher.submit(np.ones((2,))) for _ in range(32)]
            wait(futures, timeout=30)
        assert batcher.stats.shed == 0
        assert batcher.stats.completed == 32


class TestDeadlines:
    def test_expired_request_fails_and_frees_its_slot(self):
        model = _GatedModel()
        batcher = DynamicBatcher(
            model, max_batch_size=1, max_queue_delay_ms=0.0,
            default_deadline_ms=30.0,
        )
        try:
            first = batcher.submit(np.ones((2,)), deadline_ms=10_000.0)
            assert model.entered.wait(timeout=10)
            doomed = batcher.submit(np.ones((2,)))   # 30 ms default deadline
            patient = batcher.submit(np.ones((2,)), deadline_ms=10_000.0)
            import time
            time.sleep(0.1)                          # let `doomed` expire
            model.gate.set()
            with pytest.raises(DeadlineExceededError, match="expired in queue"):
                doomed.result(timeout=10)
            np.testing.assert_allclose(
                patient.result(timeout=10)["logits"], [2.0]
            )
            np.testing.assert_allclose(first.result(timeout=10)["logits"], [2.0])
        finally:
            model.gate.set()
            batcher.close()
        assert batcher.stats.expired == 1
        assert batcher.stats.completed == 2

    def test_earliest_deadline_dispatched_first(self):
        model = _GatedModel()
        order = []
        batcher = DynamicBatcher(
            model, max_batch_size=1, max_queue_delay_ms=0.0
        )
        try:
            first = batcher.submit(np.ones((2,)))
            assert model.entered.wait(timeout=10)
            relaxed = batcher.submit(np.full((2,), 2.0), deadline_ms=60_000.0)
            urgent = batcher.submit(np.full((2,), 3.0), deadline_ms=5_000.0)
            relaxed.add_done_callback(lambda f: order.append("relaxed"))
            urgent.add_done_callback(lambda f: order.append("urgent"))
            model.gate.set()
            wait([first, relaxed, urgent], timeout=30)
            assert order == ["urgent", "relaxed"]
        finally:
            model.gate.set()
            batcher.close()

    def test_degenerate_deadline_rejected(self):
        with DynamicBatcher(_identity_model) as batcher:
            with pytest.raises(ValueError, match="deadline_ms"):
                batcher.submit(np.ones((2,)), deadline_ms=0.0)
        with pytest.raises(ValueError, match="default_deadline_ms"):
            DynamicBatcher(_identity_model, default_deadline_ms=-5.0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            DynamicBatcher(_identity_model, max_queue_depth=0)


class TestCloseUnderLoad:
    def test_close_fails_stranded_futures_instead_of_hanging(self):
        # If the dispatcher cannot drain within close()'s timeout, the
        # leftovers must fail loudly — a future that never resolves is
        # the one overload outcome the policy forbids.
        model = _GatedModel()
        batcher = DynamicBatcher(model, max_batch_size=1, max_queue_delay_ms=0.0)
        inflight = batcher.submit(np.ones((2,)))
        assert model.entered.wait(timeout=10)
        stranded = [batcher.submit(np.ones((2,))) for _ in range(3)]
        batcher.close(timeout=0.2)  # dispatcher still blocked in the model
        for future in stranded:
            with pytest.raises(RuntimeError, match="still queued"):
                future.result(timeout=10)
        assert batcher.stats.failed == 3
        model.gate.set()  # release the daemon thread
        np.testing.assert_allclose(
            inflight.result(timeout=10)["logits"], [2.0]
        )


class TestConservation:
    @settings(max_examples=15, deadline=None)
    @given(
        queue_depth=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        deadline_ms=st.one_of(st.none(), st.floats(min_value=1.0, max_value=50.0)),
        bursts=st.lists(
            st.integers(min_value=1, max_value=12), min_size=1, max_size=4
        ),
        delay_steps=st.integers(min_value=0, max_value=3),
    )
    def test_submitted_equals_shed_plus_resolved(
        self, queue_depth, deadline_ms, bursts, delay_steps
    ):
        """ISSUE property: shed + completed + expired (+failed+cancelled)
        == submitted, under random burst patterns and random knobs."""
        import time

        model = _GatedModel()
        batcher = DynamicBatcher(
            model,
            max_batch_size=2,
            max_queue_delay_ms=0.0,
            max_queue_depth=queue_depth,
            default_deadline_ms=deadline_ms,
        )
        futures = []
        attempts = 0
        try:
            for burst in bursts:
                for _ in range(burst):
                    attempts += 1
                    try:
                        futures.append(batcher.submit(np.ones((2,))))
                    except RejectedError:
                        pass
                time.sleep(delay_steps * 0.005)
            model.gate.set()
            done, not_done = wait(futures, timeout=30)
            assert not not_done
        finally:
            model.gate.set()
            batcher.close()

        stats = batcher.stats
        assert stats.submitted == attempts
        assert stats.submitted == stats.shed + stats.requests
        assert stats.requests == (
            stats.completed + stats.expired + stats.failed + stats.cancelled
        )
        # Every accepted future resolved: a result or a typed exception.
        for future in futures:
            assert future.done()
            error = future.exception(timeout=0)
            assert error is None or isinstance(error, DeadlineExceededError)


# ---------------------------------------------------------------------------
# Deployment-level wiring of the overload knobs
# ---------------------------------------------------------------------------
class TestDeploymentOverload:
    def test_closed_deployment_names_itself(self, tiny_trained_net):
        # Regression (ISSUE satellite): the error must say *which*
        # deployment refused, not just "closed".
        deployment = deploy(DeploymentSpec(model=tiny_trained_net))
        deployment.close()
        with pytest.raises(RuntimeError) as excinfo:
            deployment.submit(np.zeros((3, 32, 32), dtype=np.float32))
        message = str(excinfo.value)
        assert deployment.spec.describe() in message
        assert "repro.deploy" in message  # tells the caller the fix

    def test_spec_knobs_reach_the_batcher(self, tiny_trained_net):
        spec = DeploymentSpec(
            model=tiny_trained_net,
            max_queue_depth=7,
            deadline_ms=1234.0,
        )
        with deploy(spec) as deployment:
            deployment.submit(
                np.zeros((3, 32, 32), dtype=np.float32)
            ).result(timeout=30)
            batcher = deployment._batcher
            assert batcher.max_queue_depth == 7
            assert batcher.default_deadline_ms == 1234.0

    def test_submit_deadline_expires_behind_slow_traffic(self, tiny_trained_net):
        spec = DeploymentSpec(model=tiny_trained_net, max_queue_delay_ms=200.0)
        with deploy(spec) as deployment:
            # A 1 ms deadline cannot survive a 200 ms collection window.
            future = deployment.submit(
                np.zeros((3, 32, 32), dtype=np.float32), deadline_ms=1.0
            )
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
