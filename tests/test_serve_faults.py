"""Fault injection and graceful degradation: the robustness tentpole.

Three layers under test (see ``docs/robustness.md``):

* :class:`FaultPlan` — deterministic per-message decisions, exact
  dict/JSON round-trip, SHA-256 digest stability;
* :class:`ResilientLink` — retry/backoff through transient faults,
  declared-down transitions, probe-driven recovery (fake link, no
  models involved);
* :class:`SplitPipeline` with a plan attached — the degradation state
  machine end-to-end: non-dropped results match fault-free execution to
  1e-6, outage windows degrade to edge-only (or shed, per fallback
  mode) without deadlock, and recovery back to split mode is observable
  in the :class:`ThroughputReport`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architecture import MTLSplitNet, TaskInfo
from repro.deployment.channel import get_channel
from repro.serve import (
    ChannelDownError,
    FaultPlan,
    ResilientLink,
    SplitPipeline,
    WorkerFaultPlan,
)

# ---------------------------------------------------------------------------
# FaultPlan: validation, determinism, serialisation
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError, match="<= 1"):
            FaultPlan(drop_rate=0.5, delay_rate=0.4, corrupt_rate=0.3)

    def test_windows_validated(self):
        with pytest.raises(ValueError, match="window"):
            FaultPlan(link_down=((5, 5),))
        with pytest.raises(ValueError, match="window"):
            FaultPlan(server_crash=((-1, 3),))

    def test_decisions_are_pure_functions_of_seed_and_index(self):
        plan = FaultPlan(drop_rate=0.3, delay_rate=0.2, corrupt_rate=0.1, seed=11)
        first = [plan.decision(i) for i in range(300)]
        second = [plan.decision(i) for i in range(300)]
        assert first == second
        assert {"drop", "delay", "corrupt", "ok"} >= set(first)
        other = FaultPlan(drop_rate=0.3, delay_rate=0.2, corrupt_rate=0.1, seed=12)
        assert [other.decision(i) for i in range(300)] != first

    def test_down_window_overrides_bernoulli(self):
        plan = FaultPlan(drop_rate=0.5, link_down=((10, 20),), seed=0)
        assert all(plan.decision(i) == "down" for i in range(10, 20))
        assert plan.decision(9) != "down"  # outside the window: Bernoulli only
        assert plan.server_crashes(0) is False
        crash = FaultPlan(server_crash=((3, 5),))
        assert [crash.server_crashes(i) for i in range(6)] == [
            False, False, False, True, True, False,
        ]

    def test_round_trip_and_digest(self):
        plan = FaultPlan(
            drop_rate=0.1, delay_rate=0.05, corrupt_rate=0.02,
            delay_seconds=0.2, link_down=((4, 9), (30, 31)),
            server_crash=((2, 3),), seed=8,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert plan.digest() == FaultPlan.from_json(plan.to_json()).digest()
        assert plan.digest() != FaultPlan(seed=8).digest()
        assert len(plan.digest()) == 64  # sha256 hex

    def test_unknown_keys_rejected(self):
        data = FaultPlan().to_dict()
        data["jitter_rate"] = 0.5
        with pytest.raises(ValueError, match="jitter_rate"):
            FaultPlan.from_dict(data)

    def test_is_null(self):
        assert FaultPlan().is_null
        assert not FaultPlan(drop_rate=0.1).is_null
        assert not FaultPlan(link_down=((0, 1),)).is_null

    @settings(max_examples=30, deadline=None)
    @given(
        drop=st.floats(min_value=0, max_value=0.4),
        corrupt=st.floats(min_value=0, max_value=0.3),
        delay=st.floats(min_value=0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_replay_is_bit_deterministic(self, drop, corrupt, delay, seed):
        # The ISSUE's replay property: a plan round-tripped through JSON
        # replays the exact same fault sequence for any seed and rates.
        plan = FaultPlan(
            drop_rate=drop, corrupt_rate=corrupt, delay_rate=delay, seed=seed
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert [plan.decision(i) for i in range(100)] == [
            clone.decision(i) for i in range(100)
        ]


# ---------------------------------------------------------------------------
# WorkerFaultPlan: the process-kill sibling (cluster chaos schedule)
# ---------------------------------------------------------------------------
class TestWorkerFaultPlan:
    def test_knobs_validated(self):
        with pytest.raises(ValueError, match="kill_indices"):
            WorkerFaultPlan(kill_indices=(-1,))
        with pytest.raises(ValueError, match="kill_rate"):
            WorkerFaultPlan(kill_rate=1.5)
        with pytest.raises(ValueError, match="max_kills"):
            WorkerFaultPlan(max_kills=-2)
        with pytest.raises(ValueError, match="seed"):
            WorkerFaultPlan(seed="7")

    def test_explicit_indices_always_fire(self):
        plan = WorkerFaultPlan(kill_indices=(3, 11))
        assert plan.schedule(20) == (3, 11)
        assert plan.fires_at(3) and plan.fires_at(11)
        assert not plan.fires_at(4)

    def test_max_kills_caps_schedule_but_not_fires_at(self):
        plan = WorkerFaultPlan(kill_indices=(1, 5, 9), max_kills=2)
        assert plan.schedule(20) == (1, 5)   # consumer-side cap
        assert plan.fires_at(9)              # fires_at stays pure
        assert WorkerFaultPlan(kill_indices=(1,), max_kills=0).is_null
        assert WorkerFaultPlan().is_null
        assert not plan.is_null

    def test_unknown_keys_rejected(self):
        data = WorkerFaultPlan().to_dict()
        data["kill_signal"] = 9
        with pytest.raises(ValueError, match="kill_signal"):
            WorkerFaultPlan.from_dict(data)
        with pytest.raises(ValueError, match="unknown worker fault plan"):
            WorkerFaultPlan.from_string("at=1,signal=9")
        with pytest.raises(ValueError, match="bad worker fault plan"):
            WorkerFaultPlan.from_string("rate=lots")

    @settings(max_examples=40, deadline=None)
    @given(
        indices=st.lists(
            st.integers(min_value=0, max_value=500), max_size=6
        ),
        rate=st.floats(min_value=0, max_value=0.5),
        max_kills=st.one_of(
            st.none(), st.integers(min_value=0, max_value=8)
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_replay_determinism_and_digest(self, indices, rate, max_kills, seed):
        # The ISSUE's replay property for *process* kills: the same seed
        # reproduces the identical kill schedule and the identical
        # digest across every serialised form — what stamps a chaos run
        # into BENCH_serve_cluster.json.
        plan = WorkerFaultPlan(
            kill_indices=tuple(indices),
            kill_rate=rate,
            max_kills=max_kills,
            seed=seed,
        )
        clones = (
            WorkerFaultPlan.from_dict(plan.to_dict()),
            WorkerFaultPlan.from_json(plan.to_json()),
            WorkerFaultPlan.from_string(plan.to_string()),
        )
        schedule = plan.schedule(120)
        for clone in clones:
            assert clone == plan
            assert clone.schedule(120) == schedule
            assert clone.digest() == plan.digest()
        assert len(plan.digest()) == 64  # sha256 hex
        # A different seed means a different Bernoulli stream (only
        # observable when the rate actually fires something).
        if rate and schedule != tuple(sorted(set(indices))):
            other = WorkerFaultPlan(
                kill_indices=tuple(indices),
                kill_rate=rate,
                max_kills=max_kills,
                seed=seed + 1,
            )
            assert other.digest() != plan.digest()

    def test_compact_string_round_trip(self):
        plan = WorkerFaultPlan(
            kill_indices=(8, 24), kill_rate=0.01, max_kills=3, seed=5
        )
        assert plan.to_string() == "at=8+24,rate=0.01,max=3,seed=5"
        assert WorkerFaultPlan.from_string(plan.to_string()) == plan
        assert WorkerFaultPlan.from_string("at=") == WorkerFaultPlan()
        assert WorkerFaultPlan().to_string() == "at="


# ---------------------------------------------------------------------------
# ResilientLink against a fake transfer-accounting link
# ---------------------------------------------------------------------------
class _FakeLink:
    def __init__(self, seconds_per_send=0.001):
        self.seconds_per_send = seconds_per_send
        self.sends = 0

    def send(self, payload):
        self.sends += 1
        return self.seconds_per_send


class TestResilientLink:
    def test_null_plan_is_transparent(self):
        fake = _FakeLink()
        link = ResilientLink(fake)
        for _ in range(5):
            assert link.send(b"x" * 10) == pytest.approx(0.001)
        assert fake.sends == 5
        assert not link.is_down
        assert link.stats.delivered == 5
        assert link.stats.retries == 0

    def test_retries_through_drops_and_charges_backoff(self):
        # drop_rate=1 on the first index only is impossible with one
        # Bernoulli stream, so use a full-drop plan with enough retries
        # exhausted to declare down instead.
        plan = FaultPlan(drop_rate=1.0, seed=0)
        link = ResilientLink(_FakeLink(), plan=plan, max_retries=2,
                             backoff_seconds=0.01)
        with pytest.raises(ChannelDownError):
            link.send(b"payload")
        assert link.is_down
        assert link.stats.drops == 3        # initial try + 2 retries
        assert link.stats.retries == 2
        assert link.stats.down_events == 1

    def test_down_window_declares_down_and_probe_recovers(self):
        plan = FaultPlan(link_down=((0, 3),), seed=0)
        link = ResilientLink(_FakeLink(), plan=plan)
        with pytest.raises(ChannelDownError):
            link.send(b"p")                  # message 0: hard outage
        assert link.is_down
        with pytest.raises(ChannelDownError):
            link.send(b"p")                  # down links refuse sends
        assert not link.probe()              # message 1: still in window
        assert not link.probe()              # message 2: still in window
        assert link.probe()                  # message 3: recovered
        assert not link.is_down
        assert link.stats.recoveries == 1
        assert link.stats.probes == 3
        link.send(b"p")                      # healthy again
        assert link.stats.delivered == 1

    def test_delay_charges_extra_seconds(self):
        plan = FaultPlan(delay_rate=1.0, delay_seconds=0.25, seed=0)
        link = ResilientLink(_FakeLink(seconds_per_send=0.001), plan=plan)
        assert link.send(b"p") == pytest.approx(0.251)
        assert link.stats.delays == 1
        assert link.stats.delivered == 1


# ---------------------------------------------------------------------------
# SplitPipeline degradation end-to-end (small real model)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def net():
    tasks = [TaskInfo(name="scale", num_classes=8),
             TaskInfo(name="shape", num_classes=4)]
    return MTLSplitNet.from_tasks("mobilenet_v3_tiny", tasks, input_size=32, seed=0)


@pytest.fixture(scope="module")
def batches():
    rng = np.random.default_rng(0)
    return [rng.random((2, 3, 32, 32), dtype=np.float32) for _ in range(12)]


@pytest.fixture(scope="module")
def fault_free(net, batches):
    with SplitPipeline.from_net(net, get_channel("wifi_5"), input_size=32) as pipe:
        return [pipe.infer(b) for b in batches]


def _assert_matches(reference, results, atol=1e-6):
    for ref, got in zip(reference, results):
        if got is None:
            continue
        for task in ref:
            np.testing.assert_allclose(got[task], ref[task], atol=atol)


class TestPipelineDegradation:
    def test_outage_degrades_to_edge_and_recovers(self, net, batches, fault_free):
        plan = FaultPlan(link_down=((4, 6),), seed=0)
        with SplitPipeline.from_net(
            net, get_channel("wifi_5"), input_size=32,
            faults=plan, fallback="edge", probe_every=2,
        ) as pipe:
            results, report = pipe.infer_stream(batches)
            # Nothing lost: edge-only fallback serves the outage window...
            assert report.shed == 0
            assert all(r is not None for r in results)
            assert report.fallback_batches == 4
            assert report.fallback_seconds > 0
            # ...and the state machine round-trips: down once, back up.
            assert report.link_down_events == 1
            assert report.recoveries == 1
            assert not pipe.degraded
            # Degraded execution is numerically the same deployment.
            _assert_matches(fault_free, results)

    def test_fallback_none_sheds_instead(self, net, batches, fault_free):
        plan = FaultPlan(link_down=((4, 6),), seed=0)
        with SplitPipeline.from_net(
            net, get_channel("wifi_5"), input_size=32,
            faults=plan, fallback="none", probe_every=2,
        ) as pipe:
            results, report = pipe.infer_stream(batches)
            assert report.shed > 0
            assert any(r is None for r in results)
            assert report.fallback_batches == 0
            # Survivors are still exact.
            _assert_matches(fault_free, results)

    def test_transient_drops_retry_to_exact_results(self, net, batches, fault_free):
        plan = FaultPlan(drop_rate=0.2, corrupt_rate=0.1, delay_rate=0.1, seed=3)
        with SplitPipeline.from_net(
            net, get_channel("wifi_5"), input_size=32,
            faults=plan, fallback="edge", max_retries=4,
        ) as pipe:
            results, report = pipe.infer_stream(batches)
            assert report.retries > 0
            assert report.shed == 0
            # Corruption is CRC-detected and retried — never a wrong
            # answer, which is exactly why results stay exact.
            _assert_matches(fault_free, results)

    def test_server_crash_window_served_locally(self, net, batches, fault_free):
        plan = FaultPlan(server_crash=((2, 4),), seed=0)
        with SplitPipeline.from_net(
            net, get_channel("wifi_5"), input_size=32, faults=plan,
        ) as pipe:
            results, report = pipe.infer_stream(batches)
            assert report.server_crashes == 2
            assert report.fallback_batches == 2
            assert report.shed == 0
            _assert_matches(fault_free, results)

    def test_replay_is_deterministic(self, net, batches):
        plan = FaultPlan(
            drop_rate=0.15, delay_rate=0.1, link_down=((6, 8),), seed=21
        )

        def run():
            with SplitPipeline.from_net(
                net, get_channel("wifi_5"), input_size=32,
                faults=plan, fallback="edge", probe_every=2,
            ) as pipe:
                _, report = pipe.infer_stream(batches)
                return (
                    report.shed, report.retries, report.fallback_batches,
                    report.link_down_events, report.recoveries,
                    report.server_crashes,
                )

        assert run() == run()

    def test_fault_free_plan_keeps_overlapped_path(self, net, batches):
        # A null plan must not force the serial robust path: the
        # overlapped stream is the fault-free performance story.
        with SplitPipeline.from_net(
            net, get_channel("wifi_5"), input_size=32, faults=FaultPlan(),
        ) as pipe:
            results, report = pipe.infer_stream(batches[:4])
            assert all(r is not None for r in results)
            assert report.link_down_events == 0
            assert report.fallback_batches == 0

    def test_invalid_knobs_rejected(self, net):
        with pytest.raises(ValueError, match="fallback"):
            SplitPipeline.from_net(
                net, get_channel("wifi_5"), input_size=32, fallback="moon"
            )
        with pytest.raises(ValueError, match="probe_every"):
            SplitPipeline.from_net(
                net, get_channel("wifi_5"), input_size=32, probe_every=0
            )
