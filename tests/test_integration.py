"""End-to-end integration tests: the full MTL-Split story on one tiny
workload — generate data, train jointly, fine-tune, split, deploy, and
check the deployment analysis agrees with the runnable pipeline."""

import numpy as np
import pytest

from repro import data, nn
from repro.core import (
    FineTuneConfig,
    MTLSplitNet,
    MultiTaskTrainer,
    TrainConfig,
    add_task,
    evaluate,
    fine_tune,
)
from repro.deployment import (
    GIGABIT_ETHERNET,
    JETSON_NANO,
    RTX3090_SERVER,
    compare_paradigms,
    payload_bytes,
    profile_backbone,
)
from repro.serve import SplitPipeline
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def workload():
    dataset = data.make_shapes3d(400, tasks=("scale", "shape"), seed=71)
    train, val, test = data.train_val_test_split(
        dataset, rng=np.random.default_rng(72)
    )
    return train, val, test


@pytest.fixture(scope="module")
def trained(workload):
    train, val, _test = workload
    net = MTLSplitNet.from_tasks("efficientnet_tiny", list(train.tasks), 32, seed=71)
    history = MultiTaskTrainer(
        TrainConfig(epochs=4, batch_size=64, lr=8e-3, seed=71)
    ).fit(net, train, val_set=val)
    return net, history


class TestTrainEvaluateStory:
    def test_training_reduces_loss(self, trained):
        _net, history = trained
        assert history.final.total_loss < history.epochs[0].total_loss

    def test_validation_accuracy_recorded(self, trained):
        _net, history = trained
        assert set(history.final.val_accuracy) == {"scale", "shape"}

    def test_test_accuracy_above_chance(self, trained, workload):
        """At this miniature scale (280 train / 60 test samples) per-task
        accuracy is high-variance; the guaranteed signal is that at least
        one task clearly beats its chance rate and no metric is invalid."""
        net, _ = trained
        _train, _val, test = workload
        acc = evaluate(net, test)
        assert all(0.0 <= v <= 1.0 for v in acc.values())
        assert acc["scale"] > 0.125 + 0.05 or acc["shape"] > 0.25 + 0.05, acc


class TestFineTuneStory:
    def test_finetune_then_add_task(self, trained, workload):
        net, _ = trained
        train, _val, test = workload
        fine_tune(net, train, FineTuneConfig(alpha=1e-3, eta=1e-5, epochs=1))
        # Introduce a new task on the same backbone (paper Sec. 3.3 use-case).
        full = data.make_shapes3d(200, tasks=("scale", "shape", "object_hue"), seed=73)
        extended = add_task(net, full.task_info("object_hue"), input_size=32)
        fine_tune(
            extended, full, FineTuneConfig(alpha=1e-3, eta=0.0, epochs=1)
        )
        acc = evaluate(extended, full)
        assert set(acc) == {"scale", "shape", "object_hue"}


class TestDeploymentStory:
    def test_split_pipeline_matches_monolith(self, trained, workload):
        net, _ = trained
        _train, _val, test = workload
        net.eval()
        pipeline = SplitPipeline.from_net(net, GIGABIT_ETHERNET, input_size=32)
        logits = pipeline.infer(test.images[:8])
        with nn.no_grad():
            full = net(Tensor(test.images[:8]))
        for name in net.task_names:
            np.testing.assert_allclose(logits[name], full[name].data, atol=1e-5)

    def test_profiler_predicts_pipeline_payload(self, trained, workload):
        net, _ = trained
        _train, _val, test = workload
        profile = profile_backbone(net.backbone.spec, input_size=32, batch_size=8)
        pipeline = SplitPipeline.from_net(net, GIGABIT_ETHERNET, input_size=32)
        pipeline.infer(test.images[:8])
        predicted = payload_bytes(profile.zb_elements * 8)
        assert pipeline.traces[0].payload_bytes == predicted

    def test_paradigm_comparison_consistent_with_profile(self, trained):
        net, _ = trained
        reports = compare_paradigms(
            net.backbone.spec, net.num_tasks, JETSON_NANO, RTX3090_SERVER,
            GIGABIT_ETHERNET, input_size=32,
        )
        profile = profile_backbone(net.backbone.spec, input_size=32)
        assert reports["sc"].edge_memory_bytes == profile.estimated_total_bytes
        # SC transfers far less than RoC for the same workload.
        assert (
            reports["sc"].transfer_bytes_per_inference
            < reports["roc"].transfer_bytes_per_inference
        )

    def test_checkpoint_roundtrip_preserves_predictions(self, trained, workload, tmp_path):
        net, _ = trained
        _train, _val, test = workload
        net.eval()
        path = tmp_path / "mtl_split.npz"
        nn.save_module(net, path)
        clone = MTLSplitNet.from_tasks(
            "efficientnet_tiny", [test.task_info(t) for t in net.task_names], 32, seed=999
        )
        nn.load_module(clone, path)
        clone.eval()
        x = Tensor(test.images[:4])
        with nn.no_grad():
            a, b = net(x), clone(x)
        for name in net.task_names:
            np.testing.assert_allclose(a[name].data, b[name].data, atol=1e-6)
