"""Property tests for the fused inference compiler (repro.nn.fuse).

The compiler's contract: compiled outputs match the eval-mode ``Tensor``
forward within 1e-4, for every lowering rule — per-layer BN-fold
identities, activation fusion, the pooling/SE/residual composites, and
whole-net ``MTLSplitNet`` equivalence across split indices and wire
formats.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.deployment import GIGABIT_ETHERNET, WireFormat
from repro.serve import SplitPipeline
from repro.nn import fuse
from repro.nn.tensor import Tensor


def _eval_forward(module, x):
    module.eval()
    with nn.no_grad():
        out = module(Tensor(x))
    if isinstance(out, dict):
        return {k: v.data for k, v in out.items()}
    return out.data


def _randomise_bn(bn, rng):
    """Give batch-norm non-trivial folded parameters."""
    bn.weight.data[...] = rng.uniform(0.5, 1.5, bn.num_features)
    bn.bias.data[...] = rng.uniform(-0.5, 0.5, bn.num_features)
    bn._buffers["running_mean"][...] = rng.uniform(-1.0, 1.0, bn.num_features)
    bn._buffers["running_var"][...] = rng.uniform(0.2, 2.0, bn.num_features)


class TestBNFoldIdentities:
    @pytest.mark.parametrize("activation", ["relu", "relu6", "hard_swish", "silu", "gelu"])
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0)])
    def test_conv_bn_act_chain(self, rng, activation, stride, padding):
        conv = nn.Conv2d(4, 6, 3, stride=stride, padding=padding, bias=False, rng=rng)
        bn = nn.BatchNorm2d(6)
        _randomise_bn(bn, rng)
        chain = nn.Sequential(conv, bn, nn.resolve_activation(activation))
        x = rng.normal(size=(3, 4, 8, 8)).astype(np.float32)
        session = chain.compile_for_inference(sample_input=x, atol=1e-4)
        np.testing.assert_allclose(session.run(x), _eval_forward(chain, x), atol=1e-4)
        # BN and the activation must have been folded into the conv op.
        assert len(session.ops) == 1
        assert session.ops[0].describe() == f"conv2d(bn-folded)+{activation}"

    def test_conv_with_bias_bn_fold(self, rng):
        conv = nn.Conv2d(3, 5, 3, padding=1, bias=True, rng=rng)
        bn = nn.BatchNorm2d(5)
        _randomise_bn(bn, rng)
        chain = nn.Sequential(conv, bn)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        np.testing.assert_allclose(
            chain.compile_for_inference().run(x), _eval_forward(chain, x), atol=1e-4
        )

    def test_depthwise_conv_bn_fold(self, rng):
        conv = nn.Conv2d(6, 6, 3, padding=1, groups=6, bias=False, rng=rng)
        bn = nn.BatchNorm2d(6)
        _randomise_bn(bn, rng)
        chain = nn.Sequential(conv, bn, nn.ReLU())
        x = rng.normal(size=(2, 6, 8, 8)).astype(np.float32)
        np.testing.assert_allclose(
            chain.compile_for_inference().run(x), _eval_forward(chain, x), atol=1e-4
        )

    def test_grouped_conv(self, rng):
        conv = nn.Conv2d(8, 4, 3, padding=1, groups=2, rng=rng)
        x = rng.normal(size=(2, 8, 6, 6)).astype(np.float32)
        np.testing.assert_allclose(
            conv.compile_for_inference().run(x), _eval_forward(conv, x), atol=1e-4
        )

    def test_linear_bn1d_fold(self, rng):
        linear = nn.Linear(10, 7, rng=rng)
        bn = nn.BatchNorm1d(7)
        _randomise_bn(bn, rng)
        chain = nn.Sequential(linear, bn, nn.ReLU())
        x = rng.normal(size=(5, 10)).astype(np.float32)
        session = chain.compile_for_inference(sample_input=x)
        np.testing.assert_allclose(session.run(x), _eval_forward(chain, x), atol=1e-4)
        assert len(session.ops) == 1
        assert session.ops[0].describe() == "linear(bn-folded)+relu"

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        eps=st.sampled_from([1e-5, 1e-3]),
        bias=st.booleans(),
    )
    def test_fold_identity_property(self, seed, eps, bias):
        """Folding BN into a conv is exact for arbitrary BN statistics."""
        rng = np.random.default_rng(seed)
        conv = nn.Conv2d(3, 4, 3, padding=1, bias=bias, rng=rng)
        bn = nn.BatchNorm2d(4, eps=eps)
        _randomise_bn(bn, rng)
        chain = nn.Sequential(conv, bn)
        x = rng.normal(size=(2, 3, 5, 5)).astype(np.float32)
        np.testing.assert_allclose(
            chain.compile_for_inference().run(x), _eval_forward(chain, x), atol=1e-4
        )


class TestLoweringCoverage:
    def test_standalone_bn_runs_as_affine(self, rng):
        bn = nn.BatchNorm2d(3)
        _randomise_bn(bn, rng)
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        session = bn.compile_for_inference()
        assert isinstance(session.ops[0], fuse.AffineOp)
        np.testing.assert_allclose(session.run(x), _eval_forward(bn, x), atol=1e-5)

    @pytest.mark.parametrize(
        "module,shape",
        [
            (nn.MaxPool2d(2), (2, 3, 8, 8)),
            (nn.MaxPool2d(3, 2), (2, 3, 9, 9)),
            (nn.AvgPool2d(2), (2, 3, 8, 8)),
            (nn.AvgPool2d(3, 2), (2, 3, 9, 9)),
            (nn.AdaptiveAvgPool2d(1), (2, 3, 8, 8)),
            (nn.AdaptiveAvgPool2d(2), (2, 3, 8, 8)),
            (nn.Flatten(), (2, 3, 4, 4)),
            (nn.Sequential(nn.Identity(), nn.ReLU()), (2, 5)),
            (nn.LeakyReLU(0.1), (2, 5)),
            (nn.Sigmoid(), (2, 5)),
            (nn.Tanh(), (2, 5)),
            (nn.HardSigmoid(), (2, 5)),
        ],
    )
    def test_layer_equivalence(self, rng, module, shape):
        x = rng.normal(size=shape).astype(np.float32)
        np.testing.assert_allclose(
            module.compile_for_inference().run(x), _eval_forward(module, x), atol=1e-5
        )

    def test_dropout_inert_in_compiled_eval(self, rng):
        chain = nn.Sequential(nn.Linear(6, 6, rng=rng), nn.Dropout(0.5, rng=rng))
        x = rng.normal(size=(4, 6)).astype(np.float32)
        np.testing.assert_allclose(
            chain.compile_for_inference().run(x), _eval_forward(chain, x), atol=1e-5
        )

    def test_unknown_module_falls_back(self, rng):
        norm = nn.GroupNorm(2, 6)
        x = rng.normal(size=(2, 6, 4, 4)).astype(np.float32)
        session = norm.compile_for_inference()
        assert "fallback:GroupNorm" in session.describe()
        np.testing.assert_allclose(session.run(x), _eval_forward(norm, x), atol=1e-5)

    def test_activation_does_not_mutate_input(self, rng):
        relu = nn.ReLU()
        x = rng.normal(size=(3, 4)).astype(np.float32)
        x_copy = x.copy()
        relu.compile_for_inference().run(x)
        np.testing.assert_array_equal(x, x_copy)

    def test_session_snapshots_weights(self, rng):
        linear = nn.Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4)).astype(np.float32)
        session = linear.compile_for_inference()
        before = session.run(x).copy()
        linear.weight.data[...] += 1.0
        np.testing.assert_array_equal(session.run(x), before)

    def test_session_snapshots_conv_weights(self, rng):
        # Regression: ConvOp must copy (not alias) the parameter array, so
        # in-place optimiser updates cannot leak into a compiled session.
        conv = nn.Conv2d(4, 4, 3, padding=1, groups=4, bias=False, rng=rng)
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        session = conv.compile_for_inference()
        before = session.run(x).copy()
        conv.weight.data[...] -= 0.5
        np.testing.assert_array_equal(session.run(x), before)

    def test_squeeze_excite_exotic_activation_falls_back(self, rng):
        from repro.models.blocks import SqueezeExciteBlock

        block = SqueezeExciteBlock(8, 4, bottleneck_act="leaky_relu", rng=rng)
        x = rng.normal(size=(2, 8, 4, 4)).astype(np.float32)
        session = block.compile_for_inference()
        assert "fallback:SqueezeExciteBlock" in session.describe()
        np.testing.assert_allclose(session.run(x), _eval_forward(block, x), atol=1e-5)

    def test_verify_session_raises_on_divergence(self, rng):
        linear = nn.Linear(4, 3, rng=rng)
        session = linear.compile_for_inference()
        session.ops[0].bias += 1.0  # corrupt the compiled parameters
        with pytest.raises(AssertionError):
            fuse.verify_session(linear, session, rng.normal(size=(2, 4)))


class TestWholeNetEquivalence:
    def test_compiled_net_matches_eval(self, tiny_trained_net, shapes3d_small):
        tiny_trained_net.eval()
        x = shapes3d_small.images[:8]
        reference = _eval_forward(tiny_trained_net, x)
        session = tiny_trained_net.compile_for_inference(sample_input=x, atol=1e-4)
        outputs = session.run(x)
        assert set(outputs) == set(tiny_trained_net.task_names)
        for name in tiny_trained_net.task_names:
            np.testing.assert_allclose(outputs[name], reference[name], atol=1e-4)

    @pytest.mark.parametrize("split_index", [2, None])
    def test_split_halves_compile_consistently(
        self, tiny_trained_net, shapes3d_small, split_index
    ):
        tiny_trained_net.eval()
        x = shapes3d_small.images[:6]
        reference = _eval_forward(tiny_trained_net, x)
        edge, server = tiny_trained_net.split(split_index, input_size=32)
        z = edge.compile_for_inference(sample_input=x, atol=1e-4).run(x)
        outputs = server.compile_for_inference(sample_input=z, atol=1e-4).run(z)
        for name in tiny_trained_net.task_names:
            np.testing.assert_allclose(outputs[name], reference[name], atol=1e-4)

    @pytest.mark.parametrize("wire", ["float32", "float16", "quant8"])
    @pytest.mark.parametrize("split_index", [3, None])
    def test_compiled_pipeline_matches_uncompiled(
        self, tiny_trained_net, shapes3d_small, wire, split_index
    ):
        """Compiled and eval-mode pipelines agree for every wire format."""
        tiny_trained_net.eval()
        x = shapes3d_small.images[:6]
        compiled = SplitPipeline.from_net(
            tiny_trained_net, GIGABIT_ETHERNET, split_index=split_index,
            input_size=32, wire_format=WireFormat(wire), compiled=True,
        )
        eager = SplitPipeline.from_net(
            tiny_trained_net, GIGABIT_ETHERNET, split_index=split_index,
            input_size=32, wire_format=WireFormat(wire), compiled=False,
        )
        lhs = compiled.infer(x)
        rhs = eager.infer(x)
        for name in tiny_trained_net.task_names:
            np.testing.assert_allclose(lhs[name], rhs[name], atol=1e-4)

    def test_buffer_reuse_stays_correct_across_calls(self, tiny_trained_net, shapes3d_small):
        tiny_trained_net.eval()
        edge, _ = tiny_trained_net.split(None, input_size=32)
        session = edge.compile_for_inference().enable_buffer_reuse()
        for start in (0, 8, 16):
            x = shapes3d_small.images[start : start + 8]
            np.testing.assert_allclose(
                session.run(x), _eval_forward(edge, x), atol=1e-4
            )

    def test_describe_reports_folded_ops(self, tiny_trained_net):
        session = tiny_trained_net.compile_for_inference()
        text = session.describe()
        assert "conv2d(bn-folded)" in text
        assert "[scale]" in text and "[shape]" in text
        # No standalone batch-norm survives fusion in this architecture.
        assert "affine" not in text
