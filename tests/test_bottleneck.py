"""Bottleneck-compression tests: reconstruction, compression accounting,
and the compressed split path."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    BottleneckAutoencoder,
    BottleneckedSplit,
    train_bottleneck,
)
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def trained_bottleneck(tiny_trained_net, shapes3d_small):
    subset = shapes3d_small.subset(np.arange(160))
    autoencoder = train_bottleneck(
        tiny_trained_net, subset, latent_dim=64, epochs=3, lr=3e-3, seed=0
    )
    return autoencoder


class TestAutoencoder:
    def test_latent_must_compress(self):
        with pytest.raises(ValueError):
            BottleneckAutoencoder(64, 64)

    def test_shapes(self):
        ae = BottleneckAutoencoder(128, 16)
        z = Tensor(np.random.default_rng(0).standard_normal((4, 128)).astype(np.float32))
        assert ae.encode(z).shape == (4, 16)
        assert ae(z).shape == (4, 128)

    def test_compression_ratio(self):
        assert BottleneckAutoencoder(128, 16).compression_ratio == 8.0

    def test_training_reduces_distortion(self, tiny_trained_net, shapes3d_small):
        subset = shapes3d_small.subset(np.arange(120))
        with nn.no_grad():
            z = tiny_trained_net.forward_backbone(Tensor(subset.images[:64]))
        fresh = BottleneckAutoencoder(z.shape[1], 64, rng=np.random.default_rng(0))
        before = fresh.distortion(z)
        trained = train_bottleneck(
            tiny_trained_net, subset, latent_dim=64, epochs=3, lr=3e-3, seed=0
        )
        after = trained.distortion(z)
        assert after < before

    def test_backbone_untouched_by_training(self, tiny_trained_net, shapes3d_small):
        subset = shapes3d_small.subset(np.arange(80))
        before = {
            k: v.copy()
            for k, v in tiny_trained_net.backbone.state_dict().items()
            if "running" not in k and "num_batches" not in k
        }
        train_bottleneck(tiny_trained_net, subset, latent_dim=32, epochs=1, seed=1)
        after = tiny_trained_net.backbone.state_dict()
        for key, value in before.items():
            np.testing.assert_array_equal(value, after[key])


class TestBottleneckedSplit:
    def test_payload_elements(self, tiny_trained_net, trained_bottleneck):
        split = BottleneckedSplit(tiny_trained_net, trained_bottleneck)
        assert split.payload_elements(8) == 8 * trained_bottleneck.latent_dim

    def test_infer_reports_transmitted_elements(
        self, tiny_trained_net, trained_bottleneck, shapes3d_small
    ):
        split = BottleneckedSplit(tiny_trained_net, trained_bottleneck)
        logits, transmitted = split.infer(shapes3d_small.images[:8])
        assert transmitted == 8 * trained_bottleneck.latent_dim
        assert set(logits) == set(tiny_trained_net.task_names)

    def test_compressed_payload_smaller_than_raw_zb(
        self, tiny_trained_net, trained_bottleneck, shapes3d_small
    ):
        with nn.no_grad():
            z = tiny_trained_net.forward_backbone(Tensor(shapes3d_small.images[:8]))
        split = BottleneckedSplit(tiny_trained_net, trained_bottleneck)
        _logits, transmitted = split.infer(shapes3d_small.images[:8])
        assert transmitted < z.size

    def test_accuracy_computable(self, tiny_trained_net, trained_bottleneck, shapes3d_small):
        split = BottleneckedSplit(tiny_trained_net, trained_bottleneck)
        accuracy = split.accuracy(shapes3d_small.subset(np.arange(80)))
        for value in accuracy.values():
            assert 0.0 <= value <= 1.0
