"""Additional spec-system tests: derivation, scaling rules, error paths."""

import numpy as np
import pytest

from repro import models
from repro.models import specs
from repro.models.efficientnet import efficientnet_spec
from repro.models.specs import BackboneSpec, ConvBNAct, GlobalAvgPool, MaxPool
from repro.models.vgg import vgg_spec_from_config


class TestSpecDerivation:
    def test_with_layers_renames(self):
        base = models.get_spec("vgg_tiny")
        derived = base.with_layers(base.layers[:3], "head3")
        assert derived.name == "vgg_tiny-head3"
        assert len(derived.layers) == 3
        assert derived.family == base.family

    def test_conv_bn_act_padding_default(self):
        assert ConvBNAct(8, 5).resolved_padding() == 2
        assert ConvBNAct(8, 5, padding=0).resolved_padding() == 0

    def test_maxpool_stride_default(self):
        assert MaxPool(2).resolved_stride() == 2
        assert MaxPool(3, stride=1).resolved_stride() == 1

    def test_global_avg_pool_in_spec(self):
        spec = BackboneSpec(
            name="gap_test", family="test", input_channels=3, input_size=16,
            layers=(ConvBNAct(4, 3), GlobalAvgPool()),
        )
        assert specs.feature_shape(spec) == (4, 1, 1)
        net = models.build_backbone(spec, rng=np.random.default_rng(0))
        from repro.nn.tensor import Tensor

        out = net(Tensor(np.zeros((1, 3, 16, 16), dtype=np.float32)))
        assert out.shape == (1, 4)

    def test_empty_spec_rejected_by_feature_shape(self):
        spec = BackboneSpec(
            name="empty", family="test", input_channels=3, input_size=16, layers=()
        )
        with pytest.raises(ValueError):
            specs.feature_shape(spec)

    def test_unknown_layer_type_rejected(self):
        class Bogus:
            pass

        spec = BackboneSpec(
            name="bogus", family="test", input_channels=3, input_size=16,
            layers=(Bogus(),),  # type: ignore[arg-type]
        )
        with pytest.raises(TypeError):
            list(specs.iter_primitives(spec))

    def test_shrinking_below_one_pixel_rejected(self):
        spec = BackboneSpec(
            name="shrink", family="test", input_channels=3, input_size=4,
            layers=(MaxPool(2), MaxPool(2), MaxPool(2)),
        )
        with pytest.raises(ValueError):
            list(specs.iter_primitives(spec))


class TestEfficientNetScaling:
    def test_width_multiplier_scales_channels(self):
        narrow = efficientnet_spec("w05", width_mult=0.5, input_size=224)
        wide = efficientnet_spec("w10", width_mult=1.0, input_size=224)
        assert specs.count_parameters(narrow) < specs.count_parameters(wide)

    def test_depth_multiplier_adds_blocks(self):
        shallow = efficientnet_spec("d10", depth_mult=1.0)
        deep = efficientnet_spec("d20", depth_mult=2.0)
        assert len(deep.layers) > len(shallow.layers)

    def test_b1_spec_larger_than_b0(self):
        b0 = models.get_spec("efficientnet_b0")
        b1 = models.get_spec("efficientnet_b1")
        assert specs.count_parameters(b1) > specs.count_parameters(b0)

    def test_channels_divisible_by_8(self):
        spec = efficientnet_spec("w125", width_mult=1.25)
        for layer in spec.layers:
            if isinstance(layer, ConvBNAct):
                assert layer.out_channels % 8 == 0


class TestVggConfig:
    def test_custom_config_roundtrip(self):
        spec = vgg_spec_from_config("custom", (8, "M", 16, "M"), input_size=16)
        assert specs.feature_shape(spec) == (16, 4, 4)
        params = specs.count_parameters(spec)
        net = models.build_backbone(spec, rng=np.random.default_rng(0))
        assert net.num_parameters() == params

    def test_batch_norm_toggle_changes_params(self):
        with_bn = vgg_spec_from_config("bn", (8, "M"), batch_norm=True)
        without = vgg_spec_from_config("nobn", (8, "M"), batch_norm=False)
        # BN adds 2*C affine params but removes the conv bias (C).
        assert (
            specs.count_parameters(with_bn)
            == specs.count_parameters(without) + 8 * 2 - 8
        )

    def test_full_vgg16_param_count_classic(self):
        # The 13 conv layers of VGG16 hold ~14.7M parameters.
        count = specs.count_parameters(models.get_spec("vgg16"))
        assert count == pytest.approx(14.71e6, rel=0.01)


class TestStageProfileConsistency:
    @pytest.mark.parametrize("name", models.TRAINING_BACKBONES)
    def test_stage_count_matches_module_stages(self, name):
        from repro.core.splitting import stage_activation_profile

        spec = models.get_spec(name)
        net = models.create_backbone(name, rng=np.random.default_rng(0))
        profile = stage_activation_profile(spec, 32)
        assert len(profile) == len(list(net.stages))

    @pytest.mark.parametrize("name", models.TRAINING_BACKBONES)
    def test_stage_shapes_match_actual_forward(self, name):
        from repro.core.splitting import stage_activation_profile
        from repro.nn.tensor import Tensor
        import repro.nn as nn

        spec = models.get_spec(name)
        net = models.create_backbone(name, rng=np.random.default_rng(0))
        net.eval()
        profile = stage_activation_profile(spec, 32)
        x = Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32))
        with nn.no_grad():
            for stage, point in zip(net.stages, profile):
                x = stage(x)
                assert int(np.prod(x.shape[1:])) == point.transmit_elements
