"""RNN substrate tests: cells, sequence runner, and the row-scanning
backbone that demonstrates MTL-Split's architecture independence."""

import numpy as np
import pytest

from repro import nn
from repro.core import MTLSplitNet, MultiTaskTrainer, TrainConfig, evaluate
from repro.data.base import MultiTaskDataset, TaskInfo
from repro.models import MLPHead, RowRNNBackbone, row_rnn_tiny
from repro.nn.autograd import gradcheck
from repro.nn.rnn import GRUCell, RNN, RNNCell
from repro.nn.tensor import Tensor


def seq_input(n=2, t=4, d=5, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal((n, t, d)).astype(np.float32))


class TestCells:
    def test_rnn_cell_shapes(self):
        cell = RNNCell(5, 7)
        h = cell(Tensor(np.zeros((3, 5), dtype=np.float32)), cell.initial_state(3))
        assert h.shape == (3, 7)

    def test_gru_cell_shapes(self):
        cell = GRUCell(5, 7)
        h = cell(Tensor(np.zeros((3, 5), dtype=np.float32)), cell.initial_state(3))
        assert h.shape == (3, 7)

    def test_rnn_cell_bounded_by_tanh(self):
        cell = RNNCell(4, 4)
        x = Tensor(np.full((2, 4), 100.0, dtype=np.float32))
        h = cell(x, cell.initial_state(2))
        assert (np.abs(h.data) <= 1.0).all()

    def test_gru_zero_update_keeps_state_form(self):
        # With all weights zero, update gate = 0.5 and candidate = 0, so
        # the new state halves the old one.
        cell = GRUCell(3, 3)
        for p in cell.parameters():
            p.data[...] = 0.0
        hidden = Tensor(np.ones((1, 3), dtype=np.float32))
        out = cell(Tensor(np.zeros((1, 3), dtype=np.float32)), hidden)
        np.testing.assert_allclose(out.data, 0.5 * np.ones((1, 3)), atol=1e-6)

    def test_rnn_cell_gradcheck(self):
        cell = RNNCell(3, 4)
        for p in cell.parameters():
            p.data = p.data.astype(np.float64)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3)), requires_grad=True)
        h = Tensor(np.random.default_rng(1).standard_normal((2, 4)), requires_grad=True)
        ok, msg = gradcheck(lambda a, b: cell(a, b), [x, h], atol=5e-4)
        assert ok, msg

    def test_gru_cell_gradcheck(self):
        cell = GRUCell(3, 4)
        for p in cell.parameters():
            p.data = p.data.astype(np.float64)
        x = Tensor(np.random.default_rng(2).standard_normal((2, 3)), requires_grad=True)
        h = Tensor(np.random.default_rng(3).standard_normal((2, 4)), requires_grad=True)
        ok, msg = gradcheck(lambda a, b: cell(a, b), [x, h], atol=5e-4)
        assert ok, msg


class TestRNNRunner:
    def test_sequence_output_shape(self):
        rnn = RNN(GRUCell(5, 6))
        outputs, final = rnn(seq_input(n=2, t=4, d=5))
        assert outputs.shape == (2, 4, 6)
        assert final.shape == (2, 6)

    def test_final_only_mode(self):
        rnn = RNN(GRUCell(5, 6), return_sequence=False)
        final, state = rnn(seq_input())
        assert final.shape == (2, 6)
        assert state is final

    def test_final_matches_last_sequence_step(self):
        cell = GRUCell(5, 6)
        outputs, final = RNN(cell)(seq_input(seed=4))
        np.testing.assert_allclose(outputs.data[:, -1, :], final.data, atol=1e-6)

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            RNN(GRUCell(5, 6))(Tensor(np.zeros((2, 5), dtype=np.float32)))

    def test_backward_through_time(self):
        cell = RNNCell(3, 4)
        x = Tensor(
            np.random.default_rng(5).standard_normal((2, 6, 3)).astype(np.float32),
            requires_grad=True,
        )
        _outputs, final = RNN(cell)(x)
        final.sum().backward()
        assert x.grad is not None
        # Early steps influence the final state: non-zero gradient at t=0.
        assert np.abs(x.grad[:, 0, :]).sum() > 0


class TestRowRNNBackbone:
    def test_zb_shape(self):
        backbone = row_rnn_tiny(rng=np.random.default_rng(0))
        x = Tensor(np.zeros((3, 3, 32, 32), dtype=np.float32))
        z = backbone(x)
        assert z.shape == (3, backbone.feature_dim())

    def test_feature_shape_contract(self):
        backbone = RowRNNBackbone(hidden_size=48)
        assert backbone.feature_shape() == (48, 1, 1)
        assert backbone.feature_dim() == 48

    def test_wrong_resolution_rejected(self):
        backbone = RowRNNBackbone(input_size=32)
        with pytest.raises(ValueError):
            backbone(Tensor(np.zeros((1, 3, 16, 16), dtype=np.float32)))

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError):
            RowRNNBackbone(cell="lstm")

    def test_mtl_split_on_rnn_backbone_trains(self):
        # The paper's architecture-independence claim, executed: the same
        # trainer and evaluator run on a recurrent backbone unchanged.
        rng = np.random.default_rng(0)
        n = 120
        bright = rng.integers(0, 2, n)
        column = rng.integers(0, 3, n)
        images = np.zeros((n, 3, 32, 32), dtype=np.float32)
        for i in range(n):
            images[i, column[i]] = 0.3 + 0.4 * bright[i]
        tasks = (TaskInfo("bright", 2), TaskInfo("column", 3))
        ds = MultiTaskDataset(images, {"bright": bright, "column": column}, tasks)

        backbone = row_rnn_tiny(rng=np.random.default_rng(1))
        heads = {
            t.name: MLPHead(backbone.feature_dim(), t.num_classes,
                            rng=np.random.default_rng(2))
            for t in tasks
        }
        net = MTLSplitNet(backbone, heads)
        MultiTaskTrainer(TrainConfig(epochs=3, batch_size=32, lr=5e-3, seed=0)).fit(net, ds)
        accuracy = evaluate(net, ds)
        assert accuracy["column"] > 0.5
