"""Tests for the multi-task objective (Eq. 4) and weighting strategies."""

import numpy as np
import pytest

from repro.core.losses import MultiTaskLoss, UncertaintyWeighting
from repro.data.base import TaskInfo
from repro.nn import functional as F
from repro.nn.tensor import Tensor

TASKS = [TaskInfo("a", 3), TaskInfo("b", 4)]


def fake_outputs(seed=0, n=6):
    rng = np.random.default_rng(seed)
    return {
        "a": Tensor(rng.standard_normal((n, 3)).astype(np.float32), requires_grad=True),
        "b": Tensor(rng.standard_normal((n, 4)).astype(np.float32), requires_grad=True),
    }


def fake_targets(seed=1, n=6):
    rng = np.random.default_rng(seed)
    return {"a": rng.integers(0, 3, n), "b": rng.integers(0, 4, n)}


class TestUniformSum:
    def test_total_is_sum_of_tasks(self):
        criterion = MultiTaskLoss(TASKS)
        outputs, targets = fake_outputs(), fake_targets()
        total, scalars = criterion(outputs, targets)
        expected = sum(
            float(F.cross_entropy(outputs[name], targets[name]).item())
            for name in ("a", "b")
        )
        assert total.item() == pytest.approx(expected, rel=1e-5)
        assert set(scalars) == {"a", "b"}

    def test_task_losses_individual(self):
        criterion = MultiTaskLoss(TASKS)
        losses = criterion.task_losses(fake_outputs(), fake_targets())
        assert set(losses) == {"a", "b"}
        for loss in losses.values():
            assert loss.item() > 0

    def test_gradients_flow_to_all_outputs(self):
        criterion = MultiTaskLoss(TASKS)
        outputs, targets = fake_outputs(), fake_targets()
        total, _ = criterion(outputs, targets)
        total.backward()
        for out in outputs.values():
            assert out.grad is not None

    def test_missing_output_raises(self):
        criterion = MultiTaskLoss(TASKS)
        outputs = fake_outputs()
        del outputs["b"]
        with pytest.raises(KeyError):
            criterion(outputs, fake_targets())

    def test_no_extra_parameters(self):
        assert MultiTaskLoss(TASKS).extra_parameters() == []


class TestStaticWeighting:
    def test_weights_scale_terms(self):
        outputs, targets = fake_outputs(), fake_targets()
        uniform, _ = MultiTaskLoss(TASKS)(outputs, targets)
        weighted, _ = MultiTaskLoss(
            TASKS, weighting="static", static_weights={"a": 2.0, "b": 2.0}
        )(outputs, targets)
        assert weighted.item() == pytest.approx(2 * uniform.item(), rel=1e-5)

    def test_requires_weights(self):
        with pytest.raises(ValueError):
            MultiTaskLoss(TASKS, weighting="static")

    def test_requires_all_tasks(self):
        with pytest.raises(ValueError):
            MultiTaskLoss(TASKS, weighting="static", static_weights={"a": 1.0})

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            MultiTaskLoss(
                TASKS, weighting="static", static_weights={"a": 0.0, "b": 1.0}
            )


class TestUncertaintyWeighting:
    def test_initial_equals_uniform(self):
        # log_vars start at zero: exp(0) * L + 0 == L.
        outputs, targets = fake_outputs(), fake_targets()
        uniform, _ = MultiTaskLoss(TASKS)(outputs, targets)
        uncertainty, _ = MultiTaskLoss(TASKS, weighting="uncertainty")(outputs, targets)
        assert uncertainty.item() == pytest.approx(uniform.item(), rel=1e-5)

    def test_exposes_learnable_parameters(self):
        criterion = MultiTaskLoss(TASKS, weighting="uncertainty")
        extra = criterion.extra_parameters()
        assert len(extra) == 1
        assert extra[0].shape == (2,)

    def test_log_vars_receive_gradient(self):
        criterion = MultiTaskLoss(TASKS, weighting="uncertainty")
        total, _ = criterion(fake_outputs(), fake_targets())
        total.backward()
        assert criterion.uncertainty.log_vars.grad is not None

    def test_standalone_module(self):
        weighting = UncertaintyWeighting(["x", "y"])
        losses = {
            "x": Tensor(np.array(1.0, dtype=np.float32), requires_grad=True),
            "y": Tensor(np.array(2.0, dtype=np.float32), requires_grad=True),
        }
        assert weighting(losses).item() == pytest.approx(3.0)


class TestValidation:
    def test_unknown_weighting(self):
        with pytest.raises(ValueError):
            MultiTaskLoss(TASKS, weighting="magic")

    def test_label_smoothing_passthrough(self):
        criterion = MultiTaskLoss(TASKS, label_smoothing=0.1)
        total, _ = criterion(fake_outputs(), fake_targets())
        assert np.isfinite(total.item())
