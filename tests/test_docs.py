"""The docs lane: links must resolve, examples must run.

Two contracts for ``docs/`` + ``README.md``:

* every *relative* markdown link (and image) points at a file or
  directory that actually exists in the repo — docs rot loudly, not
  silently;
* every ```python fenced block in ``docs/*.md`` is a self-contained,
  runnable example — executed here in a subprocess (so doc examples
  cannot leak state, e.g. registry mutations, into this test session).

Illustrative-only snippets in the docs use ```text / ```console fences,
which are not executed.  CI runs this module in its own ``docs`` lane.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _markdown_files():
    files = [REPO / "README.md"] + sorted(DOCS.glob("*.md"))
    assert files, "no markdown files found"
    return files


def _relative_links(path: Path):
    """Yield (target, resolved_path) for every relative link in ``path``."""
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        yield target, resolved


@pytest.mark.parametrize(
    "path", _markdown_files(), ids=lambda p: str(p.relative_to(REPO))
)
def test_relative_links_resolve(path):
    broken = [
        target
        for target, resolved in _relative_links(path)
        if not resolved.exists()
    ]
    assert not broken, f"{path.name}: broken relative link(s): {broken}"


def test_docs_pages_exist_and_are_indexed_from_readme():
    """The README's docs index must reach every page under docs/."""
    pages = sorted(p.name for p in DOCS.glob("*.md"))
    assert pages, "docs/ has no pages"
    readme = (REPO / "README.md").read_text()
    unindexed = [page for page in pages if f"docs/{page}" not in readme]
    assert not unindexed, f"docs pages not linked from README: {unindexed}"


def _python_blocks():
    blocks = []
    for path in sorted(DOCS.glob("*.md")):
        for index, match in enumerate(_FENCE.finditer(path.read_text())):
            blocks.append(
                pytest.param(
                    match.group(1), id=f"{path.name}#{index}"
                )
            )
    return blocks


@pytest.mark.parametrize("code", _python_blocks())
def test_docs_python_examples_run(code):
    """Each ```python block in docs/ is executable as written.

    Runs in a subprocess from the repo root (the docs' working-directory
    convention) with ``src`` on the path, mirroring a reader pasting the
    block into a fresh interpreter.
    """
    result = subprocess.run(
        [sys.executable, "-c", code],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"doc example failed:\n{code}\n--- stderr ---\n{result.stderr}"
    )
