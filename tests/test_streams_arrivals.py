"""Open-loop arrival processes: determinism, stationarity, round-trips.

The traffic half of the robustness layer: every schedule an
:class:`~repro.data.streams.ArrivalSpec` emits must be reproducible from
its seed (the overload bench's load points are comparable only because
of this), strictly ordered, and serialisable through dict/JSON/compact
string without loss.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.streams import (
    ARRIVAL_KINDS,
    POPULARITY_KINDS,
    ArrivalSpec,
    PopularitySpec,
    Request,
    make_image_batches,
    make_request_stream,
)
from repro.scenarios import Scenario, ScenarioError


class TestArrivalSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ArrivalSpec(kind="constant")

    @pytest.mark.parametrize("field, value", [
        ("rate_rps", 0.0),
        ("rate_rps", -5.0),
        ("burst_factor", 0.5),
        ("burst_fraction", 0.0),
        ("burst_fraction", 1.0),
        ("dwell_s", 0.0),
        ("period_s", 0.0),
        ("amplitude", 1.5),
        ("amplitude", -0.1),
    ])
    def test_bad_parameters_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            ArrivalSpec(**{field: value})

    def test_kinds_constant_is_exhaustive(self):
        for kind in ARRIVAL_KINDS:
            ArrivalSpec(kind=kind).sample(8)


class TestArrivalSampling:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_strictly_increasing_and_deterministic(self, kind):
        spec = ArrivalSpec(kind=kind, rate_rps=200.0, seed=7)
        a = spec.sample(500)
        b = spec.sample(500)
        assert a.shape == (500,)
        np.testing.assert_array_equal(a, b)
        assert np.all(np.diff(a) > 0)
        assert a[0] > 0

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_different_seeds_differ(self, kind):
        a = ArrivalSpec(kind=kind, seed=0).sample(100)
        b = ArrivalSpec(kind=kind, seed=1).sample(100)
        assert not np.array_equal(a, b)

    def test_poisson_mean_rate_converges(self):
        spec = ArrivalSpec(kind="poisson", rate_rps=250.0, seed=0)
        times = spec.sample(20_000)
        empirical = len(times) / times[-1]
        assert empirical == pytest.approx(250.0, rel=0.05)

    @pytest.mark.slow
    def test_bursty_mean_rate_converges(self):
        # MMPP-2 needs many burst/base cycles before the time average
        # approaches the nominal rate; short windows are (correctly)
        # dominated by whichever phase they landed in.
        spec = ArrivalSpec(kind="bursty", rate_rps=200.0, seed=1)
        times = spec.sample(100_000)
        empirical = len(times) / times[-1]
        assert empirical == pytest.approx(200.0, rel=0.1)

    def test_bursty_is_burstier_than_poisson(self):
        # Squared coefficient of variation of inter-arrival gaps: 1 for
        # Poisson, > 1 for the modulated process.
        gaps_p = np.diff(ArrivalSpec(kind="poisson", rate_rps=200, seed=3).sample(5000))
        gaps_b = np.diff(ArrivalSpec(kind="bursty", rate_rps=200, seed=3).sample(5000))
        cv2 = lambda g: float(np.var(g) / np.mean(g) ** 2)  # noqa: E731
        assert cv2(gaps_b) > cv2(gaps_p) * 1.5

    def test_diurnal_rate_oscillates(self):
        spec = ArrivalSpec(
            kind="diurnal", rate_rps=200.0, period_s=2.0, amplitude=0.9, seed=0
        )
        times = spec.sample(4000)
        # Peak-phase windows must hold more arrivals than trough-phase
        # windows of the same width.
        phase = (times % 2.0) / 2.0
        peak = np.sum((phase > 0.125) & (phase < 0.375))    # around sin max
        trough = np.sum((phase > 0.625) & (phase < 0.875))  # around sin min
        assert peak > trough * 2

    def test_scaled_multiplies_rate(self):
        spec = ArrivalSpec(kind="poisson", rate_rps=100.0, seed=0)
        assert spec.scaled(3.0).rate_rps == 300.0
        assert spec.scaled(3.0).kind == spec.kind
        assert spec.mean_rate() == 100.0


class TestArrivalSerialisation:
    @pytest.mark.parametrize("spec", [
        ArrivalSpec(),
        ArrivalSpec(kind="bursty", rate_rps=50.0, burst_factor=4.0,
                    burst_fraction=0.2, dwell_s=0.5, seed=9),
        ArrivalSpec(kind="diurnal", rate_rps=10.0, period_s=60.0,
                    amplitude=0.3, seed=2),
    ])
    def test_dict_json_string_round_trips(self, spec):
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec
        assert ArrivalSpec.from_json(spec.to_json()) == spec
        assert ArrivalSpec.from_string(spec.to_string()) == spec
        json.loads(spec.to_json())  # valid JSON, not just repr

    def test_unknown_keys_rejected(self):
        data = ArrivalSpec().to_dict()
        data["jitter"] = 1.0
        with pytest.raises(ValueError, match="jitter"):
            ArrivalSpec.from_dict(data)

    def test_from_string_shorthand(self):
        spec = ArrivalSpec.from_string("poisson:rate=200,seed=4")
        assert spec.kind == "poisson"
        assert spec.rate_rps == 200.0
        assert spec.seed == 4

    def test_from_string_rejects_garbage(self):
        for text in ("poisson:rate=", "tsunami:rate=1", "poisson:bogus=2"):
            with pytest.raises(ValueError):
                ArrivalSpec.from_string(text)

    @settings(max_examples=25, deadline=None)
    @given(
        kind=st.sampled_from(ARRIVAL_KINDS),
        rate=st.floats(min_value=0.1, max_value=1e4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_string_round_trip_property(self, kind, rate, seed):
        spec = ArrivalSpec(kind=kind, rate_rps=rate, seed=seed)
        assert ArrivalSpec.from_string(spec.to_string()) == spec


class TestRequestStream:
    def _sources(self):
        return {
            "cam_a": make_image_batches(1, 4, image_size=16, seed=0),
            "cam_b": make_image_batches(1, 4, image_size=16, seed=1),
        }

    def test_deterministic_and_ordered(self):
        arrival = ArrivalSpec(kind="poisson", rate_rps=50.0, seed=5)
        a = make_request_stream(arrival, self._sources(), count=40)
        b = make_request_stream(arrival, self._sources(), count=40)
        assert len(a) == 40
        assert all(isinstance(r, Request) for r in a)
        assert [r.source for r in a] == [r.source for r in b]
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        arrivals = [r.arrival_s for r in a]
        assert arrivals == sorted(arrivals)

    def test_weights_bias_the_blend(self):
        arrival = ArrivalSpec(kind="poisson", rate_rps=50.0, seed=5)
        stream = make_request_stream(
            arrival, self._sources(), count=300,
            weights={"cam_a": 9.0, "cam_b": 1.0},
        )
        from_a = sum(1 for r in stream if r.source == "cam_a")
        assert from_a > 200

    def test_bad_weights_rejected(self):
        arrival = ArrivalSpec()
        with pytest.raises(ValueError):
            make_request_stream(arrival, self._sources(), count=4,
                                weights={"cam_a": 1.0, "ghost": 1.0})


class TestPopularitySpec:
    def _pool(self, count=32):
        rng = np.random.default_rng(0)
        return [
            rng.standard_normal((3, 8, 8)).astype(np.float32)
            for _ in range(count)
        ]

    @staticmethod
    def _duplicate_rate(stream):
        seen, duplicates = set(), 0
        for request in stream:
            key = request.image.tobytes()
            if key in seen:
                duplicates += 1
            seen.add(key)
        return duplicates / len(stream)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            PopularitySpec(kind="pareto")

    @pytest.mark.parametrize("field, value", [
        ("s", 0.0),
        ("s", -1.0),
        ("universe", 0),
        ("rate", -0.1),
        ("rate", 1.5),
    ])
    def test_bad_parameters_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            PopularitySpec(kind="zipf", **{field: value})

    def test_kinds_constant_is_exhaustive(self):
        rng = np.random.default_rng(0)
        for kind in POPULARITY_KINDS:
            spec = PopularitySpec(kind=kind)
            state = {}
            indices = [spec.draw(rng, 8, state) for _ in range(20)]
            assert all(0 <= index < 8 for index in indices)

    @pytest.mark.parametrize("text", [
        "uniform",
        "zipf:s=1.1,universe=64",
        "zipf:s=1.5",
        "repeat:rate=0.9",
        "repeat",
    ])
    def test_string_round_trip(self, text):
        spec = PopularitySpec.from_string(text)
        assert PopularitySpec.from_string(spec.to_string()) == spec
        assert PopularitySpec.from_dict(spec.to_dict()) == spec
        assert PopularitySpec.from_json(spec.to_json()) == spec

    @given(
        st.sampled_from(POPULARITY_KINDS),
        st.floats(0.1, 4.0),
        st.integers(1, 512),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, kind, s, universe, rate):
        spec = PopularitySpec(kind=kind, s=s, universe=universe, rate=rate)
        assert PopularitySpec.from_string(spec.to_string()) == spec
        assert PopularitySpec.from_json(spec.to_json()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            PopularitySpec.from_dict({"kind": "zipf", "exponent": 1.1})
        with pytest.raises(ValueError, match="key"):
            PopularitySpec.from_string("zipf:exponent=1.1")

    def test_none_popularity_is_bitwise_legacy(self):
        # The popularity knob must not perturb existing seeded streams:
        # None and explicit "uniform" replay the pre-knob RNG sequence.
        arrival = ArrivalSpec(kind="poisson", rate_rps=80.0, seed=11)
        sources = {"cam": self._pool()}
        legacy = make_request_stream(arrival, sources, count=64)
        uniform = make_request_stream(
            arrival, sources, count=64, popularity="uniform"
        )
        for a, b in zip(legacy, uniform):
            assert a.source == b.source
            np.testing.assert_array_equal(a.image, b.image)

    def test_repeat_rate_zero_has_no_duplicates(self):
        arrival = ArrivalSpec(kind="poisson", rate_rps=80.0, seed=2)
        stream = make_request_stream(
            arrival, {"cam": self._pool(64)}, count=48,
            popularity="repeat:rate=0.0",
        )
        assert self._duplicate_rate(stream) == 0.0

    def test_repeat_rate_dials_duplicates(self):
        arrival = ArrivalSpec(kind="poisson", rate_rps=80.0, seed=2)
        stream = make_request_stream(
            arrival, {"cam": self._pool(256)}, count=200,
            popularity="repeat:rate=0.9",
        )
        assert self._duplicate_rate(stream) > 0.75

    def test_zipf_small_universe_concentrates(self):
        arrival = ArrivalSpec(kind="poisson", rate_rps=80.0, seed=2)
        stream = make_request_stream(
            arrival, {"cam": self._pool(256)}, count=200,
            popularity="zipf:s=1.1,universe=8",
        )
        assert self._duplicate_rate(stream) > 0.9
        unique = len({r.image.tobytes() for r in stream})
        assert unique <= 8

    def test_popularity_streams_replay_exactly(self):
        arrival = ArrivalSpec(kind="poisson", rate_rps=80.0, seed=4)
        sources = {"cam": self._pool()}
        for popularity in ("zipf:universe=8", "repeat:rate=0.5"):
            a = make_request_stream(
                arrival, sources, count=64, popularity=popularity
            )
            b = make_request_stream(
                arrival, sources, count=64, popularity=popularity
            )
            for x, y in zip(a, b):
                np.testing.assert_array_equal(x.image, y.image)

    def test_bad_popularity_type_rejected(self):
        with pytest.raises(TypeError, match="popularity"):
            make_request_stream(
                ArrivalSpec(), {"cam": self._pool(4)}, count=4,
                popularity=3.14,
            )


class TestScenarioArrival:
    def test_arrival_round_trips_through_scenario(self):
        scenario = Scenario(
            name="overload-probe",
            backbone="mobilenet_v3_tiny",
            arrival="poisson:rate=150,seed=3",
        )
        data = scenario.to_dict()
        assert data["arrival"] == scenario.arrival
        again = Scenario.from_dict(data)
        assert again == scenario
        parsed = again.arrival_spec()
        assert parsed.kind == "poisson" and parsed.rate_rps == 150.0

    def test_arrival_is_canonicalised(self):
        scenario = Scenario(
            name="canon", backbone="mobilenet_v3_tiny",
            arrival="bursty:rate=100.0",
        )
        assert scenario.arrival == ArrivalSpec.from_string(
            scenario.arrival
        ).to_string()

    def test_bad_arrival_rejected_eagerly(self):
        with pytest.raises(ScenarioError, match="arrival"):
            Scenario(name="bad", backbone="mobilenet_v3_tiny",
                     arrival="tsunami:rate=1")

    def test_none_arrival_means_closed_loop(self):
        scenario = Scenario(name="plain", backbone="mobilenet_v3_tiny")
        assert scenario.arrival is None
        assert scenario.arrival_spec() is None
