"""Shared fixtures for the test suite.

Session-scoped fixtures cache small datasets and a briefly-trained net so
the many tests that need "some trained model" or "some dataset" do not
each pay generation/training cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import data
from repro.core import MTLSplitNet, MultiTaskTrainer, TrainConfig


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def shapes3d_small():
    """300 noisy 3D-Shapes samples with the paper's two tasks."""
    return data.make_shapes3d(300, tasks=("scale", "shape"), seed=7)


@pytest.fixture(scope="session")
def medic_small():
    return data.make_medic(200, seed=7)


@pytest.fixture(scope="session")
def faces_small():
    return data.make_faces(200, seed=7)


@pytest.fixture(scope="session")
def tiny_trained_net(shapes3d_small):
    """A briefly trained two-task net on the tiny MobileNetV3 backbone."""
    train = shapes3d_small.subset(np.arange(200))
    net = MTLSplitNet.from_tasks(
        "mobilenet_v3_tiny", list(train.tasks), input_size=32, seed=3
    )
    trainer = MultiTaskTrainer(TrainConfig(epochs=1, batch_size=64, lr=3e-3, seed=3))
    trainer.fit(net, train)
    return net
