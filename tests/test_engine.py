"""Property tests for the arena-planned execution engine (repro.nn.engine).

The engine's contract: a planned (and optionally batch-sharded) executor
produces the same outputs as the unplanned compiled session within 1e-6,
for every backbone, split index, batch size and worker count — while
performing zero large allocations per steady-state batch.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import data, nn
from repro.core import MTLSplitNet
from repro.deployment import GIGABIT_ETHERNET
from repro.serve import SplitPipeline
from repro.nn import engine, fuse

_ATOL = 1e-6
_BACKBONES = ("mobilenet_v3_tiny", "vgg_tiny", "efficientnet_tiny")


@pytest.fixture(scope="module")
def images():
    return data.make_shapes3d(32, tasks=("scale", "shape"), seed=11).images


@pytest.fixture(scope="module", params=_BACKBONES)
def split_net(request):
    tasks = data.make_shapes3d(4, tasks=("scale", "shape"), seed=11).tasks
    net = MTLSplitNet.from_tasks(request.param, list(tasks), 32, seed=23)
    net.eval()
    return net


def _assert_outputs_match(lhs, rhs, atol=_ATOL):
    if isinstance(rhs, dict):
        assert set(lhs) == set(rhs)
        for name in rhs:
            np.testing.assert_allclose(lhs[name], rhs[name], atol=atol)
    else:
        np.testing.assert_allclose(lhs, rhs, atol=atol)


class TestPlannedMatchesUnplanned:
    """The acceptance property: planned ≡ unplanned compiled within 1e-6."""

    @pytest.mark.parametrize("num_workers", [1, 2, 3])
    def test_edge_and_server_halves(self, split_net, images, num_workers):
        n_stages = len(list(split_net.backbone.stages))
        for split_index in (1, max(1, n_stages // 2), n_stages):
            edge, server = split_net.split(split_index, input_size=32)
            edge_session = edge.compile_for_inference()
            server_session = server.compile_for_inference()
            x = images[:8]
            z_ref = edge_session.run(x)
            out_ref = server_session.run(z_ref)

            edge_planned = engine.PlannedExecutor(edge_session, num_workers=num_workers)
            server_planned = engine.PlannedExecutor(
                server_session, num_workers=num_workers
            )
            _assert_outputs_match(edge_planned.run(x), z_ref)
            _assert_outputs_match(server_planned.run(z_ref), out_ref)

    @pytest.mark.parametrize("batch_size", [1, 2, 5, 16])
    def test_batch_sizes(self, split_net, images, batch_size):
        session = split_net.compile_for_inference()
        executor = engine.PlannedExecutor(session, num_workers=2)
        x = images[:batch_size]
        _assert_outputs_match(executor.run(x), session.run(x))

    @settings(max_examples=12, deadline=None)
    @given(
        batch=st.integers(1, 12),
        workers=st.integers(1, 4),
        split_fraction=st.floats(0.1, 1.0),
    )
    def test_property_random_batch_worker_split(self, batch, workers, split_fraction):
        # Module-scoped fixtures don't mix with hypothesis; build once here.
        net = _PROPERTY_NET
        n_stages = len(list(net.backbone.stages))
        split_index = max(1, min(n_stages, round(split_fraction * n_stages)))
        edge, _ = net.split(split_index, input_size=32)
        session = edge.compile_for_inference()
        executor = engine.PlannedExecutor(session, num_workers=workers)
        x = _PROPERTY_IMAGES[:batch]
        np.testing.assert_allclose(executor.run(x), session.run(x), atol=_ATOL)

    def test_same_executor_handles_shape_changes(self, split_net, images):
        session = split_net.compile_for_inference()
        executor = engine.PlannedExecutor(session, num_workers=2)
        for batch in (4, 7, 4, 1):
            x = images[:batch]
            _assert_outputs_match(executor.run(x), session.run(x))

    def test_full_pipeline_planned_matches_unplanned(self, split_net, images):
        planned = SplitPipeline.from_net(
            split_net, GIGABIT_ETHERNET, input_size=32, planned=True, num_workers=2
        )
        plain = SplitPipeline.from_net(
            split_net, GIGABIT_ETHERNET, input_size=32, planned=False
        )
        lhs = planned.infer(images[:8])
        rhs = plain.infer(images[:8])
        _assert_outputs_match(lhs, rhs)


_PROPERTY_NET = None
_PROPERTY_IMAGES = None


def setup_module(module):
    global _PROPERTY_NET, _PROPERTY_IMAGES
    dataset = data.make_shapes3d(16, tasks=("scale", "shape"), seed=11)
    net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(dataset.tasks), 32, seed=29)
    net.eval()
    _PROPERTY_NET = net
    _PROPERTY_IMAGES = dataset.images


class TestArena:
    def test_blocks_are_reused(self):
        arena = engine.BufferArena()
        bid_a, a = arena.acquire((4, 8))
        arena.release(bid_a)
        bid_b, b = arena.acquire((2, 16))  # same element count: same block
        assert bid_a == bid_b
        assert arena.num_blocks == 1
        bid_c, _ = arena.acquire((2, 16))  # block busy: a second one appears
        assert bid_c != bid_b
        assert arena.num_blocks == 2

    def test_smallest_sufficient_block_wins(self):
        arena = engine.BufferArena()
        bid_big, _ = arena.acquire((100,))
        bid_small, _ = arena.acquire((10,))
        arena.release(bid_big)
        arena.release(bid_small)
        bid, view = arena.acquire((8,))
        assert bid == bid_small
        assert view.size == 8

    def test_zero_steady_state_allocs_for_planned_net(self, split_net, images):
        edge, _ = split_net.split(None, input_size=32)
        executor = engine.PlannedExecutor(edge.compile_for_inference())
        executor.run(images[:8])
        stats = executor.stats
        assert stats.steady_state_allocs == 0
        assert stats.fallback_ops == 0
        assert stats.arena_bytes > 0
        # Liveness reuse must beat naive one-buffer-per-op allocation.
        assert stats.arena_bytes < stats.requested_bytes

    def test_arena_stable_across_runs(self, split_net, images):
        edge, _ = split_net.split(None, input_size=32)
        executor = engine.PlannedExecutor(edge.compile_for_inference())
        executor.run(images[:8])
        bytes_after_first = executor.stats.arena_bytes
        for _ in range(3):
            executor.run(images[:8])
        assert executor.stats.arena_bytes == bytes_after_first

    def test_plan_rejects_wrong_shape(self, split_net, images):
        edge, _ = split_net.split(None, input_size=32)
        plan = engine.ExecutionPlan(edge.compile_for_inference(), (4, 3, 32, 32))
        with pytest.raises(ValueError, match="batch shape"):
            plan.run(images[:6])


class TestLoweringCoverage:
    """Planner coverage for op types the backbones do not all exercise."""

    def _roundtrip(self, module, x, num_workers=1, atol=_ATOL):
        module.eval()
        session = module.compile_for_inference()
        executor = engine.PlannedExecutor(session, num_workers=num_workers)
        np.testing.assert_allclose(executor.run(x), session.run(x), atol=atol)
        return executor

    def test_fallback_op_matches(self, rng):
        module = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, rng=rng),
            nn.GroupNorm(2, 6),  # no lowering rule: FallbackOp
            nn.ReLU(),
        )
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        executor = self._roundtrip(module, x, num_workers=2)
        assert executor.stats.fallback_ops > 0
        assert executor.stats.steady_state_allocs > 0

    @pytest.mark.parametrize("slope", [0.3, 1, 2.0])
    def test_leaky_relu_slope_preserved(self, rng, slope):
        # slope=1 (an int) regression: closure introspection once silently
        # fell back to 0.01 when the slope was not a Python float.
        module = nn.Sequential(nn.Linear(6, 6, rng=rng), nn.LeakyReLU(slope))
        x = rng.normal(size=(5, 6)).astype(np.float32)
        self._roundtrip(module, x)

    @pytest.mark.parametrize(
        "module_factory,shape",
        [
            (lambda rng: nn.MaxPool2d(3, 2), (3, 4, 9, 9)),
            (lambda rng: nn.AvgPool2d(2), (3, 4, 8, 8)),
            (lambda rng: nn.AdaptiveAvgPool2d(2), (3, 4, 8, 8)),
            (lambda rng: nn.AdaptiveAvgPool2d(1), (3, 4, 8, 8)),
            (lambda rng: nn.Sequential(nn.BatchNorm2d(4), nn.GELU()), (3, 4, 6, 6)),
            (lambda rng: nn.Sequential(nn.Flatten(), nn.Linear(64, 3, rng=rng)), (3, 4, 4, 4)),
        ],
    )
    def test_layer_equivalence(self, rng, module_factory, shape):
        module = module_factory(rng)
        x = rng.normal(size=shape).astype(np.float32)
        self._roundtrip(module, x)

    def test_strided_pointwise_conv(self, rng):
        # 1x1 kernel with stride 2: not the pointwise GEMM fast path.
        module = nn.Conv2d(4, 6, 1, stride=2, rng=rng)
        x = rng.normal(size=(3, 4, 8, 8)).astype(np.float32)
        self._roundtrip(module, x)

    def test_grouped_conv(self, rng):
        module = nn.Conv2d(8, 4, 3, padding=1, groups=2, rng=rng)
        x = rng.normal(size=(2, 8, 6, 6)).astype(np.float32)
        executor = self._roundtrip(module, x)
        assert executor.stats.sparse_ops == 1

    def test_silu_hard_swish_chain(self, rng):
        module = nn.Sequential(
            nn.Conv2d(3, 5, 3, padding=1, rng=rng), nn.SiLU(), nn.HardSwish()
        )
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        self._roundtrip(module, x)


class TestPlannedExecutor:
    def test_worker_errors_propagate(self, rng):
        session = nn.Linear(4, 2, rng=rng).compile_for_inference()
        executor = engine.PlannedExecutor(session, num_workers=2)

        class Boom(RuntimeError):
            pass

        def explode():
            raise Boom("worker failure")

        with pytest.raises(Boom):
            executor._pool.run_all([explode, explode])

    def test_copy_outputs_isolates_results(self, split_net, images):
        session = split_net.compile_for_inference()
        executor = engine.PlannedExecutor(session, copy_outputs=True)
        first = executor.run(images[:4])
        snapshot = {name: logits.copy() for name, logits in first.items()}
        executor.run(images[4:8])
        for name in first:
            np.testing.assert_array_equal(first[name], snapshot[name])

    def test_without_copy_outputs_buffers_are_reused(self, split_net, images):
        edge, _ = split_net.split(None, input_size=32)
        executor = engine.PlannedExecutor(edge.compile_for_inference())
        first = executor.run(images[:4])
        second = executor.run(images[4:8])
        assert first is second  # same plan-owned buffer, by design

    def test_plan_cache_is_bounded(self, split_net, images):
        edge, _ = split_net.split(None, input_size=32)
        executor = engine.PlannedExecutor(
            edge.compile_for_inference(), max_plans=2
        )
        for batch in (1, 2, 3, 4):
            executor.run(images[:batch])
        assert len(executor._prepared) <= 2

    def test_more_workers_than_samples(self, split_net, images):
        session = split_net.compile_for_inference()
        executor = engine.PlannedExecutor(session, num_workers=8)
        _assert_outputs_match(executor.run(images[:2]), session.run(images[:2]))

    def test_invalid_worker_count_rejected(self, rng):
        session = nn.Linear(3, 2, rng=rng).compile_for_inference()
        with pytest.raises(ValueError):
            engine.PlannedExecutor(session, num_workers=0)

    def test_close_stops_workers_and_run_recovers(self, split_net, images):
        session = split_net.compile_for_inference()
        executor = engine.PlannedExecutor(session, num_workers=2)
        reference = session.run(images[:6])
        _assert_outputs_match(executor.run(images[:6]), reference)
        threads = executor._pool._threads
        executor.close()
        assert all(not thread.is_alive() for thread in threads)
        executor.close()  # idempotent
        _assert_outputs_match(executor.run(images[:6]), reference)  # rebuilds

    def test_compile_for_inference_plan_flag(self, split_net, images):
        executor = split_net.compile_for_inference(
            sample_input=images[:4], plan=True, num_workers=2
        )
        assert isinstance(executor, engine.PlannedExecutor)
        assert executor.num_ops == split_net.compile_for_inference().num_ops
        assert "PlannedExecutor" in executor.describe()

    def test_stats_aggregate_over_worker_plans(self, split_net, images):
        edge, _ = split_net.split(None, input_size=32)
        executor = engine.PlannedExecutor(edge.compile_for_inference(), num_workers=2)
        executor.run(images[:8])
        stats = executor.stats
        assert stats.num_plans == 2
        assert stats.num_workers == 2
        assert 0.0 <= stats.reuse_ratio < 1.0


class TestRuntimeIntegration:
    def test_runtime_reports_plan_accounting(self, split_net, images):
        pipeline = SplitPipeline.from_net(
            split_net, GIGABIT_ETHERNET, input_size=32, num_workers=2
        )
        batches = [images[:4], images[4:8]]
        _, report = pipeline.infer_stream(batches)
        assert report.num_workers == 2
        assert report.arena_bytes > 0
        assert report.steady_state_allocs == 0
        assert pipeline.edge.planned and pipeline.server.planned

    def test_planned_false_wins_over_num_workers(self, split_net, images):
        # --no-plan with --num-workers > 1: the explicit opt-out wins.
        pipeline = SplitPipeline.from_net(
            split_net, GIGABIT_ETHERNET, input_size=32,
            planned=False, num_workers=4,
        )
        assert not pipeline.edge.planned
        assert not pipeline.server.planned
        assert isinstance(pipeline.edge.session, fuse.InferenceSession)

    def test_conv_index_caches_are_batch_independent(self, split_net, images):
        edge, _ = split_net.split(None, input_size=32)
        session = edge.compile_for_inference()
        session.run(images[:8])
        session.run(images[:3])  # ragged batch must reuse the same tables
        for op in session._walk():
            if isinstance(op, fuse.ConvOp):
                assert len(op._im2col_idx) <= 1
                assert len(op._dw_offsets) <= 1

    def test_unplanned_runtime_reports_zero_arena(self, split_net, images):
        pipeline = SplitPipeline.from_net(
            split_net, GIGABIT_ETHERNET, input_size=32, planned=False
        )
        _, report = pipeline.infer_stream([images[:4]])
        assert report.arena_bytes == 0
        assert report.num_workers == 1
        assert not pipeline.edge.planned
