"""repro.scenarios: spec validation + round-trip (property-tested like
DeploymentSpec), the curated registry, traffic determinism, compilation
into DeploymentSpec, the CLI surface, and a slow 224px end-to-end smoke."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.scenarios import (
    BACKBONE_FAMILIES,
    TIERS,
    Scenario,
    ScenarioError,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_matrix,
)

_BACKBONES = ("vgg_tiny", "mobilenet_v3_tiny", "efficientnet_tiny")
_CHANNEL_NAMES = ("gigabit_ethernet", "wifi_5", "lte_uplink", "degraded_edge_link")

_names = st.text(alphabet="abcdefghij_-0123456789", min_size=1, max_size=16)
_task_names = st.text(alphabet="abcdefghij_", min_size=1, max_size=8)
_tasks = st.lists(
    st.tuples(_task_names, st.integers(1, 12)),
    min_size=1,
    max_size=4,
    unique_by=lambda pair: pair[0],
).map(tuple)

_scenarios = st.builds(
    Scenario,
    name=_names,
    backbone=st.sampled_from(_BACKBONES),
    tasks=_tasks,
    tier=st.sampled_from(TIERS),
    input_size=st.sampled_from((16, 32, 64, 224)),
    batch_size=st.integers(1, 32),
    batches=st.integers(1, 8),
    split_index=st.one_of(st.none(), st.just("auto"), st.integers(1, 6)),
    wire=st.sampled_from(("float32", "float16", "quant8")),
    channel=st.sampled_from(_CHANNEL_NAMES),
    num_workers=st.integers(1, 8),
    optimize=st.booleans(),
    planned=st.booleans(),
    noise_amount=st.floats(0.0, 1.0, allow_nan=False),
    seed=st.integers(0, 2**31 - 1),
    description=st.text(max_size=40),
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(scenario=_scenarios)
    def test_dict_round_trip(self, scenario):
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    @settings(max_examples=60, deadline=None)
    @given(scenario=_scenarios)
    def test_json_round_trip(self, scenario):
        assert Scenario.from_json(scenario.to_json()) == scenario

    @settings(max_examples=20, deadline=None)
    @given(scenario=_scenarios)
    def test_to_dict_is_stable(self, scenario):
        again = Scenario.from_dict(scenario.to_dict())
        assert again.to_dict() == scenario.to_dict()

    @settings(max_examples=20, deadline=None)
    @given(scenario=_scenarios)
    def test_json_is_plain_types(self, scenario):
        # The JSON form must be loadable by anything, not just python.
        payload = json.loads(scenario.to_json())
        assert isinstance(payload, dict)

    def test_replace_revalidates(self):
        scenario = get_scenario("mobilenetv3_quick_32px")
        assert scenario.replace(batch_size=4).batch_size == 4
        with pytest.raises(ScenarioError, match="batch_size"):
            scenario.replace(batch_size=0)

    def test_wireformat_instances_normalise(self):
        from repro.deployment import WireFormat

        scenario = Scenario(
            name="w", backbone="vgg_tiny", wire=WireFormat("quant8")
        )
        assert scenario.wire == "quant8"
        assert Scenario.from_dict(scenario.to_dict()) == scenario


class TestValidation:
    def test_unknown_backbone(self):
        with pytest.raises(ScenarioError, match="unknown backbone 'resnet50'"):
            Scenario(name="x", backbone="resnet50")

    def test_bad_name(self):
        with pytest.raises(ScenarioError, match="name"):
            Scenario(name="", backbone="vgg_tiny")
        with pytest.raises(ScenarioError, match="whitespace"):
            Scenario(name="two words", backbone="vgg_tiny")

    def test_bad_tier(self):
        with pytest.raises(ScenarioError, match="tier must be one of"):
            Scenario(name="x", backbone="vgg_tiny", tier="ultrawide")

    def test_empty_tasks(self):
        with pytest.raises(ScenarioError, match="non-empty"):
            Scenario(name="x", backbone="vgg_tiny", tasks=())

    def test_duplicate_tasks(self):
        with pytest.raises(ScenarioError, match="unique"):
            Scenario(name="x", backbone="vgg_tiny", tasks=(("a", 2), ("a", 3)))

    def test_small_input_size(self):
        with pytest.raises(ScenarioError, match="input_size"):
            Scenario(name="x", backbone="vgg_tiny", input_size=8)

    @pytest.mark.parametrize("field", ["batch_size", "batches"])
    @pytest.mark.parametrize("bad", [0, -1, 2.5, True])
    def test_bad_batch_geometry(self, field, bad):
        with pytest.raises(ScenarioError, match=field):
            Scenario(name="x", backbone="vgg_tiny", **{field: bad})

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "half"])
    def test_bad_split_index(self, bad):
        with pytest.raises(ScenarioError, match="split_index"):
            Scenario(name="x", backbone="vgg_tiny", split_index=bad)

    def test_bad_wire(self):
        with pytest.raises(ScenarioError, match="unknown wire dtype"):
            Scenario(name="x", backbone="vgg_tiny", wire="int4")

    def test_channel_must_be_preset_name(self):
        with pytest.raises(ScenarioError, match="preset name"):
            Scenario(name="x", backbone="vgg_tiny", channel="pigeon")

    def test_bad_noise(self):
        with pytest.raises(ScenarioError, match="noise_amount"):
            Scenario(name="x", backbone="vgg_tiny", noise_amount=1.5)

    def test_unknown_keys_rejected(self):
        data = get_scenario("vgg_quick_32px").to_dict()
        data["resolution"] = 512
        with pytest.raises(ScenarioError, match="unknown Scenario keys"):
            Scenario.from_dict(data)

    def test_from_json_rejects_non_objects(self):
        with pytest.raises(ScenarioError, match="JSON"):
            Scenario.from_json("[1]")
        with pytest.raises(ScenarioError, match="invalid"):
            Scenario.from_json("{nope")

    def test_scenario_error_is_value_error(self):
        with pytest.raises(ValueError):
            Scenario(name="x", backbone="vgg_tiny", num_workers=0)

    def test_bool_num_workers_rejected(self):
        # isinstance(True, int) holds, but "num_workers": true in the
        # JSON form would break non-python consumers of the spec.
        with pytest.raises(ScenarioError, match="num_workers"):
            Scenario(name="x", backbone="vgg_tiny", num_workers=True)


class TestRegistry:
    def test_matrix_covers_every_family_and_tier(self):
        matrix = scenario_matrix()
        seen = {(s.backbone, s.tier) for s in matrix}
        for family_backbone in BACKBONE_FAMILIES.values():
            for tier in TIERS:
                assert (family_backbone, tier) in seen

    def test_hires_tier_is_224px(self):
        for scenario in scenario_matrix(tier="hires"):
            assert scenario.input_size == 224

    def test_unknown_scenario_names_available(self):
        with pytest.raises(ScenarioError, match="available:"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("vgg_quick_32px")
        with pytest.raises(ScenarioError, match="already registered"):
            register_scenario(scenario)

    def test_tier_filter(self):
        quick = available_scenarios(tier="quick")
        assert quick and all("quick" in name for name in quick)
        assert available_scenarios(tier="hires") != quick

    def test_listing_sorted_small_to_large(self):
        sizes = [s.input_size for s in scenario_matrix()]
        assert sizes == sorted(sizes)


class TestCompilation:
    def test_deployment_spec_fields_thread_through(self):
        scenario = get_scenario("efficientnet_hires_224px")
        spec = scenario.deployment_spec()
        assert spec.model == scenario.backbone
        assert spec.input_size == 224
        assert spec.wire == scenario.wire
        assert spec.channel == scenario.channel
        assert spec.tasks == scenario.tasks
        # Spec overrides for the benchmark baseline do not mutate anything.
        baseline = scenario.deployment_spec(optimize=False)
        assert not baseline.optimize and spec.optimize

    def test_deployment_spec_round_trips_as_json_too(self):
        spec = get_scenario("mobilenetv3_quick_32px").deployment_spec()
        from repro.serve import DeploymentSpec

        assert DeploymentSpec.from_json(spec.to_json()) == spec

    def test_batches_are_deterministic_and_sized(self):
        scenario = get_scenario("mobilenetv3_quick_32px").replace(
            batches=2, batch_size=3
        )
        first = scenario.make_batches()
        second = scenario.make_batches()
        assert len(first) == 2
        for a, b in zip(first, second):
            assert a.shape == (3, 3, 32, 32) and a.dtype == np.float32
            np.testing.assert_array_equal(a, b)

    def test_batches_override_and_lazy_iter(self):
        scenario = get_scenario("mobilenetv3_quick_32px")
        iterator = scenario.iter_batches(1)
        assert next(iterator).shape[0] == scenario.batch_size
        assert len(scenario.make_batches(3)) == 3

    def test_different_seeds_differ(self):
        scenario = get_scenario("mobilenetv3_quick_32px").replace(batches=1)
        other = scenario.replace(seed=7)
        assert not np.array_equal(
            scenario.make_batches()[0], other.make_batches()[0]
        )


class TestStreams:
    def test_streams_validate_arguments(self):
        from repro.data import make_image_batches

        with pytest.raises(ValueError, match="batches"):
            make_image_batches(-1, 4)
        with pytest.raises(ValueError, match="batch_size"):
            make_image_batches(1, 0)

    def test_lazy_stream_validates_eagerly(self):
        # The lazy form must raise at the call site, not at first
        # iteration (or never, for an iterator that is dropped).
        from repro.data import iter_image_batches

        with pytest.raises(ValueError, match="batches"):
            iter_image_batches(-1, 4)

    def test_zero_batches_is_empty(self):
        from repro.data import make_image_batches

        assert make_image_batches(0, 4) == []

    def test_image_size_parameterises(self):
        from repro.data import make_image_batches

        (batch,) = make_image_batches(1, 2, image_size=48, seed=3)
        assert batch.shape == (2, 3, 48, 48)


class TestScenariosCli:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "mobilenetv3_hires_224px" in out
        assert "224px" in out

    def test_list_tier_filter(self, capsys):
        assert main(["scenarios", "list", "--tier", "hires"]) == 0
        out = capsys.readouterr().out
        assert "hires" in out and "quick" not in out

    def test_list_unknown_tier_fails(self, capsys):
        assert main(["scenarios", "list", "--tier", "galactic"]) == 2

    def test_describe(self, capsys):
        assert main(["scenarios", "describe", "vgg_hires_224px"]) == 0
        out = capsys.readouterr().out
        assert "vgg_tiny @224px" in out
        assert "deployment:" in out

    def test_describe_json_round_trips(self, capsys):
        assert main(["scenarios", "describe", "vgg_hires_224px", "--json"]) == 0
        out = capsys.readouterr().out
        assert Scenario.from_json(out) == get_scenario("vgg_hires_224px")

    def test_unknown_name_fails_with_listing(self, capsys):
        assert main(["scenarios", "describe", "nope"]) == 2
        assert "available" in capsys.readouterr().err

    def test_run_quick_scenario(self, capsys):
        assert main(
            ["scenarios", "run", "mobilenetv3_quick_32px", "--batches", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "engine:" in out
        assert "allocs/batch" in out

    def test_run_rejects_bad_batches(self, capsys):
        assert main(
            ["scenarios", "run", "mobilenetv3_quick_32px", "--batches", "0"]
        ) == 2


@pytest.mark.slow
class TestHiresSmoke:
    """One 224px scenario runs end-to-end through the real stack."""

    def test_hires_scenario_end_to_end(self):
        scenario = get_scenario("mobilenetv3_hires_224px")
        result = run_scenario(scenario, batches=2)
        report = result.report
        assert report.batches == 2
        assert report.images == 2 * scenario.batch_size
        # The whole point of the tier: the blocking pass operates here,
        # and planning still removes every steady-state allocation.
        assert report.spmm_row_blocks > 0
        assert report.steady_state_allocs == 0
        assert result.payload_bytes_per_batch > 0

    def test_hires_optimized_matches_unoptimized(self):
        scenario = get_scenario("efficientnet_hires_224px").replace(
            batches=1, batch_size=2
        )
        traffic = scenario.make_batches()
        from repro.serve import deploy

        with deploy(scenario.deployment_spec()) as optimized, deploy(
            scenario.deployment_spec(optimize=False)
        ) as baseline:
            opt = optimized.infer(traffic[0])
            base = baseline.infer(traffic[0])
            for task in opt:
                np.testing.assert_allclose(opt[task], base[task], atol=1e-4)
