"""Profiler tests: Table-4 columns, batch/input scaling, and agreement
with the paper's reported magnitudes."""

import pytest

from repro import models
from repro.deployment import profile_backbone, render_table4, table4_rows
from repro.deployment.profiler import BYTES_PER_PARAM

_MB = 1024 * 1024


class TestProfileBasics:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_backbone(models.get_spec("mobilenet_v3_small"), input_size=224)

    def test_params_match_analytic_count(self, profile):
        assert profile.params == models.count_parameters(
            models.get_spec("mobilenet_v3_small")
        )

    def test_params_megabytes(self, profile):
        assert profile.params_megabytes == pytest.approx(
            profile.params * BYTES_PER_PARAM / _MB
        )

    def test_estimated_is_sum_of_parts(self, profile):
        assert profile.estimated_megabytes == pytest.approx(
            profile.input_megabytes
            + profile.params_megabytes
            + profile.forward_backward_megabytes
        )

    def test_zb_shape_is_last_layer(self, profile):
        assert profile.zb_shape == profile.layers[-1].out_shape

    def test_summary_mentions_key_numbers(self, profile):
        text = profile.summary()
        assert "params" in text and "Z_b" in text

    def test_flops_positive(self, profile):
        assert profile.flops > 0

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            profile_backbone(models.get_spec("mobilenet_v3_small"), batch_size=0)


class TestScaling:
    def test_activations_scale_with_batch(self):
        spec = models.get_spec("mobilenet_v3_small")
        one = profile_backbone(spec, input_size=224, batch_size=1)
        eight = profile_backbone(spec, input_size=224, batch_size=8)
        assert eight.forward_backward_megabytes == pytest.approx(
            8 * one.forward_backward_megabytes
        )
        assert eight.params == one.params

    def test_activations_scale_with_input_area(self):
        spec = models.get_spec("mobilenet_v3_small")
        small = profile_backbone(spec, input_size=224)
        large = profile_backbone(spec, input_size=448)
        ratio = large.forward_backward_megabytes / small.forward_backward_megabytes
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_zb_scales_with_input_area(self):
        spec = models.get_spec("efficientnet_b0")
        small = profile_backbone(spec, input_size=224)
        large = profile_backbone(spec, input_size=448)
        assert large.zb_elements == 4 * small.zb_elements


class TestPaperTable4Agreement:
    """The green columns of Table 4: our analytic numbers should land on
    the paper's magnitudes (see EXPERIMENTS.md for the full comparison)."""

    def test_mobilenet_params_about_0_9m(self):
        profile = profile_backbone(models.get_spec("mobilenet_v3_small"), input_size=224)
        assert profile.params / 1e6 == pytest.approx(0.9, abs=0.1)
        # paper: 3.58 MB of parameters
        assert profile.params_megabytes == pytest.approx(3.58, abs=0.3)

    def test_efficientnet_params_about_4m(self):
        profile = profile_backbone(models.get_spec("efficientnet_b0"), input_size=224)
        assert profile.params / 1e6 == pytest.approx(4.0, abs=0.3)
        # paper: 15.45 MB of parameters
        assert profile.params_megabytes == pytest.approx(15.45, rel=0.05)

    def test_fwd_bwd_at_1024_matches_paper_order(self):
        # The paper's fwd/bwd sizes (724 MB / 3452 MB) correspond to
        # profiling at roughly 1024x1024 input.
        mobilenet = profile_backbone(models.get_spec("mobilenet_v3_small"), input_size=1024)
        efficientnet = profile_backbone(models.get_spec("efficientnet_b0"), input_size=1024)
        assert mobilenet.forward_backward_megabytes == pytest.approx(724, rel=0.1)
        assert efficientnet.forward_backward_megabytes == pytest.approx(3452, rel=0.1)

    def test_zb_much_smaller_than_input(self):
        for name in ("mobilenet_v3_small", "efficientnet_b0"):
            profile = profile_backbone(models.get_spec(name), input_size=224)
            assert profile.zb_megabytes < 0.05 * profile.input_megabytes * 50
            assert profile.zb_elements < 3 * profile.input_elements // 4


class TestTable4Rendering:
    def test_rows_have_all_columns(self):
        rows = table4_rows(["mobilenet_v3_small"], input_size=224)
        row = rows["mobilenet_v3_small"]
        assert set(row) == {
            "params_millions", "params_mb", "forward_backward_mb",
            "estimated_mb", "zb_kilo_elements", "zb_mb",
        }

    def test_render_includes_reference(self):
        rows = table4_rows(["mobilenet_v3_small"], input_size=224)
        reference = {
            "mobilenet_v3_small": {
                "params_millions": 0.9, "params_mb": 3.58,
                "forward_backward_mb": 724.08, "estimated_mb": 727.66,
                "zb_kilo_elements": 55.3, "zb_mb": 0.21,
            }
        }
        text = render_table4(rows, reference)
        assert "paper reports" in text
        assert "mobilenet_v3_small" in text
