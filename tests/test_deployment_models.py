"""Device, channel and wire-format tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deployment import (
    GIGABIT_ETHERNET,
    JETSON_NANO,
    LTE_UPLINK,
    Device,
    NetworkChannel,
    WireFormat,
    decode_tensor,
    encode_tensor,
    payload_bytes,
)

_GB = 1024**3
_MB = 1024 * 1024


class TestDevice:
    def test_jetson_nano_has_4gb(self):
        assert JETSON_NANO.memory_bytes == 4 * _GB

    def test_fits_and_headroom(self):
        device = Device("toy", memory_bytes=100, flops_per_second=1.0)
        assert device.fits(100)
        assert not device.fits(101)
        assert device.memory_headroom(30) == 70

    def test_compute_seconds(self):
        device = Device("toy", memory_bytes=1, flops_per_second=1e9)
        assert device.compute_seconds(2e9) == pytest.approx(2.0)

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            Device("bad", memory_bytes=0, flops_per_second=1.0)

    def test_invalid_flops(self):
        with pytest.raises(ValueError):
            Device("bad", memory_bytes=1, flops_per_second=0.0)

    def test_str(self):
        assert "4.0 GB" in str(JETSON_NANO)


class TestChannel:
    def test_paper_gigabit_raw_input_transfer(self):
        # 100 FACES inputs of 2835*3543*3 float32 over gigabit: paper ~98 s.
        bytes_per_input = 2835 * 3543 * 3 * 4
        seconds = GIGABIT_ETHERNET.transfer_seconds(bytes_per_input, messages=100)
        assert seconds == pytest.approx(96.4, rel=0.03)

    def test_zb_transfer_far_faster(self):
        zb_bytes = int(1.5 * _MB)
        raw_bytes = int(115 * _MB)
        assert GIGABIT_ETHERNET.transfer_seconds(zb_bytes, 100) < (
            0.05 * GIGABIT_ETHERNET.transfer_seconds(raw_bytes, 100)
        )

    def test_rtt_added_per_message(self):
        channel = NetworkChannel("toy", bandwidth_bps=1e9, rtt_seconds=0.01)
        assert channel.transfer_seconds(0, messages=10) == pytest.approx(0.1)

    def test_overhead_fraction(self):
        plain = NetworkChannel("a", bandwidth_bps=1e6)
        padded = NetworkChannel("b", bandwidth_bps=1e6, overhead_fraction=0.5)
        assert padded.transfer_seconds(1000) == pytest.approx(
            1.5 * plain.transfer_seconds(1000)
        )

    def test_degraded(self):
        slow = GIGABIT_ETHERNET.degraded(10)
        assert slow.bandwidth_bps == pytest.approx(1e8)
        assert "degraded" in slow.name
        with pytest.raises(ValueError):
            GIGABIT_ETHERNET.degraded(0)

    def test_effective_throughput_rtt_limited(self):
        assert LTE_UPLINK.effective_throughput_bytes_per_second(
            100
        ) < LTE_UPLINK.effective_throughput_bytes_per_second(10 * _MB)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            GIGABIT_ETHERNET.transfer_seconds(-1)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkChannel("bad", bandwidth_bps=0)


class TestWireFormat:
    @pytest.fixture(scope="class")
    def tensor(self):
        return np.random.default_rng(0).standard_normal((4, 7, 3)).astype(np.float32)

    def test_float32_lossless(self, tensor):
        decoded = decode_tensor(encode_tensor(tensor, WireFormat("float32")))
        np.testing.assert_array_equal(decoded, tensor)

    def test_float16_small_error(self, tensor):
        decoded = decode_tensor(encode_tensor(tensor, WireFormat("float16")))
        assert np.abs(decoded - tensor).max() < 5e-3

    def test_quant8_bounded_error(self, tensor):
        decoded = decode_tensor(encode_tensor(tensor, WireFormat("quant8")))
        value_range = tensor.max() - tensor.min()
        assert np.abs(decoded - tensor).max() <= value_range / 255.0 + 1e-6

    def test_shape_preserved(self, tensor):
        decoded = decode_tensor(encode_tensor(tensor))
        assert decoded.shape == tensor.shape

    def test_payload_sizes_ordered(self, tensor):
        sizes = {
            fmt: len(encode_tensor(tensor, WireFormat(fmt)))
            for fmt in ("float32", "float16", "quant8")
        }
        assert sizes["float32"] > sizes["float16"] > sizes["quant8"]

    def test_payload_bytes_prediction_exact(self, tensor):
        for fmt in ("float32", "float16", "quant8"):
            predicted = payload_bytes(tensor.size, WireFormat(fmt))
            actual = len(encode_tensor(tensor, WireFormat(fmt)))
            assert predicted == actual

    def test_constant_tensor_quantises(self):
        constant = np.full((3, 3), 2.5, dtype=np.float32)
        decoded = decode_tensor(encode_tensor(constant, WireFormat("quant8")))
        np.testing.assert_allclose(decoded, constant, atol=1e-6)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_tensor(b"NOPE" + b"\x00" * 64)

    def test_unknown_dtype_name_rejected(self):
        with pytest.raises(ValueError):
            WireFormat("float8")

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_quant8_rejects_non_finite(self, bad):
        corrupt = np.array([0.0, 1.0, bad], dtype=np.float32)
        with pytest.raises(ValueError, match="finite"):
            encode_tensor(corrupt, WireFormat("quant8"))

    @pytest.mark.parametrize("fmt", ["float32", "float16"])
    def test_float_formats_accept_non_finite(self, fmt):
        values = np.array([np.nan, np.inf, -np.inf, 1.0], dtype=np.float32)
        decoded = decode_tensor(encode_tensor(values, WireFormat(fmt)))
        np.testing.assert_array_equal(np.isfinite(decoded), np.isfinite(values))

    def test_quant8_top_of_range_does_not_wrap(self):
        # Values at the very top of the affine range can round to 256.0;
        # without clipping the uint8 cast wraps them to 0 (decoding to lo).
        rng = np.random.default_rng(7)
        for _ in range(50):
            tensor = rng.normal(scale=rng.uniform(0.01, 100), size=64).astype(
                np.float32
            )
            decoded = decode_tensor(encode_tensor(tensor, WireFormat("quant8")))
            value_range = float(tensor.max() - tensor.min())
            assert np.abs(decoded - tensor).max() <= value_range / 255.0 + 1e-6


class TestPayloadSizeProperty:
    """payload_bytes(n, fmt) must equal len(encode_tensor(x, fmt)) exactly,
    for every wire dtype and every 0–4-dim shape (empty tensors included)."""

    @settings(max_examples=120, deadline=None)
    @given(
        shape=st.lists(st.integers(0, 5), min_size=0, max_size=4),
        fmt=st.sampled_from(["float32", "float16", "quant8"]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_predicted_size_matches_encoding(self, shape, fmt, seed):
        rng = np.random.default_rng(seed)
        tensor = rng.normal(size=tuple(shape)).astype(np.float32)
        wire_format = WireFormat(fmt)
        payload = encode_tensor(tensor, wire_format)
        assert payload_bytes(tensor.size, wire_format) == len(payload)
        decoded = decode_tensor(payload)
        assert decoded.shape == tensor.shape

    @pytest.mark.parametrize("fmt", ["float32", "float16", "quant8"])
    @pytest.mark.parametrize("shape", [(), (0,), (3, 0, 2), (0, 0, 0, 0)])
    def test_empty_and_scalar_edge_cases(self, fmt, shape):
        tensor = np.zeros(shape, dtype=np.float32)
        wire_format = WireFormat(fmt)
        payload = encode_tensor(tensor, wire_format)
        assert payload_bytes(tensor.size, wire_format) == len(payload)
        decoded = decode_tensor(payload)
        assert decoded.shape == tensor.shape

    def test_too_many_dims_rejected(self):
        with pytest.raises(ValueError):
            encode_tensor(np.zeros((1, 1, 1, 1, 1), dtype=np.float32))

    def test_1d_roundtrip(self):
        x = np.arange(10, dtype=np.float32)
        np.testing.assert_array_equal(decode_tensor(encode_tensor(x)), x)
