"""Model zoo tests: spec/builder agreement, forward shapes, block
behaviour and the registry."""

import numpy as np
import pytest

from repro import models, nn
from repro.models import specs
from repro.models.blocks import (
    ConvBNActBlock,
    InvertedResidualBlock,
    MBConvBlock,
    SqueezeExciteBlock,
)
from repro.models.specs import ConvBNAct, InvertedResidual, MBConv, make_divisible
from repro.nn.tensor import Tensor


def make_input(shape, seed=0):
    return Tensor(np.random.default_rng(seed).standard_normal(shape).astype(np.float32))


class TestMakeDivisible:
    def test_rounds_to_multiple(self):
        assert make_divisible(17) == 16
        assert make_divisible(23) == 24

    def test_never_below_90_percent(self):
        for value in range(8, 300):
            assert make_divisible(value) >= 0.9 * value

    def test_minimum_is_divisor(self):
        assert make_divisible(1) == 8


class TestSpecBuilderAgreement:
    @pytest.mark.parametrize("name", models.available_backbones())
    def test_analytic_params_match_instantiated(self, name):
        spec = models.get_spec(name)
        if spec.input_size > 64:
            pytest.skip("full-scale nets are profiled analytically only")
        net = models.create_backbone(name, rng=np.random.default_rng(0))
        assert net.num_parameters() == specs.count_parameters(spec)

    @pytest.mark.parametrize("name", models.TRAINING_BACKBONES)
    def test_feature_shape_matches_forward(self, name):
        net = models.create_backbone(name, rng=np.random.default_rng(0))
        x = make_input((2, 3, 32, 32))
        feats = net.forward_features(x)
        assert tuple(feats.shape[1:]) == net.feature_shape(32)

    @pytest.mark.parametrize("name", models.TRAINING_BACKBONES)
    def test_flattened_forward(self, name):
        net = models.create_backbone(name, rng=np.random.default_rng(0))
        z = net(make_input((2, 3, 32, 32)))
        assert z.shape == (2, net.feature_dim(32))

    def test_full_scale_param_counts_match_paper(self):
        # Table 4 reports ~0.9 M for MobileNetV3 and ~4 M for EfficientNet.
        mb = specs.count_parameters(models.get_spec("mobilenet_v3_small"))
        assert 0.85e6 < mb < 1.0e6
        eff = specs.count_parameters(models.get_spec("efficientnet_b0"))
        assert 3.8e6 < eff < 4.2e6

    def test_vgg16_has_13_convs(self):
        spec = models.get_spec("vgg16")
        convs = [layer for layer in spec.layers if isinstance(layer, ConvBNAct)]
        assert len(convs) == 13

    def test_flops_positive_and_ordered(self):
        small = specs.count_flops(models.get_spec("mobilenet_v3_small"))
        big = specs.count_flops(models.get_spec("efficientnet_b0"))
        assert 0 < small < big

    def test_feature_shape_scales_with_input(self):
        spec = models.get_spec("mobilenet_v3_small")
        c224, h224, _ = specs.feature_shape(spec, 224)
        c448, h448, _ = specs.feature_shape(spec, 448)
        assert c224 == c448
        assert h448 == 2 * h224

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError):
            models.get_spec("resnet9000")

    def test_register_spec(self):
        models.register_spec("test_vgg_copy", models.vgg_tiny_spec)
        assert "test_vgg_copy" in models.available_backbones()
        assert models.get_spec("test_vgg_copy").family == "vgg"


class TestBlocks:
    def test_conv_bn_act_shape(self):
        block = ConvBNActBlock(3, ConvBNAct(8, 3, stride=2))
        assert block(make_input((1, 3, 8, 8))).shape == (1, 8, 4, 4)

    def test_conv_without_bn_has_bias(self):
        block = ConvBNActBlock(3, ConvBNAct(8, 3, use_bn=False))
        assert block.conv.bias is not None

    def test_se_block_preserves_shape_and_gates(self):
        se = SqueezeExciteBlock(8, 4)
        x = make_input((2, 8, 5, 5))
        out = se(x)
        assert out.shape == x.shape
        # hard-sigmoid gate is within [0, 1]: |out| <= |x|
        assert (np.abs(out.data) <= np.abs(x.data) + 1e-6).all()

    def test_inverted_residual_skip_applied(self):
        spec = InvertedResidual(16, 8, 3, 1, True, "relu")
        block = InvertedResidualBlock(8, spec)
        assert block.use_skip
        x = make_input((1, 8, 6, 6))
        assert block(x).shape == (1, 8, 6, 6)

    def test_inverted_residual_no_skip_on_stride(self):
        spec = InvertedResidual(16, 8, 3, 2, False, "hswish")
        block = InvertedResidualBlock(8, spec)
        assert not block.use_skip
        assert block(make_input((1, 8, 6, 6))).shape == (1, 8, 3, 3)

    def test_inverted_residual_skips_expand_when_equal(self):
        spec = InvertedResidual(8, 8, 3, 1, False, "relu")
        block = InvertedResidualBlock(8, spec)
        assert isinstance(block.expand, nn.Identity)

    def test_mbconv_expand_ratio_one_skips_expand(self):
        block = MBConvBlock(8, MBConv(1, 8, 3, 1))
        assert isinstance(block.expand, nn.Identity)
        assert block.use_skip

    def test_mbconv_output_channels(self):
        block = MBConvBlock(8, MBConv(4, 16, 5, 2))
        assert block(make_input((1, 8, 8, 8))).shape == (1, 16, 4, 4)


class TestHeads:
    def test_mlp_head_is_two_linear_layers(self):
        head = models.MLPHead(64, 5)
        linears = [m for _, m in head.named_modules() if isinstance(m, nn.Linear)]
        assert len(linears) == 2

    def test_mlp_head_shape(self):
        head = models.MLPHead(32, 7, hidden_features=16)
        assert head(make_input((4, 32))).shape == (4, 7)

    def test_mlp_head_default_hidden_floor(self):
        head = models.MLPHead(16, 2)
        assert head.fc1.out_features >= 32

    def test_deep_head_depth(self):
        head = models.DeepMLPHead(16, 3, hidden_sizes=(8, 8, 8))
        linears = [m for _, m in head.named_modules() if isinstance(m, nn.Linear)]
        assert len(linears) == 4

    def test_linear_head(self):
        head = models.LinearHead(16, 3)
        assert head(make_input((2, 16))).shape == (2, 3)


class TestBackboneModule:
    def test_analytic_parameter_count_method(self):
        net = models.vgg_tiny()
        assert net.analytic_parameter_count() == net.num_parameters()

    def test_state_dict_roundtrip(self):
        net1 = models.mobilenet_v3_tiny(rng=np.random.default_rng(0))
        net2 = models.mobilenet_v3_tiny(rng=np.random.default_rng(99))
        net2.load_state_dict(net1.state_dict())
        x = make_input((1, 3, 32, 32))
        net1.eval(), net2.eval()
        np.testing.assert_allclose(net1(x).data, net2(x).data, atol=1e-6)

    def test_training_changes_bn_stats(self):
        net = models.efficientnet_tiny(rng=np.random.default_rng(0))
        before = {k: v.copy() for k, v in net.state_dict().items() if "running" in k}
        net.train()
        net(make_input((4, 3, 32, 32)))
        after = {k: v for k, v in net.state_dict().items() if "running" in k}
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed
