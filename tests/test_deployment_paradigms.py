"""Paradigm comparison tests: the paper's LoC memory argument and the
RoC-vs-SC latency analysis."""

import pytest

from repro import models
from repro.deployment import (
    GIGABIT_ETHERNET,
    JETSON_NANO,
    RTX3090_SERVER,
    WireFormat,
    compare_paradigms,
    head_memory_bytes,
    loc_report,
    render_paradigm_comparison,
    roc_report,
    sc_report,
)

_MB = 1024 * 1024
_GB = 1024**3

# The paper's Table-4-scale profiling configuration (see EXPERIMENTS.md):
# its forward/backward sizes correspond to ~1024x1024 inputs.
PAPER_INPUT = 1024


@pytest.fixture(scope="module")
def mobilenet_spec():
    return models.get_spec("mobilenet_v3_small")


@pytest.fixture(scope="module")
def efficientnet_spec():
    return models.get_spec("efficientnet_b0")


class TestLoCMemoryArgument:
    def test_mobilenet_two_tasks_about_1_5_gb(self, mobilenet_spec):
        report = loc_report(mobilenet_spec, 2, JETSON_NANO, input_size=PAPER_INPUT)
        assert report.edge_memory_bytes / _GB == pytest.approx(1.5, rel=0.15)

    def test_efficientnet_two_tasks_about_6_9_gb_infeasible(self, efficientnet_spec):
        report = loc_report(efficientnet_spec, 2, JETSON_NANO, input_size=PAPER_INPUT)
        assert report.edge_memory_bytes / _GB == pytest.approx(6.9, rel=0.15)
        assert not report.feasible_on_edge

    def test_efficientnet_three_tasks_about_10_3_gb(self, efficientnet_spec):
        report = loc_report(efficientnet_spec, 3, JETSON_NANO, input_size=PAPER_INPUT)
        assert report.edge_memory_bytes / _GB == pytest.approx(10.3, rel=0.15)

    def test_shared_backbone_fits_jetson(self, efficientnet_spec):
        # The paper: "our approach ... enables the execution of all
        # implementations on the same board."
        report = sc_report(
            efficientnet_spec, 3, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
            input_size=PAPER_INPUT,
        )
        assert report.feasible_on_edge

    def test_memory_saving_grows_with_tasks(self, efficientnet_spec):
        def saving(n):
            stl = loc_report(efficientnet_spec, n, JETSON_NANO, input_size=PAPER_INPUT)
            shared = sc_report(
                efficientnet_spec, n, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
                input_size=PAPER_INPUT,
            )
            return 1.0 - shared.edge_memory_bytes / stl.edge_memory_bytes

        assert saving(3) > saving(2) > 0.3

    def test_shared_loc_cheaper_than_stl_loc(self, mobilenet_spec):
        stl = loc_report(mobilenet_spec, 3, JETSON_NANO, input_size=224)
        shared = loc_report(
            mobilenet_spec, 3, JETSON_NANO, input_size=224, shared_backbone=True
        )
        assert shared.edge_memory_bytes < stl.edge_memory_bytes

    def test_head_memory_formula(self):
        assert head_memory_bytes(100, 10, 5) == (100 * 10 + 10 + 10 * 5 + 5) * 4

    def test_invalid_num_tasks(self, mobilenet_spec):
        with pytest.raises(ValueError):
            loc_report(mobilenet_spec, 0, JETSON_NANO)


class TestRoCLatencyArgument:
    def test_faces_raw_input_is_115_mb(self, efficientnet_spec):
        report = roc_report(
            efficientnet_spec, 3, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
            raw_input_hw=(2835, 3543),
        )
        assert report.transfer_bytes_per_inference / _MB == pytest.approx(115, rel=0.01)

    def test_100_raw_inputs_about_98_seconds(self, efficientnet_spec):
        report = roc_report(
            efficientnet_spec, 3, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
            raw_input_hw=(2835, 3543),
        )
        assert 100 * report.transfer_seconds == pytest.approx(96.4, rel=0.05)

    def test_sc_transfer_massively_cheaper(self, efficientnet_spec):
        roc = roc_report(
            efficientnet_spec, 3, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
            raw_input_hw=(2835, 3543),
        )
        sc = sc_report(
            efficientnet_spec, 3, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
        )
        # paper claims >= 87% latency saving; the exact payload arithmetic
        # gives an even larger one.
        saving = 1.0 - sc.transfer_seconds / roc.transfer_seconds
        assert saving > 0.87

    def test_roc_edge_memory_is_zero(self, efficientnet_spec):
        report = roc_report(
            efficientnet_spec, 2, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET
        )
        assert report.edge_memory_bytes == 0
        assert report.feasible_on_edge


class TestScReport:
    def test_quantised_payload_smaller(self, mobilenet_spec):
        f32 = sc_report(
            mobilenet_spec, 2, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
            wire_format=WireFormat("float32"),
        )
        q8 = sc_report(
            mobilenet_spec, 2, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
            wire_format=WireFormat("quant8"),
        )
        assert q8.transfer_bytes_per_inference < f32.transfer_bytes_per_inference / 3

    def test_latency_decomposition(self, mobilenet_spec):
        report = sc_report(
            mobilenet_spec, 2, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET
        )
        assert report.latency_seconds == pytest.approx(
            report.edge_compute_seconds
            + report.transfer_seconds
            + report.server_compute_seconds
        )
        assert report.edge_compute_seconds > 0
        assert report.server_compute_seconds > 0


class TestCompare:
    def test_all_four_reports(self, mobilenet_spec):
        reports = compare_paradigms(
            mobilenet_spec, 2, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET
        )
        assert set(reports) == {"loc", "loc_shared", "roc", "sc"}

    def test_render_mentions_every_paradigm(self, mobilenet_spec):
        reports = compare_paradigms(
            mobilenet_spec, 2, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET
        )
        text = render_paradigm_comparison(reports)
        assert "LoC" in text and "RoC" in text and "SC" in text

    def test_classes_per_task_validation(self, mobilenet_spec):
        with pytest.raises(ValueError):
            compare_paradigms(
                mobilenet_spec, 2, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
                classes_per_task=(3,),
            )
