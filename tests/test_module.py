"""Tests for the Module system: registration, iteration, modes,
state-dict round trips and containers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TinyNet(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8)
        self.fc2 = nn.Linear(8, 2)
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.fc2(nn.functional.relu(self.fc1(x)))


class TestRegistration:
    def test_parameters_discovered(self):
        net = TinyNet()
        names = [n for n, _ in net.named_parameters()]
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_buffers_discovered(self):
        net = TinyNet()
        names = [n for n, _ in net.named_buffers()]
        assert "counter" in names

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_attribute_access(self):
        net = TinyNet()
        assert isinstance(net.fc1, nn.Linear)
        with pytest.raises(AttributeError):
            _ = net.nonexistent

    def test_reassignment_replaces(self):
        net = TinyNet()
        net.fc1 = nn.Linear(4, 4)
        assert net.fc1.out_features == 4
        assert len(list(net.named_parameters())) == 4

    def test_named_modules(self):
        net = TinyNet()
        names = [n for n, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_children(self):
        net = TinyNet()
        assert len(list(net.children())) == 2


class TestModes:
    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.children())
        net.train()
        assert all(m.training for m in net.children())

    def test_requires_grad_toggle(self):
        net = TinyNet()
        net.requires_grad_(False)
        assert all(not p.requires_grad for p in net.parameters())
        net.requires_grad_(True)
        assert all(p.requires_grad for p in net.parameters())

    def test_zero_grad_clears(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net1, net2 = TinyNet(), TinyNet()
        net2.load_state_dict(net1.state_dict())
        for (n1, p1), (n2, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_copies(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][...] = 0
        assert not (net.fc1.weight.data == 0).all()

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_strict_missing_raises(self):
        net = TinyNet()
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_non_strict_allows_missing(self):
        net = TinyNet()
        state = net.state_dict()
        del state["fc1.weight"]
        net.load_state_dict(state, strict=False)

    def test_strict_unexpected_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_buffers_roundtrip(self):
        net1, net2 = TinyNet(), TinyNet()
        net1._buffers["counter"][...] = 7.0
        net2.load_state_dict(net1.state_dict())
        assert net2._buffers["counter"][0] == 7.0


class TestContainers:
    def test_sequential_applies_in_order(self):
        net = nn.Sequential(nn.Linear(3, 5), nn.ReLU(), nn.Linear(5, 2))
        out = net(Tensor(np.ones((1, 3), dtype=np.float32)))
        assert out.shape == (1, 2)

    def test_sequential_indexing_and_slicing(self):
        net = nn.Sequential(nn.Linear(3, 5), nn.ReLU(), nn.Linear(5, 2))
        assert isinstance(net[1], nn.ReLU)
        assert len(net[:2]) == 2

    def test_sequential_append(self):
        net = nn.Sequential(nn.Linear(2, 2))
        net.append(nn.ReLU())
        assert len(net) == 2

    def test_module_list_registers(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(ml.parameters())) == 4

    def test_module_list_not_callable(self):
        ml = nn.ModuleList([nn.Linear(2, 2)])
        with pytest.raises(RuntimeError):
            ml(Tensor(np.ones((1, 2))))

    def test_identity_passthrough(self):
        x = Tensor(np.ones(3))
        assert nn.Identity()(x) is x

    def test_repr_contains_children(self):
        net = TinyNet()
        assert "fc1" in repr(net)
        assert "Linear" in repr(net)
