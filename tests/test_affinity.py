"""Task-affinity analysis tests."""

import numpy as np
import pytest

from repro.core import affinity_matrix, suggest_task_groups, task_gradients


class TestTaskGradients:
    def test_one_gradient_per_task(self, tiny_trained_net, shapes3d_small):
        grads = task_gradients(tiny_trained_net, shapes3d_small, batch_size=16)
        assert set(grads) == set(tiny_trained_net.task_names)

    def test_gradient_length_matches_backbone(self, tiny_trained_net, shapes3d_small):
        grads = task_gradients(tiny_trained_net, shapes3d_small, batch_size=16)
        expected = sum(p.size for p in tiny_trained_net.backbone_parameters())
        for vec in grads.values():
            assert vec.shape == (expected,)

    def test_gradients_nonzero(self, tiny_trained_net, shapes3d_small):
        grads = task_gradients(tiny_trained_net, shapes3d_small, batch_size=16)
        for vec in grads.values():
            assert np.abs(vec).sum() > 0

    def test_net_grads_cleared_after(self, tiny_trained_net, shapes3d_small):
        task_gradients(tiny_trained_net, shapes3d_small, batch_size=16)
        assert all(p.grad is None for p in tiny_trained_net.parameters())


class TestAffinityMatrix:
    def test_shape_and_diagonal(self, tiny_trained_net, shapes3d_small):
        matrix, names = affinity_matrix(tiny_trained_net, shapes3d_small, batch_size=16)
        k = len(names)
        assert matrix.shape == (k, k)
        np.testing.assert_allclose(np.diag(matrix), np.ones(k))

    def test_symmetric_and_bounded(self, tiny_trained_net, shapes3d_small):
        matrix, _ = affinity_matrix(tiny_trained_net, shapes3d_small, batch_size=16)
        np.testing.assert_allclose(matrix, matrix.T)
        assert (matrix <= 1.0 + 1e-6).all() and (matrix >= -1.0 - 1e-6).all()

    def test_related_factor_tasks_not_strongly_conflicting(
        self, tiny_trained_net, shapes3d_small
    ):
        # scale and shape of the same object share most visual structure;
        # a trained backbone should not show hard gradient conflict.
        matrix, _ = affinity_matrix(tiny_trained_net, shapes3d_small, batch_size=32)
        assert matrix[0, 1] > -0.5


class TestGrouping:
    def test_partition_covers_all_tasks(self):
        matrix = np.array([
            [1.0, 0.8, -0.5],
            [0.8, 1.0, -0.4],
            [-0.5, -0.4, 1.0],
        ])
        groups = suggest_task_groups(matrix, ["a", "b", "c"])
        flat = sorted(t for g in groups for t in g)
        assert flat == ["a", "b", "c"]

    def test_conflicting_task_isolated(self):
        matrix = np.array([
            [1.0, 0.8, -0.5],
            [0.8, 1.0, -0.4],
            [-0.5, -0.4, 1.0],
        ])
        groups = suggest_task_groups(matrix, ["a", "b", "c"])
        assert ["a", "b"] in groups
        assert ["c"] in groups

    def test_all_compatible_single_group(self):
        matrix = np.full((3, 3), 0.5)
        np.fill_diagonal(matrix, 1.0)
        groups = suggest_task_groups(matrix, ["x", "y", "z"])
        assert groups == [["x", "y", "z"]]

    def test_threshold_splits_more(self):
        matrix = np.array([[1.0, 0.2], [0.2, 1.0]])
        loose = suggest_task_groups(matrix, ["a", "b"], threshold=0.0)
        strict = suggest_task_groups(matrix, ["a", "b"], threshold=0.5)
        assert len(loose) == 1
        assert len(strict) == 2

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            suggest_task_groups(np.eye(3), ["a", "b"])
