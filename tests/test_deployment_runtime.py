"""Runnable split-pipeline tests: numerical equality with the monolith,
trace accounting, wire-format effects, overlapped streaming execution."""

import numpy as np
import pytest

from repro.deployment import GIGABIT_ETHERNET, LTE_UPLINK, WireFormat
from repro.serve import SplitPipeline, ThroughputReport


@pytest.fixture()
def pipeline(tiny_trained_net):
    return SplitPipeline.from_net(
        tiny_trained_net, GIGABIT_ETHERNET, input_size=32
    )


class TestEquality:
    def test_pipeline_matches_monolith(self, pipeline, tiny_trained_net, shapes3d_small):
        from repro import nn
        from repro.nn.tensor import Tensor

        tiny_trained_net.eval()
        images = shapes3d_small.images[:6]
        split_logits = pipeline.infer(images)
        with nn.no_grad():
            full = tiny_trained_net(Tensor(images))
        for name in tiny_trained_net.task_names:
            np.testing.assert_allclose(
                split_logits[name], full[name].data, atol=1e-5
            )

    def test_intermediate_split_matches(self, tiny_trained_net, shapes3d_small):
        from repro import nn
        from repro.nn.tensor import Tensor

        tiny_trained_net.eval()
        pipeline = SplitPipeline.from_net(
            tiny_trained_net, GIGABIT_ETHERNET, split_index=3, input_size=32
        )
        images = shapes3d_small.images[:4]
        split_logits = pipeline.infer(images)
        with nn.no_grad():
            full = tiny_trained_net(Tensor(images))
        for name in tiny_trained_net.task_names:
            np.testing.assert_allclose(split_logits[name], full[name].data, atol=1e-4)

    def test_float16_wire_close_but_lossy(self, tiny_trained_net, shapes3d_small):
        from repro import nn
        from repro.nn.tensor import Tensor

        tiny_trained_net.eval()
        pipeline = SplitPipeline.from_net(
            tiny_trained_net, GIGABIT_ETHERNET, input_size=32,
            wire_format=WireFormat("float16"),
        )
        images = shapes3d_small.images[:4]
        split_logits = pipeline.infer(images)
        with nn.no_grad():
            full = tiny_trained_net(Tensor(images))
        for name in tiny_trained_net.task_names:
            np.testing.assert_allclose(split_logits[name], full[name].data, atol=0.05)

    def test_predictions_survive_quant8(self, tiny_trained_net, shapes3d_small):
        from repro import nn
        from repro.nn.tensor import Tensor

        tiny_trained_net.eval()
        pipeline = SplitPipeline.from_net(
            tiny_trained_net, GIGABIT_ETHERNET, input_size=32,
            wire_format=WireFormat("quant8"),
        )
        images = shapes3d_small.images[:32]
        split_logits = pipeline.infer(images)
        with nn.no_grad():
            full = tiny_trained_net(Tensor(images))
        for name in tiny_trained_net.task_names:
            agreement = (
                split_logits[name].argmax(1) == full[name].data.argmax(1)
            ).mean()
            assert agreement > 0.9


class TestTraces:
    def test_trace_recorded_per_call(self, pipeline, shapes3d_small):
        pipeline.infer(shapes3d_small.images[:4])
        pipeline.infer(shapes3d_small.images[4:8])
        assert len(pipeline.traces) == 2
        assert pipeline.traces[0].batch_size == 4

    def test_payload_accounting(self, pipeline, shapes3d_small):
        pipeline.infer(shapes3d_small.images[:4])
        trace = pipeline.traces[0]
        assert trace.payload_bytes == pipeline.link.bytes_sent
        assert pipeline.link.messages_sent == 1
        assert trace.total_seconds >= trace.transfer_seconds

    def test_transfer_time_scales_with_channel(self, tiny_trained_net, shapes3d_small):
        fast = SplitPipeline.from_net(tiny_trained_net, GIGABIT_ETHERNET, input_size=32)
        slow = SplitPipeline.from_net(tiny_trained_net, LTE_UPLINK, input_size=32)
        fast.infer(shapes3d_small.images[:4])
        slow.infer(shapes3d_small.images[:4])
        assert slow.traces[0].transfer_seconds > fast.traces[0].transfer_seconds

    def test_totals(self, pipeline, shapes3d_small):
        for start in range(0, 12, 4):
            pipeline.infer(shapes3d_small.images[start : start + 4])
        assert pipeline.total_seconds() > 0
        assert pipeline.total_transfer_seconds() > 0
        assert pipeline.mean_payload_bytes() > 0

    def test_empty_pipeline_mean_payload(self, pipeline):
        # Regression: must return 0.0 (not nan / numpy warning) on no traces.
        value = pipeline.mean_payload_bytes()
        assert isinstance(value, float)
        assert value == 0.0

    def test_mean_payload_is_plain_average(self, pipeline, shapes3d_small):
        pipeline.infer(shapes3d_small.images[:4])
        pipeline.infer(shapes3d_small.images[4:8])
        sizes = [t.payload_bytes for t in pipeline.traces]
        assert pipeline.mean_payload_bytes() == sum(sizes) / len(sizes)

    def test_warmup_records_no_trace(self, pipeline, shapes3d_small):
        pipeline.warmup(shapes3d_small.images[:4])
        assert pipeline.traces == []
        assert pipeline.link.messages_sent == 0


class TestStreaming:
    def test_stream_matches_sequential(self, tiny_trained_net, shapes3d_small):
        tiny_trained_net.eval()
        batches = [shapes3d_small.images[s : s + 4] for s in (0, 4, 8)]
        streamed = SplitPipeline.from_net(tiny_trained_net, GIGABIT_ETHERNET, input_size=32)
        sequential = SplitPipeline.from_net(tiny_trained_net, GIGABIT_ETHERNET, input_size=32)
        results, report = streamed.infer_stream(batches)
        assert len(results) == 3
        for batch, streamed_logits in zip(batches, results):
            expected = sequential.infer(batch)
            for name in tiny_trained_net.task_names:
                np.testing.assert_allclose(
                    streamed_logits[name], expected[name], atol=1e-5
                )

    def test_stream_traces_in_order(self, pipeline, shapes3d_small):
        batches = [shapes3d_small.images[s : s + 4] for s in (0, 4, 8)]
        _, report = pipeline.infer_stream(batches)
        assert [t.batch_size for t in pipeline.traces] == [4, 4, 4]
        assert pipeline.link.messages_sent == 3
        assert report.batches == 3
        assert report.images == 12

    def test_report_accounting(self, pipeline, shapes3d_small):
        batches = [shapes3d_small.images[s : s + 4] for s in (0, 4, 8, 12)]
        _, report = pipeline.infer_stream(batches)
        edge = sum(t.edge_seconds for t in pipeline.traces)
        transfer = sum(t.transfer_seconds for t in pipeline.traces)
        server = sum(t.server_seconds for t in pipeline.traces)
        assert report.edge_seconds == pytest.approx(edge)
        assert report.serial_seconds == pytest.approx(edge + transfer + server)
        # Overlap wins on multi-batch runs; the makespan still covers the
        # busiest stage entirely.
        assert report.pipelined_seconds < report.serial_seconds
        assert report.pipelined_seconds >= max(edge, transfer, server)
        assert report.overlap_speedup > 1.0
        assert report.batches_per_second > 0
        assert report.critical_stage in ("edge", "transfer", "server")
        util = report.stage_utilisation
        assert set(util) == {"edge", "transfer", "server"}
        assert all(0.0 <= value <= 1.0 for value in util.values())

    def test_empty_stream(self, pipeline):
        results, report = pipeline.infer_stream([])
        assert results == []
        assert report.batches == 0
        assert report.serial_seconds == 0.0
        assert report.batches_per_second == 0.0
        assert report.stage_utilisation["edge"] == 0.0

    def test_schedule_overlaps_stages(self):
        # Deterministic schedule check: 3 batches, each stage busy 1s.
        report = ThroughputReport.from_stage_times(
            [1, 1, 1], [1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [1.0, 1.0, 1.0], 0.0
        )
        assert report.serial_seconds == pytest.approx(9.0)
        # Pipeline fills: makespan = 3 (first batch) + 2 stalls per stage.
        assert report.pipelined_seconds == pytest.approx(5.0)
        assert report.overlap_speedup == pytest.approx(9.0 / 5.0)

    def test_compiled_flag_roundtrip(self, tiny_trained_net):
        compiled = SplitPipeline.from_net(tiny_trained_net, GIGABIT_ETHERNET, input_size=32)
        eager = SplitPipeline.from_net(
            tiny_trained_net, GIGABIT_ETHERNET, input_size=32, compiled=False
        )
        assert compiled.edge.compiled and compiled.server.compiled
        assert not eager.edge.compiled and not eager.server.compiled
