"""Runnable split-pipeline tests: numerical equality with the monolith,
trace accounting, wire-format effects."""

import numpy as np
import pytest

from repro.deployment import (
    GIGABIT_ETHERNET,
    LTE_UPLINK,
    SplitPipeline,
    WireFormat,
)


@pytest.fixture()
def pipeline(tiny_trained_net):
    return SplitPipeline.from_net(
        tiny_trained_net, GIGABIT_ETHERNET, input_size=32
    )


class TestEquality:
    def test_pipeline_matches_monolith(self, pipeline, tiny_trained_net, shapes3d_small):
        from repro import nn
        from repro.nn.tensor import Tensor

        tiny_trained_net.eval()
        images = shapes3d_small.images[:6]
        split_logits = pipeline.infer(images)
        with nn.no_grad():
            full = tiny_trained_net(Tensor(images))
        for name in tiny_trained_net.task_names:
            np.testing.assert_allclose(
                split_logits[name], full[name].data, atol=1e-5
            )

    def test_intermediate_split_matches(self, tiny_trained_net, shapes3d_small):
        from repro import nn
        from repro.nn.tensor import Tensor

        tiny_trained_net.eval()
        pipeline = SplitPipeline.from_net(
            tiny_trained_net, GIGABIT_ETHERNET, split_index=3, input_size=32
        )
        images = shapes3d_small.images[:4]
        split_logits = pipeline.infer(images)
        with nn.no_grad():
            full = tiny_trained_net(Tensor(images))
        for name in tiny_trained_net.task_names:
            np.testing.assert_allclose(split_logits[name], full[name].data, atol=1e-4)

    def test_float16_wire_close_but_lossy(self, tiny_trained_net, shapes3d_small):
        from repro import nn
        from repro.nn.tensor import Tensor

        tiny_trained_net.eval()
        pipeline = SplitPipeline.from_net(
            tiny_trained_net, GIGABIT_ETHERNET, input_size=32,
            wire_format=WireFormat("float16"),
        )
        images = shapes3d_small.images[:4]
        split_logits = pipeline.infer(images)
        with nn.no_grad():
            full = tiny_trained_net(Tensor(images))
        for name in tiny_trained_net.task_names:
            np.testing.assert_allclose(split_logits[name], full[name].data, atol=0.05)

    def test_predictions_survive_quant8(self, tiny_trained_net, shapes3d_small):
        from repro import nn
        from repro.nn.tensor import Tensor

        tiny_trained_net.eval()
        pipeline = SplitPipeline.from_net(
            tiny_trained_net, GIGABIT_ETHERNET, input_size=32,
            wire_format=WireFormat("quant8"),
        )
        images = shapes3d_small.images[:32]
        split_logits = pipeline.infer(images)
        with nn.no_grad():
            full = tiny_trained_net(Tensor(images))
        for name in tiny_trained_net.task_names:
            agreement = (
                split_logits[name].argmax(1) == full[name].data.argmax(1)
            ).mean()
            assert agreement > 0.9


class TestTraces:
    def test_trace_recorded_per_call(self, pipeline, shapes3d_small):
        pipeline.infer(shapes3d_small.images[:4])
        pipeline.infer(shapes3d_small.images[4:8])
        assert len(pipeline.traces) == 2
        assert pipeline.traces[0].batch_size == 4

    def test_payload_accounting(self, pipeline, shapes3d_small):
        pipeline.infer(shapes3d_small.images[:4])
        trace = pipeline.traces[0]
        assert trace.payload_bytes == pipeline.link.bytes_sent
        assert pipeline.link.messages_sent == 1
        assert trace.total_seconds >= trace.transfer_seconds

    def test_transfer_time_scales_with_channel(self, tiny_trained_net, shapes3d_small):
        fast = SplitPipeline.from_net(tiny_trained_net, GIGABIT_ETHERNET, input_size=32)
        slow = SplitPipeline.from_net(tiny_trained_net, LTE_UPLINK, input_size=32)
        fast.infer(shapes3d_small.images[:4])
        slow.infer(shapes3d_small.images[:4])
        assert slow.traces[0].transfer_seconds > fast.traces[0].transfer_seconds

    def test_totals(self, pipeline, shapes3d_small):
        for start in range(0, 12, 4):
            pipeline.infer(shapes3d_small.images[start : start + 4])
        assert pipeline.total_seconds() > 0
        assert pipeline.total_transfer_seconds() > 0
        assert pipeline.mean_payload_bytes() > 0

    def test_empty_pipeline_mean_payload(self, pipeline):
        assert pipeline.mean_payload_bytes() == 0.0
