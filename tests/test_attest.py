"""Golden-digest attestation (repro.attest).

Three layers under test:

* the canonical forms — :func:`canonical_bytes` digests must be a pure
  function of (dtype, shape, values), independent of memory layout, and
  distinct across dtype/shape reinterpretations (hypothesis);
* :func:`attest_scenario` — digests are stable across processes (a
  fresh subprocess reproduces them bit-for-bit), the committed goldens
  match this checkout, the optimizer is bit-exact on the quick tier,
  and a single perturbed weight is caught *naming the divergent step*;
* the policy — quant8 compute and cache-enabled specs are excluded
  with named errors, and the record/verify sweep skips them visibly.

Everything here runs on the quick tier (one attestation ~0.5 s); the
hires goldens are host-gated and exercised only via ``--host-gated``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.attest import (
    Attestation,
    AttestationError,
    AttestationPolicyError,
    attest_scenario,
    canonical_bytes,
    canonical_json,
    check_attestable,
    first_divergence,
    list_goldens,
    load_golden,
    record_goldens,
    save_golden,
    tensor_digest,
    verify_goldens,
)
from repro.scenarios import available_scenarios, get_scenario
from repro.serve import DeploymentSpec
from repro.serve.runtime import ThroughputReport

QUICK = "mobilenetv3_quick_32px"

_arrays = hnp.arrays(
    dtype=st.sampled_from([np.float32, np.float64]),
    shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=4),
    elements=st.floats(-8, 8, width=32).map(float),
)


# ---------------------------------------------------------------------------
# canonical forms
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(_arrays)
def test_canonical_bytes_layout_invariant(array):
    """The digest is a function of the logical array, not its memory
    layout: a Fortran-ordered copy and a strided-then-materialised view
    digest identically."""
    reference = tensor_digest(array)
    assert tensor_digest(np.asfortranarray(array)) == reference
    padded = np.zeros((2,) + array.shape, dtype=array.dtype)
    padded[0] = array
    assert tensor_digest(padded[0]) == reference


@settings(max_examples=50, deadline=None)
@given(_arrays)
def test_canonical_bytes_dtype_and_shape_distinct(array):
    """Reinterpreting the same values under another dtype or shape must
    change the digest — the header is part of the canonical bytes."""
    if array.dtype != np.float64:
        assert tensor_digest(array.astype(np.float64)) != tensor_digest(array)
    flat = array.reshape(-1)
    if flat.shape != array.shape:
        assert tensor_digest(flat) != tensor_digest(array)


def test_canonical_bytes_header_framing():
    """The length prefix keeps header and payload from bleeding into
    each other: equal concatenations with different boundaries differ."""
    a = np.zeros(3, dtype=np.float32)
    b = np.zeros((3, 1), dtype=np.float32)
    assert canonical_bytes(a) != canonical_bytes(b)
    assert canonical_bytes(a)[:4] == len("<f4|(3,)|").to_bytes(4, "little")


def test_canonical_json_is_order_independent():
    assert canonical_json({"b": 1, "a": [1, 2]}) == canonical_json(
        dict([("a", [1, 2]), ("b", 1)])
    )
    with pytest.raises(ValueError):
        canonical_json({"x": float("nan")})


# ---------------------------------------------------------------------------
# attestation digests
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def quick_attestation():
    return attest_scenario(get_scenario(QUICK))


def test_committed_golden_matches_this_checkout(quick_attestation):
    """The committed golden was recorded by a different process (and
    session) — matching it is the cross-run digest-stability contract
    CI enforces."""
    golden = load_golden(QUICK)
    assert first_divergence(golden, quick_attestation) is None
    assert golden.spec_digest == quick_attestation.spec_digest
    assert golden.plan_digest == quick_attestation.plan_digest


def test_digests_stable_across_subprocess(quick_attestation):
    """A fresh interpreter reproduces every digest bit-for-bit (no
    hash randomisation, id(), or dict-order leakage into the digests)."""
    script = (
        "import json\n"
        "from repro.attest import attest_scenario\n"
        "from repro.scenarios import get_scenario\n"
        f"a = attest_scenario(get_scenario({QUICK!r}))\n"
        "print(json.dumps({'spec': a.spec_digest, 'plan': a.plan_digest,"
        " 'outputs': a.output_digests}))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
        cwd=Path(__file__).resolve().parent.parent,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    fresh = json.loads(result.stdout.strip().splitlines()[-1])
    assert fresh["spec"] == quick_attestation.spec_digest
    assert fresh["plan"] == quick_attestation.plan_digest
    assert fresh["outputs"] == quick_attestation.output_digests


def test_optimizer_is_bit_exact_on_quick_tier(quick_attestation):
    """The acceptance claim behind a single golden per scenario: the
    optimized and unoptimized pipelines produce *identical bits*, so one
    output digest attests both (the plan digests still differ — the
    programs are different, the numerics are not)."""
    unoptimized = attest_scenario(get_scenario(QUICK), optimize=False)
    assert unoptimized.output_digests == quick_attestation.output_digests
    assert unoptimized.plan_digest != quick_attestation.plan_digest
    assert unoptimized.spec_digest != quick_attestation.spec_digest


def test_plan_ir_text_matches_plan_digest_material(quick_attestation):
    """The stored plan text is the digest material: no timing tables,
    no memory addresses, and the depthwise probe is never consulted."""
    text = quick_attestation.plan_ir
    assert "dw_probe" not in text
    assert "0x" not in text  # default object reprs would leak addresses
    assert "split:" in text.splitlines()[0]


def test_perturbed_weight_is_caught_naming_the_step(monkeypatch, tmp_path):
    """Flipping one weight by 1e-6 must fail verification and the
    divergence must name the first plan step whose content digest moved."""
    import repro.serve.deployment as deployment_mod

    golden = load_golden(QUICK)
    original = deployment_mod._resolve_net

    def perturbed(spec):
        net = original(spec)
        param = next(net.parameters())
        param.data.reshape(-1)[0] += 1e-6
        return net

    monkeypatch.setattr(deployment_mod, "_resolve_net", perturbed)
    fresh = attest_scenario(get_scenario(QUICK))
    divergence = first_divergence(golden, fresh)
    assert divergence is not None
    # The weight moved, so its content digest in the plan IR moved: the
    # message names the first divergent plan line, not just "something
    # changed downstream".
    assert "first divergent step" in divergence
    assert "plan line" in divergence


# ---------------------------------------------------------------------------
# first_divergence ordering
# ---------------------------------------------------------------------------

def test_first_divergence_orders_by_causality(quick_attestation):
    a = quick_attestation
    assert first_divergence(a, a) is None
    spec_moved = replace(a, spec_digest="0" * 64)
    assert "spec digest" in first_divergence(spec_moved, a)
    plan_moved = replace(
        a, plan_digest="0" * 64,
        plan_ir=a.plan_ir.replace("split:", "split!", 1),
    )
    assert "plan" in first_divergence(plan_moved, a)
    outputs = {t: list(d) for t, d in a.output_digests.items()}
    task = sorted(outputs)[0]
    outputs[task][0] = "0" * 64
    out_moved = replace(a, output_digests=outputs)
    message = first_divergence(out_moved, a)
    assert f"task {task!r}" in message and "batch 0" in message


# ---------------------------------------------------------------------------
# golden registry: record / verify / tamper
# ---------------------------------------------------------------------------

def test_record_and_verify_round_trip(tmp_path, quick_attestation):
    save_golden(quick_attestation, tmp_path)
    assert list_goldens(tmp_path) == [QUICK]
    result = verify_goldens(names=[QUICK], golden_dir=tmp_path)
    assert result.ok and result.checked == [QUICK]

    # Tampering with a stored digest is a divergence, not a crash.
    path = tmp_path / f"{QUICK}.json"
    data = json.loads(path.read_text())
    data["output_digests"]["scale"][0] = "0" * 64
    path.write_text(json.dumps(data))
    result = verify_goldens(names=[QUICK], golden_dir=tmp_path)
    assert not result.ok
    assert "output digest changed" in result.divergences[0][1]


def test_record_skips_existing_unless_update(tmp_path, quick_attestation):
    save_golden(quick_attestation, tmp_path)
    result = record_goldens(names=[QUICK], golden_dir=tmp_path)
    assert result.skipped and "exists" in result.skipped[0][1]
    result = record_goldens(names=[QUICK], update=True, golden_dir=tmp_path)
    assert result.recorded == [QUICK]


def test_missing_golden_is_a_divergence(tmp_path):
    """CI must fail when a new quick-tier scenario lands unrecorded."""
    result = verify_goldens(names=[QUICK], golden_dir=tmp_path)
    assert not result.ok
    assert "no golden recorded" in result.divergences[0][1]


def test_every_quick_scenario_has_a_committed_golden():
    committed = set(list_goldens())
    for name in available_scenarios("quick"):
        spec = get_scenario(name).deployment_spec()
        try:
            check_attestable(spec)
        except AttestationPolicyError:
            continue
        assert name in committed, f"quick scenario {name} has no golden"


def test_golden_files_are_canonical_on_disk():
    """Committed goldens are sorted, newline-terminated JSON in the
    attestation format — regenerating an unchanged golden is a no-op
    diff."""
    from repro.attest import golden_path

    for name in list_goldens():
        raw = golden_path(name).read_text()
        data = json.loads(raw)
        assert raw == json.dumps(data, sort_keys=True, indent=2) + "\n"
        assert data["format"] == "repro-attest-v1"
        round_trip = Attestation.from_dict(data)
        assert round_trip.scenario == name


# ---------------------------------------------------------------------------
# policy exclusions
# ---------------------------------------------------------------------------

def test_quant8_compute_is_policy_excluded():
    spec = DeploymentSpec(
        model="mobilenet_v3_tiny", tasks=(("scale", 8),), input_size=32,
        compute="quant8", seed=41,
    )
    with pytest.raises(AttestationPolicyError, match="calibration"):
        check_attestable(spec)


def test_cache_enabled_spec_is_policy_excluded():
    spec = DeploymentSpec(
        model="mobilenet_v3_tiny", tasks=(("scale", 8),), input_size=32,
        cache="response", seed=41,
    )
    with pytest.raises(AttestationPolicyError, match="cache"):
        check_attestable(spec)


def test_attest_scenario_refuses_quant8_scenarios():
    quant8 = [
        name for name in available_scenarios("hires")
        if get_scenario(name).compute == "quant8"
    ]
    assert quant8, "quant8 hires scenarios must be registered"
    with pytest.raises(AttestationPolicyError):
        attest_scenario(get_scenario(quant8[0]))


def test_verify_skips_policy_excluded_scenarios_by_name(tmp_path):
    quant8 = [
        name for name in available_scenarios("hires")
        if get_scenario(name).compute == "quant8"
    ]
    result = verify_goldens(names=quant8[:1], golden_dir=tmp_path)
    assert result.ok
    assert result.skipped and result.skipped[0][0] == quant8[0]


def test_unknown_golden_format_is_rejected():
    with pytest.raises(AttestationError, match="format"):
        Attestation.from_dict({"format": "repro-attest-v0"})


# ---------------------------------------------------------------------------
# report stamping
# ---------------------------------------------------------------------------

def test_throughput_report_aggregate_is_forward_compatible():
    """Aggregation is field-driven: numeric counters sum, unanimous
    strings survive, disagreeing strings blank out — so a new counter
    (like the digests) never needs aggregate() edited again."""
    timings = dict(edge_seconds=0.1, transfer_seconds=0.1,
                   server_seconds=0.1, pipelined_seconds=0.1)
    a = ThroughputReport(batches=1, images=4, wall_seconds=1.0,
                         spec_digest="s", plan_digest="p", **timings)
    b = ThroughputReport(batches=2, images=8, wall_seconds=2.0,
                         spec_digest="s", plan_digest="p", **timings)
    merged = ThroughputReport.aggregate([a, b], wall_seconds=3.0)
    assert merged.batches == 3 and merged.images == 12
    assert merged.spec_digest == "s" and merged.plan_digest == "p"

    c = replace(b, plan_digest="other")
    merged = ThroughputReport.aggregate([a, c], wall_seconds=3.0)
    assert merged.plan_digest == "" and merged.spec_digest == "s"
    assert ThroughputReport.aggregate([], wall_seconds=0.0).batches == 0


def test_deployment_stream_reports_carry_digests():
    from repro.serve import deploy

    scenario = get_scenario(QUICK)
    with deploy(scenario.deployment_spec()) as deployment:
        _, report = deployment.stream(scenario.make_batches(2))
    assert report.spec_digest and report.plan_digest
    spec_digest, plan_digest = deployment.provenance()
    assert (report.spec_digest, report.plan_digest) == (spec_digest, plan_digest)
