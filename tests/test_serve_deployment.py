"""Deployment facade: capability parity with the old surface, lifecycle
(resource reclamation), auto split, shim *removal*, CLI subcommand.

The ``repro.deployment.{EdgeRuntime,ServerRuntime,SplitPipeline}``
deprecation shims soaked for two PRs and are now gone; the shim tests
that lived here became the removal tests in :class:`TestShimRemoval`."""

import threading
import warnings

import numpy as np
import pytest

import repro
from repro import nn
from repro.cli import main
from repro.nn.tensor import Tensor
from repro.serve import Deployment, DeploymentSpec, SpecError, deploy


def _engine_threads():
    return {
        thread
        for thread in threading.enumerate()
        if thread.name.startswith("repro-engine") and thread.is_alive()
    }


def _batcher_threads():
    return {
        thread
        for thread in threading.enumerate()
        if thread.name.startswith("repro-serve-batcher") and thread.is_alive()
    }


class TestCapabilityParity:
    """repro.deploy covers everything the old hand-wired surface did."""

    def test_infer_matches_monolith(self, tiny_trained_net, shapes3d_small):
        images = shapes3d_small.images[:6]
        with deploy(DeploymentSpec(model=tiny_trained_net)) as deployment:
            logits = deployment.infer(images)
            with nn.no_grad():
                full = tiny_trained_net(Tensor(images))
            for name in tiny_trained_net.task_names:
                np.testing.assert_allclose(
                    logits[name], full[name].data, atol=1e-5
                )
            assert len(deployment.traces) == 1
            assert deployment.traces[0].batch_size == 6

    def test_intermediate_split(self, tiny_trained_net, shapes3d_small):
        images = shapes3d_small.images[:4]
        spec = DeploymentSpec(model=tiny_trained_net, split_index=3)
        with deploy(spec) as deployment:
            assert deployment.split_index == 3
            logits = deployment.infer(images)
            with nn.no_grad():
                full = tiny_trained_net(Tensor(images))
            for name in tiny_trained_net.task_names:
                np.testing.assert_allclose(logits[name], full[name].data, atol=1e-4)

    @pytest.mark.parametrize("wire", ["float16", "quant8"])
    def test_wire_formats(self, tiny_trained_net, shapes3d_small, wire):
        images = shapes3d_small.images[:8]
        with deploy(DeploymentSpec(model=tiny_trained_net, wire=wire)) as deployment:
            logits = deployment.infer(images)
            with nn.no_grad():
                full = tiny_trained_net(Tensor(images))
            for name in tiny_trained_net.task_names:
                agreement = (
                    logits[name].argmax(1) == full[name].data.argmax(1)
                ).mean()
                assert agreement > 0.85

    def test_stream_reports_throughput(self, tiny_trained_net, shapes3d_small):
        batches = [shapes3d_small.images[i : i + 4] for i in range(0, 12, 4)]
        with deploy(DeploymentSpec(model=tiny_trained_net)) as deployment:
            results, report = deployment.stream(batches)
            assert len(results) == 3
            assert report.batches == 3 and report.images == 12
            assert report.batches_per_second > 0
            assert len(deployment.traces) == 3

    def test_execution_mode_knobs(self, tiny_trained_net, shapes3d_small):
        images = shapes3d_small.images[:4]
        plain = deploy(DeploymentSpec(model=tiny_trained_net, planned=False))
        eager = deploy(
            DeploymentSpec(model=tiny_trained_net, planned=False, compiled=False)
        )
        try:
            assert not plain.pipeline.edge.planned
            assert plain.pipeline.edge.compiled
            assert not eager.pipeline.edge.compiled
            for name in tiny_trained_net.task_names:
                np.testing.assert_allclose(
                    plain.infer(images)[name], eager.infer(images)[name], atol=1e-4
                )
        finally:
            plain.close()
            eager.close()

    def test_auto_split_resolves_to_valid_stage(self):
        spec = DeploymentSpec(
            model="mobilenet_v3_tiny",
            tasks=(("scale", 8),),
            split_index="auto",
            channel="lte_uplink",
        )
        with deploy(spec) as deployment:
            stages = len(list(deployment.net.backbone.stages))
            assert 1 <= deployment.split_index <= stages
            images = np.zeros((2, 3, 32, 32), dtype=np.float32)
            assert set(deployment.infer(images)) == {"scale"}

    def test_named_model_builds_heads_from_tasks(self):
        spec = DeploymentSpec(
            model="vgg_tiny", tasks=(("left", 3), ("right", 5)), seed=9
        )
        with deploy(spec) as deployment:
            assert deployment.task_names == ("left", "right")
            out = deployment.infer(np.zeros((2, 3, 32, 32), dtype=np.float32))
            assert out["left"].shape == (2, 3)
            assert out["right"].shape == (2, 5)

    def test_deploy_kwargs_shorthand(self):
        with deploy(model="vgg_tiny", tasks=(("a", 2),)) as deployment:
            assert isinstance(deployment, Deployment)
            assert deployment.spec.model == "vgg_tiny"

    def test_deploy_overrides_respec(self, tiny_trained_net):
        spec = DeploymentSpec(model=tiny_trained_net)
        with deploy(spec, wire="float16") as deployment:
            assert deployment.spec.wire == "float16"

    def test_out_of_range_split_rejected_with_clear_message(self, tiny_trained_net):
        with pytest.raises(SpecError, match=r"valid: 1\.\."):
            deploy(DeploymentSpec(model=tiny_trained_net, split_index=99))


class TestLifecycle:
    """The resource-leak satellite: pools and dispatcher threads reclaimed."""

    def test_worker_threads_reclaimed_on_close(self, tiny_trained_net):
        before = _engine_threads()
        deployment = deploy(DeploymentSpec(model=tiny_trained_net, num_workers=3))
        spawned = _engine_threads() - before
        # Two stages (edge + server), each with a pool of num_workers - 1
        # helper threads (the caller is worker zero).
        assert len(spawned) == 4, f"expected 4 engine threads, saw {len(spawned)}"
        images = np.zeros((6, 3, 32, 32), dtype=np.float32)
        deployment.infer(images)
        deployment.submit(images[0]).result(timeout=60)
        assert _batcher_threads()
        deployment.close()
        assert not (_engine_threads() - before), "engine threads leaked past close()"
        assert not _batcher_threads(), "batcher dispatcher leaked past close()"

    def test_pipeline_context_reclaims_threads(self, tiny_trained_net):
        from repro.deployment import GIGABIT_ETHERNET
        from repro.serve import SplitPipeline

        before = _engine_threads()
        with SplitPipeline.from_net(
            tiny_trained_net, GIGABIT_ETHERNET, input_size=32, num_workers=3
        ) as pipeline:
            assert _engine_threads() - before
            pipeline.infer(np.zeros((6, 3, 32, 32), dtype=np.float32))
        assert not (_engine_threads() - before), "pipeline leaked engine threads"

    def test_closed_deployment_rejects_work(self, tiny_trained_net):
        deployment = deploy(DeploymentSpec(model=tiny_trained_net))
        deployment.close()
        deployment.close()  # idempotent
        assert deployment.closed
        with pytest.raises(RuntimeError, match="closed"):
            deployment.infer(np.zeros((1, 3, 32, 32), dtype=np.float32))
        with pytest.raises(RuntimeError, match="closed"):
            deployment.submit(np.zeros((3, 32, 32), dtype=np.float32))

    def test_close_resolves_outstanding_submits(self, tiny_trained_net):
        deployment = deploy(
            DeploymentSpec(model=tiny_trained_net, max_queue_delay_ms=20.0)
        )
        futures = [
            deployment.submit(np.zeros((3, 32, 32), dtype=np.float32))
            for _ in range(5)
        ]
        deployment.close()
        for future in futures:
            assert set(future.result(timeout=10)) == set(
                tiny_trained_net.task_names
            )

    def test_close_safe_under_concurrent_callers(self, tiny_trained_net):
        """Racing close() callers all block until the one drain finishes;
        pending submits resolve, threads are reclaimed exactly once."""
        deployment = deploy(
            DeploymentSpec(model=tiny_trained_net, max_queue_delay_ms=20.0)
        )
        futures = [
            deployment.submit(np.zeros((3, 32, 32), dtype=np.float32))
            for _ in range(5)
        ]
        errors = []

        def closer():
            try:
                deployment.close()
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert not errors
        assert deployment.closed
        for future in futures:
            assert future.done(), "racing close() stranded a future"
        assert not _batcher_threads(), "batcher thread leaked past close()"

    def test_trace_history_is_bounded(self, tiny_trained_net):
        with deploy(DeploymentSpec(model=tiny_trained_net)) as deployment:
            deployment.pipeline.MAX_TRACES = 5  # instance override
            images = np.zeros((1, 3, 32, 32), dtype=np.float32)
            for _ in range(12):
                deployment.infer(images)
            assert len(deployment.traces) == 5  # oldest traces dropped

    def test_warmup_prepares_plans(self, tiny_trained_net):
        with deploy(DeploymentSpec(model=tiny_trained_net)) as deployment:
            deployment.warmup([1, 4])
            assert not deployment.traces  # warmup is untraced
            stats = deployment.pipeline.edge.plan_stats
            assert stats is not None and stats.num_plans >= 2


class TestShimRemoval:
    """The deprecated runtime shims are gone — loudly, with a pointer.

    Their deprecation window (>= 2 PRs, internal callers migrated first)
    closed; these tests pin the removal so the names cannot quietly come
    back without a decision.
    """

    @pytest.mark.parametrize(
        "name", ["EdgeRuntime", "ServerRuntime", "SplitPipeline"]
    )
    def test_removed_names_raise_with_migration_hint(self, name):
        import repro.deployment
        import repro.deployment.runtime

        for module in (repro.deployment, repro.deployment.runtime):
            with pytest.raises(AttributeError, match="removed after its deprecation"):
                getattr(module, name)
            with pytest.raises(AttributeError, match="repro.serve.runtime"):
                getattr(module, name)

    @pytest.mark.parametrize(
        "name", ["EdgeRuntime", "ServerRuntime", "SplitPipeline"]
    )
    def test_removed_names_fail_from_import(self, name):
        with pytest.raises(ImportError):
            exec(f"from repro.deployment import {name}")

    def test_data_types_still_reexported(self):
        from repro.deployment import InferenceTrace, SimulatedLink, ThroughputReport
        from repro.serve import runtime as serve_runtime

        assert InferenceTrace is serve_runtime.InferenceTrace
        assert SimulatedLink is serve_runtime.SimulatedLink
        assert ThroughputReport is serve_runtime.ThroughputReport

    def test_unknown_attribute_message_is_generic(self):
        import repro.deployment

        with pytest.raises(AttributeError, match="no attribute 'Bogus'"):
            repro.deployment.Bogus

    def test_serve_classes_do_not_warn(self, tiny_trained_net):
        from repro.deployment import GIGABIT_ETHERNET

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pipeline = repro.serve.SplitPipeline.from_net(
                tiny_trained_net, GIGABIT_ETHERNET, input_size=32
            )
            pipeline.close()


class TestServeCli:
    def test_serve_subcommand_runs(self, capsys):
        assert main([
            "serve", "--backbone", "mobilenet_v3_tiny", "--clients", "1,2",
            "--requests", "2", "--max-batch-size", "2", "--max-delay-ms", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out
        assert "submit" in out
        assert "best concurrent throughput vs sequential" in out

    def test_serve_json_artifact(self, tmp_path, capsys):
        path = tmp_path / "serve.json"
        assert main([
            "serve", "--clients", "2", "--requests", "2",
            "--max-batch-size", "2", "--max-delay-ms", "1",
            "--json", str(path),
        ]) == 0
        import json

        data = json.loads(path.read_text())
        assert data["sequential"]["throughput_rps"] > 0
        assert data["concurrent"][0]["clients"] == 2

    def test_serve_rejects_degenerate_arguments(self, capsys):
        assert main(["serve", "--clients", "zero"]) == 2
        assert main(["serve", "--clients", "0"]) == 2
        assert main(["serve", "--requests", "0"]) == 2
        assert main(["serve", "--split-index", "nope"]) == 2
        assert main(["serve", "--backbone", "resnet50"]) == 2
        assert main(["serve", "--replicas", "0"]) == 2
        assert main(["serve", "--worker-faults", "boom=1"]) == 2

    def test_serve_replica_cluster_with_chaos(self, tmp_path, capsys):
        """--replicas spins up the cluster bench; --worker-faults injects
        a real SIGKILL and the JSON artifact carries the plan digest."""
        path = tmp_path / "cluster.json"
        assert main([
            "serve", "--backbone", "mobilenet_v3_tiny", "--clients", "1",
            "--requests", "8", "--max-batch-size", "2", "--max-delay-ms", "1",
            "--replicas", "2", "--worker-faults", "at=1,seed=3",
            "--json", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cluster bench" in out
        assert "replica" in out
        import json

        from repro.serve import WorkerFaultPlan

        data = json.loads(path.read_text())
        assert data["replicas"] == 2
        assert data["completed"] == 8
        assert data["worker_fault_digest"] == WorkerFaultPlan.from_string(
            "at=1,seed=3"
        ).digest()
        assert data["report"]["kills_injected"] == 1
        batching = data["report"]["batching"]
        assert batching["submitted"] == batching["shed"] + batching["requests"]

    def test_serve_sigterm_drains_and_exits_zero(self, tmp_path):
        """The drain satellite, end to end: SIGTERM mid-run stops
        admissions, flushes the queue, and exits 0 with the drain notice
        — not a traceback, not a non-zero exit."""
        import os
        import signal
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "serve",
             "--backbone", "mobilenet_v3_tiny", "--clients", "1",
             "--requests", "100000", "--max-batch-size", "2",
             "--max-delay-ms", "1"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            # Wait for the bench banner so the drain handlers are
            # installed before the signal lands.
            deadline = time.monotonic() + 60
            banner = ""
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                banner += line
                if "serving bench" in line:
                    break
            assert "serving bench" in banner, banner
            time.sleep(1.0)  # let some requests get in flight
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "graceful drain complete" in out

    def test_parser_knows_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert callable(args.func)
