"""Smoke tests asserting the examples' public-API usage stays valid.

The examples are documentation; these tests exercise the exact API
sequences they rely on (at miniature scale) so a refactor that breaks an
example breaks the test suite too.
"""

import ast
from pathlib import Path

import numpy as np
import pytest

from repro import data
from repro.core import (
    FineTuneConfig,
    MTLSplitNet,
    MultiTaskTrainer,
    TrainConfig,
    add_task,
    evaluate,
    fine_tune,
)
from repro.deployment import GIGABIT_ETHERNET
from repro.serve import SplitPipeline

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


class TestExampleFiles:
    def test_examples_present(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "automotive_multitask.py",
            "deployment_analysis.py",
            "add_new_task.py",
        } <= names

    @pytest.mark.parametrize("path", sorted(EXAMPLES_DIR.glob("*.py")))
    def test_examples_parse_and_have_main(self, path):
        tree = ast.parse(path.read_text())
        functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in functions
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"

    @pytest.mark.parametrize("path", sorted(EXAMPLES_DIR.glob("*.py")))
    def test_examples_import_only_public_api(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                assert not node.module.startswith("repro.nn.tensor") or True
                # private modules (leading underscore) are off limits
                assert "._" not in node.module, f"{path.name} imports private module"


class TestQuickstartSequence:
    def test_miniature_quickstart(self):
        dataset = data.make_shapes3d(120, tasks=("scale", "shape"), seed=0)
        train, val, test = data.train_val_test_split(
            dataset, rng=np.random.default_rng(0)
        )
        net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(train.tasks), 32)
        MultiTaskTrainer(TrainConfig(epochs=1, batch_size=32)).fit(
            net, train, val_set=val
        )
        accuracy = evaluate(net, test)
        assert set(accuracy) == {"scale", "shape"}
        net.eval()
        pipeline = SplitPipeline.from_net(net, GIGABIT_ETHERNET, input_size=32)
        logits = pipeline.infer(test.images[:4])
        assert set(logits) == {"scale", "shape"}


class TestAddTaskSequence:
    def test_miniature_add_task(self):
        dataset = data.make_faces(120, seed=0)
        train, _val, test = data.train_val_test_split(
            dataset, val_fraction=0.0, test_fraction=0.3, rng=np.random.default_rng(0)
        )
        initial = ["age", "gender"]
        net = MTLSplitNet.from_tasks(
            "efficientnet_tiny", [train.task_info(t) for t in initial], 32
        )
        MultiTaskTrainer(TrainConfig(epochs=1, batch_size=32)).fit(
            net, train.select_tasks(initial)
        )
        extended = add_task(net, train.task_info("expression"), input_size=32)
        fine_tune(
            extended, train, FineTuneConfig(alpha=1e-3, eta=0.0, epochs=1, batch_size=32)
        )
        accuracy = evaluate(extended, test)
        assert set(accuracy) == {"age", "gender", "expression"}
