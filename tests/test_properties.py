"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.data.base import MultiTaskDataset, TaskInfo
from repro.deployment import (
    NetworkChannel,
    WireFormat,
    decode_tensor,
    encode_tensor,
    payload_bytes,
)
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad

finite_f32 = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False, width=32
)


def f32_arrays(max_dims=3, max_side=6):
    return arrays(
        dtype=np.float32,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_f32,
    )


class TestAutogradProperties:
    @given(f32_arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_grad_is_ones(self, values):
        t = Tensor(values.astype(np.float64), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(values))

    @given(f32_arrays(), st.floats(min_value=-5, max_value=5, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_scalar_mul_grad_is_constant(self, values, scalar):
        t = Tensor(values.astype(np.float64), requires_grad=True)
        (t * scalar).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(values, scalar, dtype=np.float64),
                                   atol=1e-6)

    @given(f32_arrays(max_dims=2))
    @settings(max_examples=30, deadline=None)
    def test_backward_linearity(self, values):
        # grad of (f + f) == 2 * grad of f
        t1 = Tensor(values.astype(np.float64), requires_grad=True)
        y = t1 * 3.0
        (y + y).sum().backward()
        t2 = Tensor(values.astype(np.float64), requires_grad=True)
        (t2 * 3.0).sum().backward()
        np.testing.assert_allclose(t1.grad, 2.0 * t2.grad, atol=1e-6)

    @given(f32_arrays(max_dims=2))
    @settings(max_examples=30, deadline=None)
    def test_relu_idempotent(self, values):
        t = Tensor(values)
        once = F.relu(t).data
        twice = F.relu(F.relu(t)).data
        np.testing.assert_array_equal(once, twice)

    @given(f32_arrays(max_dims=2))
    @settings(max_examples=30, deadline=None)
    def test_softmax_is_distribution(self, values):
        if values.ndim == 1:
            values = values[None]
        s = F.softmax(Tensor(values)).data
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, atol=1e-4)

    @given(f32_arrays(max_dims=2))
    @settings(max_examples=30, deadline=None)
    def test_no_grad_never_builds_graph(self, values):
        t = Tensor(values, requires_grad=True)
        with no_grad():
            out = (t * 2 + 1).sum()
        assert out.is_leaf


class TestWireProperties:
    @given(f32_arrays(max_dims=4, max_side=5))
    @settings(max_examples=50, deadline=None)
    def test_float32_roundtrip_exact(self, values):
        decoded = decode_tensor(encode_tensor(values, WireFormat("float32")))
        np.testing.assert_array_equal(decoded, values)
        assert decoded.shape == values.shape

    @given(f32_arrays(max_dims=3, max_side=5))
    @settings(max_examples=50, deadline=None)
    def test_quant8_error_bounded_by_step(self, values):
        decoded = decode_tensor(encode_tensor(values, WireFormat("quant8")))
        step = (values.max() - values.min()) / 255.0 if values.size else 0.0
        assert np.abs(decoded - values).max() <= step + 1e-5

    @given(f32_arrays(max_dims=3, max_side=5),
           st.sampled_from(["float32", "float16", "quant8"]))
    @settings(max_examples=50, deadline=None)
    def test_payload_size_prediction(self, values, fmt):
        predicted = payload_bytes(values.size, WireFormat(fmt))
        assert predicted == len(encode_tensor(values, WireFormat(fmt)))


class TestChannelProperties:
    @given(st.floats(min_value=1e3, max_value=1e12),
           st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_transfer_time_additive_in_messages(self, bandwidth, nbytes, messages):
        channel = NetworkChannel("p", bandwidth_bps=bandwidth)
        one = channel.transfer_seconds(nbytes)
        many = channel.transfer_seconds(nbytes, messages)
        assert many == pytest.approx(messages * one, rel=1e-9)

    @given(st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_degraded_scales_linearly(self, nbytes):
        channel = NetworkChannel("p", bandwidth_bps=1e9)
        assert channel.degraded(4).transfer_seconds(nbytes) == pytest.approx(
            4 * channel.transfer_seconds(nbytes), rel=1e-9
        )

    @given(st.integers(min_value=0, max_value=10**6),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_overhead_monotone(self, nbytes, overhead):
        base = NetworkChannel("a", bandwidth_bps=1e6)
        padded = NetworkChannel("b", bandwidth_bps=1e6, overhead_fraction=overhead)
        assert padded.transfer_seconds(nbytes) >= base.transfer_seconds(nbytes) - 1e-12


class TestDatasetProperties:
    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_subset_preserves_label_pairing(self, n, seed):
        rng = np.random.default_rng(seed)
        images = np.zeros((n, 1, 4, 4), dtype=np.float32)
        labels = rng.integers(0, 3, n)
        images[:, 0, 0, 0] = labels
        ds = MultiTaskDataset(images, {"t": labels}, (TaskInfo("t", 3),))
        indices = rng.permutation(n)[: max(1, n // 2)]
        sub = ds.subset(indices)
        np.testing.assert_array_equal(
            sub.images[:, 0, 0, 0].astype(int), sub.labels["t"]
        )

    @given(st.integers(min_value=4, max_value=80), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_split_partitions_without_loss(self, n, seed):
        images = np.zeros((n, 1, 2, 2), dtype=np.float32)
        images[:, 0, 0, 0] = np.arange(n)
        ds = MultiTaskDataset(
            images, {"t": np.zeros(n, int)}, (TaskInfo("t", 2),)
        )
        parts = ds.split((0.5, 0.3, 0.2), rng=np.random.default_rng(seed))
        assert sum(len(p) for p in parts) == n
        seen = np.concatenate([p.images[:, 0, 0, 0] for p in parts])
        assert sorted(seen.tolist()) == list(range(n))


class TestNoiseProperties:
    @given(st.floats(min_value=0.0, max_value=0.9),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_salt_pepper_fraction_close(self, amount, seed):
        from repro.data.noise import salt_and_pepper

        images = np.full((2, 3, 40, 40), 0.5, dtype=np.float32)
        noisy = salt_and_pepper(images, amount=amount, rng=np.random.default_rng(seed))
        corrupted = float((noisy[:, 0] != 0.5).mean())
        assert corrupted == pytest.approx(amount, abs=0.06)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_shapes3d_render_pure(self, seed):
        from repro.data.shapes3d import Shapes3DGenerator

        rng = np.random.default_rng(seed)
        gen = Shapes3DGenerator(24)
        factors = gen.sample_factors(1, rng)[0]
        np.testing.assert_array_equal(gen.render(factors), gen.render(factors))
