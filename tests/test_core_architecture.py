"""Tests for MTLSplitNet: construction, forward semantics, parameter
groups and the edge/server split."""

import numpy as np
import pytest

from repro import nn
from repro.core import MTLSplitNet
from repro.data.base import TaskInfo
from repro.models import MLPHead, mobilenet_v3_tiny
from repro.nn.tensor import Tensor

TASKS = [TaskInfo("size", 8), TaskInfo("kind", 4)]


@pytest.fixture(scope="module")
def net():
    return MTLSplitNet.from_tasks("mobilenet_v3_tiny", TASKS, input_size=32, seed=0)


def batch(n=4, seed=0):
    return Tensor(np.random.default_rng(seed).standard_normal((n, 3, 32, 32)).astype(np.float32))


class TestConstruction:
    def test_from_tasks_heads(self, net):
        assert net.task_names == ("size", "kind")
        assert net.num_tasks == 2

    def test_head_lookup(self, net):
        assert net.head("size").num_classes == 8
        with pytest.raises(KeyError):
            net.head("missing")

    def test_empty_heads_rejected(self):
        backbone = mobilenet_v3_tiny()
        with pytest.raises(ValueError):
            MTLSplitNet(backbone, {})

    def test_custom_heads(self):
        backbone = mobilenet_v3_tiny(rng=np.random.default_rng(0))
        z_dim = backbone.feature_dim(32)
        net = MTLSplitNet(backbone, {"t": MLPHead(z_dim, 3)})
        assert net.task_names == ("t",)

    def test_repr(self, net):
        text = repr(net)
        assert "mobilenet_v3_tiny" in text and "size" in text


class TestForward:
    def test_forward_returns_all_tasks(self, net):
        out = net(batch())
        assert set(out) == {"size", "kind"}
        assert out["size"].shape == (4, 8)
        assert out["kind"].shape == (4, 4)

    def test_backbone_then_heads_equals_forward(self, net):
        net.eval()
        x = batch(2)
        z = net.forward_backbone(x)
        split_out = net.forward_heads(z)
        full_out = net(x)
        for name in net.task_names:
            np.testing.assert_allclose(split_out[name].data, full_out[name].data, atol=1e-6)

    def test_zb_is_flattened(self, net):
        z = net.forward_backbone(batch(3))
        assert z.ndim == 2
        assert z.shape[0] == 3


class TestParameterGroups:
    def test_partition_is_exact(self, net):
        backbone = {id(p) for p in net.backbone_parameters()}
        heads = {id(p) for p in net.head_parameters()}
        everything = {id(p) for p in net.parameters()}
        assert backbone | heads == everything
        assert not backbone & heads

    def test_per_task_head_params(self, net):
        size_params = list(net.head_parameters("size"))
        assert len(size_params) == 4  # two linear layers, weight + bias each

    def test_shared_backbone_gets_gradients_from_all_tasks(self, net):
        net.train()
        net.zero_grad()
        out = net(batch(2))
        loss = nn.functional.cross_entropy(out["size"], np.array([0, 1]))
        loss = loss + nn.functional.cross_entropy(out["kind"], np.array([0, 1]))
        loss.backward()
        grads = [p.grad for p in net.backbone_parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)
        net.zero_grad()

    def test_head_gradients_are_task_local(self, net):
        net.train()
        net.zero_grad()
        out = net(batch(2))
        loss = nn.functional.cross_entropy(out["size"], np.array([0, 1]))
        loss.backward()
        assert all(p.grad is None for p in net.head_parameters("kind"))
        assert any(p.grad is not None for p in net.head_parameters("size"))
        net.zero_grad()


class TestSplit:
    def test_default_split_equals_monolith(self, net):
        net.eval()
        edge, server = net.split(input_size=32)
        x = batch(5, seed=3)
        with nn.no_grad():
            z = edge(x)
            split_out = server(z)
        full_out = net(x)
        for name in net.task_names:
            np.testing.assert_allclose(
                split_out[name].data, full_out[name].data, atol=1e-5
            )

    @pytest.mark.parametrize("index", [1, 3, 5])
    def test_intermediate_split_equals_monolith(self, net, index):
        net.eval()
        edge, server = net.split(index, input_size=32)
        x = batch(2, seed=4)
        with nn.no_grad():
            split_out = server(edge(x))
        full_out = net(x)
        for name in net.task_names:
            np.testing.assert_allclose(
                split_out[name].data, full_out[name].data, atol=1e-5
            )

    def test_split_shares_parameters(self, net):
        edge, _server = net.split(input_size=32)
        edge_ids = {id(p) for p in edge.parameters()}
        net_ids = {id(p) for p in net.parameters()}
        assert edge_ids <= net_ids

    def test_invalid_split_index(self, net):
        with pytest.raises(ValueError):
            net.split(0)
        with pytest.raises(ValueError):
            net.split(999)

    def test_edge_output_is_flat(self, net):
        edge, _ = net.split(2, input_size=32)
        with nn.no_grad():
            z = edge(batch(2))
        assert z.ndim == 2
