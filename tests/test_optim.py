"""Optimiser and scheduler tests, including hand-computed update checks."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.optim import clip_grad_norm


def make_param(values):
    return Parameter(np.asarray(values, dtype=np.float32))


class TestSGD:
    def test_plain_step(self):
        p = make_param([1.0])
        p.grad = np.array([0.5], dtype=np.float32)
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = nn.SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # buf = 1 -> p = -1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # buf = 1.9 -> p = -2.9
        np.testing.assert_allclose(p.data, [-2.9], atol=1e-6)

    def test_weight_decay_shrinks(self):
        p = make_param([1.0])
        p.grad = np.array([0.0], dtype=np.float32)
        nn.SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            nn.SGD([make_param([0.0])], lr=0.1, nesterov=True)

    def test_skips_none_grad(self):
        p = make_param([1.0])
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([make_param([0.0])], lr=0.0)


class TestAdamFamily:
    def test_adam_first_step_magnitude(self):
        # First Adam step moves by ~lr regardless of gradient scale.
        p = make_param([0.0])
        p.grad = np.array([123.0], dtype=np.float32)
        nn.Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-5)

    def test_adamw_decoupled_decay(self):
        # With zero gradient AdamW still shrinks weights; Adam-L2 does not.
        p1, p2 = make_param([1.0]), make_param([1.0])
        p1.grad = np.array([0.0], dtype=np.float32)
        p2.grad = np.array([0.0], dtype=np.float32)
        nn.AdamW([p1], lr=0.1, weight_decay=0.5).step()
        nn.Adam([p2], lr=0.1, weight_decay=0.5).step()
        assert p1.data[0] < 1.0  # decoupled decay applied
        assert p2.data[0] < 1.0  # L2 gradient also shrinks here (grad = wd * w)

    def test_adam_converges_quadratic(self):
        p = make_param([5.0])
        opt = nn.Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            p.grad = 2.0 * p.data  # d/dp of p^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            nn.Adam([make_param([0.0])], betas=(1.0, 0.9))

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_non_parameter_rejected(self):
        with pytest.raises(TypeError):
            nn.Adam([np.zeros(3)], lr=0.1)  # type: ignore[list-item]


class TestParamGroups:
    def test_two_rate_groups(self):
        fast, slow = make_param([1.0]), make_param([1.0])
        opt = nn.SGD(
            [dict(params=[fast], lr=0.1), dict(params=[slow], lr=0.001)], lr=0.1
        )
        fast.grad = np.array([1.0], dtype=np.float32)
        slow.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(fast.data, [0.9])
        np.testing.assert_allclose(slow.data, [0.999])

    def test_zero_grad_covers_all_groups(self):
        a, b = make_param([0.0]), make_param([0.0])
        a.grad = np.ones(1, dtype=np.float32)
        b.grad = np.ones(1, dtype=np.float32)
        opt = nn.SGD([dict(params=[a]), dict(params=[b])], lr=0.1)
        opt.zero_grad()
        assert a.grad is None and b.grad is None


class TestSchedulers:
    def test_step_lr_decays(self):
        p = make_param([0.0])
        opt = nn.SGD([p], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.param_groups[0]["lr"])
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_reaches_eta_min(self):
        p = make_param([0.0])
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=10, eta_min=0.05)
        for _ in range(10):
            sched.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.05)

    def test_cosine_monotone_decreasing(self):
        opt = nn.SGD([make_param([0.0])], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=6)
        previous = 1.0
        for _ in range(6):
            sched.step()
            current = opt.param_groups[0]["lr"]
            assert current <= previous + 1e-9
            previous = current


class TestClipGradNorm:
    def test_scales_down_large_grads(self):
        p = make_param([0.0, 0.0])
        p.grad = np.array([3.0, 4.0], dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, atol=1e-6)

    def test_leaves_small_grads(self):
        p = make_param([0.0])
        p.grad = np.array([0.1], dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.1])

    def test_empty_grads(self):
        assert clip_grad_norm([make_param([0.0])], 1.0) == 0.0
