"""Layer-level tests: shapes, parameter wiring, train/eval behaviour."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def make_input(shape, seed=0):
    return Tensor(np.random.default_rng(seed).standard_normal(shape).astype(np.float32))


class TestLinear:
    def test_shape(self):
        layer = nn.Linear(7, 3)
        assert layer(make_input((5, 7))).shape == (5, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_deterministic_with_rng(self):
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        a = nn.Linear(4, 4, rng=rng1)
        b = nn.Linear(4, 4, rng=rng2)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_matches_manual_affine(self):
        layer = nn.Linear(3, 2)
        x = make_input((4, 3))
        expected = x.data @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(x).data, expected, atol=1e-6)


class TestConv2d:
    def test_shape_padding_same(self):
        layer = nn.Conv2d(3, 8, 3, padding=1)
        assert layer(make_input((2, 3, 16, 16))).shape == (2, 8, 16, 16)

    def test_stride_halves(self):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        assert layer(make_input((2, 3, 16, 16))).shape == (2, 8, 8, 8)

    def test_depthwise_weight_shape(self):
        layer = nn.Conv2d(8, 8, 3, groups=8, padding=1)
        assert layer.weight.shape == (8, 1, 3, 3)

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 6, 3, groups=2)

    def test_no_bias_param_count(self):
        layer = nn.Conv2d(3, 4, 3, bias=False)
        assert layer.num_parameters() == 3 * 4 * 9

    def test_repr(self):
        assert "groups=4" in repr(nn.Conv2d(4, 4, 3, groups=4))


class TestBatchNorm:
    def test_2d_output_normalised_in_training(self):
        bn = nn.BatchNorm2d(4)
        x = make_input((16, 4, 5, 5)) * 3.0 + 1.0
        y = bn(x).data
        assert abs(y.mean()) < 1e-4

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(2)
        x = make_input((8, 2, 3, 3)) * 2 + 5
        for _ in range(50):
            bn(x)
        bn.eval()
        y = bn(x).data
        assert abs(y.mean()) < 0.15

    def test_wrong_channels_raises(self):
        bn = nn.BatchNorm2d(3)
        with pytest.raises(ValueError):
            bn(make_input((2, 4, 3, 3)))

    def test_1d_shape_check(self):
        bn = nn.BatchNorm1d(6)
        assert bn(make_input((10, 6))).shape == (10, 6)
        with pytest.raises(ValueError):
            bn(make_input((10, 6, 2)))

    def test_buffers_present(self):
        bn = nn.BatchNorm2d(3)
        names = dict(bn.named_buffers())
        assert "running_mean" in names and "running_var" in names


class TestPoolLayers:
    def test_max_pool_layer(self):
        assert nn.MaxPool2d(2)(make_input((1, 2, 8, 8))).shape == (1, 2, 4, 4)

    def test_avg_pool_layer_stride(self):
        assert nn.AvgPool2d(3, 2)(make_input((1, 2, 7, 7))).shape == (1, 2, 3, 3)

    def test_adaptive_pool_layer(self):
        assert nn.AdaptiveAvgPool2d(1)(make_input((2, 5, 6, 6))).shape == (2, 5, 1, 1)


class TestDropoutFlatten:
    def test_dropout_identity_in_eval(self):
        layer = nn.Dropout(0.9)
        layer.eval()
        x = make_input((4, 4))
        assert layer(x) is x

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_flatten(self):
        assert nn.Flatten()(make_input((2, 3, 4, 5))).shape == (2, 60)
        assert nn.Flatten(2)(make_input((2, 3, 4, 5))).shape == (2, 3, 20)


class TestActivationLayers:
    @pytest.mark.parametrize(
        "name",
        ["relu", "relu6", "sigmoid", "hard_sigmoid", "silu", "hard_swish", "tanh", "gelu"],
    )
    def test_resolve_and_apply(self, name):
        layer = nn.resolve_activation(name)
        out = layer(make_input((3, 3)))
        assert out.shape == (3, 3)
        assert np.isfinite(out.data).all()

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError):
            nn.resolve_activation("blorp")

    def test_softmax_layer_axis(self):
        layer = nn.Softmax(axis=0)
        out = layer(make_input((4, 2))).data
        np.testing.assert_allclose(out.sum(axis=0), np.ones(2), atol=1e-6)

    def test_leaky_relu_slope(self):
        layer = nn.LeakyReLU(0.2)
        out = layer(Tensor(np.array([-1.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [-0.2], atol=1e-6)
