"""Dataset substrate tests: containers, loaders, generators, noise."""

import numpy as np
import pytest

from repro import data
from repro.data.base import MultiTaskDataset, TaskInfo
from repro.data.faces import FaceSketchGenerator
from repro.data.medic import MedicSceneGenerator
from repro.data.shapes3d import FACTOR_SIZES, Shapes3DFactors, Shapes3DGenerator


def tiny_dataset(n=10):
    images = np.zeros((n, 3, 8, 8), dtype=np.float32)
    labels = {"a": np.arange(n) % 3, "b": np.arange(n) % 2}
    tasks = (TaskInfo("a", 3), TaskInfo("b", 2))
    return MultiTaskDataset(images, labels, tasks, name="tiny")


class TestMultiTaskDataset:
    def test_basic_accessors(self):
        ds = tiny_dataset()
        assert len(ds) == 10
        assert ds.image_shape == (3, 8, 8)
        assert ds.task_names == ("a", "b")
        image, labels = ds[3]
        assert image.shape == (3, 8, 8)
        assert labels == {"a": 0, "b": 1}

    def test_label_out_of_range_rejected(self):
        images = np.zeros((2, 3, 4, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            MultiTaskDataset(images, {"a": np.array([0, 5])}, (TaskInfo("a", 3),))

    def test_label_shape_mismatch_rejected(self):
        images = np.zeros((2, 3, 4, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            MultiTaskDataset(images, {"a": np.array([0])}, (TaskInfo("a", 3),))

    def test_task_key_mismatch_rejected(self):
        images = np.zeros((2, 3, 4, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            MultiTaskDataset(images, {"b": np.zeros(2, int)}, (TaskInfo("a", 3),))

    def test_images_must_be_4d(self):
        with pytest.raises(ValueError):
            MultiTaskDataset(np.zeros((2, 8, 8)), {"a": np.zeros(2, int)}, (TaskInfo("a", 2),))

    def test_task_info_lookup(self):
        ds = tiny_dataset()
        assert ds.task_info("a").num_classes == 3
        with pytest.raises(KeyError):
            ds.task_info("missing")

    def test_task_needs_two_classes(self):
        with pytest.raises(ValueError):
            TaskInfo("bad", 1)

    def test_subset(self):
        ds = tiny_dataset()
        sub = ds.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels["a"], [0, 2, 1])

    def test_select_tasks(self):
        ds = tiny_dataset()
        only_a = ds.select_tasks(["a"])
        assert only_a.task_names == ("a",)
        assert len(only_a) == len(ds)

    def test_split_fractions(self):
        ds = tiny_dataset(100)
        train, val, test = ds.split((0.8, 0.1, 0.1), rng=np.random.default_rng(0))
        assert len(train) == 80 and len(val) == 10 and len(test) == 10

    def test_split_is_partition(self):
        ds = tiny_dataset(50)
        ds.images += np.arange(50, dtype=np.float32).reshape(-1, 1, 1, 1)
        parts = ds.split((0.5, 0.5), rng=np.random.default_rng(0))
        seen = sorted(
            float(img[0, 0, 0]) for part in parts for img in part.images
        )
        assert seen == [float(i) for i in range(50)]

    def test_split_bad_fractions(self):
        with pytest.raises(ValueError):
            tiny_dataset().split((0.5, 0.2))

    def test_train_val_test_split(self):
        train, val, test = data.train_val_test_split(tiny_dataset(100), 0.2, 0.2)
        assert len(train) == 60

    def test_train_val_test_needs_room(self):
        with pytest.raises(ValueError):
            data.train_val_test_split(tiny_dataset(), 0.6, 0.6)


class TestDataLoader:
    def test_batch_shapes(self):
        loader = data.DataLoader(tiny_dataset(10), batch_size=4)
        batches = list(loader)
        assert [b[0].shape[0] for b in batches] == [4, 4, 2]

    def test_drop_last(self):
        loader = data.DataLoader(tiny_dataset(10), batch_size=4, drop_last=True)
        assert len(list(loader)) == 2
        assert len(loader) == 2

    def test_len_without_drop(self):
        assert len(data.DataLoader(tiny_dataset(10), batch_size=4)) == 3

    def test_shuffle_changes_order_but_not_content(self):
        ds = tiny_dataset(32)
        ds.images += np.arange(32, dtype=np.float32).reshape(-1, 1, 1, 1)
        loader = data.DataLoader(ds, batch_size=32, shuffle=True,
                                 rng=np.random.default_rng(3))
        (images, _labels), = list(loader)
        ids = images[:, 0, 0, 0]
        assert not np.array_equal(ids, np.arange(32))
        assert sorted(ids.tolist()) == list(range(32))

    def test_labels_track_images(self):
        ds = tiny_dataset(16)
        ds.images += ds.labels["a"].reshape(-1, 1, 1, 1).astype(np.float32)
        loader = data.DataLoader(ds, batch_size=8, shuffle=True,
                                 rng=np.random.default_rng(5))
        for images, labels in loader:
            np.testing.assert_array_equal(images[:, 0, 0, 0].astype(int), labels["a"])

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            data.DataLoader(tiny_dataset(), batch_size=0)


class TestShapes3D:
    def test_factor_cardinalities_match_original(self):
        assert FACTOR_SIZES == {
            "floor_hue": 10, "wall_hue": 10, "object_hue": 10,
            "scale": 8, "shape": 4, "orientation": 15,
        }

    def test_render_deterministic(self):
        gen = Shapes3DGenerator(32)
        f = Shapes3DFactors(1, 2, 3, 4, 2, 7)
        np.testing.assert_array_equal(gen.render(f), gen.render(f))

    def test_factors_change_image(self):
        gen = Shapes3DGenerator(32)
        base = Shapes3DFactors(1, 2, 3, 4, 2, 7)
        for variant in (
            Shapes3DFactors(5, 2, 3, 4, 2, 7),
            Shapes3DFactors(1, 7, 3, 4, 2, 7),
            Shapes3DFactors(1, 2, 8, 4, 2, 7),
            Shapes3DFactors(1, 2, 3, 7, 2, 7),
            Shapes3DFactors(1, 2, 3, 4, 0, 7),
            Shapes3DFactors(1, 2, 3, 4, 2, 0),
        ):
            assert not np.array_equal(gen.render(base), gen.render(variant))

    def test_generate_labels_in_range(self, shapes3d_small):
        assert shapes3d_small.labels["scale"].max() < 8
        assert shapes3d_small.labels["shape"].max() < 4

    def test_images_bounded(self, shapes3d_small):
        assert shapes3d_small.images.min() >= 0.0
        assert shapes3d_small.images.max() <= 1.0

    def test_seeded_generation_reproducible(self):
        a = data.make_shapes3d(20, seed=9)
        b = data.make_shapes3d(20, seed=9)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels["scale"], b.labels["scale"])

    def test_all_six_tasks_available(self):
        ds = data.make_shapes3d(10, tasks=())
        assert len(ds.tasks) == 6

    def test_too_small_image_rejected(self):
        with pytest.raises(ValueError):
            Shapes3DGenerator(8)

    def test_noise_disabled_gives_clean_images(self):
        clean = data.make_shapes3d(10, noise_amount=0.0, seed=3)
        noisy = data.make_shapes3d(10, noise_amount=0.15, seed=3)
        # Salt-and-pepper forces some exact 0/1 pixels not in the clean render.
        assert not np.array_equal(clean.images, noisy.images)


class TestMedic:
    def test_tasks(self, medic_small):
        assert medic_small.task_names == ("damage_severity", "disaster_type")
        assert medic_small.task_info("damage_severity").num_classes == 3
        assert medic_small.task_info("disaster_type").num_classes == 4

    def test_reproducible(self):
        a = data.make_medic(15, seed=2)
        b = data.make_medic(15, seed=2)
        np.testing.assert_array_equal(a.images, b.images)

    def test_label_noise_applied(self):
        gen_clean = MedicSceneGenerator(label_noise=0.0)
        gen_noisy = MedicSceneGenerator(label_noise=0.9)
        rng = np.random.default_rng(0)
        clean = gen_clean.generate(200, rng=np.random.default_rng(1))
        noisy = gen_noisy.generate(200, rng=np.random.default_rng(1))
        # Same underlying factor draws, different label corruption.
        disagreement = (clean.labels["disaster_type"] != noisy.labels["disaster_type"]).mean()
        assert disagreement > 0.3

    def test_invalid_label_noise(self):
        with pytest.raises(ValueError):
            MedicSceneGenerator(label_noise=1.5)

    def test_images_bounded(self, medic_small):
        assert medic_small.images.min() >= 0.0
        assert medic_small.images.max() <= 1.0


class TestFaces:
    def test_tasks(self, faces_small):
        assert faces_small.task_names == ("age", "gender", "expression")

    def test_gender_factor_changes_image(self):
        gen = FaceSketchGenerator(32, jitter=0.0)
        a = gen.render(1, 0, 1, np.random.default_rng(0))
        b = gen.render(1, 1, 1, np.random.default_rng(0))
        assert not np.array_equal(a, b)

    def test_expression_factor_changes_image(self):
        gen = FaceSketchGenerator(32, jitter=0.0)
        a = gen.render(1, 0, 0, np.random.default_rng(0))
        b = gen.render(1, 0, 2, np.random.default_rng(0))
        assert not np.array_equal(a, b)

    def test_age_factor_changes_image(self):
        gen = FaceSketchGenerator(32, jitter=0.0)
        a = gen.render(0, 0, 1, np.random.default_rng(0))
        b = gen.render(2, 0, 1, np.random.default_rng(0))
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        a = data.make_faces(15, seed=2)
        b = data.make_faces(15, seed=2)
        np.testing.assert_array_equal(a.images, b.images)


class TestNoise:
    def test_salt_pepper_fraction(self):
        images = np.full((4, 3, 50, 50), 0.5, dtype=np.float32)
        noisy = data.salt_and_pepper(images, amount=0.2, rng=np.random.default_rng(0))
        corrupted = ((noisy == 0.0) | (noisy == 1.0)).mean()
        assert corrupted == pytest.approx(0.2, abs=0.03)

    def test_salt_pepper_shared_across_channels(self):
        images = np.full((1, 3, 20, 20), 0.5, dtype=np.float32)
        noisy = data.salt_and_pepper(images, amount=0.3, rng=np.random.default_rng(0))
        mask0 = noisy[0, 0] != 0.5
        for c in (1, 2):
            np.testing.assert_array_equal(mask0, noisy[0, c] != 0.5)

    def test_salt_pepper_3d_input(self):
        image = np.full((3, 10, 10), 0.5, dtype=np.float32)
        noisy = data.salt_and_pepper(image, amount=0.5, rng=np.random.default_rng(0))
        assert noisy.shape == (3, 10, 10)

    def test_salt_pepper_leaves_original(self):
        images = np.full((2, 3, 10, 10), 0.5, dtype=np.float32)
        data.salt_and_pepper(images, amount=0.5)
        assert (images == 0.5).all()

    def test_invalid_amount(self):
        with pytest.raises(ValueError):
            data.salt_and_pepper(np.zeros((1, 3, 4, 4)), amount=1.5)

    def test_gaussian_noise_clipped(self):
        noisy = data.gaussian_noise(np.ones((2, 3, 8, 8), dtype=np.float32), std=0.5)
        assert noisy.max() <= 1.0 and noisy.min() >= 0.0

    def test_occlusion_blacks_out_region(self):
        images = np.ones((3, 3, 16, 16), dtype=np.float32)
        out = data.random_occlusion(images, rng=np.random.default_rng(0))
        assert (out == 0).any()


class TestTransforms:
    def test_normalize_denormalize_roundtrip(self):
        images = np.random.default_rng(0).random((4, 3, 8, 8)).astype(np.float32)
        mean, std = data.compute_mean_std(images)
        normalized = data.normalize(images, mean, std)
        assert abs(normalized.mean()) < 1e-5
        back = data.denormalize(normalized, mean, std)
        np.testing.assert_allclose(back, images, atol=1e-5)

    def test_flip_preserves_content(self):
        images = np.random.default_rng(0).random((8, 3, 4, 4)).astype(np.float32)
        flipped = data.random_horizontal_flip(images, p=1.0)
        np.testing.assert_allclose(flipped, images[:, :, :, ::-1])
