"""Property tests for the depthwise rewrites (group-CSR + stencil).

The pass's contract has two tiers: the block-diagonal group kernel is
*structurally* bit-identical to the per-plane CSR (zero-copy data view,
same entry order, same ``csr_matvecs`` accumulation), while the
padded-slab stencil must *measure* bit-identical on the probe input
before ``block_depthwise`` may select it — and the probe records an
honest loser table either way.  These tests pin both tiers, plus the
steady-state regression the layout-repack pass is responsible for:
optimized plans bind with zero runtime operand copies across the whole
quick-tier scenario matrix.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import data
from repro.core import MTLSplitNet
from repro.nn.engine import ExecutionPlan, PlannedExecutor, kernels, passes
from repro.nn.engine.kernels import (
    DepthwiseStencil,
    pack_depthwise_groups,
    spmm_depthwise_groups,
)
from repro.scenarios import scenario_matrix


class _DepthwiseOp:
    """Minimal stand-in for a fused depthwise conv op (square geometry)."""

    def __init__(self, channels, k, stride, rng):
        self.c_out = channels
        self.c_in_g = 1
        self.groups = channels
        self.kh = self.kw = k
        self.sh = self.sw = stride
        self.ph = self.pw = k // 2
        self.weight = rng.standard_normal((channels, 1, k, k)).astype(np.float32)


def _geometry(op, size):
    ho = (size + 2 * op.ph - op.kh) // op.sh + 1
    return size, size, ho, ho


def _csr_reference(op, h, w, ho, wo, batch, rng):
    matrix = kernels.weight_csr(op, op.c_out, h, w, ho, wo)
    x2 = rng.standard_normal((matrix.shape[1], batch)).astype(np.float32)
    y_ref = np.zeros((matrix.shape[0], batch), dtype=np.float32)
    kernels.spmm_accumulate(matrix, x2, y_ref)
    return matrix, x2, y_ref


class TestGroupBlockedBitIdentity:
    """Block-diagonal plane groups reproduce the whole-CSR sums exactly."""

    @settings(max_examples=40, deadline=None)
    @given(
        channels=st.integers(1, 12),
        size=st.integers(2, 10),
        k=st.sampled_from((3, 5)),
        stride=st.sampled_from((1, 2)),
        batch=st.integers(1, 4),
        planes=st.integers(1, 14),
        seed=st.integers(0, 2**16),
    )
    def test_bit_identity_across_group_sizes(
        self, channels, size, k, stride, batch, planes, seed
    ):
        rng = np.random.default_rng(seed)
        op = _DepthwiseOp(channels, k, stride, rng)
        h, w, ho, wo = _geometry(op, size)
        matrix, x2, y_ref = _csr_reference(op, h, w, ho, wo, batch, rng)
        groups = pack_depthwise_groups(matrix, channels, h * w, ho * wo, planes)
        y = np.zeros_like(y_ref)
        spmm_depthwise_groups(groups, x2, y)
        np.testing.assert_array_equal(y, y_ref)

    def test_groups_cover_all_planes_and_share_data(self):
        rng = np.random.default_rng(0)
        op = _DepthwiseOp(7, 3, 1, rng)
        h, w, ho, wo = _geometry(op, 6)
        matrix, _, _ = _csr_reference(op, h, w, ho, wo, 1, rng)
        groups = pack_depthwise_groups(matrix, 7, h * w, ho * wo, 3)
        assert [(g.row_lo, g.row_hi) for g in groups] == [
            (0, 3 * ho * wo), (3 * ho * wo, 6 * ho * wo), (6 * ho * wo, 7 * ho * wo)
        ]
        # data is a zero-copy view of the cached matrix: same entries, same order
        assert all(np.shares_memory(g.data, matrix.data) for g in groups)


class TestStencilEquivalence:
    """The padded-slab stencil matches CSR within float32 on random nets
    and exactly on a fixed probe-style input (the condition the pass
    requires before it may select the stencil kernel)."""

    @settings(max_examples=40, deadline=None)
    @given(
        channels=st.integers(1, 10),
        size=st.integers(2, 10),
        k=st.sampled_from((3, 5)),
        stride=st.sampled_from((1, 2)),
        batch=st.integers(1, 4),
        group=st.integers(1, 12),
        seed=st.integers(0, 2**16),
    )
    def test_matches_csr(self, channels, size, k, stride, batch, group, seed):
        rng = np.random.default_rng(seed)
        op = _DepthwiseOp(channels, k, stride, rng)
        h, w, ho, wo = _geometry(op, size)
        _, x2, y_ref = _csr_reference(op, h, w, ho, wo, batch, rng)
        stencil = DepthwiseStencil(op, h, w, ho, wo, group)
        pad_shape, mul_shape = stencil.scratch_shapes(batch)
        # scratch borders arrive holding arena garbage; run() must re-zero
        pad = np.full(pad_shape, np.nan, dtype=np.float32)
        mul = np.full(mul_shape, np.nan, dtype=np.float32)
        y = np.zeros_like(y_ref)
        stencil.run(
            x2.reshape(channels, h, w, batch),
            y.reshape(channels, ho, wo, batch),
            pad,
            mul,
        )
        np.testing.assert_allclose(y, y_ref, atol=1e-6, rtol=0)

    def test_probe_style_input_is_bit_identical(self):
        rng = np.random.default_rng(0xD3)
        op = _DepthwiseOp(8, 3, 1, rng)
        h, w, ho, wo = _geometry(op, 14)
        _, x2, y_ref = _csr_reference(op, h, w, ho, wo, 2, rng)
        stencil = DepthwiseStencil(op, h, w, ho, wo, 4)
        pad_shape, mul_shape = stencil.scratch_shapes(2)
        pad = np.zeros(pad_shape, dtype=np.float32)
        mul = np.empty(mul_shape, dtype=np.float32)
        y = np.zeros_like(y_ref)
        stencil.run(
            x2.reshape(8, h, w, 2), y.reshape(8, ho, wo, 2), pad, mul
        )
        np.testing.assert_array_equal(y, y_ref)


class TestProbeSelection:
    """Forced probes record honest loser tables and never change results."""

    @pytest.fixture(scope="class")
    def probe_setup(self):
        tasks = data.make_shapes3d(4, tasks=("scale", "shape"), seed=7).tasks
        net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(tasks), 32, seed=31)
        net.eval()
        session = net.compile_for_inference()
        x = data.make_shapes3d(8, tasks=("scale", "shape"), seed=11).images[:4]
        return session, x

    def test_forced_probe_records_and_preserves_results(
        self, probe_setup, monkeypatch
    ):
        session, x = probe_setup
        monkeypatch.setattr(passes, "DW_PROBE_MIN_BYTES", 0)
        plan = ExecutionPlan(session, x.shape)
        baseline = ExecutionPlan(
            session, x.shape, disabled_passes=("block_depthwise",)
        )
        assert plan.stats.depthwise_probes > 0
        probed = [s for s in plan.ir.steps if "dw_probe" in s.attrs]
        assert probed
        for step in probed:
            rec = step.attrs["dw_probe"]
            assert set(rec["times_ms"]) == {"csr", "group_csr", "stencil"}
            assert rec["winner"] in rec["times_ms"]
            # block-diagonal slicing is structurally exact, always eligible
            assert rec["group_csr_exact"] is True
            assert rec["planes_per_group"]["group_csr"] >= 1
        text = plan.describe()
        assert "probe: winner=" in text
        # whatever kernel won, the plan's results are bit-identical to the
        # per-plane CSR plan (the pass's eligibility gate)
        lhs, rhs = plan.run(x), baseline.run(x)
        assert set(lhs) == set(rhs)
        for name in rhs:
            np.testing.assert_array_equal(lhs[name], rhs[name])

    def test_probe_disabled_for_provenance(self, probe_setup, monkeypatch):
        session, x = probe_setup
        monkeypatch.setattr(passes, "DW_PROBE_MIN_BYTES", 0)
        plan = ExecutionPlan(session, x.shape, probe=False)
        assert plan.stats.depthwise_probes == 0
        assert not any("dw_probe" in s.attrs for s in plan.ir.steps)


class TestSteadyStateRegression:
    """Optimized plans across the quick-tier matrix: zero steady-state
    allocations *and* zero runtime operand repacks (the layout pass must
    have canonicalised every GEMM operand at plan time)."""

    def test_quick_matrix_zero_allocs_zero_bind_repacks(self):
        tasks = data.make_shapes3d(4, tasks=("scale", "shape"), seed=7).tasks
        for scenario in scenario_matrix("quick"):
            net = MTLSplitNet.from_tasks(
                scenario.backbone, list(tasks), scenario.input_size, seed=31
            )
            net.eval()
            session = net.compile_for_inference()
            executor = PlannedExecutor(session)
            rng = np.random.default_rng(3)
            x = rng.standard_normal(
                (scenario.batch_size, 3, scenario.input_size, scenario.input_size)
            ).astype(np.float32)
            executor.run(x)
            executor.run(x)
            stats = executor.stats
            assert stats.steady_state_allocs == 0, scenario.name
            assert stats.bind_repacks == 0, scenario.name
            assert stats.layout_repacks > 0, scenario.name

    def test_noncontiguous_input_matches_contiguous(self):
        tasks = data.make_shapes3d(4, tasks=("scale", "shape"), seed=7).tasks
        net = MTLSplitNet.from_tasks("vgg_tiny", list(tasks), 32, seed=31)
        net.eval()
        session = net.compile_for_inference()
        executor = PlannedExecutor(session)
        rng = np.random.default_rng(5)
        base = rng.standard_normal((4, 3, 32, 64)).astype(np.float32)
        strided = base[..., ::2]  # non-contiguous view, shape (4, 3, 32, 32)
        assert not strided.flags["C_CONTIGUOUS"]
        expected = executor.run(np.ascontiguousarray(strided))
        got = executor.run(strided)
        for name in expected:
            np.testing.assert_array_equal(got[name], expected[name])
