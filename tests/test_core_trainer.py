"""Trainer tests: loss decreases, histories, evaluation, config handling."""

import numpy as np
import pytest

from repro import data, nn
from repro.core import MTLSplitNet, MultiTaskTrainer, TrainConfig, evaluate
from repro.data.base import MultiTaskDataset, TaskInfo


def separable_dataset(n=160, seed=0):
    """A trivially separable two-task dataset: brightness + channel."""
    rng = np.random.default_rng(seed)
    bright = rng.integers(0, 2, n)
    channel = rng.integers(0, 3, n)
    images = np.zeros((n, 3, 32, 32), dtype=np.float32)
    for i in range(n):
        images[i, channel[i]] = 0.25 + 0.5 * bright[i]
    images += rng.normal(0, 0.02, images.shape).astype(np.float32)
    tasks = (TaskInfo("bright", 2), TaskInfo("channel", 3))
    return MultiTaskDataset(
        np.clip(images, 0, 1), {"bright": bright, "channel": channel}, tasks, "separable"
    )


@pytest.fixture(scope="module")
def ds():
    return separable_dataset()


class TestTrainConfig:
    def test_optimizer_factory(self):
        params = [nn.Parameter(np.zeros(2, dtype=np.float32))]
        assert isinstance(TrainConfig(optimizer="adamw").build_optimizer(params), nn.AdamW)
        assert isinstance(TrainConfig(optimizer="adam").build_optimizer(params), nn.Adam)
        assert isinstance(TrainConfig(optimizer="sgd").build_optimizer(params), nn.SGD)

    def test_unknown_optimizer(self):
        params = [nn.Parameter(np.zeros(2, dtype=np.float32))]
        with pytest.raises(ValueError):
            TrainConfig(optimizer="lion").build_optimizer(params)


class TestFit:
    def test_loss_decreases_on_separable_data(self, ds):
        net = MTLSplitNet.from_tasks("efficientnet_tiny", list(ds.tasks), 32, seed=0)
        cfg = TrainConfig(epochs=3, batch_size=32, lr=5e-3, seed=0)
        history = MultiTaskTrainer(cfg).fit(net, ds)
        curve = history.loss_curve()
        assert curve[-1] < curve[0]

    def test_accuracy_beats_chance(self, ds):
        net = MTLSplitNet.from_tasks("efficientnet_tiny", list(ds.tasks), 32, seed=0)
        cfg = TrainConfig(epochs=4, batch_size=32, lr=5e-3, seed=0)
        MultiTaskTrainer(cfg).fit(net, ds)
        acc = evaluate(net, ds)
        assert acc["bright"] > 0.8
        assert acc["channel"] > 0.8

    def test_history_structure(self, ds):
        net = MTLSplitNet.from_tasks("efficientnet_tiny", list(ds.tasks), 32, seed=0)
        cfg = TrainConfig(epochs=2, batch_size=64, seed=0)
        history = MultiTaskTrainer(cfg).fit(net, ds, val_set=ds.subset(np.arange(32)))
        assert len(history.epochs) == 2
        final = history.final
        assert set(final.task_losses) == {"bright", "channel"}
        assert set(final.val_accuracy) == {"bright", "channel"}
        assert final.seconds > 0

    def test_empty_history_final_raises(self):
        from repro.core.trainer import History

        with pytest.raises(ValueError):
            History().final

    def test_missing_task_labels_raises(self, ds):
        net = MTLSplitNet.from_tasks(
            "efficientnet_tiny", [TaskInfo("bright", 2), TaskInfo("other", 5)], 32, seed=0
        )
        with pytest.raises(ValueError):
            MultiTaskTrainer(TrainConfig(epochs=1)).fit(net, ds)

    def test_single_task_training_is_stl(self, ds):
        stl = ds.select_tasks(["bright"])
        net = MTLSplitNet.from_tasks("efficientnet_tiny", list(stl.tasks), 32, seed=0)
        history = MultiTaskTrainer(TrainConfig(epochs=1, seed=0)).fit(net, stl)
        assert set(history.final.task_losses) == {"bright"}

    def test_deterministic_given_seed(self, ds):
        def run():
            net = MTLSplitNet.from_tasks("efficientnet_tiny", list(ds.tasks), 32, seed=5)
            MultiTaskTrainer(TrainConfig(epochs=1, seed=5)).fit(net, ds)
            return evaluate(net, ds)

        assert run() == run()


class TestEvaluate:
    def test_accuracies_in_unit_interval(self, ds, tiny_trained_net):
        acc = evaluate(tiny_trained_net, data.make_shapes3d(60, tasks=("scale", "shape")))
        for value in acc.values():
            assert 0.0 <= value <= 1.0

    def test_empty_dataset_raises(self, ds):
        net = MTLSplitNet.from_tasks("efficientnet_tiny", list(ds.tasks), 32, seed=0)
        with pytest.raises(ValueError):
            evaluate(net, ds.subset(np.array([], dtype=int)))

    def test_eval_mode_restored_behaviour(self, ds):
        # evaluate() must not leave stochastic layers active.
        net = MTLSplitNet.from_tasks("efficientnet_tiny", list(ds.tasks), 32, seed=0)
        evaluate(net, ds.subset(np.arange(16)))
        assert not net.training
