"""Numerical gradient verification for every differentiable primitive.

This is the substrate's core correctness argument: each op's analytic
backward is compared against central finite differences in float64.
"""

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.autograd import gradcheck
from repro.nn.tensor import Tensor, concatenate, stack


def t64(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor((rng.standard_normal(shape) * scale).astype(np.float64), requires_grad=True)


def check(fn, *inputs, atol=1e-4):
    ok, msg = gradcheck(fn, list(inputs), atol=atol)
    assert ok, msg


class TestArithmeticGradcheck:
    def test_add(self):
        check(lambda a, b: a + b, t64((3, 4), 1), t64((3, 4), 2))

    def test_add_broadcast(self):
        check(lambda a, b: a + b, t64((3, 4), 1), t64((4,), 2))

    def test_sub(self):
        check(lambda a, b: a - b, t64((3, 4), 1), t64((3, 4), 2))

    def test_mul(self):
        check(lambda a, b: a * b, t64((3, 4), 1), t64((3, 4), 2))

    def test_mul_broadcast(self):
        check(lambda a, b: a * b, t64((2, 3, 4), 1), t64((1, 3, 1), 2))

    def test_div(self):
        b = t64((3, 4), 2)
        b.data += 3.0 * np.sign(b.data)  # keep away from zero
        check(lambda a, b: a / b, t64((3, 4), 1), b)

    def test_pow(self):
        x = t64((3,), 1)
        x.data = np.abs(x.data) + 0.5
        check(lambda a: a**3, x)

    def test_matmul(self):
        check(lambda a, b: a @ b, t64((3, 4), 1), t64((4, 5), 2))

    def test_matmul_batched(self):
        check(lambda a, b: a @ b, t64((2, 3, 4), 1), t64((2, 4, 5), 2))


class TestMathGradcheck:
    def test_exp(self):
        check(lambda a: a.exp(), t64((3, 3), 1, scale=0.5))

    def test_log(self):
        x = t64((3, 3), 1)
        x.data = np.abs(x.data) + 0.5
        check(lambda a: a.log(), x)

    def test_sqrt(self):
        x = t64((3, 3), 1)
        x.data = np.abs(x.data) + 0.5
        check(lambda a: a.sqrt(), x)

    def test_tanh(self):
        check(lambda a: a.tanh(), t64((3, 3), 1))

    def test_sigmoid(self):
        check(lambda a: F.sigmoid(a), t64((3, 3), 1))

    def test_silu(self):
        check(lambda a: F.silu(a), t64((3, 3), 1))

    def test_gelu(self):
        check(lambda a: F.gelu(a), t64((3, 3), 1))

    def test_leaky_relu(self):
        x = t64((3, 3), 1)
        x.data += 0.05 * np.sign(x.data)  # avoid the kink
        check(lambda a: F.leaky_relu(a, 0.1), x)

    def test_relu_away_from_kink(self):
        x = t64((4, 4), 2)
        x.data += 0.05 * np.sign(x.data)
        check(lambda a: F.relu(a), x)

    def test_hard_swish_away_from_kinks(self):
        x = t64((4, 4), 3)
        # keep clear of the kinks at -3 and +3
        x.data = np.clip(x.data, -2.5, 2.5)
        check(lambda a: F.hard_swish(a), x)

    def test_softmax(self):
        check(lambda a: F.softmax(a), t64((4, 5), 1))

    def test_log_softmax(self):
        check(lambda a: F.log_softmax(a), t64((4, 5), 1))


class TestReductionGradcheck:
    def test_sum_all(self):
        check(lambda a: a.sum(), t64((3, 4), 1))

    def test_sum_axis(self):
        check(lambda a: a.sum(axis=1), t64((3, 4), 1))

    def test_mean_axes(self):
        check(lambda a: a.mean(axis=(0, 2)), t64((2, 3, 4), 1))

    def test_var(self):
        check(lambda a: a.var(axis=0), t64((5, 3), 1))

    def test_getitem(self):
        check(lambda a: a[1:3, ::2], t64((4, 6), 1))

    def test_concatenate(self):
        check(lambda a, b: concatenate([a, b], axis=1), t64((2, 3), 1), t64((2, 2), 2))

    def test_stack(self):
        check(lambda a, b: stack([a, b]), t64((3,), 1), t64((3,), 2))

    def test_pad2d(self):
        check(lambda a: a.pad2d((1, 2)), t64((1, 2, 3, 3), 1))


class TestConvGradcheck:
    def test_conv2d_basic(self):
        check(
            lambda x, w, b: F.conv2d(x, w, b),
            t64((2, 3, 5, 5), 1),
            t64((4, 3, 3, 3), 2),
            t64((4,), 3),
        )

    def test_conv2d_stride_padding(self):
        check(
            lambda x, w: F.conv2d(x, w, stride=2, padding=1),
            t64((1, 2, 6, 6), 1),
            t64((3, 2, 3, 3), 2),
        )

    def test_conv2d_rect_stride(self):
        check(
            lambda x, w: F.conv2d(x, w, stride=(2, 1), padding=(0, 1)),
            t64((1, 2, 6, 5), 1),
            t64((2, 2, 3, 3), 2),
        )

    def test_conv2d_depthwise(self):
        check(
            lambda x, w: F.conv2d(x, w, padding=1, groups=4),
            t64((2, 4, 5, 5), 1),
            t64((4, 1, 3, 3), 2),
        )

    def test_conv2d_grouped(self):
        check(
            lambda x, w: F.conv2d(x, w, stride=2, groups=2),
            t64((1, 4, 6, 6), 1),
            t64((6, 2, 3, 3), 2),
        )

    def test_conv2d_1x1(self):
        check(
            lambda x, w, b: F.conv2d(x, w, b),
            t64((2, 3, 4, 4), 1),
            t64((5, 3, 1, 1), 2),
            t64((5,), 3),
        )

    def test_conv2d_uneven_coverage(self):
        # input size not exactly covered by the stride sweep (remainder > 0)
        check(
            lambda x, w: F.conv2d(x, w, stride=2),
            t64((1, 1, 7, 7), 1),
            t64((1, 1, 2, 2), 2),
        )


class TestPoolGradcheck:
    def test_max_pool(self):
        check(lambda x: F.max_pool2d(x, 2), t64((2, 3, 6, 6), 1))

    def test_max_pool_overlapping(self):
        check(lambda x: F.max_pool2d(x, 3, 2), t64((1, 2, 7, 7), 1))

    def test_avg_pool(self):
        check(lambda x: F.avg_pool2d(x, 2), t64((2, 3, 6, 6), 1))

    def test_avg_pool_overlapping(self):
        check(lambda x: F.avg_pool2d(x, 3, 2), t64((1, 2, 7, 7), 1))

    def test_global_avg_pool(self):
        check(lambda x: F.global_avg_pool2d(x), t64((2, 3, 4, 4), 1))

    def test_adaptive_avg_pool(self):
        check(lambda x: F.adaptive_avg_pool2d(x, 2), t64((1, 2, 6, 6), 1))


class TestLossGradcheck:
    def test_cross_entropy(self):
        target = np.array([0, 2, 1, 3])
        check(lambda x: F.cross_entropy(x, target), t64((4, 4), 1))

    def test_cross_entropy_sum_reduction(self):
        target = np.array([0, 1])
        check(lambda x: F.cross_entropy(x, target, reduction="sum"), t64((2, 3), 1))

    def test_cross_entropy_label_smoothing(self):
        target = np.array([0, 2, 1])
        check(lambda x: F.cross_entropy(x, target, label_smoothing=0.1), t64((3, 4), 1))

    def test_mse(self):
        target = np.zeros((3, 2))
        check(lambda x: F.mse_loss(x, target), t64((3, 2), 1))

    def test_l1_away_from_zero(self):
        x = t64((3, 2), 1)
        x.data += np.sign(x.data)
        check(lambda a: F.l1_loss(a, np.zeros((3, 2))), x)

    def test_bce_with_logits(self):
        target = np.array([[0.0, 1.0], [1.0, 0.0]])
        check(lambda x: F.binary_cross_entropy_with_logits(x, target), t64((2, 2), 1))

    def test_linear(self):
        check(
            lambda x, w, b: F.linear(x, w, b),
            t64((4, 3), 1),
            t64((5, 3), 2),
            t64((5,), 3),
        )


class TestBatchNormGradcheck:
    def test_batch_norm_training(self):
        x = t64((4, 3, 2, 2), 1)
        w = t64((3,), 2)
        b = t64((3,), 3)
        running_mean = np.zeros(3)
        running_var = np.ones(3)

        def fn(x, w, b):
            return F.batch_norm(
                x, w, b, running_mean.copy(), running_var.copy(), training=True
            )

        check(fn, x, w, b, atol=5e-4)

    def test_batch_norm_eval_affine_grads(self):
        x = t64((4, 3), 1)
        w = t64((3,), 2)
        b = t64((3,), 3)
        rm = np.random.default_rng(4).standard_normal(3)
        rv = np.abs(np.random.default_rng(5).standard_normal(3)) + 0.5

        def fn(x, w, b):
            return F.batch_norm(x, w, b, rm, rv, training=False)

        check(fn, x, w, b)
