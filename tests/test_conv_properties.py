"""Mathematical properties of the convolution substrate (hypothesis).

Convolution is the workhorse of every backbone; beyond pointwise
gradcheck, these tests pin down its *algebraic* structure: linearity,
translation covariance, kernel-delta identity, and stride/pooling
consistency.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def random_array(shape, seed):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestConvAlgebra:
    @given(st.integers(0, 1000), st.integers(2, 5), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_linearity_in_input(self, seed, channels, out_channels):
        a = random_array((2, channels, 6, 6), seed)
        b = random_array((2, channels, 6, 6), seed + 1)
        w = Tensor(random_array((out_channels, channels, 3, 3), seed + 2))
        left = F.conv2d(Tensor(a + b), w, padding=1).data
        right = F.conv2d(Tensor(a), w, padding=1).data + F.conv2d(Tensor(b), w, padding=1).data
        np.testing.assert_allclose(left, right, atol=1e-4)

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_linearity_in_kernel(self, seed):
        x = Tensor(random_array((1, 2, 5, 5), seed))
        w1 = random_array((3, 2, 3, 3), seed + 1)
        w2 = random_array((3, 2, 3, 3), seed + 2)
        left = F.conv2d(x, Tensor(w1 + w2)).data
        right = F.conv2d(x, Tensor(w1)).data + F.conv2d(x, Tensor(w2)).data
        np.testing.assert_allclose(left, right, atol=1e-4)

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_delta_kernel_is_identity(self, seed):
        x = random_array((2, 3, 6, 6), seed)
        delta = np.zeros((3, 3, 1, 1), dtype=np.float32)
        for c in range(3):
            delta[c, c, 0, 0] = 1.0
        out = F.conv2d(Tensor(x), Tensor(delta)).data
        np.testing.assert_allclose(out, x, atol=1e-6)

    @given(st.integers(0, 1000), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_translation_covariance(self, seed, shift):
        # Stride-1 valid conv commutes with input translation (interior).
        x = random_array((1, 1, 12, 12), seed)
        w = Tensor(random_array((1, 1, 3, 3), seed + 1))
        out = F.conv2d(Tensor(x), w).data
        shifted = np.roll(x, shift, axis=3)
        out_shifted = F.conv2d(Tensor(shifted), w).data
        np.testing.assert_allclose(
            out[:, :, :, : -shift or None][..., : out.shape[-1] - shift],
            out_shifted[:, :, :, shift:],
            atol=1e-4,
        )

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_stride_two_equals_subsampled_stride_one(self, seed):
        x = Tensor(random_array((1, 2, 8, 8), seed))
        w = Tensor(random_array((3, 2, 3, 3), seed + 1))
        dense = F.conv2d(x, w, stride=1).data
        strided = F.conv2d(x, w, stride=2).data
        np.testing.assert_allclose(strided, dense[:, :, ::2, ::2], atol=1e-5)

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_ones_kernel_times_area_equals_avg_pool(self, seed):
        x = random_array((1, 1, 8, 8), seed)
        ones = np.ones((1, 1, 2, 2), dtype=np.float32)
        conv = F.conv2d(Tensor(x), Tensor(ones), stride=2).data
        pooled = F.avg_pool2d(Tensor(x), 2).data * 4.0
        np.testing.assert_allclose(conv, pooled, atol=1e-5)

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_max_pool_dominates_avg_pool(self, seed):
        x = Tensor(random_array((2, 3, 6, 6), seed))
        mx = F.max_pool2d(x, 2).data
        avg = F.avg_pool2d(x, 2).data
        assert (mx >= avg - 1e-6).all()


class TestEvaluateEdgeCases:
    def test_r_squared_constant_targets_is_zero(self):
        from repro.core import MTLSplitNet, evaluate
        from repro.data.base import MultiTaskDataset, TaskInfo

        images = random_array((8, 3, 32, 32), 0)
        ds = MultiTaskDataset(
            np.clip(images, 0, 1),
            {"flat": np.full(8, 0.5, dtype=np.float32)},
            (TaskInfo("flat", 1, kind="regression"),),
        )
        net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(ds.tasks), 32, seed=0)
        metrics = evaluate(net, ds)
        assert metrics["flat"] == 0.0
