"""Legacy setup shim: the offline environment lacks the ``wheel`` package,
so PEP-517 editable installs fail; ``python setup.py develop`` works with
setuptools alone."""
from setuptools import setup

setup()
