"""Reusable building blocks for the backbone zoo.

Implements the composite blocks declared in :mod:`repro.models.specs`:
conv–BN–activation stacks, squeeze-and-excite, MobileNetV3 inverted
residuals and EfficientNet MBConv blocks, with the residual-skip rules of
the reference implementations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn import fuse
from ..nn.tensor import Tensor
from .specs import ConvBNAct, InvertedResidual, MBConv, make_divisible

__all__ = [
    "ConvBNActBlock",
    "SqueezeExciteBlock",
    "InvertedResidualBlock",
    "MBConvBlock",
]


class ConvBNActBlock(nn.Module):
    """Convolution followed by optional batch-norm and activation."""

    def __init__(self, in_channels: int, spec: ConvBNAct, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.spec = spec
        self.conv = nn.Conv2d(
            in_channels,
            spec.out_channels,
            spec.kernel,
            stride=spec.stride,
            padding=spec.resolved_padding(),
            groups=spec.groups,
            bias=not spec.use_bn,
            rng=rng,
        )
        self.bn = nn.BatchNorm2d(spec.out_channels) if spec.use_bn else nn.Identity()
        self.act = nn.resolve_activation(spec.activation) if spec.activation else nn.Identity()
        self.out_channels = spec.out_channels

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))


class SqueezeExciteBlock(nn.Module):
    """Squeeze-and-excite channel gating.

    ``gate="hard_sigmoid"`` with ReLU bottleneck for MobileNetV3;
    ``gate="sigmoid"`` with SiLU bottleneck for EfficientNet.
    """

    def __init__(
        self,
        channels: int,
        reduced: int,
        gate: str = "hard_sigmoid",
        bottleneck_act: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.reduce = nn.Conv2d(channels, reduced, 1, rng=rng)
        self.expand = nn.Conv2d(reduced, channels, 1, rng=rng)
        self.bottleneck_act = nn.resolve_activation(bottleneck_act)
        self.gate_name = gate

    def forward(self, x: Tensor) -> Tensor:
        scale = F.global_avg_pool2d(x)
        scale = self.bottleneck_act(self.reduce(scale))
        scale = self.expand(scale)
        if self.gate_name == "hard_sigmoid":
            scale = F.hard_sigmoid(scale)
        else:
            scale = F.sigmoid(scale)
        return x * scale


class InvertedResidualBlock(nn.Module):
    """MobileNetV3 inverted residual: expand → depthwise → SE → project."""

    def __init__(self, in_channels: int, spec: InvertedResidual, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.spec = spec
        self.use_skip = spec.stride == 1 and in_channels == spec.out_channels
        exp = spec.expanded_channels
        if exp != in_channels:
            self.expand = ConvBNActBlock(
                in_channels, ConvBNAct(exp, 1, activation=spec.activation), rng=rng
            )
        else:
            self.expand = nn.Identity()
        self.depthwise = ConvBNActBlock(
            exp,
            ConvBNAct(exp, spec.kernel, spec.stride, groups=exp, activation=spec.activation),
            rng=rng,
        )
        if spec.use_se:
            self.se = SqueezeExciteBlock(
                exp, make_divisible(exp // 4), gate="hard_sigmoid", bottleneck_act="relu", rng=rng
            )
        else:
            self.se = nn.Identity()
        self.project = ConvBNActBlock(
            exp, ConvBNAct(spec.out_channels, 1, activation=None), rng=rng
        )
        self.out_channels = spec.out_channels

    def forward(self, x: Tensor) -> Tensor:
        out = self.project(self.se(self.depthwise(self.expand(x))))
        if self.use_skip:
            out = out + x
        return out


fuse.register_chain(ConvBNActBlock, lambda m: [m.conv, m.bn, m.act])


@fuse.register_lowerer(SqueezeExciteBlock)
def _lower_squeeze_excite(block: SqueezeExciteBlock):
    act_ops = fuse.lower_module(block.bottleneck_act)
    bottleneck = act_ops[0].name if act_ops else "relu"
    if bottleneck not in fuse._ACT_KERNELS or block.gate_name not in fuse._ACT_KERNELS:
        return [fuse.FallbackOp(block)]  # exotic activation: stay correct
    return [
        fuse.SqueezeExciteOp(
            block.reduce.weight.data,
            block.reduce.bias.data,
            block.expand.weight.data,
            block.expand.bias.data,
            bottleneck=bottleneck,
            gate=block.gate_name,
        )
    ]


@fuse.register_lowerer(InvertedResidualBlock)
def _lower_residual_block(block):
    """Shared lowering for the expand→depthwise→SE→project blocks."""
    inner = []
    for stage in (block.expand, block.depthwise, block.se, block.project):
        inner.extend(fuse.lower_module(stage))
    inner = fuse.optimise_ops(inner)
    return [fuse.ResidualOp(inner)] if block.use_skip else inner


class MBConvBlock(nn.Module):
    """EfficientNet MBConv: expand → depthwise → SE → project, SiLU."""

    def __init__(self, in_channels: int, spec: MBConv, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.spec = spec
        self.use_skip = spec.stride == 1 and in_channels == spec.out_channels
        exp = in_channels * spec.expand_ratio
        if spec.expand_ratio != 1:
            self.expand = ConvBNActBlock(in_channels, ConvBNAct(exp, 1, activation="silu"), rng=rng)
        else:
            self.expand = nn.Identity()
        self.depthwise = ConvBNActBlock(
            exp, ConvBNAct(exp, spec.kernel, spec.stride, groups=exp, activation="silu"), rng=rng
        )
        if spec.se_ratio > 0:
            reduced = max(1, int(in_channels * spec.se_ratio))
            self.se = SqueezeExciteBlock(
                exp, reduced, gate="sigmoid", bottleneck_act="silu", rng=rng
            )
        else:
            self.se = nn.Identity()
        self.project = ConvBNActBlock(
            exp, ConvBNAct(spec.out_channels, 1, activation=None), rng=rng
        )
        self.out_channels = spec.out_channels

    def forward(self, x: Tensor) -> Tensor:
        out = self.project(self.se(self.depthwise(self.expand(x))))
        if self.use_skip:
            out = out + x
        return out


fuse.register_lowerer(MBConvBlock)(_lower_residual_block)
