"""Declarative architecture specifications.

Every backbone in this repository is defined once, as data, and consumed
twice:

* :mod:`repro.models.builder` turns a spec into a runnable
  :class:`~repro.nn.module.Module`;
* :mod:`repro.deployment.profiler` expands the same spec *analytically*
  (:func:`iter_primitives`) to obtain parameter counts and per-layer
  activation sizes without allocating any weights — which is how the
  full-scale VGG16 / MobileNetV3 / EfficientNet numbers of the paper's
  Table 4 and LoC/RoC analysis are reproduced exactly on a laptop.

The test suite asserts that both consumers agree (instantiated parameter
count equals the analytic count) for every registered spec.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

__all__ = [
    "ConvBNAct",
    "MaxPool",
    "InvertedResidual",
    "MBConv",
    "GlobalAvgPool",
    "BackboneSpec",
    "PrimitiveRecord",
    "iter_primitives",
    "feature_shape",
    "count_parameters",
    "count_flops",
    "make_divisible",
]


def make_divisible(value: float, divisor: int = 8) -> int:
    """Round ``value`` to the nearest multiple of ``divisor`` (MobileNet rule).

    Never rounds down by more than 10 %, matching the reference
    implementation of MobileNetV3/EfficientNet channel scaling.
    """
    rounded = max(divisor, int(value + divisor / 2) // divisor * divisor)
    if rounded < 0.9 * value:
        rounded += divisor
    return rounded


# ---------------------------------------------------------------------------
# Layer spec dataclasses
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ConvBNAct:
    """Convolution (+ optional batch-norm) (+ activation)."""

    out_channels: int
    kernel: int
    stride: int = 1
    groups: int = 1
    activation: Optional[str] = "relu"
    use_bn: bool = True
    padding: Optional[int] = None  # defaults to kernel // 2 ("same"-ish)

    def resolved_padding(self) -> int:
        return self.kernel // 2 if self.padding is None else self.padding


@dataclass(frozen=True)
class MaxPool:
    """Max pooling (VGG downsampling)."""

    kernel: int = 2
    stride: Optional[int] = None

    def resolved_stride(self) -> int:
        return self.kernel if self.stride is None else self.stride


@dataclass(frozen=True)
class InvertedResidual:
    """MobileNetV3 block: expand → depthwise → (SE) → project.

    ``activation`` is ``"relu"`` for early stages and ``"hswish"`` later,
    as in Howard et al. (2019).  SE reduction uses ``expanded // 4``
    rounded to a multiple of 8, with ReLU + hard-sigmoid gating.
    """

    expanded_channels: int
    out_channels: int
    kernel: int
    stride: int
    use_se: bool
    activation: str


@dataclass(frozen=True)
class MBConv:
    """EfficientNet block: expand → depthwise → SE → project (SiLU).

    SE reduction is ``in_channels * se_ratio`` (pre-expansion channels),
    with SiLU + sigmoid gating, as in Tan & Le (2019).
    """

    expand_ratio: int
    out_channels: int
    kernel: int
    stride: int
    se_ratio: float = 0.25


@dataclass(frozen=True)
class GlobalAvgPool:
    """Global average pooling to 1x1 (optional compact split point)."""


LayerSpec = Union[ConvBNAct, MaxPool, InvertedResidual, MBConv, GlobalAvgPool]


@dataclass(frozen=True)
class BackboneSpec:
    """A complete backbone description.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"mobilenet_v3_small"``).
    family:
        Architecture family (``"vgg"``, ``"mobilenet_v3"``,
        ``"efficientnet"``); used for reporting.
    input_channels:
        Number of image channels (3 for RGB).
    input_size:
        Nominal input resolution the spec was designed for; profiling may
        override it.
    layers:
        Ordered layer specs.  The output of the final layer, flattened, is
        the shared representation ``Z_b`` of the paper.
    description:
        Human-readable provenance note.
    """

    name: str
    family: str
    input_channels: int
    input_size: int
    layers: Tuple[LayerSpec, ...]
    description: str = ""

    def with_layers(self, layers: Tuple[LayerSpec, ...], suffix: str) -> "BackboneSpec":
        """Derive a spec with modified layers (used by split-point tooling)."""
        return dataclasses.replace(self, name=f"{self.name}-{suffix}", layers=layers)


# ---------------------------------------------------------------------------
# Analytic expansion
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PrimitiveRecord:
    """One primitive layer as seen by the analytic profiler.

    ``out_shape`` is ``(channels, height, width)`` for a single sample.
    ``params`` counts weights and biases; batch-norm contributes its
    learnable affine pair (running stats are buffers, excluded to match
    ``torchsummary`` conventions).  ``flops`` is the per-sample forward
    cost (multiply-accumulates counted as 2 FLOPs).
    """

    name: str
    kind: str
    params: int
    out_shape: Tuple[int, int, int]
    flops: int = 0

    @property
    def activations(self) -> int:
        c, h, w = self.out_shape
        return c * h * w


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"layer reduces spatial size below 1 (size={size}, kernel={kernel})"
        )
    return out


def _expand_conv_bn_act(
    spec: ConvBNAct, name: str, in_ch: int, hw: Tuple[int, int]
) -> Tuple[List[PrimitiveRecord], int, Tuple[int, int]]:
    pad = spec.resolved_padding()
    h = _conv_out(hw[0], spec.kernel, spec.stride, pad)
    w = _conv_out(hw[1], spec.kernel, spec.stride, pad)
    out_shape = (spec.out_channels, h, w)
    weight_params = (in_ch // spec.groups) * spec.kernel * spec.kernel * spec.out_channels
    conv_params = weight_params if spec.use_bn else weight_params + spec.out_channels
    out_elements = spec.out_channels * h * w
    conv_flops = 2 * weight_params * h * w
    records = [PrimitiveRecord(f"{name}.conv", "conv2d", conv_params, out_shape, conv_flops)]
    if spec.use_bn:
        records.append(
            PrimitiveRecord(
                f"{name}.bn", "batchnorm2d", 2 * spec.out_channels, out_shape, 4 * out_elements
            )
        )
    if spec.activation:
        records.append(
            PrimitiveRecord(
                f"{name}.{spec.activation}", "activation", 0, out_shape, out_elements
            )
        )
    return records, spec.out_channels, (h, w)


def _se_records(
    name: str,
    channels: int,
    reduced: int,
    hw: Tuple[int, int],
    gate: str,
) -> List[PrimitiveRecord]:
    """Squeeze-and-excite: pool → 1x1 reduce → act → 1x1 expand → gate."""
    gated = channels * hw[0] * hw[1]
    return [
        PrimitiveRecord(f"{name}.se.pool", "avgpool", 0, (channels, 1, 1), gated),
        PrimitiveRecord(
            f"{name}.se.reduce", "conv2d", channels * reduced + reduced, (reduced, 1, 1),
            2 * channels * reduced,
        ),
        PrimitiveRecord(
            f"{name}.se.expand", "conv2d", reduced * channels + channels, (channels, 1, 1),
            2 * reduced * channels,
        ),
        PrimitiveRecord(f"{name}.se.{gate}", "activation", 0, (channels, hw[0], hw[1]), gated),
    ]


def _expand_inverted_residual(
    spec: InvertedResidual, name: str, in_ch: int, hw: Tuple[int, int]
) -> Tuple[List[PrimitiveRecord], int, Tuple[int, int]]:
    records: List[PrimitiveRecord] = []
    exp = spec.expanded_channels
    ch, cur_hw = in_ch, hw
    if exp != in_ch:
        sub, ch, cur_hw = _expand_conv_bn_act(
            ConvBNAct(exp, 1, activation=spec.activation), f"{name}.expand", ch, cur_hw
        )
        records += sub
    sub, ch, cur_hw = _expand_conv_bn_act(
        ConvBNAct(exp, spec.kernel, spec.stride, groups=exp, activation=spec.activation),
        f"{name}.depthwise",
        ch,
        cur_hw,
    )
    records += sub
    if spec.use_se:
        reduced = make_divisible(exp // 4)
        records += _se_records(name, exp, reduced, cur_hw, "hard_sigmoid")
    sub, ch, cur_hw = _expand_conv_bn_act(
        ConvBNAct(spec.out_channels, 1, activation=None), f"{name}.project", ch, cur_hw
    )
    records += sub
    return records, ch, cur_hw


def _expand_mbconv(
    spec: MBConv, name: str, in_ch: int, hw: Tuple[int, int]
) -> Tuple[List[PrimitiveRecord], int, Tuple[int, int]]:
    records: List[PrimitiveRecord] = []
    exp = in_ch * spec.expand_ratio
    ch, cur_hw = in_ch, hw
    if spec.expand_ratio != 1:
        sub, ch, cur_hw = _expand_conv_bn_act(
            ConvBNAct(exp, 1, activation="silu"), f"{name}.expand", ch, cur_hw
        )
        records += sub
    sub, ch, cur_hw = _expand_conv_bn_act(
        ConvBNAct(exp, spec.kernel, spec.stride, groups=exp, activation="silu"),
        f"{name}.depthwise",
        ch,
        cur_hw,
    )
    records += sub
    if spec.se_ratio > 0:
        reduced = max(1, int(in_ch * spec.se_ratio))
        records += _se_records(name, exp, reduced, cur_hw, "sigmoid")
    sub, ch, cur_hw = _expand_conv_bn_act(
        ConvBNAct(spec.out_channels, 1, activation=None), f"{name}.project", ch, cur_hw
    )
    records += sub
    return records, ch, cur_hw


def iter_primitives(
    spec: BackboneSpec, input_size: Optional[int] = None
) -> Iterator[PrimitiveRecord]:
    """Yield primitive layer records for ``spec`` at a given input size.

    This is the analytic mirror of :func:`repro.models.builder.build_backbone`;
    the two are cross-checked by the test suite.
    """
    size = input_size if input_size is not None else spec.input_size
    hw = (size, size)
    ch = spec.input_channels
    for index, layer in enumerate(spec.layers):
        name = f"layer{index}"
        if isinstance(layer, ConvBNAct):
            records, ch, hw = _expand_conv_bn_act(layer, name, ch, hw)
        elif isinstance(layer, MaxPool):
            stride = layer.resolved_stride()
            hw = (
                _conv_out(hw[0], layer.kernel, stride, 0),
                _conv_out(hw[1], layer.kernel, stride, 0),
            )
            pool_flops = ch * hw[0] * hw[1] * layer.kernel * layer.kernel
            records = [
                PrimitiveRecord(f"{name}.maxpool", "maxpool", 0, (ch, hw[0], hw[1]), pool_flops)
            ]
        elif isinstance(layer, InvertedResidual):
            records, ch, hw = _expand_inverted_residual(layer, name, ch, hw)
        elif isinstance(layer, MBConv):
            records, ch, hw = _expand_mbconv(layer, name, ch, hw)
        elif isinstance(layer, GlobalAvgPool):
            gap_flops = ch * hw[0] * hw[1]
            hw = (1, 1)
            records = [PrimitiveRecord(f"{name}.gap", "avgpool", 0, (ch, 1, 1), gap_flops)]
        else:
            raise TypeError(f"unknown layer spec {layer!r}")
        yield from records


def feature_shape(spec: BackboneSpec, input_size: Optional[int] = None) -> Tuple[int, int, int]:
    """Shape ``(C, H, W)`` of the shared representation ``Z_b``."""
    record = None
    for record in iter_primitives(spec, input_size):
        pass
    if record is None:
        raise ValueError(f"spec {spec.name!r} has no layers")
    return record.out_shape


def count_parameters(spec: BackboneSpec) -> int:
    """Total learnable parameters of the backbone (analytic)."""
    return sum(r.params for r in iter_primitives(spec))


def count_flops(spec: BackboneSpec, input_size: Optional[int] = None) -> int:
    """Per-sample forward FLOPs of the backbone (analytic)."""
    return sum(r.flops for r in iter_primitives(spec, input_size))
