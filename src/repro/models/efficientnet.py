"""EfficientNet backbone specs (Tan & Le, 2019).

``efficientnet_b0`` reproduces the B0 feature extractor (the analytic
parameter count lands on the ~4 M the paper reports in Table 4);
``efficientnet_tiny`` is the compound-scaled-down variant used for CPU
training at 32x32.  Width scaling uses the reference ``make_divisible``
rule so the derived variants stay faithful to the family.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .builder import Backbone, build_backbone
from .specs import BackboneSpec, ConvBNAct, MBConv, make_divisible

__all__ = [
    "efficientnet_spec",
    "efficientnet_b0_spec",
    "efficientnet_b1_spec",
    "efficientnet_tiny_spec",
    "efficientnet_b0",
    "efficientnet_tiny",
]

# Rows: (expand_ratio, out_channels, kernel, stride, repeats)
_B0_ROWS: Tuple[Tuple[int, int, int, int, int], ...] = (
    (1, 16, 3, 1, 1),
    (6, 24, 3, 2, 2),
    (6, 40, 5, 2, 2),
    (6, 80, 3, 2, 3),
    (6, 112, 5, 1, 3),
    (6, 192, 5, 2, 4),
    (6, 320, 3, 1, 1),
)


def efficientnet_spec(
    name: str,
    width_mult: float = 1.0,
    depth_mult: float = 1.0,
    input_size: int = 224,
    description: str = "",
) -> BackboneSpec:
    """Compound-scaled EfficientNet spec from the B0 base rows."""

    def scale_width(channels: int) -> int:
        return make_divisible(channels * width_mult)

    def scale_depth(repeats: int) -> int:
        return int(math.ceil(repeats * depth_mult))

    layers: list = [ConvBNAct(scale_width(32), 3, stride=2, activation="silu")]
    for expand, out, kernel, stride, repeats in _B0_ROWS:
        out = scale_width(out)
        for i in range(scale_depth(repeats)):
            layers.append(MBConv(expand, out, kernel, stride if i == 0 else 1))
    layers.append(ConvBNAct(scale_width(1280), 1, activation="silu"))
    return BackboneSpec(
        name=name,
        family="efficientnet",
        input_channels=3,
        input_size=input_size,
        layers=tuple(layers),
        description=description,
    )


def efficientnet_b0_spec() -> BackboneSpec:
    """Full-scale EfficientNet-B0 feature extractor (~4 M params)."""
    return efficientnet_spec(
        "efficientnet_b0",
        description="EfficientNet-B0 feature extractor, Tan & Le 2019",
    )


def efficientnet_b1_spec() -> BackboneSpec:
    """EfficientNet-B1 (width 1.0, depth 1.1, 240x240)."""
    return efficientnet_spec(
        "efficientnet_b1",
        width_mult=1.0,
        depth_mult=1.1,
        input_size=240,
        description="EfficientNet-B1 feature extractor",
    )


# Tiny rows: (expand_ratio, out_channels, kernel, stride)
_TINY_ROWS: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 8, 3, 1),
    (4, 16, 3, 2),
    (4, 24, 5, 2),
    (4, 24, 5, 1),
    (4, 32, 3, 1),
)


def efficientnet_tiny_spec(input_size: int = 32) -> BackboneSpec:
    """Compound-scaled-down EfficientNet for CPU training (Z_b = 96*4*4)."""
    layers: list = [ConvBNAct(12, 3, stride=2, activation="silu")]
    layers += [MBConv(*row) for row in _TINY_ROWS]
    layers.append(ConvBNAct(96, 1, activation="silu"))
    return BackboneSpec(
        name="efficientnet_tiny",
        family="efficientnet",
        input_channels=3,
        input_size=input_size,
        layers=tuple(layers),
        description="scaled EfficientNet stand-in for CPU training",
    )


def efficientnet_b0(rng: Optional[np.random.Generator] = None) -> Backbone:
    """Instantiate the full-scale EfficientNet-B0 backbone."""
    return build_backbone(efficientnet_b0_spec(), rng=rng)


def efficientnet_tiny(
    input_size: int = 32, rng: Optional[np.random.Generator] = None
) -> Backbone:
    """Instantiate the training-scale EfficientNet backbone."""
    return build_backbone(efficientnet_tiny_spec(input_size), rng=rng)
