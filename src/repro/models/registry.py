"""Name-based registry for backbone specs and constructors.

The benchmark harness and the examples select backbones by name
(``"vgg16"``, ``"mobilenet_v3_small"``, ``"efficientnet_tiny"``, ...),
mirroring how the paper's code selects among its three backbones.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from .builder import Backbone, build_backbone
from .efficientnet import (
    efficientnet_b0_spec,
    efficientnet_b1_spec,
    efficientnet_tiny_spec,
)
from .mobilenetv3 import (
    mobilenet_v3_large_spec,
    mobilenet_v3_small_spec,
    mobilenet_v3_tiny_spec,
)
from .specs import BackboneSpec
from .vgg import vgg11_spec, vgg16_bn_spec, vgg16_spec, vgg_tiny_spec

__all__ = [
    "register_spec",
    "get_spec",
    "create_backbone",
    "available_backbones",
    "TRAINING_BACKBONES",
    "PAPER_BACKBONES",
]

_SPEC_FACTORIES: Dict[str, Callable[[], BackboneSpec]] = {}

#: Training-scale stand-ins used by the accuracy experiments (Tables 1-3).
TRAINING_BACKBONES = ("vgg_tiny", "mobilenet_v3_tiny", "efficientnet_tiny")

#: Full-scale specs used by the deployment experiments (Table 4, Sec. 4.2).
PAPER_BACKBONES = ("vgg16", "mobilenet_v3_small", "efficientnet_b0")


def register_spec(name: str, factory: Callable[[], BackboneSpec]) -> None:
    """Register a spec factory under ``name`` (overwrites duplicates)."""
    _SPEC_FACTORIES[name] = factory


def get_spec(name: str) -> BackboneSpec:
    """Return a fresh spec for ``name``.

    Raises ``KeyError`` with the list of known names when unknown.
    """
    try:
        factory = _SPEC_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown backbone {name!r}; available: {available_backbones()}"
        ) from None
    return factory()


def create_backbone(name: str, rng: Optional[np.random.Generator] = None) -> Backbone:
    """Instantiate a backbone by registry name."""
    return build_backbone(get_spec(name), rng=rng)


def available_backbones() -> List[str]:
    """Sorted list of registered backbone names."""
    return sorted(_SPEC_FACTORIES)


for _name, _factory in {
    "vgg11": vgg11_spec,
    "vgg16": vgg16_spec,
    "vgg16_bn": vgg16_bn_spec,
    "vgg_tiny": vgg_tiny_spec,
    "mobilenet_v3_small": mobilenet_v3_small_spec,
    "mobilenet_v3_large": mobilenet_v3_large_spec,
    "mobilenet_v3_tiny": mobilenet_v3_tiny_spec,
    "efficientnet_b0": efficientnet_b0_spec,
    "efficientnet_b1": efficientnet_b1_spec,
    "efficientnet_tiny": efficientnet_tiny_spec,
}.items():
    register_spec(_name, _factory)
