"""MobileNetV3 backbone specs (Howard et al., 2019).

The paper uses MobileNetV3 as one of its two "cutting-edge DNNs for
embedded systems".  ``mobilenet_v3_small`` reproduces the reference
feature extractor exactly (the analytic parameter count lands on the
~0.93 M the paper rounds to 0.9 M in Table 4); ``mobilenet_v3_large`` is
provided for completeness; ``mobilenet_v3_tiny`` is the width/depth-scaled
variant used for CPU training at 32x32.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .builder import Backbone, build_backbone
from .specs import BackboneSpec, ConvBNAct, InvertedResidual

__all__ = [
    "mobilenet_v3_small_spec",
    "mobilenet_v3_large_spec",
    "mobilenet_v3_tiny_spec",
    "mobilenet_v3_small",
    "mobilenet_v3_tiny",
]

# Rows: (expanded_channels, out_channels, kernel, stride, use_se, activation)
_SMALL_ROWS = (
    (16, 16, 3, 2, True, "relu"),
    (72, 24, 3, 2, False, "relu"),
    (88, 24, 3, 1, False, "relu"),
    (96, 40, 5, 2, True, "hswish"),
    (240, 40, 5, 1, True, "hswish"),
    (240, 40, 5, 1, True, "hswish"),
    (120, 48, 5, 1, True, "hswish"),
    (144, 48, 5, 1, True, "hswish"),
    (288, 96, 5, 2, True, "hswish"),
    (576, 96, 5, 1, True, "hswish"),
    (576, 96, 5, 1, True, "hswish"),
)

_LARGE_ROWS = (
    (16, 16, 3, 1, False, "relu"),
    (64, 24, 3, 2, False, "relu"),
    (72, 24, 3, 1, False, "relu"),
    (72, 40, 5, 2, True, "relu"),
    (120, 40, 5, 1, True, "relu"),
    (120, 40, 5, 1, True, "relu"),
    (240, 80, 3, 2, False, "hswish"),
    (200, 80, 3, 1, False, "hswish"),
    (184, 80, 3, 1, False, "hswish"),
    (184, 80, 3, 1, False, "hswish"),
    (480, 112, 3, 1, True, "hswish"),
    (672, 112, 3, 1, True, "hswish"),
    (672, 160, 5, 2, True, "hswish"),
    (960, 160, 5, 1, True, "hswish"),
    (960, 160, 5, 1, True, "hswish"),
)

_TINY_ROWS = (
    (16, 8, 3, 1, True, "relu"),
    (32, 16, 3, 2, False, "relu"),
    (64, 16, 3, 1, False, "relu"),
    (64, 24, 5, 2, True, "hswish"),
    (96, 24, 5, 1, True, "hswish"),
)


def _rows_to_layers(stem: ConvBNAct, rows, last: ConvBNAct):
    layers = [stem]
    layers += [InvertedResidual(*row) for row in rows]
    layers.append(last)
    return tuple(layers)


def mobilenet_v3_small_spec() -> BackboneSpec:
    """Full-scale MobileNetV3-Small feature extractor (~0.93 M params)."""
    return BackboneSpec(
        name="mobilenet_v3_small",
        family="mobilenet_v3",
        input_channels=3,
        input_size=224,
        layers=_rows_to_layers(
            ConvBNAct(16, 3, stride=2, activation="hswish"),
            _SMALL_ROWS,
            ConvBNAct(576, 1, activation="hswish"),
        ),
        description="MobileNetV3-Small feature extractor, Howard et al. 2019",
    )


def mobilenet_v3_large_spec() -> BackboneSpec:
    """Full-scale MobileNetV3-Large feature extractor (~3 M params)."""
    return BackboneSpec(
        name="mobilenet_v3_large",
        family="mobilenet_v3",
        input_channels=3,
        input_size=224,
        layers=_rows_to_layers(
            ConvBNAct(16, 3, stride=2, activation="hswish"),
            _LARGE_ROWS,
            ConvBNAct(960, 1, activation="hswish"),
        ),
        description="MobileNetV3-Large feature extractor, Howard et al. 2019",
    )


def mobilenet_v3_tiny_spec(input_size: int = 32) -> BackboneSpec:
    """Depth/width-scaled MobileNetV3 for CPU training (Z_b = 64*4*4)."""
    return BackboneSpec(
        name="mobilenet_v3_tiny",
        family="mobilenet_v3",
        input_channels=3,
        input_size=input_size,
        layers=_rows_to_layers(
            ConvBNAct(8, 3, stride=2, activation="hswish"),
            _TINY_ROWS,
            ConvBNAct(64, 1, activation="hswish"),
        ),
        description="scaled MobileNetV3 stand-in for CPU training",
    )


def mobilenet_v3_small(rng: Optional[np.random.Generator] = None) -> Backbone:
    """Instantiate the full-scale MobileNetV3-Small backbone."""
    return build_backbone(mobilenet_v3_small_spec(), rng=rng)


def mobilenet_v3_tiny(
    input_size: int = 32, rng: Optional[np.random.Generator] = None
) -> Backbone:
    """Instantiate the training-scale MobileNetV3 backbone."""
    return build_backbone(mobilenet_v3_tiny_spec(input_size), rng=rng)
