"""VGG backbone specs (Simonyan & Zisserman, 2014).

The paper uses VGG16 as the "well-established" baseline backbone.  The
full-scale spec reproduces configuration D (13 conv layers + 5 max-pools;
the three classifier FC layers belong to the task-solving head side in
the MTL-Split decomposition, so the backbone ends at the last conv stage,
whose flattened output is ``Z_b``).

``vgg16_bn`` adds batch normalisation, which is what makes the
from-scratch training runs of the reproduction stable; ``vgg16`` (plain)
matches the original parameter count.  ``vgg_tiny`` is the width-scaled
variant used by the CPU training experiments (32x32 inputs).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .builder import Backbone, build_backbone
from .specs import BackboneSpec, ConvBNAct, MaxPool

__all__ = [
    "vgg_spec_from_config",
    "vgg16_spec",
    "vgg16_bn_spec",
    "vgg11_spec",
    "vgg_tiny_spec",
    "vgg16",
    "vgg_tiny",
]

# Configuration strings in torchvision style: ints are conv out-channels,
# "M" is a 2x2 max-pool.
VGG11_CONFIG: Tuple[Union[int, str], ...] = (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M")
VGG16_CONFIG: Tuple[Union[int, str], ...] = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
)
VGG_TINY_CONFIG: Tuple[Union[int, str], ...] = (12, "M", 24, 24, "M", 48, 48, "M", 96, "M")


def vgg_spec_from_config(
    name: str,
    config: Sequence[Union[int, str]],
    input_size: int = 224,
    batch_norm: bool = True,
    description: str = "",
) -> BackboneSpec:
    """Build a VGG-family spec from a torchvision-style config string."""
    layers: list = []
    for entry in config:
        if entry == "M":
            layers.append(MaxPool(2))
        else:
            layers.append(
                ConvBNAct(int(entry), 3, activation="relu", use_bn=batch_norm)
            )
    return BackboneSpec(
        name=name,
        family="vgg",
        input_channels=3,
        input_size=input_size,
        layers=tuple(layers),
        description=description,
    )


def vgg16_spec() -> BackboneSpec:
    """Full-scale VGG16 feature extractor (no batch-norm, as the original)."""
    return vgg_spec_from_config(
        "vgg16", VGG16_CONFIG, batch_norm=False,
        description="VGG16 configuration D feature extractor, 224x224",
    )


def vgg16_bn_spec() -> BackboneSpec:
    """Full-scale VGG16 with batch normalisation."""
    return vgg_spec_from_config(
        "vgg16_bn", VGG16_CONFIG, batch_norm=True,
        description="VGG16-BN feature extractor, 224x224",
    )


def vgg11_spec() -> BackboneSpec:
    """Full-scale VGG11 feature extractor."""
    return vgg_spec_from_config(
        "vgg11", VGG11_CONFIG, batch_norm=False,
        description="VGG11 configuration A feature extractor, 224x224",
    )


def vgg_tiny_spec(input_size: int = 32) -> BackboneSpec:
    """Width/depth-scaled VGG for CPU training at 32x32 (Z_b = 96*2*2)."""
    return vgg_spec_from_config(
        "vgg_tiny", VGG_TINY_CONFIG, input_size=input_size, batch_norm=True,
        description="width-scaled VGG16 stand-in for CPU training",
    )


def vgg16(rng: Optional[np.random.Generator] = None) -> Backbone:
    """Instantiate the full-scale VGG16 backbone (large: 14.7M params)."""
    return build_backbone(vgg16_spec(), rng=rng)


def vgg_tiny(input_size: int = 32, rng: Optional[np.random.Generator] = None) -> Backbone:
    """Instantiate the training-scale VGG backbone."""
    return build_backbone(vgg_tiny_spec(input_size), rng=rng)
