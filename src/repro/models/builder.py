"""Construct runnable backbones from declarative specs.

:class:`Backbone` is the concrete ``M_b`` of the paper (Fig. 1): it maps
an input image batch to the shared representation ``Z_b``, flattened and
ready to cross the network boundary.  The paper's splitting point is the
backbone/head interface, so :meth:`Backbone.forward` returns the flattened
``Z_b`` while :meth:`Backbone.forward_features` exposes the unflattened
feature map for split-point analysis.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import fuse
from ..nn.tensor import Tensor
from .blocks import ConvBNActBlock, InvertedResidualBlock, MBConvBlock
from .specs import (
    BackboneSpec,
    ConvBNAct,
    GlobalAvgPool,
    InvertedResidual,
    MaxPool,
    MBConv,
    count_parameters,
    feature_shape,
)

__all__ = ["Backbone", "build_backbone"]


class _GlobalAvgPool(nn.Module):
    def forward(self, x: Tensor) -> Tensor:
        return nn.functional.global_avg_pool2d(x)


fuse.register_lowerer(_GlobalAvgPool)(lambda m: [fuse.GlobalAvgPoolOp()])


class Backbone(nn.Module):
    """The shared backbone ``M_b(x; psi)`` deployed on the edge device.

    Parameters
    ----------
    spec:
        Declarative architecture description.
    rng:
        Generator for weight initialisation (fix for reproducibility).
    """

    def __init__(self, spec: BackboneSpec, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.spec = spec
        rng = rng if rng is not None else nn.init.default_rng()
        stages = []
        channels = spec.input_channels
        for layer in spec.layers:
            if isinstance(layer, ConvBNAct):
                block = ConvBNActBlock(channels, layer, rng=rng)
                channels = block.out_channels
            elif isinstance(layer, MaxPool):
                block = nn.MaxPool2d(layer.kernel, layer.resolved_stride())
            elif isinstance(layer, InvertedResidual):
                block = InvertedResidualBlock(channels, layer, rng=rng)
                channels = block.out_channels
            elif isinstance(layer, MBConv):
                block = MBConvBlock(channels, layer, rng=rng)
                channels = block.out_channels
            elif isinstance(layer, GlobalAvgPool):
                block = _GlobalAvgPool()
            else:
                raise TypeError(f"unknown layer spec {layer!r}")
            stages.append(block)
        self.stages = nn.Sequential(*stages)
        self.out_channels = channels

    # ------------------------------------------------------------------
    def forward_features(self, x: Tensor) -> Tensor:
        """Return the unflattened feature map (N, C, H, W)."""
        return self.stages(x)

    def forward(self, x: Tensor) -> Tensor:
        """Return the flattened shared representation ``Z_b`` (N, D).

        The paper (Sec. 3.1): "The output Z_b is typically a tensor,
        which, in our approach, is flattened before being sent through the
        network."
        """
        return self.forward_features(x).flatten(1)

    # ------------------------------------------------------------------
    def feature_shape(self, input_size: Optional[int] = None) -> Tuple[int, int, int]:
        """Analytic ``(C, H, W)`` of ``Z_b`` for a square input."""
        return feature_shape(self.spec, input_size)

    def feature_dim(self, input_size: Optional[int] = None) -> int:
        """Flattened length of ``Z_b`` for a square input."""
        c, h, w = self.feature_shape(input_size)
        return c * h * w

    def analytic_parameter_count(self) -> int:
        """Parameter count derived from the spec (no weights touched)."""
        return count_parameters(self.spec)

    def __repr__(self) -> str:
        return (
            f"Backbone(spec={self.spec.name!r}, params={self.num_parameters()}, "
            f"out_channels={self.out_channels})"
        )


def build_backbone(spec: BackboneSpec, rng: Optional[np.random.Generator] = None) -> Backbone:
    """Instantiate a :class:`Backbone` from a spec."""
    return Backbone(spec, rng=rng)


@fuse.register_lowerer(Backbone)
def _lower_backbone(backbone: Backbone):
    return fuse.lower_module(backbone.stages) + [fuse.FlattenOp(1)]
