"""``repro.models`` — the backbone zoo and task-solving heads.

Provides the three backbone families the paper evaluates (VGG16,
MobileNetV3, EfficientNet) as declarative specs with two consumers: a
module builder for training and an analytic expansion for deployment
profiling.  Task-solving heads are the paper's two-layer ReLU MLPs.
"""

from .blocks import (
    ConvBNActBlock,
    InvertedResidualBlock,
    MBConvBlock,
    SqueezeExciteBlock,
)
from .builder import Backbone, build_backbone
from .efficientnet import (
    efficientnet_b0,
    efficientnet_b0_spec,
    efficientnet_b1_spec,
    efficientnet_spec,
    efficientnet_tiny,
    efficientnet_tiny_spec,
)
from .heads import DeepMLPHead, LinearHead, MLPHead
from .mobilenetv3 import (
    mobilenet_v3_large_spec,
    mobilenet_v3_small,
    mobilenet_v3_small_spec,
    mobilenet_v3_tiny,
    mobilenet_v3_tiny_spec,
)
from .rnn import RowRNNBackbone, row_rnn_tiny
from .registry import (
    PAPER_BACKBONES,
    TRAINING_BACKBONES,
    available_backbones,
    create_backbone,
    get_spec,
    register_spec,
)
from .specs import (
    BackboneSpec,
    ConvBNAct,
    GlobalAvgPool,
    InvertedResidual,
    MaxPool,
    MBConv,
    PrimitiveRecord,
    count_parameters,
    feature_shape,
    iter_primitives,
    make_divisible,
)
from .vgg import vgg16, vgg16_bn_spec, vgg16_spec, vgg11_spec, vgg_tiny, vgg_tiny_spec

__all__ = [
    "Backbone",
    "build_backbone",
    "RowRNNBackbone",
    "row_rnn_tiny",
    "MLPHead",
    "DeepMLPHead",
    "LinearHead",
    "ConvBNActBlock",
    "SqueezeExciteBlock",
    "InvertedResidualBlock",
    "MBConvBlock",
    "BackboneSpec",
    "ConvBNAct",
    "MaxPool",
    "InvertedResidual",
    "MBConv",
    "GlobalAvgPool",
    "PrimitiveRecord",
    "iter_primitives",
    "feature_shape",
    "count_parameters",
    "make_divisible",
    "register_spec",
    "get_spec",
    "create_backbone",
    "available_backbones",
    "TRAINING_BACKBONES",
    "PAPER_BACKBONES",
    "vgg16",
    "vgg16_spec",
    "vgg16_bn_spec",
    "vgg11_spec",
    "vgg_tiny",
    "vgg_tiny_spec",
    "mobilenet_v3_small",
    "mobilenet_v3_small_spec",
    "mobilenet_v3_large_spec",
    "mobilenet_v3_tiny",
    "mobilenet_v3_tiny_spec",
    "efficientnet_b0",
    "efficientnet_b0_spec",
    "efficientnet_b1_spec",
    "efficientnet_spec",
    "efficientnet_tiny",
    "efficientnet_tiny_spec",
]
