"""Recurrent image backbone: MTL-Split beyond ConvNets.

Scans the image as a sequence of rows (each row's pixels are the step
features), pooling the per-row hidden states into the shared
representation ``Z_b``.  Exists to demonstrate the paper's claim that
the MTL-Split methodology is architecture-independent (Sec. 3.2) — the
trainer, fine-tuner, split pipeline and profilers all operate on it
unchanged because it exposes the same :class:`~repro.models.builder.Backbone`
surface (``forward`` → flat ``Z_b``, ``feature_dim``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn.rnn import GRUCell, RNN, RNNCell
from ..nn.tensor import Tensor

__all__ = ["RowRNNBackbone", "row_rnn_tiny"]


class RowRNNBackbone(nn.Module):
    """GRU/RNN over image rows producing a flat ``Z_b``.

    Parameters
    ----------
    input_size:
        Square image resolution (rows become sequence steps).
    input_channels:
        Image channels; each step sees ``channels * width`` features.
    hidden_size:
        Recurrent state width — also the dimension of ``Z_b``.
    cell:
        ``"gru"`` (default) or ``"rnn"``.
    """

    def __init__(
        self,
        input_size: int = 32,
        input_channels: int = 3,
        hidden_size: int = 96,
        cell: str = "gru",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.input_size = input_size
        self.input_channels = input_channels
        self.hidden_size = hidden_size
        step_features = input_channels * input_size
        if cell == "gru":
            self.rnn = RNN(GRUCell(step_features, hidden_size, rng=rng),
                           return_sequence=False)
        elif cell == "rnn":
            self.rnn = RNN(RNNCell(step_features, hidden_size, rng=rng),
                           return_sequence=False)
        else:
            raise ValueError(f"unknown cell {cell!r}; choose 'gru' or 'rnn'")

    def forward_features(self, x: Tensor) -> Tensor:
        """Final hidden state reshaped as a (N, H, 1, 1) feature map."""
        final = self._scan(x)
        return final.reshape(x.shape[0], self.hidden_size, 1, 1)

    def forward(self, x: Tensor) -> Tensor:
        """Flat ``Z_b`` of shape ``(N, hidden_size)``."""
        return self._scan(x)

    def _scan(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if (c, h, w) != (self.input_channels, self.input_size, self.input_size):
            raise ValueError(
                f"RowRNNBackbone({self.input_channels}x{self.input_size}) "
                f"got input {x.shape}"
            )
        # (N, C, H, W) -> (N, H, C*W): rows as steps.
        sequence = x.transpose(0, 2, 1, 3).reshape(n, h, c * w)
        final, _ = self.rnn(sequence)
        return final

    def feature_shape(self, input_size: Optional[int] = None) -> Tuple[int, int, int]:
        """``Z_b`` shape; fixed by the hidden size, not the resolution."""
        return (self.hidden_size, 1, 1)

    def feature_dim(self, input_size: Optional[int] = None) -> int:
        """Flattened ``Z_b`` length."""
        return self.hidden_size

    def __repr__(self) -> str:
        return (
            f"RowRNNBackbone(input={self.input_channels}x{self.input_size}, "
            f"hidden={self.hidden_size}, params={self.num_parameters()})"
        )


def row_rnn_tiny(
    input_size: int = 32, rng: Optional[np.random.Generator] = None
) -> RowRNNBackbone:
    """Small GRU row-scanner for the 32x32 stand-in workloads."""
    return RowRNNBackbone(input_size=input_size, hidden_size=96, cell="gru", rng=rng)
