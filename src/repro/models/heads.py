"""Task-solving heads ``H_j(Z_b; theta_j)``.

The paper (Sec. 4, "Models details"): *"The task-solving heads are custom
MultiLayer Perceptron (MLP) composed of two linear layers activated by the
Rectified Linear Activation Unit (ReLU) function."*  :class:`MLPHead`
implements exactly that; deeper or regularised variants are provided for
the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..nn import fuse
from ..nn.tensor import Tensor

__all__ = ["MLPHead", "DeepMLPHead", "LinearHead"]


class MLPHead(nn.Module):
    """Two-layer ReLU MLP mapping ``Z_b`` to task logits (paper default)."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden_features: Optional[int] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        hidden = hidden_features if hidden_features is not None else max(num_classes * 4, 32)
        self.in_features = in_features
        self.num_classes = num_classes
        self.fc1 = nn.Linear(in_features, hidden, rng=rng)
        self.act = nn.ReLU()
        self.drop = nn.Dropout(dropout, rng=rng) if dropout > 0 else nn.Identity()
        self.fc2 = nn.Linear(hidden, num_classes, rng=rng)

    def forward(self, z: Tensor) -> Tensor:
        return self.fc2(self.drop(self.act(self.fc1(z))))

    def __repr__(self) -> str:
        return (
            f"MLPHead(in_features={self.in_features}, "
            f"num_classes={self.num_classes}, params={self.num_parameters()})"
        )


class DeepMLPHead(nn.Module):
    """Configurable-depth MLP head (ablation variant)."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden_sizes: Sequence[int] = (64, 64),
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.num_classes = num_classes
        layers: list = []
        width = in_features
        for hidden in hidden_sizes:
            layers.append(nn.Linear(width, hidden, rng=rng))
            layers.append(nn.ReLU())
            if dropout > 0:
                layers.append(nn.Dropout(dropout, rng=rng))
            width = hidden
        layers.append(nn.Linear(width, num_classes, rng=rng))
        self.net = nn.Sequential(*layers)

    def forward(self, z: Tensor) -> Tensor:
        return self.net(z)


class LinearHead(nn.Module):
    """Single linear probe head (lower bound for head capacity ablations)."""

    def __init__(self, in_features: int, num_classes: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_classes = num_classes
        self.fc = nn.Linear(in_features, num_classes, rng=rng)

    def forward(self, z: Tensor) -> Tensor:
        return self.fc(z)


fuse.register_chain(MLPHead, lambda m: [m.fc1, m.act, m.drop, m.fc2])
fuse.register_chain(DeepMLPHead, lambda m: [m.net])
fuse.register_chain(LinearHead, lambda m: [m.fc])
