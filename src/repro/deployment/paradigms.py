"""Distributed deep-learning paradigm comparison (paper Sec. 2.1 & 4.2).

Models the three deployment paradigms the paper analyses:

* **LoC (Local-only Computing)** — every task's full network runs on the
  edge device.  For N tasks under STL this means N networks; the memory
  requirement is the feasibility bottleneck (the paper's Jetson Nano
  argument).
* **RoC (Remote-only Computing)** — the raw input crosses the network;
  full accuracy, but the transfer dominates latency.
* **SC (Split Computing / MTL-Split)** — the shared backbone runs on the
  edge, ``Z_b`` crosses the network, the task heads run remotely.

Each paradigm produces a :class:`ParadigmReport` with a memory breakdown
(edge side), a per-inference latency breakdown (edge compute, transfer,
server compute) and a feasibility verdict against the edge device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..models.specs import BackboneSpec
from .channel import NetworkChannel
from .device import Device
from .profiler import BYTES_PER_PARAM, ModelProfile, profile_backbone
from .wire import WireFormat, payload_bytes

__all__ = [
    "ParadigmReport",
    "head_memory_bytes",
    "loc_report",
    "roc_report",
    "sc_report",
    "compare_paradigms",
]

_MB = 1024 * 1024


@dataclass(frozen=True)
class ParadigmReport:
    """Outcome of deploying one workload under one paradigm."""

    paradigm: str
    edge_memory_bytes: int
    transfer_bytes_per_inference: int
    edge_compute_seconds: float
    transfer_seconds: float
    server_compute_seconds: float
    feasible_on_edge: bool
    notes: Tuple[str, ...] = ()

    @property
    def edge_memory_megabytes(self) -> float:
        return self.edge_memory_bytes / _MB

    @property
    def latency_seconds(self) -> float:
        """End-to-end per-inference latency (compute + transfer)."""
        return self.edge_compute_seconds + self.transfer_seconds + self.server_compute_seconds

    def summary(self) -> str:
        status = "feasible" if self.feasible_on_edge else "INFEASIBLE"
        parts = [
            f"{self.paradigm}: edge memory {self.edge_memory_megabytes:.1f} MB ({status})",
            f"  latency/inference: {self.latency_seconds * 1e3:.2f} ms "
            f"(edge {self.edge_compute_seconds * 1e3:.2f} + "
            f"net {self.transfer_seconds * 1e3:.2f} + "
            f"server {self.server_compute_seconds * 1e3:.2f})",
            f"  transfer payload:  {self.transfer_bytes_per_inference / _MB:.3f} MB",
        ]
        parts.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(parts)


def head_memory_bytes(zb_elements: int, hidden: int, num_classes: int) -> int:
    """Estimated memory of one MLP task head (params, float32).

    Two linear layers: ``zb_dim x hidden`` and ``hidden x classes`` plus
    biases — the paper's head design.
    """
    params = zb_elements * hidden + hidden + hidden * num_classes + num_classes
    return params * BYTES_PER_PARAM


def _head_flops(zb_elements: int, hidden: int, num_classes: int) -> int:
    return 2 * (zb_elements * hidden + hidden * num_classes)


@dataclass
class _Workload:
    """Internal: resolved workload parameters shared by the reports."""

    profile: ModelProfile
    num_tasks: int
    classes_per_task: Tuple[int, ...]
    head_hidden: int
    input_bytes: int


def _resolve(
    spec: BackboneSpec,
    num_tasks: int,
    classes_per_task: Optional[Tuple[int, ...]],
    head_hidden: int,
    input_size: Optional[int],
    batch_size: int,
    raw_input_hw: Optional[Tuple[int, int]],
) -> _Workload:
    if num_tasks < 1:
        raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
    profile = profile_backbone(spec, input_size=input_size, batch_size=batch_size)
    if classes_per_task is None:
        classes_per_task = tuple([4] * num_tasks)
    if len(classes_per_task) != num_tasks:
        raise ValueError(
            f"classes_per_task has {len(classes_per_task)} entries for {num_tasks} tasks"
        )
    if raw_input_hw is None:
        raw_input_hw = (profile.input_size, profile.input_size)
    input_bytes = raw_input_hw[0] * raw_input_hw[1] * 3 * BYTES_PER_PARAM
    return _Workload(profile, num_tasks, classes_per_task, head_hidden, input_bytes)


def loc_report(
    spec: BackboneSpec,
    num_tasks: int,
    edge_device: Device,
    classes_per_task: Optional[Tuple[int, ...]] = None,
    head_hidden: int = 64,
    input_size: Optional[int] = None,
    batch_size: int = 1,
    shared_backbone: bool = False,
) -> ParadigmReport:
    """Local-only computing.

    ``shared_backbone=False`` is the STL baseline the paper argues
    against: N full networks on the edge.  ``shared_backbone=True`` is
    the MTL variant run fully locally (one backbone + N heads on the
    edge), used by the memory-saving comparison.
    """
    w = _resolve(spec, num_tasks, classes_per_task, head_hidden, input_size, batch_size, None)
    heads_bytes = sum(
        head_memory_bytes(w.profile.zb_elements, head_hidden, k) for k in w.classes_per_task
    )
    if shared_backbone:
        edge_memory = w.profile.estimated_total_bytes + heads_bytes
        backbone_count = 1
        label = "LoC (shared backbone, MTL)"
    else:
        edge_memory = num_tasks * w.profile.estimated_total_bytes + heads_bytes
        backbone_count = num_tasks
        label = "LoC (N single-task networks)"
    compute = edge_device.compute_seconds(
        backbone_count * w.profile.flops
        + sum(_head_flops(w.profile.zb_elements, head_hidden, k) for k in w.classes_per_task)
    )
    return ParadigmReport(
        paradigm=label,
        edge_memory_bytes=edge_memory,
        transfer_bytes_per_inference=0,
        edge_compute_seconds=compute,
        transfer_seconds=0.0,
        server_compute_seconds=0.0,
        feasible_on_edge=edge_device.fits(edge_memory),
        notes=(f"{backbone_count}x {spec.name} backbone(s) on {edge_device.name}",),
    )


def roc_report(
    spec: BackboneSpec,
    num_tasks: int,
    edge_device: Device,
    server_device: Device,
    channel: NetworkChannel,
    classes_per_task: Optional[Tuple[int, ...]] = None,
    head_hidden: int = 64,
    input_size: Optional[int] = None,
    batch_size: int = 1,
    raw_input_hw: Optional[Tuple[int, int]] = None,
) -> ParadigmReport:
    """Remote-only computing: the raw input crosses the network.

    ``raw_input_hw`` lets the transfer use the sensor's native resolution
    (the paper's FACES images are 2835x3543) even when the model consumes
    a resized input.
    """
    w = _resolve(
        spec, num_tasks, classes_per_task, head_hidden, input_size, batch_size, raw_input_hw
    )
    transfer_s = channel.transfer_seconds(w.input_bytes)
    server_flops = w.profile.flops + sum(
        _head_flops(w.profile.zb_elements, head_hidden, k) for k in w.classes_per_task
    )
    return ParadigmReport(
        paradigm="RoC (remote-only)",
        edge_memory_bytes=0,
        transfer_bytes_per_inference=w.input_bytes,
        edge_compute_seconds=0.0,
        transfer_seconds=transfer_s,
        server_compute_seconds=server_device.compute_seconds(server_flops),
        feasible_on_edge=True,
        notes=(f"raw input {w.input_bytes / _MB:.1f} MB over {channel.name}",),
    )


def sc_report(
    spec: BackboneSpec,
    num_tasks: int,
    edge_device: Device,
    server_device: Device,
    channel: NetworkChannel,
    classes_per_task: Optional[Tuple[int, ...]] = None,
    head_hidden: int = 64,
    input_size: Optional[int] = None,
    batch_size: int = 1,
    wire_format: WireFormat = WireFormat(),
) -> ParadigmReport:
    """Split computing with the MTL-Split cut: backbone edge, heads remote."""
    w = _resolve(spec, num_tasks, classes_per_task, head_hidden, input_size, batch_size, None)
    zb_bytes = payload_bytes(w.profile.zb_elements * batch_size, wire_format)
    edge_memory = w.profile.estimated_total_bytes
    heads_flops = sum(
        _head_flops(w.profile.zb_elements, head_hidden, k) for k in w.classes_per_task
    )
    return ParadigmReport(
        paradigm="SC (MTL-Split)",
        edge_memory_bytes=edge_memory,
        transfer_bytes_per_inference=zb_bytes,
        edge_compute_seconds=edge_device.compute_seconds(w.profile.flops),
        transfer_seconds=channel.transfer_seconds(zb_bytes),
        server_compute_seconds=server_device.compute_seconds(heads_flops),
        feasible_on_edge=edge_device.fits(edge_memory),
        notes=(
            f"Z_b payload {zb_bytes / _MB:.3f} MB ({wire_format.dtype}) over {channel.name}",
        ),
    )


def compare_paradigms(
    spec: BackboneSpec,
    num_tasks: int,
    edge_device: Device,
    server_device: Device,
    channel: NetworkChannel,
    classes_per_task: Optional[Tuple[int, ...]] = None,
    head_hidden: int = 64,
    input_size: Optional[int] = None,
    batch_size: int = 1,
    raw_input_hw: Optional[Tuple[int, int]] = None,
    wire_format: WireFormat = WireFormat(),
) -> Dict[str, ParadigmReport]:
    """Run all three paradigm analyses on one workload.

    Returns a mapping ``{"loc": ..., "loc_shared": ..., "roc": ...,
    "sc": ...}`` — LoC appears twice to expose the paper's memory-saving
    comparison (N networks vs one shared backbone).
    """
    common = dict(
        classes_per_task=classes_per_task,
        head_hidden=head_hidden,
        input_size=input_size,
        batch_size=batch_size,
    )
    return {
        "loc": loc_report(spec, num_tasks, edge_device, **common),
        "loc_shared": loc_report(spec, num_tasks, edge_device, shared_backbone=True, **common),
        "roc": roc_report(
            spec, num_tasks, edge_device, server_device, channel,
            raw_input_hw=raw_input_hw, **common,
        ),
        "sc": sc_report(
            spec, num_tasks, edge_device, server_device, channel,
            wire_format=wire_format, **common,
        ),
    }
