"""Energy accounting for split deployments.

Kang et al. [15] — the SC work the paper builds on — select split points
to optimise *both latency and energy*.  This module adds the energy side:
a per-device compute-energy model (joules per FLOP) and a radio model
(joules per transmitted byte plus idle draw), composed into the same
per-cut sweep as :mod:`repro.deployment.optimizer`.

Edge energy is the quantity that matters (the battery lives there); the
server's draw is reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..models.specs import BackboneSpec
from .channel import NetworkChannel
from .device import Device
from .optimizer import SplitLatency, latency_profile
from .wire import WireFormat

__all__ = [
    "EnergyModel",
    "JETSON_NANO_ENERGY",
    "SplitEnergy",
    "energy_profile",
    "lowest_edge_energy_split",
]


@dataclass(frozen=True)
class EnergyModel:
    """Energy characteristics of the edge platform.

    Attributes
    ----------
    joules_per_flop:
        Compute energy efficiency (typical embedded SoCs sit around
        1e-10 J/FLOP sustained, i.e. ~10 GFLOPS/W).
    joules_per_byte_tx:
        Radio transmit energy per payload byte (Wi-Fi class links are
        around 1e-7 J/B; cellular is an order of magnitude worse).
    idle_watts:
        Baseline platform draw, charged for the duration of the
        inference (compute + transfer time).
    """

    joules_per_flop: float = 1e-10
    joules_per_byte_tx: float = 1e-7
    idle_watts: float = 1.0

    def __post_init__(self):
        if self.joules_per_flop < 0 or self.joules_per_byte_tx < 0 or self.idle_watts < 0:
            raise ValueError("energy coefficients must be non-negative")


#: Jetson-Nano-class coefficients (5-10 W envelope, ~0.5 TFLOPS FP16 peak).
JETSON_NANO_ENERGY = EnergyModel(
    joules_per_flop=2e-10, joules_per_byte_tx=1.5e-7, idle_watts=1.25
)


@dataclass(frozen=True)
class SplitEnergy:
    """Edge-side energy decomposition for one candidate cut."""

    latency: SplitLatency
    compute_joules: float
    transmit_joules: float
    idle_joules: float

    @property
    def stage_index(self) -> int:
        return self.latency.stage_index

    @property
    def total_joules(self) -> float:
        return self.compute_joules + self.transmit_joules + self.idle_joules


def energy_profile(
    spec: BackboneSpec,
    edge_device: Device,
    server_device: Device,
    channel: NetworkChannel,
    energy_model: EnergyModel = JETSON_NANO_ENERGY,
    input_size: Optional[int] = None,
    batch_size: int = 1,
    head_flops: int = 0,
    wire_format: WireFormat = WireFormat(),
) -> List[SplitEnergy]:
    """Edge energy for every candidate cut (including the RoC reference).

    Compute energy charges the FLOPs executed on the edge; transmit
    energy charges the wire payload; idle energy charges the baseline
    draw over the cut's end-to-end latency (the device cannot sleep while
    it waits for the answer).
    """
    profile = latency_profile(
        spec, edge_device, server_device, channel,
        input_size=input_size, batch_size=batch_size,
        head_flops=head_flops, wire_format=wire_format,
    )
    results = []
    for point in profile:
        edge_flops = point.edge_seconds * edge_device.flops_per_second
        payload = point.transmit_elements * batch_size * wire_format.bytes_per_element
        results.append(
            SplitEnergy(
                latency=point,
                compute_joules=edge_flops * energy_model.joules_per_flop,
                transmit_joules=payload * energy_model.joules_per_byte_tx,
                idle_joules=point.total_seconds * energy_model.idle_watts,
            )
        )
    return results


def lowest_edge_energy_split(
    spec: BackboneSpec,
    edge_device: Device,
    server_device: Device,
    channel: NetworkChannel,
    energy_model: EnergyModel = JETSON_NANO_ENERGY,
    input_size: Optional[int] = None,
    batch_size: int = 1,
    head_flops: int = 0,
    wire_format: WireFormat = WireFormat(),
) -> SplitEnergy:
    """Cut with the lowest edge energy per inference."""
    profile = energy_profile(
        spec, edge_device, server_device, channel, energy_model,
        input_size=input_size, batch_size=batch_size,
        head_flops=head_flops, wire_format=wire_format,
    )
    return min(profile, key=lambda point: point.total_joules)
