"""Edge / server device models.

The paper's LoC feasibility argument (Sec. 4.2) is a memory-accounting
argument against an **NVIDIA Jetson Nano with 4 GB of memory**: N
task-specific networks do not fit, one shared backbone does.
:class:`Device` captures the memory capacity (and a coarse compute
throughput used for latency estimates); :data:`JETSON_NANO` is the
paper's board.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Device", "JETSON_NANO", "RTX3090_SERVER", "RASPBERRY_PI_4", "GENERIC_SERVER",
    "DEVICE_REGISTRY",
    "available_devices",
    "get_device",
]

_GB = 1024**3


@dataclass(frozen=True)
class Device:
    """A compute device with finite memory and throughput.

    Attributes
    ----------
    name:
        Human-readable device name.
    memory_bytes:
        Total RAM available for model weights and activations.
    flops_per_second:
        Sustained compute throughput used for coarse latency estimates
        (FP32 FLOP/s; edge accelerators are quoted at their realistic
        sustained rate, not the marketing peak).
    """

    name: str
    memory_bytes: int
    flops_per_second: float

    def __post_init__(self):
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive, got {self.memory_bytes}")
        if self.flops_per_second <= 0:
            raise ValueError(
                f"flops_per_second must be positive, got {self.flops_per_second}"
            )

    # ------------------------------------------------------------------
    def fits(self, required_bytes: int) -> bool:
        """Can a deployment needing ``required_bytes`` run on this device?"""
        return required_bytes <= self.memory_bytes

    def memory_headroom(self, required_bytes: int) -> int:
        """Free bytes left after a deployment (negative = infeasible)."""
        return self.memory_bytes - required_bytes

    def compute_seconds(self, flops: float) -> float:
        """Coarse execution-time estimate for ``flops`` of work."""
        return flops / self.flops_per_second

    def __str__(self) -> str:
        return f"{self.name} ({self.memory_bytes / _GB:.1f} GB)"


#: The paper's edge board: "an NVIDIA Jetson Nano with 4 GB of memory".
JETSON_NANO = Device(
    name="NVIDIA Jetson Nano",
    memory_bytes=4 * _GB,
    flops_per_second=236e9,  # 472 GFLOPS FP16 peak -> ~236 GFLOPS FP32
)

#: The paper's training/server GPU.
RTX3090_SERVER = Device(
    name="NVIDIA RTX 3090 server",
    memory_bytes=24 * _GB,
    flops_per_second=35.6e12,
)

#: A weaker edge point for sensitivity sweeps.
RASPBERRY_PI_4 = Device(
    name="Raspberry Pi 4",
    memory_bytes=4 * _GB,
    flops_per_second=13.5e9,
)

#: A generic CPU server remote endpoint.
GENERIC_SERVER = Device(
    name="generic cloud server",
    memory_bytes=64 * _GB,
    flops_per_second=2e12,
)


#: Registry used by the declarative deployment spec (``repro.serve``) to
#: reference devices by a stable, JSON-serialisable name.
DEVICE_REGISTRY = {
    "jetson_nano": JETSON_NANO,
    "rtx3090_server": RTX3090_SERVER,
    "raspberry_pi_4": RASPBERRY_PI_4,
    "generic_server": GENERIC_SERVER,
}


def available_devices():
    """Sorted registry names accepted wherever a device is named."""
    return sorted(DEVICE_REGISTRY)


def get_device(name: str) -> Device:
    """Look up a device preset by registry name.

    Raises ``KeyError`` listing the valid names when unknown.
    """
    try:
        return DEVICE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {available_devices()}"
        ) from None
