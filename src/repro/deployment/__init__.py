"""``repro.deployment`` — split-computing deployment analysis and runtime.

Reproduces the paper's Sec. 4.2 machinery: analytic model profiling
(Table 4), edge-device memory feasibility (the Jetson Nano LoC argument),
network-channel latency (the gigabit RoC-vs-SC comparison), and ``Z_b``
wire serialisation.  The *runnable* edge→link→server pipeline lives in
:mod:`repro.serve` (the deprecated runtime shims that used to mirror it
here were removed after their two-PR soak; see :mod:`.runtime`).
"""

from .channel import (
    DEGRADED_EDGE_LINK,
    GIGABIT_ETHERNET,
    LTE_UPLINK,
    WIFI_5,
    NetworkChannel,
    available_channels,
    get_channel,
)
from .device import (
    GENERIC_SERVER,
    JETSON_NANO,
    RASPBERRY_PI_4,
    RTX3090_SERVER,
    Device,
    available_devices,
    get_device,
)
from .energy import (
    JETSON_NANO_ENERGY,
    EnergyModel,
    SplitEnergy,
    energy_profile,
    lowest_edge_energy_split,
)
from .optimizer import SplitLatency, latency_profile, optimal_split_index
from .paradigms import (
    ParadigmReport,
    compare_paradigms,
    head_memory_bytes,
    loc_report,
    roc_report,
    sc_report,
)
from .profiler import (
    BYTES_PER_PARAM,
    LayerProfile,
    ModelProfile,
    profile_backbone,
)
from .report import render_paradigm_comparison, render_table4, render_throughput, table4_rows
from .runtime import InferenceTrace, SimulatedLink, ThroughputReport
from .runtime import REMOVED as _REMOVED_RUNTIME_NAMES
from .runtime import removed_attribute_error as _removed_attribute_error
from .wire import WireFormat, decode_tensor, encode_tensor, payload_bytes

__all__ = [
    "Device",
    "JETSON_NANO",
    "RTX3090_SERVER",
    "RASPBERRY_PI_4",
    "GENERIC_SERVER",
    "NetworkChannel",
    "GIGABIT_ETHERNET",
    "WIFI_5",
    "LTE_UPLINK",
    "DEGRADED_EDGE_LINK",
    "available_channels",
    "available_devices",
    "get_channel",
    "get_device",
    "LayerProfile",
    "ModelProfile",
    "profile_backbone",
    "BYTES_PER_PARAM",
    "WireFormat",
    "encode_tensor",
    "decode_tensor",
    "payload_bytes",
    "ParadigmReport",
    "loc_report",
    "roc_report",
    "sc_report",
    "compare_paradigms",
    "head_memory_bytes",
    "SimulatedLink",
    "InferenceTrace",
    "ThroughputReport",
    "table4_rows",
    "render_table4",
    "render_paradigm_comparison",
    "render_throughput",
    "SplitLatency",
    "latency_profile",
    "optimal_split_index",
    "EnergyModel",
    "JETSON_NANO_ENERGY",
    "SplitEnergy",
    "energy_profile",
    "lowest_edge_energy_split",
]


def __getattr__(name: str):
    if name in _REMOVED_RUNTIME_NAMES:
        raise _removed_attribute_error(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
