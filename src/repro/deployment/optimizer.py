"""Latency-optimal split-point selection (Neurosurgeon-style).

Kang et al. [15] — the earliest SC work the paper cites — choose the
split layer by minimising end-to-end latency: edge compute up to the
cut, transfer of the cut tensor, remote compute for the rest.  This
module reproduces that optimisation analytically on top of the spec
profiler, for any device pair and channel:

    latency(k) = edge.flops(<=k) / edge_speed
               + payload(k) / channel
               + (server flops(>k) + heads) / server_speed

and compares the optimum against MTL-Split's default cut at the
backbone/heads boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..models.specs import BackboneSpec, iter_primitives
from .channel import NetworkChannel
from .device import Device
from .wire import WireFormat, payload_bytes

__all__ = ["SplitLatency", "latency_profile", "optimal_split_index"]


@dataclass(frozen=True)
class SplitLatency:
    """End-to-end latency decomposition for one candidate cut."""

    stage_index: int
    stage_name: str
    transmit_elements: int
    edge_seconds: float
    transfer_seconds: float
    server_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.edge_seconds + self.transfer_seconds + self.server_seconds


def _per_stage(spec: BackboneSpec, input_size: Optional[int]) -> List[Tuple[str, int, int]]:
    """Aggregate primitives by top-level stage: (name, flops, out_elements)."""
    stages: Dict[int, Tuple[int, int]] = {}
    for record in iter_primitives(spec, input_size):
        index = int(record.name.split(".")[0].removeprefix("layer"))
        flops, _ = stages.get(index, (0, 0))
        stages[index] = (flops + record.flops, record.activations)
    return [
        (f"layer{index}",) + stages[index] for index in sorted(stages)
    ]


def latency_profile(
    spec: BackboneSpec,
    edge_device: Device,
    server_device: Device,
    channel: NetworkChannel,
    input_size: Optional[int] = None,
    batch_size: int = 1,
    head_flops: int = 0,
    wire_format: WireFormat = WireFormat(),
) -> List[SplitLatency]:
    """Latency decomposition for every candidate cut.

    Cut ``k`` places stages ``0..k`` on the edge and the remainder (plus
    ``head_flops`` worth of task heads) on the server.  Cut ``-1`` — send
    the raw input, i.e. RoC — is included as stage index ``-1``.
    """
    stages = _per_stage(spec, input_size)
    total_flops = sum(flops for _name, flops, _elems in stages)
    size = input_size if input_size is not None else spec.input_size
    input_elements = spec.input_channels * size * size

    results: List[SplitLatency] = []
    # RoC reference point: nothing on the edge.
    results.append(
        SplitLatency(
            stage_index=-1,
            stage_name="input (RoC)",
            transmit_elements=input_elements,
            edge_seconds=0.0,
            transfer_seconds=channel.transfer_seconds(
                payload_bytes(input_elements * batch_size, wire_format)
            ),
            server_seconds=server_device.compute_seconds(
                (total_flops + head_flops) * batch_size
            ),
        )
    )
    edge_flops = 0
    for index, (name, flops, out_elements) in enumerate(stages):
        edge_flops += flops
        remaining = total_flops - edge_flops + head_flops
        results.append(
            SplitLatency(
                stage_index=index,
                stage_name=name,
                transmit_elements=out_elements,
                edge_seconds=edge_device.compute_seconds(edge_flops * batch_size),
                transfer_seconds=channel.transfer_seconds(
                    payload_bytes(out_elements * batch_size, wire_format)
                ),
                server_seconds=server_device.compute_seconds(remaining * batch_size),
            )
        )
    return results


def optimal_split_index(
    spec: BackboneSpec,
    edge_device: Device,
    server_device: Device,
    channel: NetworkChannel,
    input_size: Optional[int] = None,
    batch_size: int = 1,
    head_flops: int = 0,
    wire_format: WireFormat = WireFormat(),
) -> SplitLatency:
    """Return the cut with the lowest end-to-end latency.

    Index ``-1`` means remote-only computing wins (fast channel, slow
    edge); the last index is MTL-Split's default (entire backbone on the
    edge), which wins when the channel is the bottleneck.
    """
    profile = latency_profile(
        spec, edge_device, server_device, channel,
        input_size=input_size, batch_size=batch_size,
        head_flops=head_flops, wire_format=wire_format,
    )
    return min(profile, key=lambda point: point.total_seconds)
