"""Analytic model profiling (paper Table 4).

Reproduces the ``torchsummary``-style accounting the paper reports for
the backbone ``M_b`` and its output ``Z_b``:

* ``#params`` and ``params size (MB)`` — 4 bytes per float32 weight;
* ``forward/backward pass size (MB)`` — every layer's output is stored
  once for the forward pass and once for its gradient (factor 2);
* ``estimated size (MB)`` — input + params + forward/backward;
* ``Z_b`` element count and wire size.

Everything is computed from the declarative spec via
:func:`repro.models.specs.iter_primitives`, so full-scale VGG16 /
MobileNetV3 / EfficientNet can be profiled without allocating a single
weight — which is how a laptop reproduces numbers for models that only
fit on the paper's RTX 3090.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..models.specs import BackboneSpec, iter_primitives

__all__ = ["LayerProfile", "ModelProfile", "profile_backbone", "BYTES_PER_PARAM"]

BYTES_PER_PARAM = 4  # float32, matching the paper's size arithmetic
_MB = 1024 * 1024


@dataclass(frozen=True)
class LayerProfile:
    """Per-primitive-layer profile row."""

    name: str
    kind: str
    params: int
    out_shape: Tuple[int, int, int]
    activations: int
    flops: int


@dataclass(frozen=True)
class ModelProfile:
    """Aggregate profile of a backbone at a given input size and batch.

    Attribute names follow the columns of the paper's Table 4.
    """

    spec_name: str
    input_size: int
    batch_size: int
    layers: Tuple[LayerProfile, ...]
    params: int
    zb_shape: Tuple[int, int, int]

    # ------------------------------------------------------------------
    @property
    def params_megabytes(self) -> float:
        """"M_b #params size (MB)" column."""
        return self.params * BYTES_PER_PARAM / _MB

    @property
    def input_elements(self) -> int:
        return 3 * self.input_size * self.input_size * self.batch_size

    @property
    def input_megabytes(self) -> float:
        return self.input_elements * BYTES_PER_PARAM / _MB

    @property
    def forward_backward_megabytes(self) -> float:
        """"Forward/backward pass size (MB)" column (activations x 2)."""
        total_acts = sum(layer.activations for layer in self.layers) * self.batch_size
        return 2.0 * total_acts * BYTES_PER_PARAM / _MB

    @property
    def estimated_megabytes(self) -> float:
        """"M_b estimated size (MB)": input + params + fwd/bwd."""
        return (
            self.input_megabytes
            + self.params_megabytes
            + self.forward_backward_megabytes
        )

    @property
    def estimated_total_bytes(self) -> int:
        return int(round(self.estimated_megabytes * _MB))

    # ------------------------------------------------------------------
    @property
    def flops(self) -> int:
        """Per-sample forward FLOPs (multiply-accumulate = 2 FLOPs)."""
        return sum(layer.flops for layer in self.layers)

    @property
    def zb_elements(self) -> int:
        """Per-sample element count of ``Z_b`` ("Z_b #params" column)."""
        return int(np.prod(self.zb_shape))

    @property
    def zb_megabytes(self) -> float:
        """"Z_b size (MB)" column (per sample, float32)."""
        return self.zb_elements * BYTES_PER_PARAM / _MB

    def zb_bytes(self, dtype_bytes: int = BYTES_PER_PARAM) -> int:
        """Wire size of one ``Z_b`` payload at a given element width."""
        return self.zb_elements * dtype_bytes

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Readable multi-line summary (torchsummary-flavoured)."""
        lines = [
            f"Model: {self.spec_name} (input {self.input_size}x{self.input_size}, "
            f"batch {self.batch_size})",
            f"  params:            {self.params:,} ({self.params_megabytes:.2f} MB)",
            f"  forward/backward:  {self.forward_backward_megabytes:.2f} MB",
            f"  estimated total:   {self.estimated_megabytes:.2f} MB",
            f"  Z_b:               {self.zb_shape} = {self.zb_elements:,} elements "
            f"({self.zb_megabytes:.3f} MB)",
        ]
        return "\n".join(lines)


def profile_backbone(
    spec: BackboneSpec,
    input_size: Optional[int] = None,
    batch_size: int = 1,
) -> ModelProfile:
    """Profile a backbone spec analytically.

    Parameters
    ----------
    spec:
        Declarative backbone description.
    input_size:
        Square input resolution; defaults to the spec's nominal size.
    batch_size:
        Activations scale linearly with the batch; parameters do not.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    size = input_size if input_size is not None else spec.input_size
    layers: List[LayerProfile] = []
    for record in iter_primitives(spec, size):
        layers.append(
            LayerProfile(
                name=record.name,
                kind=record.kind,
                params=record.params,
                out_shape=record.out_shape,
                activations=record.activations,
                flops=record.flops,
            )
        )
    if not layers:
        raise ValueError(f"spec {spec.name!r} has no layers")
    return ModelProfile(
        spec_name=spec.name,
        input_size=size,
        batch_size=batch_size,
        layers=tuple(layers),
        params=sum(layer.params for layer in layers),
        zb_shape=layers[-1].out_shape,
    )
