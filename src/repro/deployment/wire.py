"""Wire serialisation of the shared representation ``Z_b``.

The paper's third claim is that "the output from the shared feature space
is remarkably lightweight".  This module makes the payload concrete: it
encodes a batch of ``Z_b`` vectors to bytes (float32, float16, or 8-bit
affine-quantised — the quantisation option mirrors the compression
literature the paper cites [17]) and decodes them back, reporting exact
payload sizes for the latency analysis and bounded reconstruction error
for the tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["WireFormat", "encode_tensor", "decode_tensor", "payload_bytes"]

_MAGIC = b"ZBW1"
_DTYPE_CODES = {"float32": 0, "float16": 1, "quant8": 2}
_CODE_DTYPES = {v: k for k, v in _DTYPE_CODES.items()}


@dataclass(frozen=True)
class WireFormat:
    """Encoding configuration for ``Z_b`` payloads.

    ``dtype`` is one of ``"float32"`` (lossless for the framework's
    working precision), ``"float16"`` (2x smaller, ~1e-3 relative error)
    or ``"quant8"`` (4x smaller, affine per-tensor quantisation).
    """

    dtype: str = "float32"

    def __post_init__(self):
        if self.dtype not in _DTYPE_CODES:
            raise ValueError(
                f"unknown wire dtype {self.dtype!r}; choose from {sorted(_DTYPE_CODES)}"
            )

    @property
    def bytes_per_element(self) -> float:
        return {"float32": 4, "float16": 2, "quant8": 1}[self.dtype]


def payload_bytes(num_elements: int, wire_format: WireFormat = WireFormat()) -> int:
    """Exact payload size (header + data) for ``num_elements`` values."""
    header = len(_MAGIC) + 1 + 4 + 4 * 4 + 8  # magic, dtype, ndim, shape[4], scale/zero
    return int(header + num_elements * wire_format.bytes_per_element)


def encode_tensor(array: np.ndarray, wire_format: WireFormat = WireFormat()) -> bytes:
    """Serialise an array (up to 4 dims) into a self-describing payload."""
    array = np.asarray(array, dtype=np.float32)
    if not array.flags["C_CONTIGUOUS"]:
        # Not ascontiguousarray unconditionally: that would silently
        # promote 0-dim scalars to shape (1,) and break the round-trip.
        array = np.ascontiguousarray(array)
    if array.ndim > 4:
        raise ValueError(f"wire format supports <= 4 dims, got {array.ndim}")
    shape = list(array.shape) + [0] * (4 - array.ndim)
    scale, zero = 1.0, 0.0
    if wire_format.dtype == "float32":
        body = array.tobytes()
    elif wire_format.dtype == "float16":
        body = array.astype(np.float16).tobytes()
    else:  # quant8: affine map to uint8
        if array.size and not np.isfinite(array).all():
            raise ValueError(
                "quant8 encoding requires finite values; input contains NaN/Inf "
                "(they would wrap silently through the affine uint8 map)"
            )
        lo = float(array.min()) if array.size else 0.0
        hi = float(array.max()) if array.size else 0.0
        scale = (hi - lo) / 255.0 if hi > lo else 1.0
        zero = lo
        # Clip before the uint8 cast: rounding can land on 256.0 at the top
        # of the range, and a bare astype would wrap it to 0.
        quantised = np.clip(np.round((array - zero) / scale), 0.0, 255.0).astype(
            np.uint8
        )
        body = quantised.tobytes()
    header = (
        _MAGIC
        + struct.pack("<B", _DTYPE_CODES[wire_format.dtype])
        + struct.pack("<i", array.ndim)
        + struct.pack("<4i", *shape)
        + struct.pack("<ff", scale, zero)
    )
    return header + body


def decode_tensor(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_tensor`; returns float32."""
    if payload[:4] != _MAGIC:
        raise ValueError("payload does not start with the Z_b wire magic")
    offset = 4
    (dtype_code,) = struct.unpack_from("<B", payload, offset)
    offset += 1
    (ndim,) = struct.unpack_from("<i", payload, offset)
    offset += 4
    shape4 = struct.unpack_from("<4i", payload, offset)
    offset += 16
    scale, zero = struct.unpack_from("<ff", payload, offset)
    offset += 8
    shape: Tuple[int, ...] = tuple(shape4[:ndim])
    dtype = _CODE_DTYPES.get(dtype_code)
    if dtype is None:
        raise ValueError(f"unknown wire dtype code {dtype_code}")
    body = payload[offset:]
    if dtype == "float32":
        array = np.frombuffer(body, dtype=np.float32)
    elif dtype == "float16":
        array = np.frombuffer(body, dtype=np.float16).astype(np.float32)
    else:
        array = np.frombuffer(body, dtype=np.uint8).astype(np.float32) * scale + zero
    return array.reshape(shape).astype(np.float32)
