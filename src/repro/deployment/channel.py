"""Network channel model.

The paper's RoC-vs-SC latency analysis (Sec. 4.2) assumes a gigabit
channel and compares transferring 100 raw FACES inputs (~115 MB each,
~98 s total) against 100 shared representations (~1.5 MB each, ~12 s).
:class:`NetworkChannel` reproduces that arithmetic — ``bytes /
bandwidth`` plus per-message overhead and round-trip latency — and also
supports degraded-channel sweeps (the situation SC is designed for).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "NetworkChannel",
    "GIGABIT_ETHERNET",
    "WIFI_5",
    "LTE_UPLINK",
    "DEGRADED_EDGE_LINK",
    "CHANNEL_REGISTRY",
    "available_channels",
    "get_channel",
]


@dataclass(frozen=True)
class NetworkChannel:
    """A point-to-point link between the edge device and the server.

    Attributes
    ----------
    name:
        Label for reports.
    bandwidth_bps:
        Usable bandwidth in bits per second.
    rtt_seconds:
        Round-trip time added once per message exchange.
    overhead_fraction:
        Protocol overhead as a fraction of payload (headers, framing,
        retransmits); 0.05 means 5 % extra bytes on the wire.
    """

    name: str
    bandwidth_bps: float
    rtt_seconds: float = 0.0
    overhead_fraction: float = 0.0

    def __post_init__(self):
        if self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_bps}")
        if self.rtt_seconds < 0:
            raise ValueError(f"rtt must be non-negative, got {self.rtt_seconds}")
        if self.overhead_fraction < 0:
            raise ValueError(
                f"overhead_fraction must be non-negative, got {self.overhead_fraction}"
            )

    # ------------------------------------------------------------------
    def transfer_seconds(self, payload_bytes: int, messages: int = 1) -> float:
        """Time to move ``messages`` payloads of ``payload_bytes`` each.

        The paper's numbers use the pure serialisation delay
        (``bytes * 8 / bandwidth``); RTT and overhead default to zero so
        the defaults reproduce the paper, while realistic links can be
        modelled by setting them.
        """
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
        if messages < 0:
            raise ValueError(f"messages must be non-negative, got {messages}")
        wire_bytes = payload_bytes * (1.0 + self.overhead_fraction)
        per_message = wire_bytes * 8.0 / self.bandwidth_bps + self.rtt_seconds
        return per_message * messages

    def effective_throughput_bytes_per_second(self, payload_bytes: int) -> float:
        """Goodput for a given message size (RTT-limited for small ones)."""
        seconds = self.transfer_seconds(payload_bytes)
        return payload_bytes / seconds if seconds > 0 else float("inf")

    def degraded(self, factor: float) -> "NetworkChannel":
        """Return a copy with bandwidth divided by ``factor`` (> 1)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return replace(
            self,
            name=f"{self.name} (degraded {factor:g}x)",
            bandwidth_bps=self.bandwidth_bps / factor,
        )

    def __str__(self) -> str:
        return f"{self.name} ({self.bandwidth_bps / 1e6:.0f} Mbps, rtt={self.rtt_seconds * 1e3:.1f} ms)"


#: The paper's assumption: "assuming a gigabit channel".
GIGABIT_ETHERNET = NetworkChannel("gigabit ethernet", bandwidth_bps=1e9)

WIFI_5 = NetworkChannel("802.11ac Wi-Fi", bandwidth_bps=200e6, rtt_seconds=0.003,
                        overhead_fraction=0.08)

LTE_UPLINK = NetworkChannel("LTE uplink", bandwidth_bps=20e6, rtt_seconds=0.04,
                            overhead_fraction=0.10)

DEGRADED_EDGE_LINK = NetworkChannel("degraded edge link", bandwidth_bps=5e6,
                                    rtt_seconds=0.08, overhead_fraction=0.12)


#: Registry used by the declarative deployment spec (``repro.serve``) to
#: reference channel presets by a stable, JSON-serialisable name.
CHANNEL_REGISTRY = {
    "gigabit_ethernet": GIGABIT_ETHERNET,
    "wifi_5": WIFI_5,
    "lte_uplink": LTE_UPLINK,
    "degraded_edge_link": DEGRADED_EDGE_LINK,
}


def available_channels():
    """Sorted registry names accepted wherever a channel is named."""
    return sorted(CHANNEL_REGISTRY)


def get_channel(name: str) -> NetworkChannel:
    """Look up a channel preset by registry name.

    Raises ``KeyError`` listing the valid names when unknown.
    """
    try:
        return CHANNEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown channel {name!r}; available: {available_channels()}"
        ) from None
