"""Formatted deployment reports (the shapes of Table 4 and Sec. 4.2)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..models.registry import get_spec
from .paradigms import ParadigmReport
from .profiler import profile_backbone
from .runtime import ThroughputReport

__all__ = [
    "table4_rows",
    "render_table4",
    "render_paradigm_comparison",
    "render_throughput",
]

_MB = 1024 * 1024


def table4_rows(
    backbone_names: Sequence[str],
    input_size: Optional[int] = None,
    batch_size: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Compute the six columns of the paper's Table 4 for each backbone.

    Keys mirror the paper's column headers: parameter count/size of the
    backbone ``M_b``, forward/backward activation memory, the estimated
    total, and the element count/wire size of ``Z_b``.
    """
    rows: Dict[str, Dict[str, float]] = {}
    for name in backbone_names:
        profile = profile_backbone(get_spec(name), input_size=input_size, batch_size=batch_size)
        rows[name] = {
            "params_millions": profile.params / 1e6,
            "params_mb": profile.params_megabytes,
            "forward_backward_mb": profile.forward_backward_megabytes,
            "estimated_mb": profile.estimated_megabytes,
            "zb_kilo_elements": profile.zb_elements / 1e3,
            "zb_mb": profile.zb_megabytes,
        }
    return rows


def render_table4(
    rows: Dict[str, Dict[str, float]],
    reference: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Render Table 4 rows (optionally interleaving paper reference rows)."""
    header = (
        f"{'Model':<24}{'Mb #params (M)':>16}{'Mb size (MB)':>14}"
        f"{'Fwd/bwd (MB)':>14}{'Est. size (MB)':>16}{'Zb #elem (K)':>14}{'Zb size (MB)':>14}"
    )
    lines = [header, "-" * len(header)]
    for name, row in rows.items():
        lines.append(
            f"{name:<24}{row['params_millions']:>16.2f}{row['params_mb']:>14.2f}"
            f"{row['forward_backward_mb']:>14.2f}{row['estimated_mb']:>16.2f}"
            f"{row['zb_kilo_elements']:>14.1f}{row['zb_mb']:>14.3f}"
        )
        if reference and name in reference:
            ref = reference[name]
            lines.append(
                f"{'  (paper reports)':<24}{ref['params_millions']:>16.2f}{ref['params_mb']:>14.2f}"
                f"{ref['forward_backward_mb']:>14.2f}{ref['estimated_mb']:>16.2f}"
                f"{ref['zb_kilo_elements']:>14.1f}{ref['zb_mb']:>14.3f}"
            )
    return "\n".join(lines)


def render_paradigm_comparison(reports: Dict[str, ParadigmReport]) -> str:
    """Render a LoC / RoC / SC comparison block."""
    order = ["loc", "loc_shared", "roc", "sc"]
    blocks = [reports[key].summary() for key in order if key in reports]
    return "\n".join(blocks)


def render_throughput(report: ThroughputReport) -> str:
    """Render an overlapped-pipeline throughput report."""
    util = report.stage_utilisation
    lines = [
        f"{report.batches} batches / {report.images} images",
        f"  serial (sum of stages): {report.serial_seconds * 1e3:8.2f} ms",
        f"  pipelined makespan:     {report.pipelined_seconds * 1e3:8.2f} ms "
        f"({report.overlap_speedup:.2f}x overlap speedup)",
        f"  measured wall:          {report.wall_seconds * 1e3:8.2f} ms "
        "(transfer modelled, not slept)",
        f"  throughput:             {report.batches_per_second:8.1f} batches/s "
        f"({report.images_per_second:.0f} images/s)",
        "  stage busy / utilisation:",
    ]
    busy = {
        "edge": report.edge_seconds,
        "transfer": report.transfer_seconds,
        "server": report.server_seconds,
    }
    for stage, seconds in busy.items():
        marker = "  <- critical path" if stage == report.critical_stage else ""
        lines.append(
            f"    {stage:<9} {seconds * 1e3:8.2f} ms  ({util[stage]:5.1%}){marker}"
        )
    if report.arena_bytes:
        lines.append(
            f"  engine: {report.arena_bytes / 1024:.0f} KiB arena preallocated, "
            f"{report.steady_state_allocs} allocs/batch steady-state, "
            f"{report.num_workers} worker(s)"
        )
        lines.append(
            f"  optimizer: {report.fused_steps} fused epilogue step(s), "
            f"{report.elided_copies} copy(ies) elided (in-place acts), "
            f"{report.aliased_views} view(s) aliased, "
            f"{report.spmm_row_blocks} SpMM row block(s)"
        )
    return "\n".join(lines)
