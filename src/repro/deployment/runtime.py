"""Deprecated home of the runnable split pipeline.

The implementation moved to :mod:`repro.serve.runtime`; the declarative
entry point that replaces hand-wiring these classes is
:func:`repro.deploy` with a :class:`repro.serve.DeploymentSpec`.  The
names below keep working — constructing a runtime or pipeline through
this module emits a :class:`DeprecationWarning` but behaves identically
(the classes are thin subclasses of their :mod:`repro.serve`
counterparts, so ``isinstance`` checks hold in both directions for
existing code).

Migration map::

    EdgeRuntime / ServerRuntime / SplitPipeline.from_net(...)
        -> repro.deploy(DeploymentSpec(...))      # full lifecycle
    SplitPipeline.infer / infer_stream
        -> Deployment.infer / Deployment.stream
    (new) concurrent single-image requests
        -> Deployment.submit(image) -> Future     # dynamic batching

Pure data types (:class:`InferenceTrace`, :class:`ThroughputReport`,
:class:`SimulatedLink`) are re-exported without a warning: they carry no
resources and their import location is the only thing that changed.
"""

from __future__ import annotations

import warnings

from ..serve.runtime import InferenceTrace, SimulatedLink, ThroughputReport
from ..serve.runtime import EdgeRuntime as _ServeEdgeRuntime
from ..serve.runtime import ServerRuntime as _ServeServerRuntime
from ..serve.runtime import SplitPipeline as _ServeSplitPipeline

__all__ = [
    "InferenceTrace",
    "EdgeRuntime",
    "ServerRuntime",
    "SimulatedLink",
    "SplitPipeline",
    "ThroughputReport",
]


def _warn_moved(old: str, new: str) -> None:
    warnings.warn(
        f"repro.deployment.{old} is deprecated; use {new} "
        "(see repro.serve — the declarative deployment API)",
        DeprecationWarning,
        stacklevel=3,
    )


class EdgeRuntime(_ServeEdgeRuntime):
    """Deprecated alias of :class:`repro.serve.runtime.EdgeRuntime`."""

    def __init__(self, *args, **kwargs):
        _warn_moved("EdgeRuntime", "repro.deploy(...)")
        super().__init__(*args, **kwargs)


class ServerRuntime(_ServeServerRuntime):
    """Deprecated alias of :class:`repro.serve.runtime.ServerRuntime`."""

    def __init__(self, *args, **kwargs):
        _warn_moved("ServerRuntime", "repro.deploy(...)")
        super().__init__(*args, **kwargs)


class SplitPipeline(_ServeSplitPipeline):
    """Deprecated alias of :class:`repro.serve.runtime.SplitPipeline`.

    ``SplitPipeline.from_net(...)`` keeps working (one warning per
    pipeline); new code should declare the same deployment with
    ``repro.deploy(DeploymentSpec(...))`` and get lifecycle management,
    ``submit()`` dynamic batching and config-file round-tripping on top.
    """

    def __init__(self, *args, **kwargs):
        _warn_moved("SplitPipeline", "repro.deploy(...)")
        super().__init__(*args, **kwargs)
