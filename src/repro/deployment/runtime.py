"""Former home of the runnable split pipeline (moved to ``repro.serve``).

The deprecated ``EdgeRuntime`` / ``ServerRuntime`` / ``SplitPipeline``
shims that used to live here have been **removed** after soaking for the
agreed two PRs.  Declare the same deployment with the declarative API::

    repro.deploy(repro.DeploymentSpec(...))   # full lifecycle
    Deployment.infer / .stream / .submit      # the three serving surfaces

Code that really needs the execution layer directly should import it
from its real home, :mod:`repro.serve.runtime`.

The pure data types (:class:`InferenceTrace`, :class:`ThroughputReport`,
:class:`SimulatedLink`) are still re-exported here: they carry no
resources and never warned — only their implementation moved.
"""

from __future__ import annotations

from ..serve.runtime import InferenceTrace, SimulatedLink, ThroughputReport

__all__ = [
    "InferenceTrace",
    "SimulatedLink",
    "ThroughputReport",
]

#: Names removed at the end of the deprecation window, with their new home.
REMOVED = {
    "EdgeRuntime": "repro.serve.runtime.EdgeRuntime",
    "ServerRuntime": "repro.serve.runtime.ServerRuntime",
    "SplitPipeline": "repro.serve.runtime.SplitPipeline",
}


def removed_attribute_error(name: str) -> AttributeError:
    """The one migration-hint message for a removed runtime name.

    Shared with the :mod:`repro.deployment` package ``__getattr__`` so
    the hint cannot drift between the two access paths.
    """
    return AttributeError(
        f"repro.deployment.{name} was removed after its deprecation "
        f"window; use repro.deploy(DeploymentSpec(...)) or import "
        f"{REMOVED[name]} directly"
    )


def __getattr__(name: str):
    if name in REMOVED:
        raise removed_attribute_error(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
