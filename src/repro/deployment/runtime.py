"""Runnable split-computing pipeline (paper Fig. 1, executed).

:class:`EdgeRuntime` and :class:`ServerRuntime` wrap the two halves
produced by :meth:`repro.core.architecture.MTLSplitNet.split` behind a
byte-level interface: the edge runtime produces serialised ``Z_b``
payloads, a :class:`SimulatedLink` accounts for their transfer time, and
the server runtime decodes them and runs the task heads.  The pipeline's
outputs are numerically identical to the monolithic network when the
float32 wire format is used — the property the integration tests assert —
and the accumulated timing gives a measured (not merely modelled) view of
where inference time goes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..core.architecture import EdgeModel, MTLSplitNet, ServerModel
from ..nn.tensor import Tensor
from .channel import NetworkChannel
from .wire import WireFormat, decode_tensor, encode_tensor

__all__ = ["InferenceTrace", "EdgeRuntime", "ServerRuntime", "SimulatedLink", "SplitPipeline"]


@dataclass
class InferenceTrace:
    """Timing and payload record for one pipeline invocation."""

    batch_size: int
    payload_bytes: int
    edge_seconds: float
    transfer_seconds: float
    server_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.edge_seconds + self.transfer_seconds + self.server_seconds


class EdgeRuntime:
    """Runs the edge half and serialises ``Z_b`` for transmission."""

    def __init__(self, model: EdgeModel, wire_format: WireFormat = WireFormat()):
        self.model = model
        self.wire_format = wire_format
        self.model.eval()

    def infer(self, images: np.ndarray) -> Tuple[bytes, float]:
        """Return ``(payload, edge_compute_seconds)`` for a batch."""
        start = time.perf_counter()
        with nn.no_grad():
            z_b = self.model(Tensor(images))
        payload = encode_tensor(z_b.data, self.wire_format)
        return payload, time.perf_counter() - start


class ServerRuntime:
    """Decodes ``Z_b`` payloads and runs the remaining stages + heads."""

    def __init__(self, model: ServerModel, task_names: Tuple[str, ...]):
        self.model = model
        self.task_names = task_names
        self.model.eval()

    def infer(self, payload: bytes) -> Tuple[Dict[str, np.ndarray], float]:
        """Return ``(per-task logits, server_compute_seconds)``."""
        start = time.perf_counter()
        z_flat = decode_tensor(payload)
        with nn.no_grad():
            outputs = self.model(Tensor(z_flat))
        logits = {name: outputs[name].data for name in self.task_names}
        return logits, time.perf_counter() - start


class SimulatedLink:
    """Accounts transfer time for payloads using a channel model.

    The transfer is simulated (no wall-clock sleep): the link records the
    modelled seconds so pipeline traces stay fast to produce while still
    reflecting the channel.
    """

    def __init__(self, channel: NetworkChannel):
        self.channel = channel
        self.bytes_sent = 0
        self.messages_sent = 0

    def send(self, payload: bytes) -> float:
        """Return the modelled transfer time for ``payload``."""
        self.bytes_sent += len(payload)
        self.messages_sent += 1
        return self.channel.transfer_seconds(len(payload))


class SplitPipeline:
    """End-to-end MTL-Split deployment: edge → link → server.

    Build one with :meth:`from_net`; call :meth:`infer` per batch and
    read the accumulated :attr:`traces`.
    """

    def __init__(self, edge: EdgeRuntime, link: SimulatedLink, server: ServerRuntime):
        self.edge = edge
        self.link = link
        self.server = server
        self.traces: List[InferenceTrace] = []

    @classmethod
    def from_net(
        cls,
        net: MTLSplitNet,
        channel: NetworkChannel,
        split_index: Optional[int] = None,
        input_size: int = 32,
        wire_format: WireFormat = WireFormat(),
    ) -> "SplitPipeline":
        """Split ``net`` and wire the halves through a simulated channel."""
        edge_model, server_model = net.split(split_index, input_size=input_size)
        return cls(
            EdgeRuntime(edge_model, wire_format),
            SimulatedLink(channel),
            ServerRuntime(server_model, net.task_names),
        )

    def infer(self, images: np.ndarray) -> Dict[str, np.ndarray]:
        """Run one batch through the full deployment and record a trace."""
        payload, edge_s = self.edge.infer(images)
        transfer_s = self.link.send(payload)
        logits, server_s = self.server.infer(payload)
        self.traces.append(
            InferenceTrace(
                batch_size=images.shape[0],
                payload_bytes=len(payload),
                edge_seconds=edge_s,
                transfer_seconds=transfer_s,
                server_seconds=server_s,
            )
        )
        return logits

    # ------------------------------------------------------------------
    def total_transfer_seconds(self) -> float:
        return sum(t.transfer_seconds for t in self.traces)

    def total_seconds(self) -> float:
        return sum(t.total_seconds for t in self.traces)

    def mean_payload_bytes(self) -> float:
        if not self.traces:
            return 0.0
        return float(np.mean([t.payload_bytes for t in self.traces]))
