"""Batch-independent normalisation layers.

Batch statistics are unreliable at the very small batch sizes an edge
device can afford; GroupNorm and LayerNorm normalise per sample and so
behave identically in training and eval.  They are drop-in alternatives
for the backbones' BatchNorm when experimenting with on-device
fine-tuning (the paper's Sec. 3.3 scenario run *on* the edge).
"""

from __future__ import annotations

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["GroupNorm", "LayerNorm"]


class GroupNorm(Module):
    """Group normalisation over NCHW tensors (Wu & He, 2018).

    Channels are divided into ``num_groups`` groups; each sample's group
    is normalised by its own mean/variance, then scaled and shifted by
    learnable per-channel affine parameters.
    """

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"num_channels={num_channels} not divisible by num_groups={num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(init.ones((num_channels,)))
        self.bias = Parameter(init.zeros((num_channels,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"GroupNorm({self.num_groups}, {self.num_channels}) got shape {x.shape}"
            )
        n, c, h, w = x.shape
        grouped = x.reshape(n, self.num_groups, c // self.num_groups * h * w)
        mean = grouped.mean(axis=2, keepdims=True)
        var = grouped.var(axis=2, keepdims=True)
        normalized = (grouped - mean) / (var + self.eps).sqrt()
        normalized = normalized.reshape(n, c, h, w)
        return normalized * self.weight.reshape(1, -1, 1, 1) + self.bias.reshape(1, -1, 1, 1)

    def __repr__(self) -> str:
        return f"GroupNorm({self.num_groups}, {self.num_channels}, eps={self.eps})"


class LayerNorm(Module):
    """Layer normalisation over the trailing feature dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.normalized_shape:
            raise ValueError(
                f"LayerNorm({self.normalized_shape}) got trailing dim {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.weight + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape}, eps={self.eps})"
