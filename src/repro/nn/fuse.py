"""Eval-mode inference compiler: BN folding, activation fusion, flat op lists.

Training needs the autograd graph; deployment does not.  The edge half of
the split pipeline spends its time in eval-mode forward passes, yet each
pass still built backward closures, wrapped every intermediate in a
:class:`~repro.nn.tensor.Tensor`, and re-normalised with batch-norm
statistics that are constants at inference time.  This module removes all
of that: :func:`compile_module` lowers a module tree into a flat list of
numpy-only ops, folds eval-mode batch normalisation into the preceding
convolution / linear weights, fuses elementwise activations into their
producer (applied in place on freshly allocated outputs), and executes
convolutions through :func:`repro.nn.functional.cached_einsum` contraction
plans with optionally reused output buffers.

The result is an :class:`InferenceSession` whose outputs match the
eval-mode ``Tensor`` forward within ``1e-4`` — the guarantee the property
tests assert — while skipping every graph-construction cost.

Module types without a registered lowering rule degrade gracefully to a
:class:`FallbackOp` that round-trips through the normal ``no_grad``
forward, so compilation never changes behaviour, only speed.
"""

from __future__ import annotations

import math
import time as _time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from . import activations as A
from . import layers as L
from .functional import _pair, cached_einsum, conv_output_size
from .module import Identity, Module, Sequential
from .tensor import Tensor, no_grad

__all__ = [
    "InferenceSession",
    "compile_module",
    "compile_ops",
    "lower_module",
    "optimise_ops",
    "register_lowerer",
    "register_chain",
    "verify_session",
    "ConvOp",
    "LinearOp",
    "AffineOp",
    "ActOp",
    "ResidualOp",
    "SqueezeExciteOp",
    "FallbackOp",
]


# ---------------------------------------------------------------------------
# In-place activation kernels (operate on arrays the producing op owns)
# ---------------------------------------------------------------------------
def _relu_(y: np.ndarray) -> np.ndarray:
    return np.maximum(y, 0.0, out=y)


def _relu6_(y: np.ndarray) -> np.ndarray:
    return np.clip(y, 0.0, 6.0, out=y)


def _sigmoid_(y: np.ndarray) -> np.ndarray:
    np.clip(y, -60.0, 60.0, out=y)  # exp stays finite in float32
    np.negative(y, out=y)
    np.exp(y, out=y)
    y += 1.0
    return np.reciprocal(y, out=y)


def _hard_sigmoid_(y: np.ndarray) -> np.ndarray:
    y += 3.0
    np.clip(y, 0.0, 6.0, out=y)
    y *= 1.0 / 6.0
    return y


def _silu_(y: np.ndarray) -> np.ndarray:
    y *= _sigmoid_(y.copy())
    return y


def _hard_swish_(y: np.ndarray) -> np.ndarray:
    gate = y + 3.0
    np.clip(gate, 0.0, 6.0, out=gate)
    gate *= 1.0 / 6.0
    y *= gate
    return y


def _tanh_(y: np.ndarray) -> np.ndarray:
    return np.tanh(y, out=y)


def _gelu_(y: np.ndarray) -> np.ndarray:
    inner = y * y * y
    inner *= 0.044715
    inner += y
    inner *= math.sqrt(2.0 / math.pi)
    np.tanh(inner, out=inner)
    inner += 1.0
    inner *= 0.5
    y *= inner
    return y


def _leaky_relu_kernel(negative_slope: float) -> Callable[[np.ndarray], np.ndarray]:
    negative_slope = float(negative_slope)

    def kernel(y: np.ndarray) -> np.ndarray:
        np.multiply(y, negative_slope, out=y, where=y < 0)
        return y

    # The planning engine re-expresses the kernel allocation-free and
    # needs the slope back; expose it rather than forcing closure digs.
    kernel.negative_slope = negative_slope
    return kernel


_ACT_KERNELS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": _relu_,
    "relu6": _relu6_,
    "sigmoid": _sigmoid_,
    "hard_sigmoid": _hard_sigmoid_,
    "silu": _silu_,
    "hard_swish": _hard_swish_,
    "tanh": _tanh_,
    "gelu": _gelu_,
}


# ---------------------------------------------------------------------------
# Ops — each is a callable ndarray -> ndarray owning its parameters
# ---------------------------------------------------------------------------
class _Op:
    """Base inference op.  ``act`` (when set) runs in place on the output."""

    name = "op"
    fusable = False  # can absorb a trailing AffineOp / ActOp

    def __init__(self):
        self.act: Optional[Callable[[np.ndarray], np.ndarray]] = None
        self.act_name: Optional[str] = None

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> bool:
        return False

    def fuse_activation(self, name: str, kernel: Callable[[np.ndarray], np.ndarray]) -> bool:
        if not self.fusable or self.act is not None:
            return False
        self.act = kernel
        self.act_name = name
        return True

    def __call__(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> str:
        label = self.name
        if self.act_name:
            label += f"+{self.act_name}"
        return label


class ConvOp(_Op):
    """Fused 2-D convolution (grouped/depthwise included) on raw arrays.

    Execution is shape-specialised at call time:

    * pointwise (1x1, unpadded, ungrouped) → one broadcast GEMM;
    * depthwise (groups == channels)       → kernel-offset accumulation
      over strided views (kh*kw fused elementwise passes, no im2col);
    * general ungrouped                    → im2col + GEMM;
    * anything else                        → grouped einsum with a cached
      contraction plan.
    """

    name = "conv2d"
    fusable = True

    def __init__(self, weight, bias, stride, padding, groups: int = 1):
        super().__init__()
        self.sh, self.sw = _pair(stride)
        self.ph, self.pw = _pair(padding)
        self.groups = int(groups)
        # Snapshot (not alias) the weights: optimisers update parameters in
        # place, and the session must keep serving the compiled state.
        self.weight = np.array(weight, dtype=np.float32, order="C", copy=True)
        self.c_out, self.c_in_g, self.kh, self.kw = self.weight.shape
        self.bias = (
            np.asarray(bias, dtype=np.float32).reshape(1, -1, 1, 1).copy()
            if bias is not None
            else None
        )
        self.reuse_buffers = False
        self._flat_wt: Optional[np.ndarray] = None
        self._w_g: Optional[np.ndarray] = None
        self._acc_buf: Optional[np.ndarray] = None
        self._kernel_choice: Dict[Tuple[int, ...], Callable] = {}
        self._im2col_idx: Dict[Tuple[int, ...], Optional[np.ndarray]] = {}
        self._dw_offsets: Dict[Tuple[int, ...], list] = {}

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> bool:
        if self.act is not None:
            return False
        scale = scale.reshape(-1).astype(np.float32)
        shift = shift.reshape(-1).astype(np.float32)
        self.weight = np.ascontiguousarray(self.weight * scale.reshape(-1, 1, 1, 1))
        folded = shift if self.bias is None else self.bias.reshape(-1) * scale + shift
        self.bias = folded.reshape(1, -1, 1, 1).copy()
        self._flat_wt = None
        self._w_g = None
        self._dw_offsets.clear()  # holds snapshots of the pre-fold weights
        self.name = "conv2d(bn-folded)"
        return True

    # -- cached weight layouts -----------------------------------------
    def _flat_weight_t(self) -> np.ndarray:
        # (c_in*kh*kw, c_out) for the GEMM paths.
        if self._flat_wt is None:
            self._flat_wt = np.ascontiguousarray(
                self.weight.reshape(self.c_out, -1).T
            )
        return self._flat_wt

    def _grouped_weight(self) -> np.ndarray:
        if self._w_g is None:
            g = self.groups
            self._w_g = np.ascontiguousarray(
                self.weight.reshape(g, self.c_out // g, -1, self.kh, self.kw)
            )
        return self._w_g

    def _accumulator(self, shape: Tuple[int, ...]) -> np.ndarray:
        if not self.reuse_buffers:
            return np.zeros(shape, dtype=np.float32)
        if self._acc_buf is None or self._acc_buf.shape != shape:
            self._acc_buf = np.zeros(shape, dtype=np.float32)
        else:
            self._acc_buf.fill(0.0)
        return self._acc_buf

    # -- execution ------------------------------------------------------
    def __call__(self, x: np.ndarray) -> np.ndarray:
        n, c_in, h, w = x.shape
        ho = conv_output_size(h, self.kh, self.sh, self.ph)
        wo = conv_output_size(w, self.kw, self.sw, self.pw)
        if self.kh == 1 and self.kw == 1 and self.groups == 1 and not (self.ph or self.pw):
            out = self._pointwise(x, n, c_in, ho, wo)
        else:
            x_pad = (
                np.pad(x, ((0, 0), (0, 0), (self.ph, self.ph), (self.pw, self.pw)))
                if (self.ph or self.pw)
                else x
            )
            if self.groups == c_in and self.c_in_g == 1 and self.c_out == self.groups:
                out = self._tuned(
                    x_pad, n, c_in, ho, wo,
                    self._depthwise_offsets, self._depthwise_einsum,
                )
            elif self.groups == 1:
                out = self._tuned(x_pad, n, c_in, ho, wo, self._im2col, self._grouped)
            else:
                out = self._grouped(x_pad, n, c_in, ho, wo)
        if self.bias is not None:
            out += self.bias
        if self.act is not None:
            out = self.act(out)
        return out

    def _pointwise(self, x, n, c_in, ho, wo):
        if self.sh > 1 or self.sw > 1:
            x = np.ascontiguousarray(x[:, :, :: self.sh, :: self.sw])
        y = self._flat_weight_t().T @ x.reshape(n, c_in, ho * wo)
        return y.reshape(n, self.c_out, ho, wo)

    # -- cached gather/offset indices (keyed by padded input shape) ----
    def _depthwise_offset_table(self, pad_shape, ho, wo):
        """Per-geometry list of (channel weight column, h-slice, w-slice).

        The kernel-offset loop re-derived its strided slices and weight
        views on every call; the table is built once per input geometry
        (batch-independent, so ragged final batches share it).
        """
        key = pad_shape[1:]
        table = self._dw_offsets.get(key)
        if table is None:
            w_chan = self.weight.reshape(self.c_out, self.kh, self.kw)
            eh = (ho - 1) * self.sh + 1
            ew = (wo - 1) * self.sw + 1
            table = [
                (
                    np.ascontiguousarray(w_chan[None, :, i, j, None, None]),
                    slice(i, i + eh, self.sh),
                    slice(j, j + ew, self.sw),
                )
                for i in range(self.kh)
                for j in range(self.kw)
            ]
            self._dw_offsets[key] = table
        return table

    # Above this size a gather-index table would cost more memory than it
    # saves time; the sliding-window path handles those shapes instead.
    _IM2COL_IDX_MAX_ELEMS = 2_000_000

    def _im2col_index(self, pad_shape, ho, wo) -> Optional[np.ndarray]:
        """Flat gather indices (ho*wo, c_in*kh*kw) into the padded input.

        Cached per input geometry (batch-independent): one fancy-index
        gather then replaces the strided window materialisation on every
        subsequent call.
        """
        key = pad_shape[1:]
        if key in self._im2col_idx:
            return self._im2col_idx[key]
        c_in, hp, wp = key
        nelems = ho * wo * c_in * self.kh * self.kw
        if nelems > self._IM2COL_IDX_MAX_ELEMS:
            self._im2col_idx[key] = None
            return None
        oi = (np.arange(ho) * self.sh).reshape(-1, 1, 1, 1, 1)
        oj = (np.arange(wo) * self.sw).reshape(1, -1, 1, 1, 1)
        ci = np.arange(c_in).reshape(1, 1, -1, 1, 1)
        ki = np.arange(self.kh).reshape(1, 1, 1, -1, 1)
        kj = np.arange(self.kw).reshape(1, 1, 1, 1, -1)
        idx = ((ci * hp + oi + ki) * wp + oj + kj).reshape(
            ho * wo, c_in * self.kh * self.kw
        )
        idx = np.ascontiguousarray(idx, dtype=np.intp)
        self._im2col_idx[key] = idx
        return idx

    def _depthwise_offsets(self, x_pad, n, c_in, ho, wo):
        out = self._accumulator((n, self.c_out, ho, wo))
        for w_col, h_slice, w_slice in self._depthwise_offset_table(
            x_pad.shape, ho, wo
        ):
            out += x_pad[:, :, h_slice, w_slice] * w_col
        return out

    def _depthwise_einsum(self, x_pad, n, c_in, ho, wo):
        windows = np.lib.stride_tricks.sliding_window_view(
            x_pad, (self.kh, self.kw), axis=(-2, -1)
        )[:, :, :: self.sh, :: self.sw, :, :]
        w_chan = self.weight.reshape(self.c_out, self.kh, self.kw)
        return cached_einsum("nchwij,cij->nchw", windows, w_chan)

    def _tuned(self, x_pad, n, c_in, ho, wo, first, second):
        """Auto-tune between two equivalent kernels for this input shape.

        Which path wins depends on the channel/spatial mix (GEMM-style
        kernels pay layout copies, strided kernels pay per-offset numpy
        dispatch), so the first call per shape times both and the winner
        is cached.
        """
        choice = self._kernel_choice.get(x_pad.shape)
        if choice is None:
            # Warm both once so one-time setup (weight layout copies,
            # einsum contraction plans) does not bias the timed race.
            first(x_pad, n, c_in, ho, wo)
            second(x_pad, n, c_in, ho, wo)
            t0 = _time.perf_counter()
            out = first(x_pad, n, c_in, ho, wo)
            t1 = _time.perf_counter()
            second(x_pad, n, c_in, ho, wo)
            t2 = _time.perf_counter()
            self._kernel_choice[x_pad.shape] = first if (t1 - t0) <= (t2 - t1) else second
            return out
        return choice(x_pad, n, c_in, ho, wo)

    def _im2col(self, x_pad, n, c_in, ho, wo):
        idx = self._im2col_index(x_pad.shape, ho, wo)
        if idx is not None:
            cols = x_pad.reshape(n, -1)[:, idx].reshape(
                n * ho * wo, c_in * self.kh * self.kw
            )
        else:  # shape too large for an index table: strided window copy
            windows = np.lib.stride_tricks.sliding_window_view(
                x_pad, (self.kh, self.kw), axis=(-2, -1)
            )[:, :, :: self.sh, :: self.sw, :, :]
            cols = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5)).reshape(
                n * ho * wo, c_in * self.kh * self.kw
            )
        y = cols @ self._flat_weight_t()
        return np.ascontiguousarray(
            y.reshape(n, ho, wo, self.c_out).transpose(0, 3, 1, 2)
        )

    def _grouped(self, x_pad, n, c_in, ho, wo):
        g = self.groups
        windows = np.lib.stride_tricks.sliding_window_view(
            x_pad, (self.kh, self.kw), axis=(-2, -1)
        )[:, :, :: self.sh, :: self.sw, :, :]
        win_g = windows.reshape(n, g, c_in // g, ho, wo, self.kh, self.kw)
        out = cached_einsum("ngchwij,gocij->ngohw", win_g, self._grouped_weight())
        return out.reshape(n, self.c_out, ho, wo)


class LinearOp(_Op):
    """Fused affine map ``x @ W.T + b``."""

    name = "linear"
    fusable = True

    def __init__(self, weight, bias):
        super().__init__()
        # Store the transpose contiguously so the GEMM needs no copy.
        self.wt = np.ascontiguousarray(np.asarray(weight, dtype=np.float32).T)
        self.bias = np.asarray(bias, dtype=np.float32).copy() if bias is not None else None

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> bool:
        if self.act is not None:
            return False
        scale = scale.reshape(-1).astype(np.float32)
        shift = shift.reshape(-1).astype(np.float32)
        self.wt = np.ascontiguousarray(self.wt * scale)
        self.bias = shift if self.bias is None else self.bias * scale + shift
        self.name = "linear(bn-folded)"
        return True

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.wt
        if self.bias is not None:
            out += self.bias
        if self.act is not None:
            out = self.act(out)
        return out


class AffineOp(_Op):
    """Per-channel ``x * scale + shift`` — eval-mode batch norm.

    Usually folded into the preceding conv/linear by :func:`optimise_ops`;
    runs standalone when no foldable producer precedes it.
    """

    name = "affine"
    fusable = True

    def __init__(self, scale: np.ndarray, shift: np.ndarray, view: Tuple[int, ...]):
        super().__init__()
        self.scale = np.array(scale, dtype=np.float32, copy=True).reshape(view)
        self.shift = np.array(shift, dtype=np.float32, copy=True).reshape(view)

    @classmethod
    def from_batch_norm(cls, bn: "L._BatchNorm") -> "AffineOp":
        inv = 1.0 / np.sqrt(bn._buffers["running_var"] + bn.eps)
        scale = bn.weight.data * inv
        shift = bn.bias.data - bn._buffers["running_mean"] * scale
        view = (1, -1, 1, 1) if isinstance(bn, L.BatchNorm2d) else (1, -1)
        return cls(scale, shift, view)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = x * self.scale
        out += self.shift
        if self.act is not None:
            out = self.act(out)
        return out


class ActOp(_Op):
    """Standalone elementwise activation (copies; the input may be shared)."""

    def __init__(self, act_name: str, kernel: Callable[[np.ndarray], np.ndarray]):
        super().__init__()
        self.name = act_name
        self.kernel = kernel

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.kernel(x.copy())


class MaxPoolOp(_Op):
    name = "max_pool2d"
    fusable = True

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kh, self.kw = _pair(kernel_size)
        self.sh, self.sw = _pair(stride) if stride is not None else (self.kh, self.kw)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        h, w = x.shape[-2:]
        kh, kw, sh, sw = self.kh, self.kw, self.sh, self.sw
        # Running elementwise maximum over the kh*kw kernel offsets: far
        # faster than any windowed reduction (numpy reduces strided
        # window views an order of magnitude slower than fused maximum).
        ho = conv_output_size(h, kh, sh, 0)
        wo = conv_output_size(w, kw, sw, 0)
        eh = (ho - 1) * sh + 1
        ew = (wo - 1) * sw + 1
        out = x[:, :, 0:eh:sh, 0:ew:sw].copy()
        for i in range(kh):
            for j in range(kw):
                if i == 0 and j == 0:
                    continue
                np.maximum(out, x[:, :, i : i + eh : sh, j : j + ew : sw], out=out)
        if self.act is not None:
            out = self.act(out)
        return out


class AvgPoolOp(_Op):
    name = "avg_pool2d"
    fusable = True

    def __init__(self, kernel_size=None, stride=None, adaptive_output=None):
        super().__init__()
        self.adaptive_output = _pair(adaptive_output) if adaptive_output is not None else None
        if kernel_size is not None:
            self.kh, self.kw = _pair(kernel_size)
            self.sh, self.sw = _pair(stride) if stride is not None else (self.kh, self.kw)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.adaptive_output is not None:
            oh, ow = self.adaptive_output
            h, w = x.shape[-2:]
            if (oh, ow) == (1, 1):
                out = x.mean(axis=(2, 3), keepdims=True)
                return self.act(out) if self.act is not None else out
            if h % oh or w % ow:
                raise ValueError(
                    f"adaptive_avg_pool2d needs divisible sizes, got {(h, w)} -> {(oh, ow)}"
                )
            kh, kw = h // oh, w // ow
            sh, sw = kh, kw
        else:
            kh, kw, sh, sw = self.kh, self.kw, self.sh, self.sw
        h, w = x.shape[-2:]
        ho = conv_output_size(h, kh, sh, 0)
        wo = conv_output_size(w, kw, sw, 0)
        eh = (ho - 1) * sh + 1
        ew = (wo - 1) * sw + 1
        out = x[:, :, 0:eh:sh, 0:ew:sw].astype(np.float32)
        for i in range(kh):
            for j in range(kw):
                if i == 0 and j == 0:
                    continue
                out += x[:, :, i : i + eh : sh, j : j + ew : sw]
        out *= 1.0 / (kh * kw)
        if self.act is not None:
            out = self.act(out)
        return out


class GlobalAvgPoolOp(_Op):
    name = "global_avg_pool2d"
    fusable = True

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = x.mean(axis=(2, 3), keepdims=True, dtype=np.float32)
        if self.act is not None:
            out = self.act(out)
        return out


class FlattenOp(_Op):
    name = "flatten"

    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[: self.start_dim] + (-1,))


class ReshapeOp(_Op):
    """Restore a trailing feature shape (undoes the wire flattening)."""

    name = "reshape"

    def __init__(self, feature_shape: Tuple[int, ...]):
        super().__init__()
        self.feature_shape = tuple(feature_shape)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x.reshape((x.shape[0],) + self.feature_shape)


class ResidualOp(_Op):
    """Skip connection: run the inner program, add the input back."""

    name = "residual"

    def __init__(self, inner: Sequence[_Op]):
        super().__init__()
        self.inner = list(inner)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = x
        for op in self.inner:
            out = op(out)
        # In-place accumulate only into storage this op's program owns.
        if out is x or out.base is not None:
            return out + x
        out += x
        return out

    def describe(self) -> str:
        return "residual[" + " -> ".join(op.describe() for op in self.inner) + "]"


class SqueezeExciteOp(_Op):
    """Squeeze-and-excite gating collapsed to two small GEMMs.

    The 1x1 convolutions of the SE block operate on a (N, C, 1, 1) tensor,
    so they are plain matrix products on the pooled channel vector.
    """

    name = "squeeze_excite"

    def __init__(self, reduce_w, reduce_b, expand_w, expand_b, bottleneck: str, gate: str):
        super().__init__()
        self.reduce_wt = np.ascontiguousarray(
            np.asarray(reduce_w, dtype=np.float32).reshape(reduce_w.shape[0], -1).T
        )
        self.reduce_b = np.asarray(reduce_b, dtype=np.float32).copy()
        self.expand_wt = np.ascontiguousarray(
            np.asarray(expand_w, dtype=np.float32).reshape(expand_w.shape[0], -1).T
        )
        self.expand_b = np.asarray(expand_b, dtype=np.float32).copy()
        self.bottleneck_name = bottleneck
        self.gate_name = gate
        self.bottleneck = _ACT_KERNELS[bottleneck]
        self.gate = _ACT_KERNELS[gate]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        pooled = x.mean(axis=(2, 3), dtype=np.float32)
        hidden = pooled @ self.reduce_wt
        hidden += self.reduce_b
        hidden = self.bottleneck(hidden)
        gate = hidden @ self.expand_wt
        gate += self.expand_b
        gate = self.gate(gate)
        return x * gate[:, :, None, None]

    def describe(self) -> str:
        return f"squeeze_excite({self.bottleneck_name}/{self.gate_name})"


class FallbackOp(_Op):
    """Safety net: run an uncompilable module through its normal forward."""

    def __init__(self, module: Module):
        super().__init__()
        self.module = module
        self.name = f"fallback:{type(module).__name__}"

    def __call__(self, x: np.ndarray):
        with no_grad():
            out = self.module(Tensor(x))
        if isinstance(out, dict):
            return {name: value.data for name, value in out.items()}
        return out.data


# ---------------------------------------------------------------------------
# Lowering registry
# ---------------------------------------------------------------------------
_Lowered = Union[List[_Op], "InferenceSession"]
_LOWERERS: Dict[Type[Module], Callable[[Module], _Lowered]] = {}


def register_lowerer(cls: Type[Module]):
    """Class decorator registering a lowering rule for ``cls``.

    The rule receives the module and returns either a list of ops or a
    complete :class:`InferenceSession` (for multi-output architectures).
    """

    def decorate(fn: Callable[[Module], _Lowered]):
        _LOWERERS[cls] = fn
        return fn

    return decorate


def register_chain(cls: Type[Module], children: Callable[[Module], Sequence[Module]]) -> None:
    """Register ``cls`` as a straight chain of the modules ``children`` yields."""

    def lower(module: Module) -> List[_Op]:
        ops: List[_Op] = []
        for child in children(module):
            ops.extend(lower_module(child))
        return ops

    _LOWERERS[cls] = lower


def lower_module(module: Module) -> List[_Op]:
    """Lower one module to raw (un-optimised) ops; unknown types fall back."""
    for klass in type(module).__mro__:
        fn = _LOWERERS.get(klass)
        if fn is not None:
            lowered = fn(module)
            if isinstance(lowered, InferenceSession):
                raise TypeError(
                    f"{type(module).__name__} compiles to a full session and "
                    "cannot be embedded inside another program"
                )
            return lowered
    return [FallbackOp(module)]


def optimise_ops(ops: Sequence[_Op]) -> List[_Op]:
    """Peephole pass: fold affine (BN) into producers, fuse activations."""
    out: List[_Op] = []
    for op in ops:
        if isinstance(op, AffineOp) and op.act is None and out:
            if out[-1].fold_affine(op.scale, op.shift):
                continue
        if isinstance(op, ActOp) and out:
            if out[-1].fuse_activation(op.name, op.kernel):
                continue
        out.append(op)
    return out


def compile_ops(module: Module) -> List[_Op]:
    """Lower ``module`` and run the fusion pass; always returns an op list."""
    return optimise_ops(lower_module(module))


def compile_module(module: Module) -> "InferenceSession":
    """Compile any module into an :class:`InferenceSession`.

    Architectures with a registered session builder (e.g. multi-head nets)
    return their dedicated session; everything else becomes a single
    flat program.
    """
    for klass in type(module).__mro__:
        fn = _LOWERERS.get(klass)
        if fn is not None:
            lowered = fn(module)
            if isinstance(lowered, InferenceSession):
                return lowered
            return InferenceSession(optimise_ops(lowered))
    return InferenceSession([FallbackOp(module)])


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------
class InferenceSession:
    """A compiled, autograd-free forward pass.

    ``ops`` is the trunk program; ``heads`` (optional) maps output names to
    branch programs run on the trunk output, giving the multi-task
    ``{name: logits}`` dictionary the uncompiled nets return.
    """

    def __init__(
        self,
        ops: Sequence[_Op],
        heads: Optional[Dict[str, Sequence[_Op]]] = None,
    ):
        self.ops = list(ops)
        self.heads = {name: list(prog) for name, prog in heads.items()} if heads else None

    # -- execution ------------------------------------------------------
    def run(self, x: np.ndarray):
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
        for op in self.ops:
            x = op(x)
        if self.heads is None:
            return x
        outputs = {}
        for name, program in self.heads.items():
            y = x
            for op in program:
                y = op(y)
            outputs[name] = y
        return outputs

    __call__ = run

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release execution resources.

        A plain session owns nothing beyond its op list (cached buffers
        are reclaimed by the garbage collector), so this is a no-op; it
        exists so callers can close any session-shaped executor —
        including :class:`~repro.nn.engine.PlannedExecutor`, whose
        ``close`` stops worker threads — without type-switching.
        """

    def __enter__(self) -> "InferenceSession":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- buffer management ---------------------------------------------
    def enable_buffer_reuse(self) -> "InferenceSession":
        """Reuse convolution output buffers across calls.

        Only safe when each ``run`` result is fully consumed before the
        next call (e.g. the edge runtime, which serialises ``Z_b`` to
        bytes immediately); outputs may alias internal storage.
        """
        for op in self._walk():
            if hasattr(op, "reuse_buffers"):
                op.reuse_buffers = True
        return self

    def _walk(self):
        programs = [self.ops] + (list(self.heads.values()) if self.heads else [])
        stack = [op for program in programs for op in program]
        while stack:
            op = stack.pop()
            yield op
            if isinstance(op, ResidualOp):
                stack.extend(op.inner)

    # -- introspection --------------------------------------------------
    @property
    def num_ops(self) -> int:
        return sum(1 for _ in self._walk())

    def describe(self) -> str:
        lines = [op.describe() for op in self.ops]
        if self.heads:
            for name, program in self.heads.items():
                chain = " -> ".join(op.describe() for op in program) or "identity"
                lines.append(f"[{name}] {chain}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        heads = f", heads={list(self.heads)}" if self.heads else ""
        return f"InferenceSession(ops={len(self.ops)}{heads})"


def verify_session(
    module: Module,
    session: InferenceSession,
    sample_input: np.ndarray,
    atol: float = 1e-4,
) -> None:
    """Assert the compiled session matches the eval-mode forward.

    Raises ``AssertionError`` with the offending output name when the
    divergence exceeds ``atol``; used by ``compile_for_inference`` when a
    sample batch is provided.
    """
    # Restore per-module flags exactly: a blanket train(mode) would clobber
    # the state of sub-modules shared with other wrappers (e.g. split halves).
    modes = [(m, m.training) for _, m in module.named_modules()]
    module.eval()
    try:
        with no_grad():
            reference = module(Tensor(np.asarray(sample_input, dtype=np.float32)))
        compiled = session.run(sample_input)
        if isinstance(reference, dict):
            for name, ref in reference.items():
                np.testing.assert_allclose(
                    compiled[name], ref.data, atol=atol,
                    err_msg=f"compiled output {name!r} diverged from eval forward",
                )
        else:
            np.testing.assert_allclose(
                compiled, reference.data, atol=atol,
                err_msg="compiled output diverged from eval forward",
            )
    finally:
        for m, flag in modes:
            object.__setattr__(m, "training", flag)


# ---------------------------------------------------------------------------
# Built-in lowering rules for the nn substrate
# ---------------------------------------------------------------------------
@register_lowerer(Sequential)
def _lower_sequential(module: Sequential) -> List[_Op]:
    ops: List[_Op] = []
    for child in module:
        ops.extend(lower_module(child))
    return ops


@register_lowerer(Identity)
def _lower_identity(module: Identity) -> List[_Op]:
    return []


@register_lowerer(L.Dropout)
def _lower_dropout(module: L.Dropout) -> List[_Op]:
    return []  # inert in eval mode


@register_lowerer(L.Conv2d)
def _lower_conv(module: L.Conv2d) -> List[_Op]:
    bias = module.bias.data if module.bias is not None else None
    return [
        ConvOp(module.weight.data, bias, module.stride, module.padding, module.groups)
    ]


@register_lowerer(L.Linear)
def _lower_linear(module: L.Linear) -> List[_Op]:
    bias = module.bias.data if module.bias is not None else None
    return [LinearOp(module.weight.data, bias)]


@register_lowerer(L._BatchNorm)
def _lower_batch_norm(module: "L._BatchNorm") -> List[_Op]:
    return [AffineOp.from_batch_norm(module)]


@register_lowerer(L.MaxPool2d)
def _lower_max_pool(module: L.MaxPool2d) -> List[_Op]:
    return [MaxPoolOp(module.kernel_size, module.stride)]


@register_lowerer(L.AvgPool2d)
def _lower_avg_pool(module: L.AvgPool2d) -> List[_Op]:
    return [AvgPoolOp(module.kernel_size, module.stride)]


@register_lowerer(L.AdaptiveAvgPool2d)
def _lower_adaptive_avg_pool(module: L.AdaptiveAvgPool2d) -> List[_Op]:
    return [AvgPoolOp(adaptive_output=module.output_size)]


@register_lowerer(L.Flatten)
def _lower_flatten(module: L.Flatten) -> List[_Op]:
    return [FlattenOp(module.start_dim)]


def _act_rule(cls: Type[Module], act_name: str) -> None:
    _LOWERERS[cls] = lambda module: [ActOp(act_name, _ACT_KERNELS[act_name])]


_act_rule(A.ReLU, "relu")
_act_rule(A.ReLU6, "relu6")
_act_rule(A.Sigmoid, "sigmoid")
_act_rule(A.HardSigmoid, "hard_sigmoid")
_act_rule(A.SiLU, "silu")
_act_rule(A.HardSwish, "hard_swish")
_act_rule(A.Tanh, "tanh")
_act_rule(A.GELU, "gelu")


@register_lowerer(A.LeakyReLU)
def _lower_leaky_relu(module: A.LeakyReLU) -> List[_Op]:
    return [ActOp("leaky_relu", _leaky_relu_kernel(module.negative_slope))]
