"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

The MTL-Split paper implements its models in PyTorch; PyTorch is not
available offline in this environment, so this package provides the
minimal-but-complete equivalent: a reverse-mode autograd tensor, NCHW
convolutional ops (standard / grouped / depthwise), batch normalisation,
the activation zoo needed by VGG / MobileNetV3 / EfficientNet, losses,
AdamW-family optimisers, and ``.npz`` checkpointing — all verified against
numerical differentiation in the test suite.
"""

from . import functional, init
from .activations import (
    GELU,
    HardSigmoid,
    HardSwish,
    LeakyReLU,
    ReLU,
    ReLU6,
    Sigmoid,
    SiLU,
    Softmax,
    Tanh,
    resolve_activation,
)
from .autograd import gradcheck, numerical_gradient
from .layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
)
from .losses import BCEWithLogitsLoss, CrossEntropyLoss, L1Loss, MSELoss
from .module import Identity, Module, ModuleList, Parameter, Sequential
from .norm import GroupNorm, LayerNorm
from .rnn import GRUCell, RNN, RNNCell
from .optim import SGD, Adam, AdamW, CosineAnnealingLR, StepLR, clip_grad_norm
from .serialization import load_module, load_state, save_module, save_state
from .tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack
from . import fuse
from .fuse import InferenceSession, compile_module
from . import engine
from .engine import ExecutionPlan, PlannedExecutor, plan_session

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "fuse",
    "init",
    "InferenceSession",
    "compile_module",
    "engine",
    "ExecutionPlan",
    "PlannedExecutor",
    "plan_session",
    "gradcheck",
    "numerical_gradient",
    "Parameter",
    "Module",
    "Sequential",
    "ModuleList",
    "Identity",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Dropout",
    "Flatten",
    "GroupNorm",
    "LayerNorm",
    "RNNCell",
    "GRUCell",
    "RNN",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Sigmoid",
    "HardSigmoid",
    "SiLU",
    "HardSwish",
    "Tanh",
    "GELU",
    "Softmax",
    "resolve_activation",
    "CrossEntropyLoss",
    "MSELoss",
    "L1Loss",
    "BCEWithLogitsLoss",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "CosineAnnealingLR",
    "clip_grad_norm",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
]
