"""Arena-planned, multicore execution engine for compiled inference.

:mod:`repro.nn.fuse` removed the autograd graph from deployment forward
passes; this module removes the remaining steady-state costs.  PR 1's
pipeline benchmark showed the edge stage is the critical path and that it
is *not* FLOP-bound: the fused op list still allocated a fresh output per
op, re-padded and re-gathered convolution windows on every call, and fed
numpy kernels whose strided access patterns run far below GEMM speed.

:class:`ExecutionPlan` compiles a fused
:class:`~repro.nn.fuse.InferenceSession` for one fixed batch shape into a
straight-line list of buffer-bound steps:

* **shape inference** — a one-time dry trace through the op list records
  every intermediate shape (including :class:`~repro.nn.fuse.FallbackOp`
  outputs, which have no static shape rule);
* **column-major layout** — every value is stored ``(features..., batch)``
  so pointwise convolutions, linear layers and squeeze-excite gates are
  single contiguous GEMMs executed with ``out=`` into plan-owned buffers;
* **sparse-lowered convolutions** — padded/strided/grouped convolutions
  become CSR matrices built once at plan time (weights inlined for
  depthwise/grouped kernels; a 0/1 im2col gather matrix followed by one
  GEMM for large dense kernels), executed allocation-free through
  ``scipy.sparse``'s C kernels.  Padding is baked into the matrix, so no
  padded copy of the input is ever materialised;
* **liveness-based buffer arena** — every output and scratch buffer is
  acquired from a :class:`BufferArena` while the plan is built and
  released at its last use, so steady-state inference reuses a small set
  of preallocated blocks and performs **zero large allocations** per
  batch (``PlanStats.steady_state_allocs`` counts the exceptions, e.g.
  fallback ops).

:class:`PlannedExecutor` wraps plans behind the ``InferenceSession.run``
API, caches one plan per observed batch shape, and — with
``num_workers > 1`` — shards the batch across a persistent thread pool,
one plan and one arena per worker, so multi-core hosts run shards in
parallel (the GEMM/sparse kernels release the GIL).

Planned outputs match the unplanned compiled forward within 1e-6 — the
property the engine tests assert across backbones, split indices, batch
sizes and worker counts.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import fuse
from .fuse import (
    ActOp,
    AffineOp,
    AvgPoolOp,
    ConvOp,
    FallbackOp,
    FlattenOp,
    GlobalAvgPoolOp,
    InferenceSession,
    LinearOp,
    MaxPoolOp,
    ReshapeOp,
    ResidualOp,
    SqueezeExciteOp,
    _Op,
)

try:  # scipy ships in the supported environments; degrade gracefully without
    from scipy import sparse as _sparse
    from scipy.sparse import _sparsetools
except ImportError:  # pragma: no cover - exercised only on scipy-less hosts
    _sparse = None
    _sparsetools = None

_HAVE_SPARSE = _sparse is not None

__all__ = [
    "BufferArena",
    "ExecutionPlan",
    "PlanStats",
    "PlannedExecutor",
    "plan_session",
]

# Grouped/depthwise convolutions lower to a weight-valued CSR (each output
# row touches only c_in_g*kh*kw inputs, so the matrix is genuinely sparse);
# dense-kernel convolutions keep their contraction in BLAS via a 0/1 im2col
# gather matrix followed by one GEMM — sparse kernels run dense FLOPs far
# below GEMM speed.


# ---------------------------------------------------------------------------
# Zero-allocation sparse matmul
# ---------------------------------------------------------------------------
def _spmm(matrix, x2d: np.ndarray, out2d: np.ndarray) -> None:
    """``out2d[...] = matrix @ x2d`` without allocating the result.

    ``scipy.sparse`` has no ``out=`` interface, but its C kernel
    ``csr_matvecs`` accumulates ``Y += A @ X`` into caller-owned storage.
    """
    out2d.fill(0.0)
    _sparsetools.csr_matvecs(
        matrix.shape[0],
        matrix.shape[1],
        x2d.shape[1],
        matrix.indptr,
        matrix.indices,
        matrix.data,
        x2d.reshape(-1),
        out2d.reshape(-1),
    )


# ---------------------------------------------------------------------------
# In-place activations with explicit scratch (the fuse kernels for silu /
# hard_swish / gelu / leaky_relu allocate temporaries; the planned engine
# may not)
# ---------------------------------------------------------------------------
_SCRATCH_ACTS = frozenset({"silu", "hard_swish", "gelu", "leaky_relu"})


def _apply_act_planned(
    name: str, y: np.ndarray, scratch: Optional[np.ndarray], slope: float = 0.01
) -> None:
    """Run activation ``name`` in place on ``y`` using ``scratch`` if needed."""
    if name == "silu":
        np.copyto(scratch, y)
        fuse._sigmoid_(scratch)
        y *= scratch
    elif name == "hard_swish":
        np.add(y, 3.0, out=scratch)
        np.clip(scratch, 0.0, 6.0, out=scratch)
        scratch *= 1.0 / 6.0
        y *= scratch
    elif name == "gelu":
        np.multiply(y, y, out=scratch)
        scratch *= y
        scratch *= 0.044715
        scratch += y
        scratch *= 0.7978845608028654  # sqrt(2/pi)
        np.tanh(scratch, out=scratch)
        scratch += 1.0
        scratch *= 0.5
        y *= scratch
    elif name == "leaky_relu":
        # leaky(y) = max(y, 0) + slope * min(y, 0), allocation-free.
        np.maximum(y, 0.0, out=scratch)
        np.minimum(y, 0.0, out=y)
        y *= slope
        y += scratch
    else:
        fuse._ACT_KERNELS[name](y)


def _leaky_slope(op: _Op) -> float:
    """Recover ``negative_slope`` from a lowered leaky-relu kernel."""
    kernel = getattr(op, "kernel", None) or op.act
    slope = getattr(kernel, "negative_slope", None)
    if slope is None:
        raise _Unplannable(f"leaky_relu kernel on {op.describe()!r} has no slope")
    return float(slope)


# ---------------------------------------------------------------------------
# The arena
# ---------------------------------------------------------------------------
class _Block:
    __slots__ = ("data", "free")

    def __init__(self, nelems: int):
        self.data = np.empty(nelems, dtype=np.float32)
        self.free = False


class BufferArena:
    """Pool of float32 blocks with liveness-based reuse at plan time.

    ``acquire`` is only ever called while a plan is being *built*: it
    returns a view over a free block large enough for the request (or
    grows the arena by one block).  ``release`` marks a block reusable for
    ops later in the program.  After planning, the arena is frozen — the
    compiled steps hold views into its blocks and steady-state execution
    allocates nothing.
    """

    def __init__(self):
        self._blocks: List[_Block] = []
        self.requested_bytes = 0

    def acquire(self, shape: Tuple[int, ...]) -> Tuple[int, np.ndarray]:
        nelems = max(1, int(np.prod(shape)))
        self.requested_bytes += nelems * 4
        best = None
        for index, block in enumerate(self._blocks):
            if block.free and block.data.size >= nelems:
                if best is None or block.data.size < self._blocks[best].data.size:
                    best = index
        if best is None:
            self._blocks.append(_Block(nelems))
            best = len(self._blocks) - 1
        block = self._blocks[best]
        block.free = False
        return best, block.data[:nelems].reshape(shape)

    def release(self, block_id: int) -> None:
        self._blocks[block_id].free = True

    @property
    def nbytes(self) -> int:
        return sum(block.data.nbytes for block in self._blocks)

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)


@dataclass
class PlanStats:
    """Accounting for one plan (or the aggregate of an executor's plans)."""

    arena_bytes: int = 0
    arena_blocks: int = 0
    requested_bytes: int = 0
    steady_state_allocs: int = 0  # per-run allocations planning could not remove
    num_steps: int = 0
    sparse_ops: int = 0
    gemm_ops: int = 0
    fallback_ops: int = 0
    num_plans: int = 0
    num_workers: int = 1

    @property
    def reuse_ratio(self) -> float:
        """Fraction of buffer demand the arena served from reused blocks."""
        if not self.requested_bytes:
            return 0.0
        return 1.0 - self.arena_bytes / self.requested_bytes

    def merged(self, other: "PlanStats") -> "PlanStats":
        return PlanStats(
            arena_bytes=self.arena_bytes + other.arena_bytes,
            arena_blocks=self.arena_blocks + other.arena_blocks,
            requested_bytes=self.requested_bytes + other.requested_bytes,
            steady_state_allocs=self.steady_state_allocs + other.steady_state_allocs,
            num_steps=self.num_steps + other.num_steps,
            sparse_ops=self.sparse_ops + other.sparse_ops,
            gemm_ops=self.gemm_ops + other.gemm_ops,
            fallback_ops=self.fallback_ops + other.fallback_ops,
            num_plans=self.num_plans + other.num_plans,
            num_workers=max(self.num_workers, other.num_workers),
        )


# ---------------------------------------------------------------------------
# Values flowing through a plan
# ---------------------------------------------------------------------------
class _Value:
    """A planned intermediate: column-major storage plus its row shape."""

    __slots__ = ("array", "row_shape", "block_id")

    def __init__(self, array: np.ndarray, row_shape: Tuple[int, ...], block_id: Optional[int]):
        self.array = array  # shape row_shape[1:] + (batch,)
        self.row_shape = tuple(row_shape)
        self.block_id = block_id

    def as2d(self) -> np.ndarray:
        """View as (features, batch)."""
        return self.array.reshape(-1, self.row_shape[0])


class _Unplannable(Exception):
    """Raised at build time when a program cannot be statically planned."""


class _PlanContext:
    """Build-time state: arena with block refcounts, step list, stats.

    Ownership protocol: every planner *consumes* its input value exactly
    once after binding its steps (view ops pass the block through
    instead).  A planner that needs the input beyond its own steps — the
    residual skip, the shared trunk feeding several heads — takes an
    extra reference with :meth:`hold` and consumes it when done.  Blocks
    return to the arena when their refcount reaches zero, which makes
    double-frees (the dangerous failure: a block reused while a later
    step still reads it) structurally impossible.
    """

    def __init__(self, arena: BufferArena, stats: PlanStats, batch: int):
        self.arena = arena
        self.stats = stats
        self.batch = batch
        self.steps: List[Tuple[str, Callable[[], None]]] = []
        self._refs: Dict[int, int] = {}

    # -- buffers -------------------------------------------------------
    def acquire(self, row_shape: Tuple[int, ...]) -> _Value:
        col_shape = tuple(row_shape[1:]) + (row_shape[0],)
        block_id, array = self.arena.acquire(col_shape)
        self._refs[block_id] = 1
        return _Value(array, row_shape, block_id)

    def scratch(self, shape: Tuple[int, ...]) -> Tuple[int, np.ndarray]:
        block_id, array = self.arena.acquire(shape)
        self._refs[block_id] = 1
        return block_id, array

    def hold(self, value: _Value) -> None:
        if value.block_id is not None:
            self._refs[value.block_id] += 1

    def consume(self, value_or_id: Union[_Value, int, None]) -> None:
        block_id = (
            value_or_id.block_id if isinstance(value_or_id, _Value) else value_or_id
        )
        if block_id is None:
            return
        count = self._refs[block_id] - 1
        if count < 0:
            raise AssertionError(f"block {block_id} over-released during planning")
        self._refs[block_id] = count
        if count == 0:
            self.arena.release(block_id)

    def step(self, label: str, fn: Callable[[], None]) -> None:
        self.steps.append((label, fn))
        self.stats.num_steps += 1


# ---------------------------------------------------------------------------
# Sparse lowering of convolutions
# ---------------------------------------------------------------------------
def _weight_csr(op: ConvOp, c_in: int, h: int, w: int, ho: int, wo: int):
    """CSR of the full linear map (c_out*ho*wo, c_in*h*w), weights inlined.

    Entries that would read padding are simply dropped (they multiply
    implicit zeros), so the matrix consumes the *unpadded* input and no
    padded copy of the activation is ever materialised.
    """
    cig, kh, kw = op.c_in_g, op.kh, op.kw
    cog = op.c_out // op.groups
    o = np.arange(op.c_out).reshape(-1, 1, 1, 1, 1, 1)
    oi = np.arange(ho).reshape(1, -1, 1, 1, 1, 1)
    oj = np.arange(wo).reshape(1, 1, -1, 1, 1, 1)
    q = np.arange(cig).reshape(1, 1, 1, -1, 1, 1)
    ki = np.arange(kh).reshape(1, 1, 1, 1, -1, 1)
    kj = np.arange(kw).reshape(1, 1, 1, 1, 1, -1)
    in_i = oi * op.sh + ki - op.ph
    in_j = oj * op.sw + kj - op.pw
    ci = (o // cog) * cig + q
    shape6 = (op.c_out, ho, wo, cig, kh, kw)
    valid = np.broadcast_to(
        (in_i >= 0) & (in_i < h) & (in_j >= 0) & (in_j < w), shape6
    )
    rows = np.broadcast_to((o * ho + oi) * wo + oj, shape6)[valid]
    cols = np.broadcast_to((ci * h + in_i) * w + in_j, shape6)[valid]
    data = np.broadcast_to(op.weight[:, None, None, :, :, :], shape6)[valid]
    matrix = _sparse.csr_matrix(
        (data.astype(np.float32), (rows, cols)),
        shape=(op.c_out * ho * wo, c_in * h * w),
        dtype=np.float32,
    )
    matrix.sort_indices()
    return matrix


def _gather_csr(op: ConvOp, c_in: int, h: int, w: int, ho: int, wo: int):
    """0/1 CSR gathering im2col rows: (c_in*kh*kw*ho*wo, c_in*h*w)."""
    kh, kw = op.kh, op.kw
    ci = np.arange(c_in).reshape(-1, 1, 1, 1, 1)
    ki = np.arange(kh).reshape(1, -1, 1, 1, 1)
    kj = np.arange(kw).reshape(1, 1, -1, 1, 1)
    oi = np.arange(ho).reshape(1, 1, 1, -1, 1)
    oj = np.arange(wo).reshape(1, 1, 1, 1, -1)
    in_i = oi * op.sh + ki - op.ph
    in_j = oj * op.sw + kj - op.pw
    shape5 = (c_in, kh, kw, ho, wo)
    valid = np.broadcast_to(
        (in_i >= 0) & (in_i < h) & (in_j >= 0) & (in_j < w), shape5
    )
    rows = np.broadcast_to(
        (((ci * kh + ki) * kw + kj) * ho + oi) * wo + oj, shape5
    )[valid]
    cols = np.broadcast_to((ci * h + in_i) * w + in_j, shape5)[valid]
    matrix = _sparse.csr_matrix(
        (np.ones(rows.size, dtype=np.float32), (rows, cols)),
        shape=(c_in * kh * kw * ho * wo, c_in * h * w),
        dtype=np.float32,
    )
    matrix.sort_indices()
    return matrix


def _conv_csr_cached(op: ConvOp, kind: str, builder, c_in, h, w, ho, wo):
    """Build (or fetch) a conv's CSR.  The matrices are independent of the
    batch size, so worker shards and re-plans for new batch sizes share
    one matrix per input geometry."""
    cache = getattr(op, "_engine_csr_cache", None)
    if cache is None:
        cache = {}
        op._engine_csr_cache = cache
    key = (kind, h, w)
    matrix = cache.get(key)
    if matrix is None:
        matrix = builder(op, c_in, h, w, ho, wo)
        cache[key] = matrix
    return matrix


# ---------------------------------------------------------------------------
# Per-op planners
# ---------------------------------------------------------------------------
def _plan_act_inplace(ctx: _PlanContext, op: _Op, name: str, out: _Value) -> None:
    """Append a step running activation ``name`` in place on ``out``."""
    if name in _SCRATCH_ACTS:
        sid, scratch = ctx.scratch(out.array.shape)
        slope = _leaky_slope(op) if name == "leaky_relu" else 0.01
        ctx.step(
            f"act:{name}",
            lambda y=out.array, s=scratch, nm=name, sl=slope: _apply_act_planned(
                nm, y, s, sl
            ),
        )
        ctx.consume(sid)
    else:
        kernel = fuse._ACT_KERNELS[name]
        ctx.step(f"act:{name}", lambda y=out.array, k=kernel: k(y))


def _plan_fused_act(ctx: _PlanContext, op: _Op, out: _Value) -> None:
    """Append the op's fused activation (if any) running in place on ``out``."""
    if op.act_name is not None:
        _plan_act_inplace(ctx, op, op.act_name, out)


def _plan_conv(ctx: _PlanContext, op: ConvOp, value: _Value, out_row) -> _Value:
    c_in, h, w = value.row_shape[1:]
    c_out, ho, wo = out_row[1:]
    n = ctx.batch
    out = ctx.acquire(out_row)
    pointwise = (
        op.kh == 1 and op.kw == 1 and op.groups == 1
        and not (op.ph or op.pw) and op.sh == 1 and op.sw == 1
    )
    if pointwise:
        weight = np.ascontiguousarray(op.weight.reshape(c_out, c_in))
        x2 = value.array.reshape(c_in, h * w * n)
        y2 = out.array.reshape(c_out, ho * wo * n)
        ctx.step("conv:gemm", lambda W=weight, x=x2, y=y2: np.matmul(W, x, out=y))
        ctx.stats.gemm_ops += 1
    elif not _HAVE_SPARSE:
        # scipy-less fallback: run the fused kernel in row layout.  The op
        # applies its own bias and activation, so return straight away.
        in_col, out_col = value.array, out.array

        def run_rowwise(op=op, x=in_col, y=out_col, shape=value.row_shape):
            row = np.ascontiguousarray(np.moveaxis(x, -1, 0)).reshape(shape)
            np.copyto(y, np.moveaxis(op(row), 0, -1))

        ctx.step("conv:rowwise", run_rowwise)
        ctx.stats.fallback_ops += 1
        ctx.stats.steady_state_allocs += 2
        ctx.consume(value)
        return out
    else:
        if op.groups > 1:
            matrix = _conv_csr_cached(op, "weight", _weight_csr, c_in, h, w, ho, wo)
            ctx.step(
                "conv:spmm",
                lambda S=matrix, x=value.as2d(), y=out.as2d(): _spmm(S, x, y),
            )
            ctx.stats.sparse_ops += 1
        else:
            gather = _conv_csr_cached(op, "gather", _gather_csr, c_in, h, w, ho, wo)
            ckk = c_in * op.kh * op.kw
            cid, cols = ctx.scratch((ckk * ho * wo, n))
            weight2 = np.ascontiguousarray(op.weight.reshape(c_out, ckk))
            x2 = value.as2d()
            y2 = out.array.reshape(c_out, ho * wo * n)

            def run_gather_gemm(
                G=gather, x=x2, c=cols, W=weight2, y=y2, ckk=ckk, m=ho * wo * n
            ):
                _spmm(G, x, c)
                np.matmul(W, c.reshape(ckk, m), out=y)

            ctx.step("conv:gather+gemm", run_gather_gemm)
            ctx.stats.sparse_ops += 1
            ctx.stats.gemm_ops += 1
            ctx.consume(cid)
    if op.bias is not None:
        bias = np.ascontiguousarray(op.bias.reshape(c_out, 1))
        y2 = out.array.reshape(c_out, ho * wo * n)
        ctx.step("conv:bias", lambda y=y2, b=bias: np.add(y, b, out=y))
    _plan_fused_act(ctx, op, out)
    ctx.consume(value)
    return out


def _plan_linear(ctx: _PlanContext, op: LinearOp, value: _Value, out_row) -> _Value:
    f_out = out_row[1]
    out = ctx.acquire(out_row)
    weight = np.ascontiguousarray(op.wt.T)  # (f_out, f_in)
    x2 = value.as2d()
    y2 = out.array.reshape(f_out, ctx.batch)
    ctx.step("linear:gemm", lambda W=weight, x=x2, y=y2: np.matmul(W, x, out=y))
    ctx.stats.gemm_ops += 1
    if op.bias is not None:
        bias = np.ascontiguousarray(np.asarray(op.bias).reshape(f_out, 1))
        ctx.step("linear:bias", lambda y=y2, b=bias: np.add(y, b, out=y))
    _plan_fused_act(ctx, op, out)
    ctx.consume(value)
    return out


def _plan_affine(ctx: _PlanContext, op: AffineOp, value: _Value, out_row) -> _Value:
    out = ctx.acquire(out_row)
    channels = op.scale.size
    x2 = value.array.reshape(channels, -1)
    y2 = out.array.reshape(channels, -1)
    scale = np.ascontiguousarray(op.scale.reshape(channels, 1))
    shift = np.ascontiguousarray(op.shift.reshape(channels, 1))

    def run(x=x2, y=y2, s=scale, b=shift):
        np.multiply(x, s, out=y)
        y += b

    ctx.step("affine", run)
    _plan_fused_act(ctx, op, out)
    ctx.consume(value)
    return out


def _plan_act_op(ctx: _PlanContext, op: ActOp, value: _Value, out_row) -> _Value:
    out = ctx.acquire(out_row)
    name = op.name
    ctx.step("act:copy", lambda x=value.array, y=out.array: np.copyto(y, x))
    if name in fuse._ACT_KERNELS or name == "leaky_relu":
        _plan_act_inplace(ctx, op, name, out)
    else:  # unknown custom kernel: run it in place on the copy
        kernel = op.kernel
        ctx.step(f"act:{name}", lambda y=out.array, k=kernel: np.copyto(y, k(y)))
    ctx.consume(value)
    return out


def _plan_max_pool(ctx: _PlanContext, op: MaxPoolOp, value: _Value, out_row) -> _Value:
    _, ho, wo = out_row[1:]
    out = ctx.acquire(out_row)
    kh, kw, sh, sw = op.kh, op.kw, op.sh, op.sw
    eh, ew = (ho - 1) * sh + 1, (wo - 1) * sw + 1

    def run(x=value.array, y=out.array):
        np.copyto(y, x[:, 0:eh:sh, 0:ew:sw, :])
        for i in range(kh):
            for j in range(kw):
                if i == 0 and j == 0:
                    continue
                np.maximum(y, x[:, i : i + eh : sh, j : j + ew : sw, :], out=y)

    ctx.step("max_pool", run)
    _plan_fused_act(ctx, op, out)
    ctx.consume(value)
    return out


def _plan_avg_pool(ctx: _PlanContext, op: AvgPoolOp, value: _Value, out_row) -> _Value:
    c, h, w = value.row_shape[1:]
    _, ho, wo = out_row[1:]
    out = ctx.acquire(out_row)
    if op.adaptive_output is not None:
        kh, kw = h // ho, w // wo
        sh, sw = kh, kw
    else:
        kh, kw, sh, sw = op.kh, op.kw, op.sh, op.sw
    if (ho, wo) == (1, 1) and (kh, kw) == (h, w):
        x3 = value.array.reshape(c, h * w, ctx.batch)
        y2 = out.array.reshape(c, ctx.batch)
        ctx.step("avg_pool:global", lambda x=x3, y=y2: np.mean(x, axis=1, out=y))
    else:
        eh, ew = (ho - 1) * sh + 1, (wo - 1) * sw + 1
        inv = 1.0 / (kh * kw)

        def run(x=value.array, y=out.array):
            np.copyto(y, x[:, 0:eh:sh, 0:ew:sw, :])
            for i in range(kh):
                for j in range(kw):
                    if i == 0 and j == 0:
                        continue
                    y += x[:, i : i + eh : sh, j : j + ew : sw, :]
            y *= inv

        ctx.step("avg_pool", run)
    _plan_fused_act(ctx, op, out)
    ctx.consume(value)
    return out


def _plan_global_avg_pool(
    ctx: _PlanContext, op: GlobalAvgPoolOp, value: _Value, out_row
) -> _Value:
    c, h, w = value.row_shape[1:]
    out = ctx.acquire(out_row)
    x3 = value.array.reshape(c, h * w, ctx.batch)
    y2 = out.array.reshape(c, ctx.batch)
    ctx.step("global_avg_pool", lambda x=x3, y=y2: np.mean(x, axis=1, out=y))
    _plan_fused_act(ctx, op, out)
    ctx.consume(value)
    return out


def _plan_squeeze_excite(
    ctx: _PlanContext, op: SqueezeExciteOp, value: _Value, out_row
) -> _Value:
    c, h, w = value.row_shape[1:]
    n = ctx.batch
    out = ctx.acquire(out_row)
    reduce_w = np.ascontiguousarray(op.reduce_wt.T)  # (reduced, c)
    expand_w = np.ascontiguousarray(op.expand_wt.T)  # (c, reduced)
    reduce_b = np.ascontiguousarray(op.reduce_b.reshape(-1, 1))
    expand_b = np.ascontiguousarray(op.expand_b.reshape(-1, 1))
    reduced = reduce_w.shape[0]
    pid, pooled = ctx.scratch((c, n))
    hid, hidden = ctx.scratch((reduced, n))
    gid, gate = ctx.scratch((c, n))
    needs_scratch = (
        op.bottleneck_name in _SCRATCH_ACTS or op.gate_name in _SCRATCH_ACTS
    )
    sid, scratch = ctx.scratch((max(reduced, c), n)) if needs_scratch else (None, None)
    x3 = value.array.reshape(c, h * w, n)
    y3 = out.array.reshape(c, h * w, n)
    bottleneck, gate_name = op.bottleneck_name, op.gate_name

    def run(x=x3, y=y3, pooled=pooled, hidden=hidden, gate=gate, scratch=scratch):
        np.mean(x, axis=1, out=pooled)
        np.matmul(reduce_w, pooled, out=hidden)
        hidden += reduce_b
        if bottleneck in _SCRATCH_ACTS:
            _apply_act_planned(bottleneck, hidden, scratch[: hidden.shape[0]])
        else:
            fuse._ACT_KERNELS[bottleneck](hidden)
        np.matmul(expand_w, hidden, out=gate)
        gate += expand_b
        if gate_name in _SCRATCH_ACTS:
            _apply_act_planned(gate_name, gate, scratch[: gate.shape[0]])
        else:
            fuse._ACT_KERNELS[gate_name](gate)
        np.multiply(x, gate[:, None, :], out=y)

    ctx.step("squeeze_excite", run)
    ctx.stats.gemm_ops += 2
    for block_id in (pid, hid, gid, sid):
        if block_id is not None:
            ctx.consume(block_id)
    _plan_fused_act(ctx, op, out)
    ctx.consume(value)
    return out


def _plan_fallback(ctx: _PlanContext, op: FallbackOp, value: _Value, out_row) -> _Value:
    out = ctx.acquire(out_row)

    def run(op=op, x=value.array, y=out.array, shape=value.row_shape):
        row = np.ascontiguousarray(np.moveaxis(x, -1, 0)).reshape(shape)
        result = op(row)
        np.copyto(y, np.moveaxis(np.asarray(result, dtype=np.float32), 0, -1))

    ctx.step(op.name, run)
    ctx.stats.fallback_ops += 1
    ctx.stats.steady_state_allocs += 2
    ctx.consume(value)
    return out


def _plan_residual(
    ctx: _PlanContext, op: ResidualOp, value: _Value, out_row, shapes
) -> _Value:
    ctx.hold(value)  # the skip connection reads the input after the inner chain
    inner = _plan_program(ctx, op.inner, value, shapes)
    if inner.block_id == value.block_id:
        # Degenerate inner program (views only): add into a fresh buffer.
        out = ctx.acquire(out_row)
        ctx.step(
            "residual:add",
            lambda a=inner.array, b=value.array, y=out.array: np.add(a, b, out=y),
        )
        ctx.consume(value)  # the hold
        ctx.consume(value)  # the program reference
        return out
    ctx.step(
        "residual:add",
        lambda y=inner.array, x=value.array: np.add(y, x, out=y),
    )
    ctx.consume(value)  # the hold; the inner program consumed the original ref
    return inner


def _plan_flatten(ctx: _PlanContext, op: FlattenOp, value: _Value, out_row) -> _Value:
    if op.start_dim != 1:
        raise _Unplannable(f"flatten(start_dim={op.start_dim}) is not plannable")
    return _Value(
        value.array.reshape(tuple(out_row[1:]) + (ctx.batch,)), out_row, value.block_id
    )


def _plan_reshape(ctx: _PlanContext, op: ReshapeOp, value: _Value, out_row) -> _Value:
    return _Value(
        value.array.reshape(tuple(out_row[1:]) + (ctx.batch,)), out_row, value.block_id
    )


_PLANNERS = [
    (ConvOp, _plan_conv),
    (LinearOp, _plan_linear),
    (AffineOp, _plan_affine),
    (ActOp, _plan_act_op),
    (MaxPoolOp, _plan_max_pool),
    (AvgPoolOp, _plan_avg_pool),
    (GlobalAvgPoolOp, _plan_global_avg_pool),
    (SqueezeExciteOp, _plan_squeeze_excite),
    (FlattenOp, _plan_flatten),
    (ReshapeOp, _plan_reshape),
    (FallbackOp, _plan_fallback),
]


def _plan_op(ctx: _PlanContext, op: _Op, value: _Value, shapes) -> _Value:
    out_row = shapes[id(op)][1]
    if isinstance(op, ResidualOp):
        return _plan_residual(ctx, op, value, out_row, shapes)
    for klass, planner in _PLANNERS:
        if isinstance(op, klass):
            return planner(ctx, op, value, out_row)
    # Unknown op type: treat like a fallback if callable on arrays.
    raise _Unplannable(f"no planner for op {op.describe()!r}")


def _plan_program(ctx: _PlanContext, ops: Sequence[_Op], value: _Value, shapes) -> _Value:
    for op in ops:
        value = _plan_op(ctx, op, value, shapes)
    return value


# ---------------------------------------------------------------------------
# Shape tracing (runs the fused ops once on zeros; exact for fallbacks too)
# ---------------------------------------------------------------------------
def _trace_shapes(session: InferenceSession, batch_shape: Tuple[int, ...]):
    shapes: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}

    def trace(ops, x):
        for op in ops:
            if isinstance(op, ResidualOp):
                y = trace(op.inner, x) + x
            else:
                y = op(x)
            if isinstance(y, dict):
                raise _Unplannable(
                    f"op {op.describe()!r} returns a dict; only session heads may"
                )
            shapes[id(op)] = (tuple(x.shape), tuple(y.shape))
            x = y
        return x

    x = np.zeros(batch_shape, dtype=np.float32)
    trunk_out = trace(session.ops, x)
    if session.heads is not None:
        for program in session.heads.values():
            trace(program, trunk_out)
    return shapes, tuple(trunk_out.shape)


# ---------------------------------------------------------------------------
# ExecutionPlan
# ---------------------------------------------------------------------------
class ExecutionPlan:
    """A compiled session bound to one batch shape, arena and step list.

    ``run`` executes the steps against the preallocated arena and writes
    results either into caller-provided output arrays (``out=``) or into
    plan-owned row-major result buffers (valid until the next ``run``).
    """

    def __init__(self, session: InferenceSession, batch_shape: Tuple[int, ...]):
        self.session = session
        self.batch_shape = tuple(int(s) for s in batch_shape)
        n = self.batch_shape[0]
        shapes, _ = _trace_shapes(session, self.batch_shape)

        self.arena = BufferArena()
        self.stats = PlanStats(num_plans=1)
        ctx = _PlanContext(self.arena, self.stats, n)

        value = ctx.acquire(self.batch_shape)
        ctx.hold(value)  # the input block is rewritten by every run
        self._in_view = np.moveaxis(value.array, -1, 0)  # row-shaped strided view

        trunk = _plan_program(ctx, session.ops, value, shapes)
        self._outputs: Dict[Optional[str], _Value] = {}
        if session.heads is None:
            self._outputs[None] = trunk
        else:
            for _ in session.heads:
                ctx.hold(trunk)  # one reference per head program
            for name, program in session.heads.items():
                head_val = _plan_program(ctx, program, trunk, shapes)
                if head_val.block_id == trunk.block_id:  # identity head: copy out
                    copy = ctx.acquire(head_val.row_shape)
                    ctx.step(
                        f"head[{name}]:copy",
                        lambda x=head_val.array, y=copy.array: np.copyto(y, x),
                    )
                    ctx.consume(trunk)  # this head's reference
                    head_val = copy
                self._outputs[name] = head_val
            ctx.consume(trunk)  # the trunk program's own reference

        self._steps = ctx.steps
        self._step_fns = [fn for _, fn in ctx.steps]
        self.stats.arena_bytes = self.arena.nbytes
        self.stats.arena_blocks = self.arena.num_blocks
        self.stats.requested_bytes = self.arena.requested_bytes
        # Row-shaped views of the column outputs (the final transpose reads
        # through these); the row-major result buffers are created lazily —
        # shard plans inside an executor only ever run with ``out=``.
        self._results: Optional[Dict[Optional[str], np.ndarray]] = None
        self._out_views = {
            name: np.moveaxis(val.array, -1, 0)
            for name, val in self._outputs.items()
        }

    # -- execution ------------------------------------------------------
    def run(self, x: np.ndarray, out=None):
        x = np.asarray(x, dtype=np.float32)
        if tuple(x.shape) != self.batch_shape:
            raise ValueError(
                f"plan compiled for batch shape {self.batch_shape}, got {tuple(x.shape)}"
            )
        np.copyto(self._in_view, x)
        for fn in self._step_fns:
            fn()
        if out is None:
            if self._results is None:
                self._results = {
                    name: np.empty(val.row_shape, dtype=np.float32)
                    for name, val in self._outputs.items()
                }
            out = self._results if None not in self._outputs else self._results[None]
        if None in self._outputs:
            np.copyto(out, self._out_views[None])
            return out
        outputs = {}
        for name, view in self._out_views.items():
            np.copyto(out[name], view)
            outputs[name] = out[name]
        return outputs

    __call__ = run

    def describe(self) -> str:
        lines = [
            f"ExecutionPlan(batch={self.batch_shape}, "
            f"arena={self.arena.nbytes / 1024:.0f} KiB in {self.arena.num_blocks} "
            f"blocks, reuse={self.stats.reuse_ratio:.0%})"
        ]
        lines.extend(label for label, _ in self._steps)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan(batch={self.batch_shape}, steps={len(self._steps)}, "
            f"arena_bytes={self.arena.nbytes})"
        )


# ---------------------------------------------------------------------------
# Worker pool (persistent daemon threads; shard tasks release the GIL in
# BLAS / sparse kernels, so shards overlap on multi-core hosts)
# ---------------------------------------------------------------------------
class _WorkerPool:
    def __init__(self, workers: int):
        self.workers = workers
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._loop, name=f"repro-engine-{index}", daemon=True
            )
            for index in range(workers - 1)
        ]
        for thread in self._threads:
            thread.start()

    def _loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:  # shutdown sentinel from close()
                return
            fn, done, errors = task
            try:
                fn()
            except BaseException as error:  # surfaced by run_all
                errors.append(error)
            finally:
                done.release()

    def run_all(self, thunks: Sequence[Callable[[], None]]) -> None:
        """Run ``thunks`` concurrently; the caller executes the first itself."""
        if len(thunks) == 1:
            thunks[0]()
            return
        done = threading.Semaphore(0)
        errors: List[BaseException] = []
        for fn in thunks[1:]:
            self._tasks.put((fn, done, errors))
        try:
            thunks[0]()  # the calling thread is worker zero
        except BaseException as error:
            errors.append(error)
        for _ in thunks[1:]:
            done.acquire()
        if errors:
            raise errors[0]

    def close(self) -> None:
        """Stop the worker threads (idempotent; pending tasks drain first)."""
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads = []


# ---------------------------------------------------------------------------
# PlannedExecutor
# ---------------------------------------------------------------------------
class _PreparedBatch:
    __slots__ = ("parts", "outputs")

    def __init__(self, parts, outputs):
        self.parts = parts  # list of (slice, ExecutionPlan)
        self.outputs = outputs  # None | ndarray | dict name -> ndarray


class PlannedExecutor:
    """Batch-sharded, plan-cached executor with the ``InferenceSession`` API.

    One :class:`ExecutionPlan` (with its own arena) is built lazily per
    worker shard for each observed batch shape and reused afterwards, so
    steady-state traffic with stable batch sizes runs allocation-free.
    With ``num_workers > 1`` the batch is split along dim 0 and the shards
    execute concurrently on a persistent thread pool.

    Outputs are executor-owned buffers overwritten by the next ``run``;
    pass ``copy_outputs=True`` to hand back private copies instead (the
    server runtime does, because callers keep its logits).
    """

    def __init__(
        self,
        session: InferenceSession,
        num_workers: int = 1,
        copy_outputs: bool = False,
        max_plans: int = 8,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.session = session
        self.num_workers = int(num_workers)
        self.copy_outputs = copy_outputs
        self.max_plans = max_plans
        self._prepared: Dict[Tuple[int, ...], _PreparedBatch] = {}
        self._pool = _WorkerPool(self.num_workers) if self.num_workers > 1 else None
        self._unplannable = False

    # -- plan management ------------------------------------------------
    def _prepare(self, shape: Tuple[int, ...]) -> _PreparedBatch:
        prepared = self._prepared.get(shape)
        if prepared is not None:
            return prepared
        n = shape[0]
        workers = max(1, min(self.num_workers, n))
        bounds = np.linspace(0, n, workers + 1).astype(int)
        parts = []
        for index in range(workers):
            lo, hi = int(bounds[index]), int(bounds[index + 1])
            if hi > lo:
                shard_shape = (hi - lo,) + tuple(shape[1:])
                parts.append((slice(lo, hi), ExecutionPlan(self.session, shard_shape)))
        sample = parts[0][1]
        if len(parts) == 1:
            outputs = None  # single shard returns its own result buffers
        elif None in sample._outputs:
            outputs = np.empty(
                (n,) + sample._outputs[None].row_shape[1:], dtype=np.float32
            )
        else:
            outputs = {
                name: np.empty((n,) + val.row_shape[1:], dtype=np.float32)
                for name, val in sample._outputs.items()
            }
        prepared = _PreparedBatch(parts, outputs)
        if len(self._prepared) >= self.max_plans:
            self._prepared.pop(next(iter(self._prepared)))
        self._prepared[shape] = prepared
        return prepared

    # -- execution ------------------------------------------------------
    def run(self, x: np.ndarray):
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
        if self._unplannable or (x.ndim and x.shape[0] == 0):
            return self.session.run(x)
        try:
            prepared = self._prepare(tuple(x.shape))
        except _Unplannable:
            self._unplannable = True
            return self.session.run(x)
        if len(prepared.parts) == 1:
            result = prepared.parts[0][1].run(x)
        else:
            if self._pool is None:  # closed earlier: rebuild on demand
                self._pool = _WorkerPool(self.num_workers)
            thunks = []
            for sl, plan in prepared.parts:
                if isinstance(prepared.outputs, dict):
                    shard_out = {name: arr[sl] for name, arr in prepared.outputs.items()}
                else:
                    shard_out = prepared.outputs[sl]
                thunks.append(lambda p=plan, xs=x[sl], o=shard_out: p.run(xs, out=o))
            self._pool.run_all(thunks)
            result = prepared.outputs
        if self.copy_outputs:
            if isinstance(result, dict):
                return {name: arr.copy() for name, arr in result.items()}
            return result.copy()
        return result

    __call__ = run

    def close(self) -> None:
        """Release the worker threads.  Idempotent; single-worker runs keep
        working afterwards, sharded runs rebuild the pool on next use."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._prepared.clear()  # sharded plans expect a live pool

    def __enter__(self) -> "PlannedExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown timing
        try:
            self.close()
        except Exception:
            pass

    # -- introspection --------------------------------------------------
    @property
    def planned(self) -> bool:
        return not self._unplannable

    @property
    def stats(self) -> PlanStats:
        total = PlanStats(num_workers=self.num_workers)
        for prepared in self._prepared.values():
            for _, plan in prepared.parts:
                total = total.merged(plan.stats)
        total.num_workers = self.num_workers
        return total

    @property
    def num_ops(self) -> int:
        return self.session.num_ops

    def describe(self) -> str:
        header = (
            f"PlannedExecutor(workers={self.num_workers}, "
            f"plans={sum(len(p.parts) for p in self._prepared.values())})"
        )
        return "\n".join([header, self.session.describe()])

    def __repr__(self) -> str:
        return (
            f"PlannedExecutor(workers={self.num_workers}, "
            f"shapes={list(self._prepared)}, session={self.session!r})"
        )


def plan_session(
    session: InferenceSession,
    num_workers: int = 1,
    copy_outputs: bool = False,
) -> PlannedExecutor:
    """Wrap a compiled session in a lazily-planning, batch-sharded executor."""
    return PlannedExecutor(
        session, num_workers=num_workers, copy_outputs=copy_outputs
    )
