"""Stateless neural-network operations for the ``repro.nn`` substrate.

Everything here operates on :class:`repro.nn.tensor.Tensor` and is fully
differentiable.  Convolutions use a strided sliding-window view plus
``einsum`` so that standard, grouped and depthwise convolutions all share
one vectorised code path (no python loop over channels), which keeps the
CPU training runs used by the MTL-Split benchmarks tractable.

Shapes follow the NCHW convention used throughout the paper: inputs are
``(batch, channels, height, width)``.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "cached_einsum",
    "relu",
    "relu6",
    "leaky_relu",
    "sigmoid",
    "hard_sigmoid",
    "silu",
    "hard_swish",
    "gelu",
    "softmax",
    "log_softmax",
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "global_avg_pool2d",
    "dropout",
    "batch_norm",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "l1_loss",
    "binary_cross_entropy_with_logits",
    "one_hot",
    "conv_output_size",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    return (size + 2 * padding - kernel) // stride + 1


# Contraction plans from ``np.einsum_path`` keyed by (spec, operand shapes).
# Path optimisation is pure-python work that would otherwise be repeated on
# every conv2d call with identical shapes — i.e. every batch of every epoch.
_EINSUM_PATHS: dict = {}


def cached_einsum(spec: str, *operands: np.ndarray) -> np.ndarray:
    """``np.einsum`` with the contraction path memoised per (spec, shapes)."""
    key = (spec,) + tuple(op.shape for op in operands)
    path = _EINSUM_PATHS.get(key)
    if path is None:
        path = np.einsum_path(spec, *operands, optimize=True)[0]
        _EINSUM_PATHS[key] = path
    return np.einsum(spec, *operands, optimize=path)


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit ``max(x, 0)``."""
    data = np.maximum(x.data, 0.0)

    def backward(g):
        return (g * (x.data > 0),)

    return Tensor._from_op(data, (x,), backward, "relu")


def relu6(x: Tensor) -> Tensor:
    """ReLU capped at 6, as used by the MobileNet family."""
    return x.clip(0.0, 6.0)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with configurable negative-side slope."""
    data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(g):
        return (g * np.where(x.data > 0, 1.0, negative_slope),)

    return Tensor._from_op(data, (x,), backward, "leaky_relu")


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    data = np.empty_like(x.data)
    pos = x.data >= 0
    data[pos] = 1.0 / (1.0 + np.exp(-x.data[pos]))
    exp_x = np.exp(x.data[~pos])
    data[~pos] = exp_x / (1.0 + exp_x)

    def backward(g):
        return (g * data * (1.0 - data),)

    return Tensor._from_op(data, (x,), backward, "sigmoid")


def hard_sigmoid(x: Tensor) -> Tensor:
    """Piecewise-linear sigmoid ``relu6(x + 3) / 6`` (MobileNetV3)."""
    return relu6(x + 3.0) * (1.0 / 6.0)


def silu(x: Tensor) -> Tensor:
    """SiLU / swish ``x * sigmoid(x)`` (EfficientNet)."""
    return x * sigmoid(x)


def hard_swish(x: Tensor) -> Tensor:
    """Hard-swish ``x * relu6(x + 3) / 6`` (MobileNetV3)."""
    return x * hard_sigmoid(x)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    c = math.sqrt(2.0 / math.pi)
    inner = (x + x * x * x * 0.044715) * c
    return x * 0.5 * (inner.tanh() + 1.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with max-shift stabilisation."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (stable log-sum-exp formulation)."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


# ---------------------------------------------------------------------------
# Dense / convolutional primitives
# ---------------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def _sliding_windows(x_pad: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """Return strided windows of shape ``(N, C, Ho, Wo, kh, kw)``."""
    windows = np.lib.stride_tricks.sliding_window_view(x_pad, (kh, kw), axis=(-2, -1))
    return windows[:, :, ::sh, ::sw, :, :]


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    groups: int = 1,
) -> Tensor:
    """2-D cross-correlation over NCHW input.

    Parameters mirror ``torch.nn.functional.conv2d``.  ``weight`` has shape
    ``(out_channels, in_channels // groups, kh, kw)``.  Depthwise
    convolution is ``groups == in_channels``; all group counts share the
    same vectorised einsum path.
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    if c_in % groups or c_out % groups:
        raise ValueError(f"channels ({c_in}->{c_out}) not divisible by groups={groups}")
    if c_in_g != c_in // groups:
        raise ValueError(
            f"weight expects {c_in_g} input channels per group, got {c_in // groups}"
        )
    ho = conv_output_size(h, kh, sh, ph)
    wo = conv_output_size(w, kw, sw, pw)
    if ho <= 0 or wo <= 0:
        raise ValueError(f"convolution output would be empty: {(ho, wo)}")

    x_pad = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x.data
    windows = _sliding_windows(x_pad, kh, kw, sh, sw)
    # Group-split views: (N, G, Cg, Ho, Wo, kh, kw) and (G, Og, Cg, kh, kw).
    win_g = windows.reshape(n, groups, c_in // groups, ho, wo, kh, kw)
    w_g = weight.data.reshape(groups, c_out // groups, c_in // groups, kh, kw)
    out = cached_einsum("ngchwij,gocij->ngohw", win_g, w_g)
    out = np.ascontiguousarray(out.reshape(n, c_out, ho, wo))
    if bias is not None:
        out += bias.data.reshape(1, -1, 1, 1)

    def backward(g):
        g = g.reshape(n, groups, c_out // groups, ho, wo)
        grad_w = cached_einsum("ngchwij,ngohw->gocij", win_g, g)
        grad_w = grad_w.reshape(weight.shape)

        # Gradient w.r.t. input: dilate g by the stride, pad to "full"
        # correlation extent, convolve with spatially-flipped weights.
        hd = (ho - 1) * sh + 1
        wd = (wo - 1) * sw + 1
        g_dil = np.zeros((n, groups, c_out // groups, hd, wd), dtype=g.dtype)
        g_dil[:, :, :, ::sh, ::sw] = g
        h_pad_total = x_pad.shape[-2]
        w_pad_total = x_pad.shape[-1]
        # Remainders when the sweep does not cover the padded input exactly.
        rh = h_pad_total - ((ho - 1) * sh + kh)
        rw = w_pad_total - ((wo - 1) * sw + kw)
        g_full = np.pad(
            g_dil,
            ((0, 0), (0, 0), (0, 0), (kh - 1, kh - 1 + rh), (kw - 1, kw - 1 + rw)),
        )
        w_flip = w_g[:, :, :, ::-1, ::-1]
        g_windows = np.lib.stride_tricks.sliding_window_view(
            g_full, (kh, kw), axis=(-2, -1)
        )
        grad_x_pad = cached_einsum("ngohwij,gocij->ngchw", g_windows, w_flip)
        grad_x_pad = grad_x_pad.reshape(n, c_in, h_pad_total, w_pad_total)
        grad_x = grad_x_pad[:, :, ph : ph + h, pw : pw + w]

        grads = [np.ascontiguousarray(grad_x), grad_w]
        if bias is not None:
            grads.append(g.sum(axis=(0, 3, 4)).reshape(-1))
        return tuple(grads)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._from_op(out, parents, backward, "conv2d")


def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling; defaults to non-overlapping windows (stride = kernel)."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    n, c, h, w = x.shape
    ho = conv_output_size(h, kh, sh, 0)
    wo = conv_output_size(w, kw, sw, 0)
    windows = _sliding_windows(x.data, kh, kw, sh, sw)
    flat = windows.reshape(n, c, ho, wo, kh * kw)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(g):
        grad = np.zeros_like(x.data)
        ki, kj = np.unravel_index(arg, (kh, kw))
        ni, ci, hi, wi = np.indices((n, c, ho, wo), sparse=False)
        rows = hi * sh + ki
        cols = wi * sw + kj
        np.add.at(grad, (ni, ci, rows, cols), g)
        return (grad,)

    return Tensor._from_op(np.ascontiguousarray(out), (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling; defaults to non-overlapping windows."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    n, c, h, w = x.shape
    ho = conv_output_size(h, kh, sh, 0)
    wo = conv_output_size(w, kw, sw, 0)
    windows = _sliding_windows(x.data, kh, kw, sh, sw)
    out = windows.mean(axis=(-2, -1))
    scale = 1.0 / (kh * kw)

    def backward(g):
        # Same strided-window adjoint as conv2d's input gradient with an
        # implicit all-ones kernel: dilate g by the stride, pad to the full
        # correlation extent, and sum each (kh, kw) window.
        hd = (ho - 1) * sh + 1
        wd = (wo - 1) * sw + 1
        g_dil = np.zeros((n, c, hd, wd), dtype=g.dtype)
        g_dil[:, :, ::sh, ::sw] = g
        rh = h - ((ho - 1) * sh + kh)
        rw = w - ((wo - 1) * sw + kw)
        g_full = np.pad(g_dil, ((0, 0), (0, 0), (kh - 1, kh - 1 + rh), (kw - 1, kw - 1 + rw)))
        g_windows = np.lib.stride_tricks.sliding_window_view(
            g_full, (kh, kw), axis=(-2, -1)
        )
        grad = g_windows.sum(axis=(-2, -1)) * scale
        return (np.ascontiguousarray(grad),)

    return Tensor._from_op(np.ascontiguousarray(out), (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, keeping ``(N, C, 1, 1)``."""
    return x.mean(axis=(2, 3), keepdims=True)


def adaptive_avg_pool2d(x: Tensor, output_size: IntPair = 1) -> Tensor:
    """Adaptive average pooling to a fixed output size.

    Supports the common cases where the input size is divisible by the
    output size (which covers every model in this repository) plus the
    global-pool case ``output_size=1``.
    """
    oh, ow = _pair(output_size)
    n, c, h, w = x.shape
    if (oh, ow) == (1, 1):
        return global_avg_pool2d(x)
    if h % oh or w % ow:
        raise ValueError(
            f"adaptive_avg_pool2d needs divisible sizes, got {(h, w)} -> {(oh, ow)}"
        )
    return avg_pool2d(x, (h // oh, w // ow))


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - p)``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)

    def backward(g):
        return (g * mask,)

    return Tensor._from_op(x.data * mask, (x,), backward, "dropout")


def batch_norm(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: Optional[float] = 0.1,
    eps: float = 1e-5,
    num_batches_tracked: Optional[np.ndarray] = None,
) -> Tensor:
    """Batch normalisation over the channel axis of an NCHW tensor.

    In training mode the batch statistics enter the autograd graph and the
    running statistics are updated in place; in eval mode the stored
    running statistics are used as constants.  ``momentum=None`` selects
    cumulative moving averaging (the running statistics become the true
    mean over all batches seen), which converges much faster on the short
    CPU training runs this repository uses.
    """
    axes = (0, 2, 3) if x.ndim == 4 else (0,)
    view = (1, -1, 1, 1) if x.ndim == 4 else (1, -1)
    if training:
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        if momentum is None:
            if num_batches_tracked is None:
                raise ValueError("cumulative batch_norm needs num_batches_tracked")
            num_batches_tracked += 1
            factor = 1.0 / float(num_batches_tracked[0])
        else:
            factor = momentum
        running_mean *= 1.0 - factor
        running_mean += factor * mean.data.reshape(-1)
        running_var *= 1.0 - factor
        running_var += factor * var.data.reshape(-1)
        normalized = (x - mean) / (var + eps).sqrt()
    else:
        mean = running_mean.reshape(view)
        var = running_var.reshape(view)
        normalized = (x - Tensor(mean)) / Tensor(np.sqrt(var + eps))
    return normalized * weight.reshape(view) + bias.reshape(view)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------
def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a float32 one-hot encoding of integer ``labels``."""
    labels = np.asarray(labels)
    out = np.zeros((labels.size, num_classes), dtype=np.float32)
    out[np.arange(labels.size), labels.reshape(-1)] = 1.0
    return out.reshape(labels.shape + (num_classes,))


def nll_loss(log_probs: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood given ``log_softmax`` outputs."""
    target = np.asarray(target).reshape(-1)
    n = log_probs.shape[0]
    picked_data = log_probs.data[np.arange(n), target]

    def backward(g):
        grad = np.zeros_like(log_probs.data)
        grad[np.arange(n), target] = g
        return (grad,)

    picked = Tensor._from_op(picked_data, (log_probs,), backward, "nll_gather")
    if reduction == "mean":
        return -picked.mean()
    if reduction == "sum":
        return -picked.sum()
    if reduction == "none":
        return -picked
    raise ValueError(f"unknown reduction {reduction!r}")


def cross_entropy(
    logits: Tensor,
    target: np.ndarray,
    reduction: str = "mean",
    label_smoothing: float = 0.0,
) -> Tensor:
    """Softmax cross-entropy from raw logits against integer labels."""
    logp = log_softmax(logits, axis=-1)
    if label_smoothing > 0.0:
        k = logits.shape[-1]
        smooth = label_smoothing / k
        hard = nll_loss(logp, target, reduction=reduction)
        uniform = -logp.mean(axis=-1)
        if reduction == "mean":
            uniform = uniform.mean()
        elif reduction == "sum":
            uniform = uniform.sum()
        return hard * (1.0 - label_smoothing) + uniform * (smooth * k)
    return nll_loss(logp, target, reduction=reduction)


def mse_loss(pred: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    target = as_tensor(target)
    diff = pred - target
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    if reduction == "none":
        return sq
    raise ValueError(f"unknown reduction {reduction!r}")


def l1_loss(pred: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean absolute error."""
    target = as_tensor(target)
    diff = (pred - target).abs()
    if reduction == "mean":
        return diff.mean()
    if reduction == "sum":
        return diff.sum()
    if reduction == "none":
        return diff
    raise ValueError(f"unknown reduction {reduction!r}")


def binary_cross_entropy_with_logits(logits: Tensor, target, reduction: str = "mean") -> Tensor:
    """Stable BCE from logits: ``max(z,0) - z*y + log(1 + exp(-|z|))``."""
    target = as_tensor(target)
    zeros = Tensor(np.zeros_like(logits.data))
    loss = logits.maximum(zeros) - logits * target + ((-logits.abs()).exp() + 1.0).log()
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
