"""Checkpoint persistence for :class:`~repro.nn.module.Module` trees.

Checkpoints are plain ``.npz`` archives of the flat ``state_dict``
mapping, so they are portable, inspectable with numpy alone and free of
pickle security concerns.
"""

from __future__ import annotations

import os
from typing import Dict, Union

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]

PathLike = Union[str, os.PathLike]


def save_state(state: Dict[str, np.ndarray], path: PathLike) -> None:
    """Write a state-dict mapping to an ``.npz`` archive."""
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a state-dict mapping from an ``.npz`` archive."""
    with np.load(os.fspath(path)) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: PathLike) -> None:
    """Persist a module's parameters and buffers."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: PathLike, strict: bool = True) -> Module:
    """Restore a module's parameters and buffers in place."""
    module.load_state_dict(load_state(path), strict=strict)
    return module
