"""Autograd utilities: numerical gradient checking.

``gradcheck`` is used throughout the test suite to verify every primitive
in :mod:`repro.nn.functional` against central finite differences — the
substrate's correctness argument, since there is no PyTorch to diff
against in this environment.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> Tuple[bool, str]:
    """Compare analytic gradients of ``fn`` against finite differences.

    All inputs must be float64 for the finite differences to be reliable.
    Returns ``(ok, message)``; ``message`` names the first failing input.
    """
    for tensor in inputs:
        if tensor.requires_grad and tensor.data.dtype != np.float64:
            return False, "gradcheck requires float64 inputs"

    output = fn(*inputs)
    output.backward(np.ones_like(output.data))

    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        if analytic is None:
            return False, f"input {i} received no gradient"
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            return False, (
                f"input {i}: max abs deviation {worst:.3e} "
                f"(atol={atol}, rtol={rtol})"
            )
    return True, "ok"
