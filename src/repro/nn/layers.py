"""Stateful layers built on the :class:`~repro.nn.module.Module` base.

Each layer owns its parameters and delegates the math to
:mod:`repro.nn.functional`; keeping layers thin makes the functional ops
the single source of truth for both forward behaviour and gradients.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "BatchNorm1d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Dropout",
    "Flatten",
]

IntPair = Union[int, Tuple[int, int]]


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with PyTorch weight layout."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or init.default_rng()
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng=rng))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), -bound, bound, rng=rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )


class Conv2d(Module):
    """2-D convolution over NCHW input (supports grouped/depthwise)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        groups: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        if in_channels % groups:
            raise ValueError(f"in_channels={in_channels} not divisible by groups={groups}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.groups = groups
        rng = rng or init.default_rng()
        shape = (out_channels, in_channels // groups, kh, kw)
        self.weight = Parameter(init.kaiming_uniform(shape, rng=rng))
        if bias:
            fan_in = (in_channels // groups) * kh * kw
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(init.uniform((out_channels,), -bound, bound, rng=rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, groups={self.groups}, "
            f"bias={self.bias is not None})"
        )


class _BatchNorm(Module):
    """Shared machinery for 1-D/2-D batch normalisation.

    ``momentum=None`` (the default) selects cumulative moving averaging
    for the running statistics: after K training batches they equal the
    plain average of the K batch statistics.  This makes eval-mode
    behaviour reliable after the short training runs used throughout this
    repository; pass ``momentum=0.1`` for PyTorch-default behaviour.
    """

    def __init__(
        self, num_features: int, eps: float = 1e-5, momentum: Optional[float] = None
    ):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.zeros(1, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        self._check_input(x)
        return F.batch_norm(
            x,
            self.weight,
            self.bias,
            self._buffers["running_mean"],
            self._buffers["running_var"],
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
            num_batches_tracked=self._buffers["num_batches_tracked"],
        )

    def reset_running_stats(self) -> None:
        """Zero the running statistics (used by post-training recalibration).

        After a reset, forward passes in training mode rebuild the
        statistics; with the default cumulative averaging they become the
        exact mean of the batches seen since the reset — i.e. statistics
        of the *final* weights rather than of the whole training
        trajectory.
        """
        self._buffers["running_mean"][...] = 0.0
        self._buffers["running_var"][...] = 1.0
        self._buffers["num_batches_tracked"][...] = 0.0

    def _check_input(self, x: Tensor) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features}, eps={self.eps})"


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over the channel axis of NCHW tensors."""

    def _check_input(self, x: Tensor) -> None:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d({self.num_features}) got input of shape {x.shape}"
            )


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over the feature axis of NC tensors."""

    def _check_input(self, x: Tensor) -> None:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d({self.num_features}) got input of shape {x.shape}"
            )


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AdaptiveAvgPool2d(Module):
    """Adaptive average pooling to a fixed spatial output size."""

    def __init__(self, output_size: IntPair = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)

    def __repr__(self) -> str:
        return f"AdaptiveAvgPool2d(output_size={self.output_size})"


class Dropout(Module):
    """Inverted dropout; inert in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or init.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Flatten(Module):
    """Flatten trailing dimensions from ``start_dim`` onward."""

    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)

    def __repr__(self) -> str:
        return f"Flatten(start_dim={self.start_dim})"
