"""Optimisers and learning-rate schedulers.

The paper trains with **AdamW** (learning rate 1e-5 on 3D Shapes, 1e-4 on
MEDIC/FACES) and describes the fine-tuning stage in terms of two learning
rates — a large ``alpha`` for the task heads (Eq. 5) and a small ``eta``
for the shared backbone (Eq. 6).  Parameter groups make that two-rate
scheme a first-class citizen here, exactly as in PyTorch.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Union

import numpy as np

from .module import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "CosineAnnealingLR",
    "clip_grad_norm",
]

ParamsLike = Union[Iterable[Parameter], Iterable[Dict]]


def _normalize_param_groups(params: ParamsLike, defaults: Dict) -> List[Dict]:
    params = list(params)
    if not params:
        raise ValueError("optimizer got an empty parameter list")
    if isinstance(params[0], dict):
        groups = []
        for group in params:
            merged = dict(defaults)
            merged.update(group)
            merged["params"] = list(group["params"])
            groups.append(merged)
        return groups
    group = dict(defaults)
    group["params"] = params
    return [group]


class Optimizer:
    """Base optimiser holding parameter groups and per-parameter state."""

    def __init__(self, params: ParamsLike, defaults: Dict):
        self.param_groups: List[Dict] = _normalize_param_groups(params, defaults)
        self.state: Dict[int, Dict] = {}
        for group in self.param_groups:
            for param in group["params"]:
                if not isinstance(param, Parameter):
                    raise TypeError(f"expected Parameter, got {type(param).__name__}")

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for group in self.param_groups:
            for param in group["params"]:
                param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _state_for(self, param: Parameter) -> Dict:
        return self.state.setdefault(id(param), {})

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Serialisable snapshot: group hyper-parameters + per-param state.

        Parameters are identified positionally (group index, slot index),
        so loading requires an optimizer built over the same parameter
        list in the same order — the same contract as PyTorch.
        """
        groups = []
        per_param: Dict[str, Dict] = {}
        for g_index, group in enumerate(self.param_groups):
            hyper = {k: v for k, v in group.items() if k != "params"}
            groups.append(hyper)
            for p_index, param in enumerate(group["params"]):
                state = self.state.get(id(param))
                if state:
                    per_param[f"{g_index}.{p_index}"] = {
                        k: (np.array(v, copy=True) if isinstance(v, np.ndarray) else v)
                        for k, v in state.items()
                    }
        return {"param_groups": groups, "state": per_param}

    def load_state_dict(self, snapshot: Dict) -> None:
        """Restore hyper-parameters and per-parameter state in place."""
        groups = snapshot["param_groups"]
        if len(groups) != len(self.param_groups):
            raise ValueError(
                f"snapshot has {len(groups)} param groups, optimizer has "
                f"{len(self.param_groups)}"
            )
        for group, hyper in zip(self.param_groups, groups):
            group.update(hyper)
        for key, state in snapshot["state"].items():
            g_index, p_index = (int(part) for part in key.split("."))
            try:
                param = self.param_groups[g_index]["params"][p_index]
            except IndexError:
                raise ValueError(f"snapshot state key {key!r} has no parameter") from None
            self.state[id(param)] = {
                k: (np.array(v, copy=True) if isinstance(v, np.ndarray) else v)
                for k, v in state.items()
            }


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: ParamsLike,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        if lr <= 0:
            raise ValueError(f"invalid learning rate {lr}")
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        super().__init__(
            params,
            dict(lr=lr, momentum=momentum, weight_decay=weight_decay, nesterov=nesterov),
        )

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            momentum = group["momentum"]
            weight_decay = group["weight_decay"]
            nesterov = group["nesterov"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad
                if weight_decay:
                    grad = grad + weight_decay * param.data
                if momentum:
                    state = self._state_for(param)
                    buf = state.get("momentum_buffer")
                    if buf is None:
                        buf = grad.astype(np.float32, copy=True)
                    else:
                        buf *= momentum
                        buf += grad
                    state["momentum_buffer"] = buf
                    grad = grad + momentum * buf if nesterov else buf
                param.data -= lr * grad


class Adam(Optimizer):
    """Adam with (optionally) L2-coupled weight decay."""

    _decoupled = False

    def __init__(
        self,
        params: ParamsLike,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"invalid learning rate {lr}")
        if not 0.0 <= betas[0] < 1.0 or not 0.0 <= betas[1] < 1.0:
            raise ValueError(f"invalid betas {betas}")
        super().__init__(params, dict(lr=lr, betas=betas, eps=eps, weight_decay=weight_decay))

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            weight_decay = group["weight_decay"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad
                if weight_decay and not self._decoupled:
                    grad = grad + weight_decay * param.data
                state = self._state_for(param)
                if not state:
                    state["step"] = 0
                    state["exp_avg"] = np.zeros_like(param.data, dtype=np.float32)
                    state["exp_avg_sq"] = np.zeros_like(param.data, dtype=np.float32)
                state["step"] += 1
                t = state["step"]
                m, v = state["exp_avg"], state["exp_avg_sq"]
                m *= beta1
                m += (1.0 - beta1) * grad
                v *= beta2
                v += (1.0 - beta2) * grad * grad
                m_hat = m / (1.0 - beta1**t)
                v_hat = v / (1.0 - beta2**t)
                if weight_decay and self._decoupled:
                    param.data -= lr * weight_decay * param.data
                param.data -= lr * m_hat / (np.sqrt(v_hat) + eps)


class AdamW(Adam):
    """Adam with decoupled weight decay [Loshchilov & Hutter, 2017].

    This is the optimiser the paper uses for every experiment.
    """

    _decoupled = True

    def __init__(
        self,
        params: ParamsLike,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ):
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)


class _LRScheduler:
    """Base scheduler manipulating ``lr`` on the optimiser's groups."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lrs = [group["lr"] for group in optimizer.param_groups]
        self.last_epoch = 0

    def get_lr(self) -> List[float]:
        raise NotImplementedError

    def step(self) -> None:
        """Advance one epoch and update every group's learning rate."""
        self.last_epoch += 1
        for group, lr in zip(self.optimizer.param_groups, self.get_lr()):
            group["lr"] = lr


class StepLR(_LRScheduler):
    """Decay every ``step_size`` epochs by ``gamma``."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> List[float]:
        factor = self.gamma ** (self.last_epoch // self.step_size)
        return [base * factor for base in self.base_lrs]


class CosineAnnealingLR(_LRScheduler):
    """Cosine decay from the base rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> List[float]:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        scale = 0.5 * (1.0 + math.cos(math.pi * progress))
        return [self.eta_min + (base - self.eta_min) * scale for base in self.base_lrs]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm, mirroring ``torch.nn.utils.clip_grad_norm_``.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = math.sqrt(sum(float((g * g).sum()) for g in grads))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total
