"""Weight initialisers for the ``repro.nn`` substrate.

The defaults match PyTorch so trained behaviour is comparable with the
paper's setup: Kaiming-uniform with ``a=sqrt(5)`` for conv/linear weights
and the matching fan-in bound for biases.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "calculate_fan",
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
    "uniform",
    "normal",
    "zeros",
    "ones",
    "default_rng",
]

_GLOBAL_SEED = 0x5EED


def default_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Return a numpy Generator; reproducible when ``seed`` is given."""
    return np.random.default_rng(_GLOBAL_SEED if seed is None else seed)


def calculate_fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of the given shape.

    Convolution weights ``(out, in, kh, kw)`` multiply the channel fans by
    the receptive-field size, matching ``torch.nn.init`` conventions.
    """
    if len(shape) < 2:
        raise ValueError(f"fan undefined for shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def _gain(nonlinearity: str, a: float = 0.0) -> float:
    if nonlinearity == "relu":
        return math.sqrt(2.0)
    if nonlinearity == "leaky_relu":
        return math.sqrt(2.0 / (1.0 + a * a))
    if nonlinearity in ("linear", "sigmoid", "conv2d"):
        return 1.0
    if nonlinearity == "tanh":
        return 5.0 / 3.0
    raise ValueError(f"unknown nonlinearity {nonlinearity!r}")


def kaiming_uniform(
    shape: Tuple[int, ...],
    a: float = math.sqrt(5.0),
    nonlinearity: str = "leaky_relu",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """He/Kaiming uniform initialisation (PyTorch layer default)."""
    rng = rng or default_rng()
    fan_in, _ = calculate_fan(shape)
    gain = _gain(nonlinearity, a)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(
    shape: Tuple[int, ...],
    nonlinearity: str = "relu",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """He/Kaiming normal initialisation."""
    rng = rng or default_rng()
    fan_in, _ = calculate_fan(shape)
    std = _gain(nonlinearity) / math.sqrt(fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(
    shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    rng = rng or default_rng()
    fan_in, fan_out = calculate_fan(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(
    shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    rng = rng or default_rng()
    fan_in, fan_out = calculate_fan(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(np.float32)


def uniform(
    shape: Tuple[int, ...],
    low: float,
    high: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Uniform initialisation on ``[low, high)``."""
    rng = rng or default_rng()
    return rng.uniform(low, high, size=shape).astype(np.float32)


def normal(
    shape: Tuple[int, ...],
    mean: float = 0.0,
    std: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Gaussian initialisation."""
    rng = rng or default_rng()
    return (rng.standard_normal(shape) * std + mean).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero array (bias default for norm-free layers)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one array (batch-norm scale default)."""
    return np.ones(shape, dtype=np.float32)
