"""Recurrent layers.

The paper (Sec. 3.2): *"Any neural network architecture can implement
the backbone network and heads, such as a Convolutional Neural Network
(ConvNet) or a Recurrent Neural Network (RNN)."*  These cells make that
claim concrete: :class:`RNNCell`/:class:`GRUCell` step over a sequence,
and :mod:`repro.models.rnn` wraps them into an image backbone that scans
rows as a sequence — demonstrating MTL-Split's architecture independence.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, concatenate

__all__ = ["RNNCell", "GRUCell", "RNN"]


class RNNCell(Module):
    """Elman recurrence ``h' = tanh(x W_ih^T + h W_hh^T + b)``."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        rng = rng or init.default_rng()
        bound = 1.0 / math.sqrt(hidden_size)
        self.weight_ih = Parameter(init.uniform((hidden_size, input_size), -bound, bound, rng=rng))
        self.weight_hh = Parameter(init.uniform((hidden_size, hidden_size), -bound, bound, rng=rng))
        self.bias = Parameter(init.uniform((hidden_size,), -bound, bound, rng=rng))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        return (x @ self.weight_ih.T + hidden @ self.weight_hh.T + self.bias).tanh()

    def initial_state(self, batch: int) -> Tensor:
        """All-zero hidden state for a batch."""
        return Tensor(np.zeros((batch, self.hidden_size), dtype=np.float32))

    def __repr__(self) -> str:
        return f"RNNCell({self.input_size}, {self.hidden_size})"


class GRUCell(Module):
    """Gated recurrent unit (Cho et al., 2014)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        rng = rng or init.default_rng()
        bound = 1.0 / math.sqrt(hidden_size)

        def uni(shape):
            return Parameter(init.uniform(shape, -bound, bound, rng=rng))

        # Gates stacked as [reset; update; candidate] for one matmul each.
        self.weight_ih = uni((3 * hidden_size, input_size))
        self.weight_hh = uni((3 * hidden_size, hidden_size))
        self.bias_ih = uni((3 * hidden_size,))
        self.bias_hh = uni((3 * hidden_size,))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        gi = x @ self.weight_ih.T + self.bias_ih
        gh = hidden @ self.weight_hh.T + self.bias_hh
        h = self.hidden_size
        reset = F.sigmoid(gi[:, 0:h] + gh[:, 0:h])
        update = F.sigmoid(gi[:, h : 2 * h] + gh[:, h : 2 * h])
        candidate = (gi[:, 2 * h : 3 * h] + reset * gh[:, 2 * h : 3 * h]).tanh()
        return update * hidden + (1.0 - update) * candidate

    def initial_state(self, batch: int) -> Tensor:
        """All-zero hidden state for a batch."""
        return Tensor(np.zeros((batch, self.hidden_size), dtype=np.float32))

    def __repr__(self) -> str:
        return f"GRUCell({self.input_size}, {self.hidden_size})"


class RNN(Module):
    """Run a cell over a ``(N, T, D)`` sequence.

    Returns ``(outputs, final_state)`` where ``outputs`` is
    ``(N, T, H)``; set ``return_sequence=False`` to get only the final
    hidden state (the usual backbone output).
    """

    def __init__(self, cell: Module, return_sequence: bool = True):
        super().__init__()
        self.cell = cell
        self.return_sequence = return_sequence

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        if x.ndim != 3:
            raise ValueError(f"RNN expects (N, T, D) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        hidden = self.cell.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(steps):
            hidden = self.cell(x[:, t, :], hidden)
            if self.return_sequence:
                outputs.append(hidden.reshape(batch, 1, -1))
        if self.return_sequence:
            return concatenate(outputs, axis=1), hidden
        return hidden, hidden
