"""Reverse-mode automatic differentiation on top of numpy.

This module is the core of the ``repro.nn`` substrate: a :class:`Tensor`
wraps a ``numpy.ndarray`` and records the operations applied to it in a
dynamic computation graph.  Calling :meth:`Tensor.backward` walks the graph
in reverse topological order and accumulates gradients into the ``grad``
attribute of every leaf tensor created with ``requires_grad=True``.

The design intentionally mirrors PyTorch's eager API (``+``, ``@``,
``.sum()``, ``.reshape()``, ``.backward()``) because the paper being
reproduced (MTL-Split, DAC 2024) implements its models in PyTorch; keeping
the surface familiar makes the reproduction easy to audit against the
paper's equations.

Only the *primitive* operations live here.  Composite neural-network
operations (convolutions, pooling, losses, ...) are built in
:mod:`repro.nn.functional` either from these primitives or as custom
primitives registered through :func:`Tensor._from_op`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return ``True`` when operations should record the autograd graph."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``)."""
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting may have (a) prepended dimensions and (b) stretched
    size-one dimensions; the adjoint of both is a sum over the broadcast
    axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Floating inputs keep their
        dtype; python scalars/lists become ``float32`` (the framework's
        working precision; gradcheck promotes to ``float64``).
    requires_grad:
        When ``True`` the tensor is a graph leaf and will receive a
        ``grad`` array after :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op", "_retains_grad")
    __array_priority__ = 100  # make numpy defer to Tensor.__radd__ etc.

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        was_ndarray = isinstance(data, (np.ndarray, np.generic))
        array = np.asarray(data)
        if array.dtype.kind in "iub":  # integers stay integers (labels)
            pass
        elif array.dtype == np.float64 and was_ndarray:
            pass  # explicit float64 arrays are kept (gradcheck precision)
        elif array.dtype != np.float32:
            array = array.astype(np.float32)  # lists/scalars -> working dtype
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = ()
        self._backward: Optional[Callable[[np.ndarray], Sequence[Optional[np.ndarray]]]] = None
        self._op: str = ""
        self._retains_grad: bool = False

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], Sequence[Optional[np.ndarray]]],
        op: str = "",
    ) -> "Tensor":
        """Create a non-leaf tensor produced by an operation.

        ``backward`` maps the output gradient to a sequence of gradients
        aligned with ``parents`` (``None`` for parents that do not require
        grad).  When grad mode is disabled, or no parent requires grad,
        the result is detached.
        """
        needs = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data)
        if needs:
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
            out._op = op
        return out

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return self._backward is None

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        op_note = f", op={self._op!r}" if self._op else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_note}{op_note})"

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` and is only optional for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        order = self._topological_order()
        grads: dict = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._retains_grad and node._backward is not None:
                node.grad = node_grad if node.grad is None else node.grad + node_grad
            if node._backward is None:
                # Leaf: accumulate into .grad
                if node.requires_grad:
                    if node.grad is None:
                        node.grad = node_grad.astype(node.data.dtype, copy=True)
                    else:
                        node.grad = node.grad + node_grad
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    def _topological_order(self) -> list:
        """Return nodes reachable from ``self`` in reverse topological order."""
        order: list = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def retain_grad(self) -> "Tensor":
        """Ask backward() to store this non-leaf node's gradient in ``grad``.

        Used by the saliency-based split-point analysis, which inspects
        gradients at intermediate backbone stages.
        """
        self._retains_grad = True
        return self

    # ------------------------------------------------------------------
    # Arithmetic primitives
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data

        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(g, other.shape))

        return Tensor._from_op(data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data - other.data

        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(-g, other.shape))

        return Tensor._from_op(data, (self, other), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data * other.data
        a, b = self, other

        def backward(g):
            return (
                _unbroadcast(g * b.data, a.shape),
                _unbroadcast(g * a.data, b.shape),
            )

        return Tensor._from_op(data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data / other.data
        a, b = self, other

        def backward(g):
            return (
                _unbroadcast(g / b.data, a.shape),
                _unbroadcast(-g * a.data / (b.data * b.data), b.shape),
            )

        return Tensor._from_op(data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __neg__(self) -> "Tensor":
        def backward(g):
            return (-g,)

        return Tensor._from_op(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        data = self.data**exponent
        base = self

        def backward(g):
            return (g * exponent * base.data ** (exponent - 1),)

        return Tensor._from_op(data, (self,), backward, "pow")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data @ other.data
        a, b = self, other

        def backward(g):
            if a.data.ndim == 2 and b.data.ndim == 2:
                return (g @ b.data.T, a.data.T @ g)
            # General batched matmul adjoint with broadcasting support.
            ga = g @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ g
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

        return Tensor._from_op(data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Elementwise math primitives
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(g):
            return (g * data,)

        return Tensor._from_op(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        data = np.log(self.data)
        src = self

        def backward(g):
            return (g / src.data,)

        return Tensor._from_op(data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(g):
            return (g * 0.5 / data,)

        return Tensor._from_op(data, (self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(g):
            return (g * (1.0 - data * data),)

        return Tensor._from_op(data, (self,), backward, "tanh")

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        src = self

        def backward(g):
            return (g * np.sign(src.data),)

        return Tensor._from_op(data, (self,), backward, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]`` (zero gradient outside)."""
        data = np.clip(self.data, low, high)
        src = self

        def backward(g):
            mask = (src.data >= low) & (src.data <= high)
            return (g * mask,)

        return Tensor._from_op(data, (self,), backward, "clip")

    def maximum(self, other: ArrayLike) -> "Tensor":
        """Elementwise maximum; ties send the full gradient to ``self``."""
        other = as_tensor(other)
        data = np.maximum(self.data, other.data)
        a, b = self, other

        def backward(g):
            take_a = a.data >= b.data
            return (
                _unbroadcast(g * take_a, a.shape),
                _unbroadcast(g * (~take_a), b.shape),
            )

        return Tensor._from_op(data, (self, other), backward, "maximum")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        src = self

        def backward(g):
            grad = g
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % src.data.ndim for a in axes)
                for a in sorted(axes):
                    grad = np.expand_dims(grad, a)
            return (np.broadcast_to(grad, src.shape).copy(),)

        return Tensor._from_op(data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased (population) variance, matching batch-norm conventions."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        src = self

        def backward(g):
            expanded = data
            grad = g
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % src.data.ndim for a in axes)
                for a in sorted(axes):
                    expanded = np.expand_dims(expanded, a)
                    grad = np.expand_dims(grad, a)
            mask = src.data == expanded
            # Split gradient evenly among ties so the op stays linear.
            counts = mask.sum(
                axis=axis if axis is not None else None, keepdims=True
            )
            return (mask * grad / counts,)

        return Tensor._from_op(data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        src = self

        def backward(g):
            return (g.reshape(src.shape),)

        return Tensor._from_op(data, (self,), backward, "reshape")

    def flatten(self, start_dim: int = 1) -> "Tensor":
        """Flatten trailing dimensions from ``start_dim`` onward."""
        lead = self.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(g):
            return (g.transpose(inverse),)

        return Tensor._from_op(data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        src = self

        def backward(g):
            grad = np.zeros_like(src.data)
            np.add.at(grad, index, g)
            return (grad,)

        return Tensor._from_op(data, (self,), backward, "getitem")

    def pad2d(self, padding: Tuple[int, int]) -> "Tensor":
        """Zero-pad the two trailing (spatial) dimensions of an NCHW tensor."""
        ph, pw = padding
        if ph == 0 and pw == 0:
            return self
        pads = [(0, 0)] * (self.data.ndim - 2) + [(ph, ph), (pw, pw)]
        data = np.pad(self.data, pads)

        def backward(g):
            slices = tuple(
                [slice(None)] * (g.ndim - 2)
                + [slice(ph, g.shape[-2] - ph), slice(pw, g.shape[-1] - pw)]
            )
            return (g[slices],)

        return Tensor._from_op(data, (self,), backward, "pad2d")


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with autograd support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        grads = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(int(start), int(stop))
            grads.append(g[tuple(index)])
        return tuple(grads)

    return Tensor._from_op(data, tuple(tensors), backward, "concatenate")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with autograd support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._from_op(data, tuple(tensors), backward, "stack")
