"""Activation layers wrapping :mod:`repro.nn.functional`.

MobileNetV3 uses hard-swish / hard-sigmoid and EfficientNet uses SiLU, so
all three families needed by the paper are covered.
"""

from __future__ import annotations

from . import functional as F
from .module import Module
from .tensor import Tensor

__all__ = [
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Sigmoid",
    "HardSigmoid",
    "SiLU",
    "HardSwish",
    "Tanh",
    "GELU",
    "Softmax",
    "resolve_activation",
]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class ReLU6(Module):
    """ReLU capped at six."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu6(x)


class LeakyReLU(Module):
    """Leaky ReLU with configurable slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class HardSigmoid(Module):
    """Piecewise-linear sigmoid approximation (MobileNetV3)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.hard_sigmoid(x)


class SiLU(Module):
    """SiLU / swish activation (EfficientNet)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.silu(x)


class HardSwish(Module):
    """Hard-swish activation (MobileNetV3)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.hard_swish(x)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Softmax(Module):
    """Softmax along a fixed axis."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)

    def __repr__(self) -> str:
        return f"Softmax(axis={self.axis})"


_ACTIVATIONS = {
    "relu": ReLU,
    "relu6": ReLU6,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "hard_sigmoid": HardSigmoid,
    "silu": SiLU,
    "swish": SiLU,
    "hard_swish": HardSwish,
    "hswish": HardSwish,
    "tanh": Tanh,
    "gelu": GELU,
}


def resolve_activation(name: str) -> Module:
    """Instantiate an activation layer from its lowercase name."""
    try:
        return _ACTIVATIONS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None
