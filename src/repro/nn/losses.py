"""Loss modules.

The paper's experiments are all classification tasks trained with softmax
cross-entropy (one loss per task-solving head, summed per Eq. 4 — the sum
itself lives in :mod:`repro.core.losses`); regression losses are provided
for the bounding-box style tasks the introduction motivates.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "L1Loss", "BCEWithLogitsLoss"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy from logits against integer class labels."""

    def __init__(self, reduction: str = "mean", label_smoothing: float = 0.0):
        super().__init__()
        self.reduction = reduction
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, target: np.ndarray) -> Tensor:
        return F.cross_entropy(
            logits,
            target,
            reduction=self.reduction,
            label_smoothing=self.label_smoothing,
        )

    def __repr__(self) -> str:
        return (
            f"CrossEntropyLoss(reduction={self.reduction!r}, "
            f"label_smoothing={self.label_smoothing})"
        )


class MSELoss(Module):
    """Mean squared error."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target) -> Tensor:
        return F.mse_loss(pred, target, reduction=self.reduction)


class L1Loss(Module):
    """Mean absolute error."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target) -> Tensor:
        return F.l1_loss(pred, target, reduction=self.reduction)


class BCEWithLogitsLoss(Module):
    """Numerically stable binary cross-entropy from logits."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, target) -> Tensor:
        return F.binary_cross_entropy_with_logits(logits, target, reduction=self.reduction)
