"""Module system: stateful layers with parameter management.

Mirrors the relevant slice of ``torch.nn.Module``: registration of
parameters, buffers and sub-modules by attribute assignment, recursive
``parameters()`` / ``named_parameters()`` iteration, train/eval mode, and
``state_dict`` round-tripping.  The MTL-Split architecture
(:mod:`repro.core.architecture`) and all backbones are built on this base.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList", "Identity"]


class Parameter(Tensor):
    """A :class:`Tensor` that is a learnable leaf (``requires_grad=True``)."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, dtype={self.dtype})"


class Module:
    """Base class for all neural-network modules.

    Sub-classes assign :class:`Parameter`, buffer arrays (via
    :meth:`register_buffer`) and sub-``Module`` instances as attributes;
    the base class tracks them for recursive iteration, mode switching and
    serialisation.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self.__dict__.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self.__dict__.pop(name, None)
        else:
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        for registry in ("_parameters", "_buffers", "_modules"):
            table = self.__dict__.get(registry)
            if table is not None and name in table:
                return table[name]
        raise AttributeError(f"{type(self).__name__!r} has no attribute {name!r}")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-learnable array (e.g. batch-norm running stats)."""
        self._buffers[name] = value

    def add_module(self, name: str, module: "Module") -> None:
        """Register a sub-module under an explicit name."""
        self._modules[name] = module

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(
            p.size
            for p in self.parameters()
            if not trainable_only or p.requires_grad
        )

    # ------------------------------------------------------------------
    # Mode / gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Switch the module tree into training (or eval) mode."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch the module tree into evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter in the tree."""
        for param in self.parameters():
            param.zero_grad()

    def requires_grad_(self, flag: bool = True) -> "Module":
        """Freeze (``False``) or unfreeze (``True``) all parameters."""
        for param in self.parameters():
            param.requires_grad = flag
        return self

    # ------------------------------------------------------------------
    # Inference compilation
    # ------------------------------------------------------------------
    def compile_for_inference(
        self,
        sample_input=None,
        atol: float = 1e-4,
        plan: bool = False,
        num_workers: int = 1,
        copy_outputs: bool = False,
        max_plans: int = 8,
        optimize: bool = True,
        compute: str = "float32",
    ):
        """Compile this module's eval-mode forward into an autograd-free
        :class:`~repro.nn.fuse.InferenceSession`.

        Batch-norm parameters are folded into preceding conv/linear
        weights and activations are fused into their producers; module
        types without a lowering rule fall back to the normal forward.
        The session snapshots the current weights — recompile after
        further training.  When ``sample_input`` is given, the compiled
        outputs are verified against the eval forward within ``atol``.

        With ``plan=True`` (or ``num_workers > 1``) the session is
        wrapped in a :class:`~repro.nn.engine.PlannedExecutor`: an
        optimizer-rewritten execution plan per batch shape (epilogue
        fusion, copy elision, kernel selection, blocked SpMM — disable
        with ``optimize=False``) with an arena of preallocated buffers
        (zero steady-state allocations) that shards the batch across
        ``num_workers`` worker threads.  The per-shape plan cache is a
        bounded LRU of ``max_plans`` entries.  Planned outputs are
        executor-owned and overwritten by the next call unless
        ``copy_outputs=True``.  ``compute="quant8"`` overlays the planned
        engine's int8 tier (per-channel weight scales, int32
        accumulation, first batch calibrates and returns float results —
        see :mod:`repro.nn.engine.quant`); it requires ``plan=True``.
        """
        from .fuse import compile_module, verify_session

        session = compile_module(self)
        if plan or num_workers > 1:
            from .engine import plan_session

            session = plan_session(
                session,
                num_workers=num_workers,
                copy_outputs=copy_outputs,
                max_plans=max_plans,
                optimize=optimize,
                compute=compute,
            )
        elif compute != "float32":
            raise ValueError(
                f"compute={compute!r} requires the planned engine (plan=True)"
            )
        if sample_input is not None:
            verify_session(self, session, sample_input, atol=atol)
        return session

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter/buffer names to arrays (copies)."""
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load arrays produced by :meth:`state_dict` back into the tree."""
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = []
        for name, param in own_params.items():
            if name not in state:
                missing.append(name)
                continue
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"checkpoint {value.shape} vs module {param.data.shape}"
                )
            param.data[...] = value.astype(param.data.dtype)
        for name, buf in own_buffers.items():
            if name not in state:
                missing.append(name)
                continue
            np.copyto(buf, np.asarray(state[name]).astype(buf.dtype))
        unexpected = [k for k in state if k not in own_params and k not in own_buffers]
        if strict and (missing or unexpected):
            raise KeyError(
                f"load_state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines: List[str] = []
        for name, module in self._modules.items():
            body = repr(module).replace("\n", "\n  ")
            child_lines.append(f"  ({name}): {body}")
        header = type(self).__name__
        if not child_lines:
            return f"{header}()"
        return header + "(\n" + "\n".join(child_lines) + "\n)"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index):
        items = list(self._modules.values())
        if isinstance(index, slice):
            return Sequential(*items[index])
        return items[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._modules)), module)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """List container whose entries are registered sub-modules."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")


class Identity(Module):
    """Pass-through module (useful as a structural placeholder)."""

    def forward(self, x: Tensor) -> Tensor:
        return x
