"""Optimizer passes over the plan-IR.

Each pass rewrites the typed step graph *before* buffers are bound, so
the arena's liveness analysis runs on the optimized program.  The
pipeline (:func:`run_passes`) is:

1. :func:`elide_copies` — flatten/reshape views stay storage aliases and
   standalone activations whose input has no other reader run in place,
   so whole-tensor copies disappear from the program;
2. :func:`fuse_epilogues` — chains of ``bias`` / ``act`` / ``affine`` /
   ``residual_add`` steps collapse into their producing GEMM/SpMM/pool
   step's *epilogue*: one bound closure applies them on the output while
   it is still cache-hot, instead of separate whole-tensor passes.
   Affines fold into the producer's bias where that is exact (scale of
   all ones); otherwise they become a fused scale/shift epilogue entry,
   which is bit-identical to the standalone step;
3. :func:`select_kernels` — flips kernel implementations to the forms
   measured faster on the benchmark hosts: axis means as GEMMs, GEMM
   biases folded into ``sgemm(beta=1)`` accumulators (bit-exact), and
   SpMM outputs pre-filled with the bias so the separate bias pass
   vanishes into the accumulate;
4. :func:`block_spmm` — partitions plan-time CSR matrices into row
   blocks sized to the L2 budget (aligned to output planes) so each
   ``csr_matvecs`` call streams a bounded working set, and pre-packs the
   block index structures at plan time.

Between kernel selection and SpMM blocking two further passes run:
:func:`repack_layouts` canonicalizes every weight-like operand to
C-contiguous float32 at plan time (folding lowering's transposed views
into the stored weight) so GEMMs always hit the BLAS fast path without
bind- or run-time ``ascontiguousarray`` copies, and
:func:`block_depthwise` rewrites large depthwise SpMMs to the faster of
three candidate kernels — per-plane CSR, block-diagonal plane groups, or
a padded-slab stencil — decided by a plan-time micro-probe on the real
shapes (measured winners only; losing candidates and their timings stay
recorded on the step for audit).

Passes mutate the IR in place, record what they did on the stats
object (``fused_steps``, ``elided_copies``, ``folded_affines``,
``layout_repacks``, ``depthwise_*``, ``blocked_spmm_ops``,
``spmm_row_blocks``) and append their name to the rewritten step's
``attrs["passes"]`` so ``repro plan describe`` can attribute every
kernel decision.
"""

from __future__ import annotations

import time

import numpy as np

from . import kernels
from .ir import PlanIR
from .kernels import (
    DepthwiseStencil,
    pack_depthwise_groups,
    pack_row_blocks,
    spmm_depthwise_groups,
)

__all__ = [
    "L2_BUDGET_BYTES",
    "DW_PROBE_MIN_BYTES",
    "DW_WIN_MARGIN",
    "run_passes",
    "elide_copies",
    "fuse_epilogues",
    "select_kernels",
    "repack_layouts",
    "block_depthwise",
    "block_spmm",
]

#: Default working-set budget for one SpMM row block.  Sized below a
#: typical 1–2 MiB L2 so block output + matrix slice + touched input
#: planes stay resident while ``csr_matvecs`` streams the rows.
L2_BUDGET_BYTES = 1 << 20

#: Depthwise steps whose CSR is smaller than this skip the plan-time
#: kernel probe and keep per-plane CSR: below it the candidates measure
#: within noise of each other and probing every tiny plan (the test
#: suite builds hundreds) would cost more than it could ever win.
DW_PROBE_MIN_BYTES = 1 << 21

#: A candidate must beat per-plane CSR by this factor on the probe to be
#: selected — within the margin the incumbent wins (probe noise).
DW_WIN_MARGIN = 1.10

#: Probe repetitions per candidate (min-of-reps is the score).
DW_PROBE_REPS = 3


def _mark(step, name: str) -> None:
    """Record that pass ``name`` rewrote ``step`` (for plan describe)."""
    passes = step.attrs.setdefault("passes", [])
    if name not in passes:
        passes.append(name)

#: Step kinds that may start an epilogue chain (they own their output
#: buffer and write it exactly once).
_PRODUCERS = frozenset(
    {
        "conv_gemm",
        "conv_spmm",
        "conv_gather_gemm",
        "gemm",
        "affine",
        "max_pool",
        "avg_pool",
        "global_avg_pool",
        "squeeze_excite",
    }
)


def _read_after(ir: PlanIR, index: int, root: int) -> bool:
    """Does any step after ``index`` (or a plan output) read ``root``?"""
    for step in ir.steps[index + 1 :]:
        if any(ir.root(vid) == root for vid in step.reads()):
            return True
    return any(ir.root(vid) == root for vid in ir.outputs.values())


# ---------------------------------------------------------------------------
# Pass 1: copy elision
# ---------------------------------------------------------------------------
def elide_copies(ir: PlanIR, stats) -> None:
    """Turn view steps and last-reader activations into storage aliases.

    Two distinct counters: ``aliased_views`` certifies flatten/reshape
    steps as zero-copy aliases (a structural property the unoptimized
    binder shares — not an optimizer win); ``elided_copies`` counts only
    the *rewrites* this pass performs, i.e. out-of-place activations
    converted to run in place because nothing downstream reads their
    pre-activation input.
    """
    for index, step in enumerate(ir.steps):
        if step.kind == "view":
            stats.aliased_views += 1
        elif (
            step.kind == "act"
            and not step.in_place
            and step.attrs.get("kernel") is None
            and not _read_after(ir, index, ir.root(step.inputs[0]))
        ):
            # Nothing downstream reads the pre-activation value (through
            # any alias), so the copy-then-activate collapses in place.
            step.in_place = True
            step.attrs["elided"] = True
            ir.realias(step.output, step.inputs[0])
            stats.elided_copies += 1
            _mark(step, "elide_copies")


# ---------------------------------------------------------------------------
# Pass 2: epilogue fusion (+ exact affine folding)
# ---------------------------------------------------------------------------
def fuse_epilogues(ir: PlanIR, stats) -> None:
    """Collapse bias/act/affine/residual-add chains into their producer."""
    new_steps = []
    index = 0
    steps = ir.steps
    while index < len(steps):
        step = steps[index]
        new_steps.append(step)
        index += 1
        if step.kind not in _PRODUCERS:
            continue
        current = step.output
        while index < len(steps):
            nxt = steps[index]
            if nxt.kind == "bias" and nxt.inputs == (current,):
                step.epilogue.append(("bias", nxt.attrs["bias"]))
            elif (
                nxt.kind == "act"
                and nxt.in_place
                and nxt.inputs == (current,)
                and nxt.attrs.get("kernel") is None
            ):
                step.epilogue.append(("act", nxt.attrs["name"], nxt.attrs["slope"]))
            elif nxt.kind == "affine" and nxt.inputs == (current,) and not _read_after(
                ir, index, ir.root(current)
            ):
                scale, shift = nxt.attrs["scale"], nxt.attrs["shift"]
                if np.all(scale == 1.0):
                    # Exact fold: a pure shift merges into the bias stream.
                    step.epilogue.append(("bias", shift))
                    stats.folded_affines += 1
                else:
                    step.epilogue.append(("affine", scale, shift))
                ir.realias(nxt.output, current)
            elif (
                nxt.kind == "residual_add"
                and nxt.inputs[0] == current
                and ir.root(nxt.inputs[1]) != ir.root(current)
                and not _read_after(ir, index, ir.root(current))
            ):
                step.epilogue.append(("add", nxt.inputs[1]))
                ir.realias(nxt.output, current)
            else:
                break
            current = nxt.output
            stats.fused_steps += 1
            _mark(step, "fuse_epilogues")
            index += 1
    ir.steps = new_steps


# ---------------------------------------------------------------------------
# Pass 3: kernel selection
# ---------------------------------------------------------------------------
def select_kernels(ir: PlanIR, stats) -> None:
    """Pick the kernel forms measured faster on slow-strided-numpy hosts."""
    for step in ir.steps:
        # Axis means as GEMMs used to be selected here for the pool /
        # squeeze-excite kinds; the GEMM mean is now the canonical kernel
        # in both binders (executor._bind_global_avg_pool) because the
        # np.mean fallback was not bit-identical to the BLAS reduction
        # and broke the optimized ≡ unoptimized attestation gate.
        if (
            step.kind in ("conv_gemm", "gemm", "conv_gather_gemm")
            and kernels.HAVE_BLAS
            and step.epilogue
            and step.epilogue[0][0] == "bias"
        ):
            # Pre-fill the output with the bias and run sgemm(beta=1):
            # the bias add happens inside the GEMM accumulator —
            # bit-identical to matmul + add, minus a whole-tensor pass.
            step.attrs["beta_gemm"] = True
            _mark(step, "select_kernels")
        if (
            step.kind == "conv_spmm"
            and step.epilogue
            and step.epilogue[0][0] == "bias"
        ):
            # csr_matvecs accumulates: pre-filling the output with the
            # bias folds the bias pass into the SpMM for free.
            step.attrs["bias_prefill"] = True
            _mark(step, "select_kernels")


# ---------------------------------------------------------------------------
# Pass 4: plan-time weight-layout repacks
# ---------------------------------------------------------------------------
#: Step attrs holding weight-like operand arrays the binder feeds to
#: GEMM/bias/affine kernels.
_REPACK_ATTRS = ("weight", "bias", "scale", "shift")


def _needs_repack(arr) -> bool:
    return isinstance(arr, np.ndarray) and not (
        arr.flags.c_contiguous and arr.dtype == np.float32
    )


def repack_layouts(ir: PlanIR, stats) -> None:
    """Canonicalize weight-like operands to C-contiguous float32.

    Lowering stores operands in their *natural* layout — e.g. a linear
    layer's weight is the transposed view ``op.wt.T`` (Fortran-
    contiguous).  ``sgemm``'s fast path and ``beta_gemm``'s in-place
    transpose trick both need C-contiguity, so without this pass the
    binder has to ``ascontiguousarray``-copy on every bind (and the
    squeeze-excite binder used to re-copy its four weights per plan).
    Repacking once at plan time folds the transpose into the stored
    weight; the binder counts any copy it still has to make as a
    ``bind_repack`` — optimized plans assert that count is zero.
    """
    for step in ir.steps:
        repacked = []
        for name in _REPACK_ATTRS:
            arr = step.attrs.get(name)
            if _needs_repack(arr):
                step.attrs[name] = np.ascontiguousarray(arr, dtype=np.float32)
                repacked.append(name)
        for index, entry in enumerate(step.epilogue):
            if entry[0] == "bias" and _needs_repack(entry[1]):
                step.epilogue[index] = (
                    "bias", np.ascontiguousarray(entry[1], dtype=np.float32)
                )
                repacked.append("epilogue.bias")
            elif entry[0] == "affine" and (
                _needs_repack(entry[1]) or _needs_repack(entry[2])
            ):
                step.epilogue[index] = (
                    "affine",
                    np.ascontiguousarray(entry[1], dtype=np.float32),
                    np.ascontiguousarray(entry[2], dtype=np.float32),
                )
                repacked.append("epilogue.affine")
        if step.kind == "squeeze_excite" and "reduce_w" not in step.attrs:
            op = step.op
            step.attrs["reduce_w"] = np.ascontiguousarray(
                op.reduce_wt.T, dtype=np.float32
            )
            step.attrs["expand_w"] = np.ascontiguousarray(
                op.expand_wt.T, dtype=np.float32
            )
            step.attrs["reduce_b"] = np.ascontiguousarray(
                op.reduce_b.reshape(-1, 1), dtype=np.float32
            )
            step.attrs["expand_b"] = np.ascontiguousarray(
                op.expand_b.reshape(-1, 1), dtype=np.float32
            )
            repacked.append("se_weights")
        if repacked:
            step.attrs["repacked"] = repacked
            stats.layout_repacks += len(repacked)
            _mark(step, "repack_layouts")


# ---------------------------------------------------------------------------
# Pass 5: group-blocked / stencil depthwise (measured winner)
# ---------------------------------------------------------------------------
def _depthwise_planes_per_group(
    per_plane_bytes: int, channels: int, l2_bytes: int
) -> int:
    """Planes per group so one group's working set stays L2-resident."""
    return max(1, min(channels, l2_bytes // max(1, per_plane_bytes)))


def block_depthwise(
    ir: PlanIR,
    stats,
    batch: int,
    l2_bytes: int = L2_BUDGET_BYTES,
    probe: bool = True,
) -> None:
    """Rewrite large depthwise SpMMs to the measured-fastest kernel.

    Runs before :func:`block_spmm`; steps this pass rewrites are skipped
    there (the group/stencil kernels already bound their working sets).
    With ``probe=False`` (e.g. provenance digests, which must not depend
    on timing noise) every step keeps per-plane CSR.
    """
    for step in ir.steps:
        if step.kind != "conv_spmm":
            continue
        op = step.op
        if op.c_in_g != 1 or op.groups != op.c_out:
            continue  # grouped but not depthwise
        matrix = step.attrs["matrix"]
        matrix_bytes = matrix.data.nbytes + matrix.indices.nbytes
        if not probe or matrix_bytes < DW_PROBE_MIN_BYTES:
            continue
        channels = op.c_out
        rows, cols = matrix.shape
        plane_out, plane_in = rows // channels, cols // channels
        stats.depthwise_probes += 1

        rng = np.random.default_rng(0xD3)
        x2 = rng.standard_normal((cols, batch)).astype(np.float32)
        y_ref = np.empty((rows, batch), dtype=np.float32)
        y_try = np.empty((rows, batch), dtype=np.float32)

        g_csr = _depthwise_planes_per_group(
            (plane_in + plane_out) * batch * 4 + matrix_bytes // channels,
            channels, l2_bytes,
        )
        groups = pack_depthwise_groups(matrix, channels, plane_in, plane_out, g_csr)

        # Geometry for the stencil comes from the IR's value shapes.
        in_row = ir.values[step.inputs[0]].row_shape
        out_row = ir.values[step.output].row_shape
        _, h, w = in_row[1:]
        _, ho, wo = out_row[1:]
        hp, wp = h + 2 * op.ph, w + 2 * op.pw
        g_st = _depthwise_planes_per_group(
            (hp * wp + 2 * ho * wo) * batch * 4, channels, l2_bytes
        )
        stencil = DepthwiseStencil(op, h, w, ho, wo, g_st)
        pad_shape, mul_shape = stencil.scratch_shapes(batch)
        pad = np.zeros(pad_shape, dtype=np.float32)
        mul = np.empty(mul_shape, dtype=np.float32)
        x4 = x2.reshape(channels, h, w, batch)
        y4_try = y_try.reshape(channels, ho, wo, batch)

        def run_csr():
            y_ref.fill(0.0)
            kernels.spmm_accumulate(matrix, x2, y_ref)

        def run_groups():
            y_try.fill(0.0)
            spmm_depthwise_groups(groups, x2, y_try)

        def run_stencil():
            y_try.fill(0.0)
            stencil.run(x4, y4_try, pad, mul)

        run_csr()
        ref = y_ref.copy()
        run_groups()
        groups_exact = bool(np.array_equal(y_try, ref))
        run_stencil()
        stencil_exact = bool(np.array_equal(y_try, ref))

        times = {}
        for name, fn in (
            ("csr", run_csr), ("group_csr", run_groups), ("stencil", run_stencil)
        ):
            best = float("inf")
            for _ in range(DW_PROBE_REPS):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            times[name] = best * 1000.0

        eligible = {"csr": times["csr"]}
        if groups_exact:  # structurally guaranteed; belt and braces
            eligible["group_csr"] = times["group_csr"]
        if stencil_exact:
            eligible["stencil"] = times["stencil"]
        winner = min(eligible, key=eligible.get)
        if winner != "csr" and times["csr"] < eligible[winner] * DW_WIN_MARGIN:
            winner = "csr"  # within noise margin: the incumbent stays

        step.attrs["dw_probe"] = {
            "times_ms": {k: round(v, 4) for k, v in times.items()},
            "winner": winner,
            "stencil_exact": stencil_exact,
            "group_csr_exact": groups_exact,
            "planes_per_group": {"group_csr": g_csr, "stencil": g_st},
        }
        if winner == "group_csr":
            step.attrs["dw_kernel"] = "group_csr"
            step.attrs["dw_groups"] = groups
            stats.depthwise_grouped_ops += 1
            stats.depthwise_groups += len(groups)
            _mark(step, "block_depthwise")
        elif winner == "stencil":
            step.attrs["dw_kernel"] = "stencil"
            step.attrs["dw_stencil"] = stencil
            stats.depthwise_stencil_ops += 1
            _mark(step, "block_depthwise")


# ---------------------------------------------------------------------------
# Pass 6: cache-blocked SpMM
# ---------------------------------------------------------------------------
def block_spmm(
    ir: PlanIR,
    stats,
    batch: int,
    l2_bytes: int = L2_BUDGET_BYTES,
    min_blocks: int = 1,
) -> None:
    """Partition large SpMM steps into pre-packed, L2-sized row blocks.

    ``min_blocks`` forces at least that many blocks regardless of size
    (the intra-op row-parallel hook uses it to create one block per
    worker).  Matrices whose whole working set fits the budget are left
    unblocked unless forced.
    """
    for step in ir.steps:
        if step.kind == "conv_spmm":
            if step.attrs.get("dw_kernel") in ("group_csr", "stencil"):
                continue  # block_depthwise already bounded the working set
            matrix = step.attrs["matrix"]
            align = max(1, matrix.shape[0] // step.op.c_out)
        elif step.kind == "conv_gather_gemm":
            matrix = step.attrs["gather"]
            ckk = step.op.c_in_g * step.op.kh * step.op.kw
            align = max(1, matrix.shape[0] // ckk)
        else:
            continue
        rows = matrix.shape[0]
        out_bytes = rows * batch * 4
        in_bytes = matrix.shape[1] * batch * 4
        matrix_bytes = matrix.data.nbytes + matrix.indices.nbytes
        footprint = out_bytes + in_bytes + matrix_bytes
        blocks_needed = max(min_blocks, -(-footprint // max(1, l2_bytes)))
        if blocks_needed <= 1 or rows <= align:
            continue
        rows_per_block = max(align, -(-rows // blocks_needed) // align * align)
        blocks = pack_row_blocks(matrix, rows_per_block, align=align)
        if len(blocks) <= 1:
            continue
        step.attrs["row_blocks"] = blocks
        stats.blocked_spmm_ops += 1
        stats.spmm_row_blocks += len(blocks)
        _mark(step, "block_spmm")


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------
def run_passes(
    ir: PlanIR,
    stats,
    l2_bytes: int = L2_BUDGET_BYTES,
    intra_op_workers: int = 1,
    probe: bool = True,
    disabled: tuple = (),
) -> PlanIR:
    """Run the full pass pipeline in order; returns the (mutated) IR.

    ``probe=False`` keeps the pipeline fully deterministic (no timing-
    based kernel selection) — provenance digests use it.  ``disabled``
    names passes to skip by function name; benchmarks use it to build
    honest "this pass off" baselines in the same process.
    """
    pipeline = (
        (elide_copies, lambda: elide_copies(ir, stats)),
        (fuse_epilogues, lambda: fuse_epilogues(ir, stats)),
        (select_kernels, lambda: select_kernels(ir, stats)),
        (repack_layouts, lambda: repack_layouts(ir, stats)),
        (
            block_depthwise,
            lambda: block_depthwise(
                ir, stats, ir.batch, l2_bytes=l2_bytes, probe=probe
            ),
        ),
        (
            block_spmm,
            lambda: block_spmm(
                ir,
                stats,
                ir.batch,
                l2_bytes=l2_bytes,
                min_blocks=intra_op_workers if intra_op_workers > 1 else 1,
            ),
        ),
    )
    for fn, thunk in pipeline:
        if fn.__name__ not in disabled:
            thunk()
    return ir
