"""Optimizer passes over the plan-IR.

Each pass rewrites the typed step graph *before* buffers are bound, so
the arena's liveness analysis runs on the optimized program.  The
pipeline (:func:`run_passes`) is:

1. :func:`elide_copies` — flatten/reshape views stay storage aliases and
   standalone activations whose input has no other reader run in place,
   so whole-tensor copies disappear from the program;
2. :func:`fuse_epilogues` — chains of ``bias`` / ``act`` / ``affine`` /
   ``residual_add`` steps collapse into their producing GEMM/SpMM/pool
   step's *epilogue*: one bound closure applies them on the output while
   it is still cache-hot, instead of separate whole-tensor passes.
   Affines fold into the producer's bias where that is exact (scale of
   all ones); otherwise they become a fused scale/shift epilogue entry,
   which is bit-identical to the standalone step;
3. :func:`select_kernels` — flips kernel implementations to the forms
   measured faster on the benchmark hosts: axis means as GEMMs, GEMM
   biases folded into ``sgemm(beta=1)`` accumulators (bit-exact), and
   SpMM outputs pre-filled with the bias so the separate bias pass
   vanishes into the accumulate;
4. :func:`block_spmm` — partitions plan-time CSR matrices into row
   blocks sized to the L2 budget (aligned to output planes) so each
   ``csr_matvecs`` call streams a bounded working set, and pre-packs the
   block index structures at plan time.

Passes mutate the IR in place and record what they did on the stats
object (``fused_steps``, ``elided_copies``, ``folded_affines``,
``blocked_spmm_ops``, ``spmm_row_blocks``).
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .ir import PlanIR
from .kernels import pack_row_blocks

__all__ = [
    "L2_BUDGET_BYTES",
    "run_passes",
    "elide_copies",
    "fuse_epilogues",
    "select_kernels",
    "block_spmm",
]

#: Default working-set budget for one SpMM row block.  Sized below a
#: typical 1–2 MiB L2 so block output + matrix slice + touched input
#: planes stay resident while ``csr_matvecs`` streams the rows.
L2_BUDGET_BYTES = 1 << 20

#: Step kinds that may start an epilogue chain (they own their output
#: buffer and write it exactly once).
_PRODUCERS = frozenset(
    {
        "conv_gemm",
        "conv_spmm",
        "conv_gather_gemm",
        "gemm",
        "affine",
        "max_pool",
        "avg_pool",
        "global_avg_pool",
        "squeeze_excite",
    }
)


def _read_after(ir: PlanIR, index: int, root: int) -> bool:
    """Does any step after ``index`` (or a plan output) read ``root``?"""
    for step in ir.steps[index + 1 :]:
        if any(ir.root(vid) == root for vid in step.reads()):
            return True
    return any(ir.root(vid) == root for vid in ir.outputs.values())


# ---------------------------------------------------------------------------
# Pass 1: copy elision
# ---------------------------------------------------------------------------
def elide_copies(ir: PlanIR, stats) -> None:
    """Turn view steps and last-reader activations into storage aliases.

    Two distinct counters: ``aliased_views`` certifies flatten/reshape
    steps as zero-copy aliases (a structural property the unoptimized
    binder shares — not an optimizer win); ``elided_copies`` counts only
    the *rewrites* this pass performs, i.e. out-of-place activations
    converted to run in place because nothing downstream reads their
    pre-activation input.
    """
    for index, step in enumerate(ir.steps):
        if step.kind == "view":
            stats.aliased_views += 1
        elif (
            step.kind == "act"
            and not step.in_place
            and step.attrs.get("kernel") is None
            and not _read_after(ir, index, ir.root(step.inputs[0]))
        ):
            # Nothing downstream reads the pre-activation value (through
            # any alias), so the copy-then-activate collapses in place.
            step.in_place = True
            step.attrs["elided"] = True
            ir.realias(step.output, step.inputs[0])
            stats.elided_copies += 1


# ---------------------------------------------------------------------------
# Pass 2: epilogue fusion (+ exact affine folding)
# ---------------------------------------------------------------------------
def fuse_epilogues(ir: PlanIR, stats) -> None:
    """Collapse bias/act/affine/residual-add chains into their producer."""
    new_steps = []
    index = 0
    steps = ir.steps
    while index < len(steps):
        step = steps[index]
        new_steps.append(step)
        index += 1
        if step.kind not in _PRODUCERS:
            continue
        current = step.output
        while index < len(steps):
            nxt = steps[index]
            if nxt.kind == "bias" and nxt.inputs == (current,):
                step.epilogue.append(("bias", nxt.attrs["bias"]))
            elif (
                nxt.kind == "act"
                and nxt.in_place
                and nxt.inputs == (current,)
                and nxt.attrs.get("kernel") is None
            ):
                step.epilogue.append(("act", nxt.attrs["name"], nxt.attrs["slope"]))
            elif nxt.kind == "affine" and nxt.inputs == (current,) and not _read_after(
                ir, index, ir.root(current)
            ):
                scale, shift = nxt.attrs["scale"], nxt.attrs["shift"]
                if np.all(scale == 1.0):
                    # Exact fold: a pure shift merges into the bias stream.
                    step.epilogue.append(("bias", shift))
                    stats.folded_affines += 1
                else:
                    step.epilogue.append(("affine", scale, shift))
                ir.realias(nxt.output, current)
            elif (
                nxt.kind == "residual_add"
                and nxt.inputs[0] == current
                and ir.root(nxt.inputs[1]) != ir.root(current)
                and not _read_after(ir, index, ir.root(current))
            ):
                step.epilogue.append(("add", nxt.inputs[1]))
                ir.realias(nxt.output, current)
            else:
                break
            current = nxt.output
            stats.fused_steps += 1
            index += 1
    ir.steps = new_steps


# ---------------------------------------------------------------------------
# Pass 3: kernel selection
# ---------------------------------------------------------------------------
def select_kernels(ir: PlanIR, stats) -> None:
    """Pick the kernel forms measured faster on slow-strided-numpy hosts."""
    for step in ir.steps:
        if step.kind in ("squeeze_excite", "global_avg_pool"):
            # Axis means as GEMMs: np.mean over the middle axis of a
            # column tensor is a strided reduction that runs an order of
            # magnitude below BLAS on the bench hosts.
            step.attrs["mean_gemm"] = True
        if (
            step.kind in ("conv_gemm", "gemm", "conv_gather_gemm")
            and kernels.HAVE_BLAS
            and step.epilogue
            and step.epilogue[0][0] == "bias"
        ):
            # Pre-fill the output with the bias and run sgemm(beta=1):
            # the bias add happens inside the GEMM accumulator —
            # bit-identical to matmul + add, minus a whole-tensor pass.
            step.attrs["beta_gemm"] = True
        if (
            step.kind == "conv_spmm"
            and step.epilogue
            and step.epilogue[0][0] == "bias"
        ):
            # csr_matvecs accumulates: pre-filling the output with the
            # bias folds the bias pass into the SpMM for free.
            step.attrs["bias_prefill"] = True


# ---------------------------------------------------------------------------
# Pass 4: cache-blocked SpMM
# ---------------------------------------------------------------------------
def block_spmm(
    ir: PlanIR,
    stats,
    batch: int,
    l2_bytes: int = L2_BUDGET_BYTES,
    min_blocks: int = 1,
) -> None:
    """Partition large SpMM steps into pre-packed, L2-sized row blocks.

    ``min_blocks`` forces at least that many blocks regardless of size
    (the intra-op row-parallel hook uses it to create one block per
    worker).  Matrices whose whole working set fits the budget are left
    unblocked unless forced.
    """
    for step in ir.steps:
        if step.kind == "conv_spmm":
            matrix = step.attrs["matrix"]
            align = max(1, matrix.shape[0] // step.op.c_out)
        elif step.kind == "conv_gather_gemm":
            matrix = step.attrs["gather"]
            ckk = step.op.c_in_g * step.op.kh * step.op.kw
            align = max(1, matrix.shape[0] // ckk)
        else:
            continue
        rows = matrix.shape[0]
        out_bytes = rows * batch * 4
        in_bytes = matrix.shape[1] * batch * 4
        matrix_bytes = matrix.data.nbytes + matrix.indices.nbytes
        footprint = out_bytes + in_bytes + matrix_bytes
        blocks_needed = max(min_blocks, -(-footprint // max(1, l2_bytes)))
        if blocks_needed <= 1 or rows <= align:
            continue
        rows_per_block = max(align, -(-rows // blocks_needed) // align * align)
        blocks = pack_row_blocks(matrix, rows_per_block, align=align)
        if len(blocks) <= 1:
            continue
        step.attrs["row_blocks"] = blocks
        stats.blocked_spmm_ops += 1
        stats.spmm_row_blocks += len(blocks)


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------
def run_passes(
    ir: PlanIR,
    stats,
    l2_bytes: int = L2_BUDGET_BYTES,
    intra_op_workers: int = 1,
) -> PlanIR:
    """Run the full pass pipeline in order; returns the (mutated) IR."""
    elide_copies(ir, stats)
    fuse_epilogues(ir, stats)
    select_kernels(ir, stats)
    block_spmm(
        ir,
        stats,
        ir.batch,
        l2_bytes=l2_bytes,
        min_blocks=intra_op_workers if intra_op_workers > 1 else 1,
    )
    return ir
