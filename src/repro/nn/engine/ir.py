"""Plan-IR: the typed step graph between lowering and buffer binding.

The engine compiles a fused :class:`~repro.nn.fuse.InferenceSession` in
three phases:

1. **lowering** (:func:`lower_session`) — a one-time shape trace walks the
   fused op list and emits a :class:`PlanIR`: a straight-line list of
   typed :class:`Step` nodes over SSA-style :class:`ValueInfo` operands.
   Every structural fact a rewrite needs is explicit — the op kind, which
   value each step reads and defines, whether a step runs in place on its
   input's storage, and which values merely alias another value's storage
   (flatten/reshape views);
2. **optimization** (:mod:`repro.nn.engine.passes`) — rewrites of the step
   graph: epilogue fusion, affine folding, copy elision, kernel selection
   and SpMM row blocking.  Passes run *before* any buffer exists, so the
   arena's liveness analysis sees the optimized program;
3. **binding** (:mod:`repro.nn.engine.executor`) — the surviving steps are
   bound to arena buffers and compiled into closures.

Step kinds
----------
``conv_gemm``        pointwise convolution as one contiguous GEMM
``conv_spmm``        grouped/depthwise convolution as a weight-valued CSR
``conv_gather_gemm`` dense-kernel convolution: 0/1 im2col CSR + GEMM
``conv_rowwise``     scipy-less fallback (row layout round trip)
``gemm``             linear layer
``bias``             per-channel bias add, in place on the producer
``act``              activation; in place when ``in_place`` is set
``affine``           per-channel scale+shift (unfolded batch norm)
``residual_add``     skip-connection add
``view``             flatten/reshape — storage alias, no runtime work
``copy``             explicit materialisation (identity head outputs)
``max_pool`` / ``avg_pool`` / ``global_avg_pool``  pooling kernels
``squeeze_excite``   SE gating block
``fallback``         uncompilable module run through its eval forward
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import fuse
from ..fuse import (
    ActOp,
    AffineOp,
    AvgPoolOp,
    ConvOp,
    FallbackOp,
    FlattenOp,
    GlobalAvgPoolOp,
    InferenceSession,
    LinearOp,
    MaxPoolOp,
    ReshapeOp,
    ResidualOp,
    SqueezeExciteOp,
    _Op,
)
from .kernels import HAVE_SPARSE, conv_csr_cached, gather_csr, weight_csr

__all__ = [
    "PlanIR",
    "Step",
    "ValueInfo",
    "Unplannable",
    "lower_session",
    "trace_shapes",
    "estimate_step_cost",
]


class Unplannable(Exception):
    """Raised at build time when a program cannot be statically planned."""


class ValueInfo:
    """One SSA value: a row-shaped intermediate of the program.

    ``alias_of`` names the value whose storage this one shares (views and
    in-place results); ``None`` means the value owns fresh storage.  The
    *root* of an alias chain is the value the arena actually allocates.
    """

    __slots__ = ("vid", "row_shape", "alias_of")

    def __init__(self, vid: int, row_shape: Tuple[int, ...], alias_of: Optional[int]):
        self.vid = vid
        self.row_shape = tuple(row_shape)
        self.alias_of = alias_of

    def __repr__(self) -> str:
        alias = f" -> v{self.alias_of}" if self.alias_of is not None else ""
        return f"v{self.vid}{list(self.row_shape)}{alias}"


#: Epilogue entries are ordered tuples applied in sequence on the step's
#: output while it is still cache-hot:  ``("bias", array)``,
#: ``("act", name, slope)``, ``("affine", scale, shift)``, ``("add", vid)``.
Epilogue = List[Tuple]


# ---------------------------------------------------------------------------
# Byte-stable plan dump helpers (digest material — determinism rules apply)
# ---------------------------------------------------------------------------
#: Attr keys that must never reach the digested plan dump: ``dw_probe``
#: holds *measured* timings (never deterministic), ``kernel`` is a bound
#: callable with no stable repr, and ``label`` already heads the line.
_DIGEST_SUPPRESSED_ATTRS = frozenset({"dw_probe", "kernel", "label"})


def _content_digest(array: np.ndarray) -> str:
    # Lazy import: repro.serve depends on repro.nn at import time, so the
    # shared canonicalizer is pulled in at first call, never at import.
    from ...serve.cache.keys import tensor_digest

    return tensor_digest(array)[:12]


def _array_summary(array: np.ndarray) -> str:
    return f"{array.dtype.str}{list(array.shape)}#{_content_digest(array)}"


def _csr_summary(matrix) -> str:
    import hashlib

    from ...serve.cache.keys import canonical_bytes

    hasher = hashlib.sha256()
    for part in (matrix.data, matrix.indices, matrix.indptr):
        hasher.update(canonical_bytes(np.asarray(part)))
    return (
        f"csr{list(matrix.shape)}nnz={int(matrix.nnz)}#{hasher.hexdigest()[:12]}"
    )


def _attr_summary(value: Any) -> str:
    """Render one attr value deterministically for the plan dump."""
    if isinstance(value, np.ndarray):
        return _array_summary(value)
    if isinstance(value, np.generic):
        return repr(value.item())
    if hasattr(value, "indptr") and hasattr(value, "nnz"):
        return _csr_summary(value)
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: str(kv[0]))
        return "{" + ",".join(f"{k}:{_attr_summary(v)}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_attr_summary(v) for v in value) + "]"
    if isinstance(value, (bool, int, float, str)) or value is None:
        return repr(value)
    row = getattr(value, "lo", getattr(value, "row_lo", None))
    if row is not None:
        hi = getattr(value, "hi", getattr(value, "row_hi", None))
        return f"{type(value).__name__}[{int(row)}:{int(hi)}]"
    if callable(value):
        return "<fn>"
    return f"<{type(value).__name__}>"


def _epilogue_summary(entry: Tuple) -> str:
    tag = entry[0]
    if tag == "bias":
        return f"bias#{_content_digest(entry[1])}"
    if tag == "act":
        return f"act:{entry[1]}:{entry[2]!r}"
    if tag == "affine":
        return f"affine#{_content_digest(entry[1])}#{_content_digest(entry[2])}"
    if tag == "add":
        return f"add:v{entry[1]}"
    return tag


@dataclass(eq=False)
class Step:
    """One typed node of the step graph.

    ``eq=False``: steps are identity objects (their ``attrs`` hold numpy
    arrays, which have no well-defined ``==``).
    """

    kind: str
    op: Optional[_Op]
    inputs: Tuple[int, ...]
    output: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    epilogue: Epilogue = field(default_factory=list)
    in_place: bool = False  # output shares the first input's storage

    def reads(self) -> Tuple[int, ...]:
        """Every value this step consumes (inputs + epilogue skip adds)."""
        extra = tuple(entry[1] for entry in self.epilogue if entry[0] == "add")
        return self.inputs + extra

    def describe(self) -> str:
        label = self.attrs.get("label", self.kind)
        for entry in self.epilogue:
            if entry[0] == "act":
                label += f"+{entry[1]}"
            elif entry[0] == "add":
                label += "+residual"
            else:
                label += f"+{entry[0]}"
        return label


class PlanIR:
    """The typed step graph for one batch shape, before buffers exist."""

    def __init__(self, batch_shape: Tuple[int, ...]):
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.batch = self.batch_shape[0]
        self.values: List[ValueInfo] = []
        self.steps: List[Step] = []
        self.input: int = -1
        self.outputs: Dict[Optional[str], int] = {}

    # -- values --------------------------------------------------------
    def new_value(self, row_shape, alias_of: Optional[int] = None) -> int:
        vid = len(self.values)
        root = None if alias_of is None else self.root(alias_of)
        self.values.append(ValueInfo(vid, row_shape, root))
        return vid

    def root(self, vid: int) -> int:
        """The storage-owning ancestor of ``vid``."""
        value = self.values[vid]
        while value.alias_of is not None:
            value = self.values[value.alias_of]
        return value.vid

    def realias(self, vid: int, target: int) -> None:
        """Make ``vid`` share ``target``'s storage (used by rewrites)."""
        self.values[vid].alias_of = self.root(target)

    # -- construction --------------------------------------------------
    def emit(self, step: Step) -> int:
        self.steps.append(step)
        return step.output

    # -- introspection -------------------------------------------------
    def describe(self) -> str:
        """A byte-stable text dump of the plan.

        This string is digest material: the serve cache's provenance
        keys and the :mod:`repro.attest` golden registry both hash it,
        so it must be a pure function of the plan's *structure and
        weights* — attrs render in sorted key order, arrays render as
        ``dtype[shape]#content-digest``, and anything measured rather
        than derived (the ``dw_probe`` timing table, callables) is
        suppressed.  Two processes lowering the same session must
        produce identical bytes.
        """
        lines = [f"plan-ir batch={list(self.batch_shape)}"]
        outs = " ".join(
            f"{name if name is not None else '_'}=v{vid}"
            for name, vid in sorted(
                self.outputs.items(), key=lambda kv: (kv[0] is not None, kv[0] or "")
            )
        )
        lines.append(f"outputs: {outs}")
        for index, step in enumerate(self.steps):
            out = self.values[step.output]
            alias = "~" if out.alias_of is not None else ""
            ins = ",".join(f"v{vid}" for vid in step.inputs)
            head = (
                f"s{index:03d} {step.kind} {step.attrs.get('label', step.kind)} "
                f"in={ins or '-'} out=v{step.output}{list(out.row_shape)}{alias}"
            )
            parts = [head]
            if step.epilogue:
                parts.append("epi=[" + ",".join(
                    _epilogue_summary(entry) for entry in step.epilogue
                ) + "]")
            attrs = " ".join(
                f"{key}={_attr_summary(value)}"
                for key, value in sorted(step.attrs.items())
                if key not in _DIGEST_SUPPRESSED_ATTRS
            )
            if attrs:
                parts.append(attrs)
            lines.append(" | ".join(parts))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-step cost estimates (for plan describe; not used for any decision)
# ---------------------------------------------------------------------------
def _elems(row_shape: Tuple[int, ...], batch: int) -> int:
    n = batch
    for s in row_shape[1:]:
        n *= s
    return n


def estimate_step_cost(ir: "PlanIR", step: "Step") -> Tuple[int, int]:
    """Rough (flops, bytes-moved) estimate for one bound step.

    Estimates only — multiply-add counted as 2 flops, epilogue entries
    as one pass over the output each, sparse matrices charged their CSR
    byte size.  Good enough to rank steps in ``repro plan describe``;
    never used to pick kernels (the probe measures instead).
    """
    n = ir.batch
    out_e = _elems(ir.values[step.output].row_shape, n)
    in_e = (
        _elems(ir.values[step.inputs[0]].row_shape, n) if step.inputs else 0
    )
    flops = 0
    nbytes = (in_e + out_e) * 4
    kind = step.kind
    if kind in ("conv_gemm", "gemm"):
        weight = step.attrs["weight"]
        flops = 2 * weight.shape[0] * weight.shape[1] * (out_e // weight.shape[0])
        nbytes += weight.nbytes
    elif kind == "conv_spmm":
        matrix = step.attrs["matrix"]
        flops = 2 * matrix.nnz * n
        nbytes += matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    elif kind == "conv_gather_gemm":
        gather = step.attrs["gather"]
        weight = step.attrs["weight"]
        cols_e = gather.shape[0] * n
        flops = 2 * gather.nnz * n + 2 * weight.shape[0] * weight.shape[1] * (
            out_e // weight.shape[0]
        )
        nbytes += gather.data.nbytes + gather.indices.nbytes + 2 * cols_e * 4
    elif kind in ("max_pool", "avg_pool"):
        flops = out_e * step.attrs["kh"] * step.attrs["kw"]
    elif kind == "global_avg_pool":
        flops = in_e
    elif kind == "squeeze_excite":
        op = step.op
        c = op.reduce_wt.shape[0]
        reduced = op.reduce_wt.shape[1]
        flops = in_e + 2 * 2 * c * reduced * n + in_e
    elif kind in ("bias", "act", "affine", "residual_add", "copy"):
        flops = out_e
    elif kind == "view":
        nbytes = 0
    for entry in step.epilogue:
        flops += out_e
        nbytes += out_e * 4
    return flops, nbytes


# ---------------------------------------------------------------------------
# Shape tracing (runs the fused ops once on zeros; exact for fallbacks too)
# ---------------------------------------------------------------------------
def trace_shapes(session: InferenceSession, batch_shape: Tuple[int, ...]):
    """Record (in_shape, out_shape) for every op via a dry run on zeros."""
    shapes: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}

    def trace(ops, x):
        for op in ops:
            if isinstance(op, ResidualOp):
                y = trace(op.inner, x) + x
            else:
                y = op(x)
            if isinstance(y, dict):
                raise Unplannable(
                    f"op {op.describe()!r} returns a dict; only session heads may"
                )
            shapes[id(op)] = (tuple(x.shape), tuple(y.shape))
            x = y
        return x

    x = np.zeros(batch_shape, dtype=np.float32)
    trunk_out = trace(session.ops, x)
    if session.heads is not None:
        for program in session.heads.values():
            trace(program, trunk_out)
    return shapes, tuple(trunk_out.shape)


# ---------------------------------------------------------------------------
# Lowering: fused ops -> typed steps
# ---------------------------------------------------------------------------
def _leaky_slope(op: _Op) -> float:
    """Recover ``negative_slope`` from a lowered leaky-relu kernel."""
    kernel = getattr(op, "kernel", None) or op.act
    slope = getattr(kernel, "negative_slope", None)
    if slope is None:
        raise Unplannable(f"leaky_relu kernel on {op.describe()!r} has no slope")
    return float(slope)


def _emit_fused_act(ir: PlanIR, op: _Op, value: int) -> int:
    """Emit the op's fused activation (if any), in place on ``value``."""
    if op.act_name is None:
        return value
    slope = _leaky_slope(op) if op.act_name == "leaky_relu" else 0.0
    out = ir.new_value(ir.values[value].row_shape, alias_of=value)
    ir.emit(
        Step(
            "act",
            op,
            (value,),
            out,
            attrs={"name": op.act_name, "slope": slope, "label": f"act:{op.act_name}"},
            in_place=True,
        )
    )
    return out


def _lower_conv(ir: PlanIR, op: ConvOp, value: int, out_row) -> int:
    c_in, h, w = ir.values[value].row_shape[1:]
    c_out, ho, wo = out_row[1:]
    pointwise = (
        op.kh == 1 and op.kw == 1 and op.groups == 1
        and not (op.ph or op.pw) and op.sh == 1 and op.sw == 1
    )
    bias = (
        np.ascontiguousarray(op.bias.reshape(-1, 1)) if op.bias is not None else None
    )
    if pointwise:
        out = ir.new_value(out_row)
        weight = np.ascontiguousarray(op.weight.reshape(c_out, c_in))
        ir.emit(
            Step(
                "conv_gemm", op, (value,), out,
                attrs={"weight": weight, "label": "conv:gemm"},
            )
        )
    elif not HAVE_SPARSE:
        # scipy-less fallback: the fused op applies its own bias and
        # activation in row layout, so return without bias/act steps.
        out = ir.new_value(out_row)
        ir.emit(
            Step("conv_rowwise", op, (value,), out, attrs={"label": "conv:rowwise"})
        )
        return out
    elif op.groups > 1:
        out = ir.new_value(out_row)
        matrix = conv_csr_cached(op, "weight", weight_csr, c_in, h, w, ho, wo)
        ir.emit(
            Step(
                "conv_spmm", op, (value,), out,
                attrs={"matrix": matrix, "label": "conv:spmm"},
            )
        )
    else:
        out = ir.new_value(out_row)
        gather = conv_csr_cached(op, "gather", gather_csr, c_in, h, w, ho, wo)
        weight = np.ascontiguousarray(op.weight.reshape(c_out, -1))
        ir.emit(
            Step(
                "conv_gather_gemm", op, (value,), out,
                attrs={
                    "gather": gather,
                    "weight": weight,
                    "label": "conv:gather+gemm",
                },
            )
        )
    if bias is not None:
        biased = ir.new_value(out_row, alias_of=out)
        ir.emit(
            Step(
                "bias", op, (out,), biased,
                attrs={"bias": bias, "label": "conv:bias"}, in_place=True,
            )
        )
        out = biased
    return _emit_fused_act(ir, op, out)


def _lower_linear(ir: PlanIR, op: LinearOp, value: int, out_row) -> int:
    out = ir.new_value(out_row)
    # Natural layout: the transposed (f_out, f_in) *view* of the stored
    # weight.  The repack_layouts pass folds the transpose into a
    # C-contiguous stored weight at plan time; unoptimized plans pay one
    # bind-time copy (counted as a bind_repack), never a runtime one.
    weight = op.wt.T  # (f_out, f_in)
    ir.emit(
        Step("gemm", op, (value,), out, attrs={"weight": weight, "label": "linear:gemm"})
    )
    if op.bias is not None:
        bias = np.ascontiguousarray(np.asarray(op.bias, dtype=np.float32).reshape(-1, 1))
        biased = ir.new_value(out_row, alias_of=out)
        ir.emit(
            Step(
                "bias", op, (out,), biased,
                attrs={"bias": bias, "label": "linear:bias"}, in_place=True,
            )
        )
        out = biased
    return _emit_fused_act(ir, op, out)


def _lower_affine(ir: PlanIR, op: AffineOp, value: int, out_row) -> int:
    out = ir.new_value(out_row)
    channels = op.scale.size
    ir.emit(
        Step(
            "affine", op, (value,), out,
            attrs={
                "scale": np.ascontiguousarray(op.scale.reshape(channels, 1)),
                "shift": np.ascontiguousarray(op.shift.reshape(channels, 1)),
                "label": "affine",
            },
        )
    )
    return _emit_fused_act(ir, op, out)


def _lower_act_op(ir: PlanIR, op: ActOp, value: int, out_row) -> int:
    # Standalone activation: out-of-place (the input may be shared); the
    # copy-elision pass rewrites this in place when it is the sole reader.
    out = ir.new_value(out_row)
    slope = _leaky_slope(op) if op.name == "leaky_relu" else 0.0
    known = op.name in fuse._ACT_KERNELS or op.name == "leaky_relu"
    ir.emit(
        Step(
            "act", op, (value,), out,
            attrs={
                "name": op.name,
                "slope": slope,
                "kernel": None if known else op.kernel,
                "label": f"act:{op.name}",
            },
            in_place=False,
        )
    )
    return out


def _lower_max_pool(ir: PlanIR, op: MaxPoolOp, value: int, out_row) -> int:
    out = ir.new_value(out_row)
    ir.emit(
        Step(
            "max_pool", op, (value,), out,
            attrs={
                "kh": op.kh, "kw": op.kw, "sh": op.sh, "sw": op.sw,
                "label": "max_pool",
            },
        )
    )
    return _emit_fused_act(ir, op, out)


def _lower_avg_pool(ir: PlanIR, op: AvgPoolOp, value: int, out_row) -> int:
    c, h, w = ir.values[value].row_shape[1:]
    _, ho, wo = out_row[1:]
    if op.adaptive_output is not None:
        kh, kw = h // ho, w // wo
        sh, sw = kh, kw
    else:
        kh, kw, sh, sw = op.kh, op.kw, op.sh, op.sw
    out = ir.new_value(out_row)
    if (ho, wo) == (1, 1) and (kh, kw) == (h, w):
        ir.emit(
            Step("global_avg_pool", op, (value,), out, attrs={"label": "avg_pool:global"})
        )
    else:
        ir.emit(
            Step(
                "avg_pool", op, (value,), out,
                attrs={"kh": kh, "kw": kw, "sh": sh, "sw": sw, "label": "avg_pool"},
            )
        )
    return _emit_fused_act(ir, op, out)


def _lower_global_avg_pool(ir: PlanIR, op: GlobalAvgPoolOp, value: int, out_row) -> int:
    out = ir.new_value(out_row)
    ir.emit(
        Step("global_avg_pool", op, (value,), out, attrs={"label": "global_avg_pool"})
    )
    return _emit_fused_act(ir, op, out)


def _lower_squeeze_excite(ir: PlanIR, op: SqueezeExciteOp, value: int, out_row) -> int:
    out = ir.new_value(out_row)
    ir.emit(Step("squeeze_excite", op, (value,), out, attrs={"label": "squeeze_excite"}))
    return _emit_fused_act(ir, op, out)


def _lower_fallback(ir: PlanIR, op: FallbackOp, value: int, out_row) -> int:
    out = ir.new_value(out_row)
    ir.emit(Step("fallback", op, (value,), out, attrs={"label": op.name}))
    return out


def _lower_view(ir: PlanIR, op: _Op, value: int, out_row, label: str) -> int:
    out = ir.new_value(out_row, alias_of=value)
    ir.emit(Step("view", op, (value,), out, attrs={"label": label}, in_place=True))
    return out


def _lower_residual(ir: PlanIR, op: ResidualOp, value: int, out_row, shapes) -> int:
    inner = _lower_program(ir, op.inner, value, shapes)
    out = ir.new_value(out_row)
    ir.emit(
        Step("residual_add", op, (inner, value), out, attrs={"label": "residual:add"})
    )
    return out


def _lower_op(ir: PlanIR, op: _Op, value: int, shapes) -> int:
    out_row = shapes[id(op)][1]
    if isinstance(op, ResidualOp):
        return _lower_residual(ir, op, value, out_row, shapes)
    if isinstance(op, ConvOp):
        return _lower_conv(ir, op, value, out_row)
    if isinstance(op, LinearOp):
        return _lower_linear(ir, op, value, out_row)
    if isinstance(op, AffineOp):
        return _lower_affine(ir, op, value, out_row)
    if isinstance(op, ActOp):
        return _lower_act_op(ir, op, value, out_row)
    if isinstance(op, MaxPoolOp):
        return _lower_max_pool(ir, op, value, out_row)
    if isinstance(op, AvgPoolOp):
        return _lower_avg_pool(ir, op, value, out_row)
    if isinstance(op, GlobalAvgPoolOp):
        return _lower_global_avg_pool(ir, op, value, out_row)
    if isinstance(op, SqueezeExciteOp):
        return _lower_squeeze_excite(ir, op, value, out_row)
    if isinstance(op, FlattenOp):
        if op.start_dim != 1:
            raise Unplannable(f"flatten(start_dim={op.start_dim}) is not plannable")
        return _lower_view(ir, op, value, out_row, "view:flatten")
    if isinstance(op, ReshapeOp):
        return _lower_view(ir, op, value, out_row, "view:reshape")
    if isinstance(op, FallbackOp):
        return _lower_fallback(ir, op, value, out_row)
    raise Unplannable(f"no lowering for op {op.describe()!r}")


def _lower_program(ir: PlanIR, ops: Sequence[_Op], value: int, shapes) -> int:
    for op in ops:
        value = _lower_op(ir, op, value, shapes)
    return value


def lower_session(session: InferenceSession, batch_shape: Tuple[int, ...]) -> PlanIR:
    """Lower a fused session into an (un-optimized) :class:`PlanIR`."""
    ir = PlanIR(batch_shape)
    shapes, _ = trace_shapes(session, ir.batch_shape)
    ir.input = ir.new_value(ir.batch_shape)
    trunk = _lower_program(ir, session.ops, ir.input, shapes)
    if session.heads is None:
        ir.outputs[None] = trunk
        return ir
    for name, program in session.heads.items():
        head = _lower_program(ir, program, trunk, shapes)
        if ir.root(head) == ir.root(trunk):
            # Identity head: materialise a private output buffer so every
            # head hands back distinct storage.
            copy = ir.new_value(ir.values[head].row_shape)
            ir.emit(
                Step("copy", None, (head,), copy, attrs={"label": f"head[{name}]:copy"})
            )
            head = copy
        ir.outputs[name] = head
    return ir
