"""Buffer binding and execution of optimized plan-IR programs.

The binder walks the (optimized) step graph in order, resolves every
value to a view over a :class:`BufferArena` block using liveness computed
on the *rewritten* program, and compiles each step into a closure over
those views.  :class:`ExecutionPlan` owns one bound program per batch
shape; :class:`PlannedExecutor` caches plans per shape (bounded LRU) and
shards batches across a persistent :class:`_WorkerPool` — or, with
``intra_op=True``, splits a single step's output rows across that same
pool (the intra-op row-parallel hook).
"""

from __future__ import annotations

import queue
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fuse import InferenceSession
from . import kernels
from .ir import PlanIR, Step, Unplannable, estimate_step_cost, lower_session
from .kernels import apply_act, mean_weights, spmm, spmm_blocks
from .passes import L2_BUDGET_BYTES, run_passes

__all__ = [
    "BufferArena",
    "ExecutionPlan",
    "PlanStats",
    "PlannedExecutor",
    "plan_session",
]


# ---------------------------------------------------------------------------
# The arena
# ---------------------------------------------------------------------------
class _Block:
    __slots__ = ("data", "free")

    def __init__(self, nelems: int):
        self.data = np.empty(nelems, dtype=np.float32)
        self.free = False


class BufferArena:
    """Pool of float32 blocks with liveness-based reuse at plan time.

    ``acquire`` is only ever called while a plan is being *built*: it
    returns a view over a free block large enough for the request (or
    grows the arena by one block).  ``release`` marks a block reusable for
    ops later in the program.  After planning, the arena is frozen — the
    compiled steps hold views into its blocks and steady-state execution
    allocates nothing.
    """

    def __init__(self):
        self._blocks: List[_Block] = []
        self.requested_bytes = 0

    def acquire(self, shape: Tuple[int, ...]) -> Tuple[int, np.ndarray]:
        nelems = max(1, int(np.prod(shape)))
        self.requested_bytes += nelems * 4
        best = None
        for index, block in enumerate(self._blocks):
            if block.free and block.data.size >= nelems:
                if best is None or block.data.size < self._blocks[best].data.size:
                    best = index
        if best is None:
            self._blocks.append(_Block(nelems))
            best = len(self._blocks) - 1
        block = self._blocks[best]
        block.free = False
        return best, block.data[:nelems].reshape(shape)

    def release(self, block_id: int) -> None:
        self._blocks[block_id].free = True

    @property
    def nbytes(self) -> int:
        return sum(block.data.nbytes for block in self._blocks)

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)


@dataclass
class PlanStats:
    """Accounting for one plan (or the aggregate of an executor's plans)."""

    arena_bytes: int = 0
    arena_blocks: int = 0
    requested_bytes: int = 0
    steady_state_allocs: int = 0  # per-run allocations planning could not remove
    num_steps: int = 0
    sparse_ops: int = 0
    gemm_ops: int = 0
    fallback_ops: int = 0
    num_plans: int = 0
    num_workers: int = 1
    # -- optimizer accounting ------------------------------------------
    fused_steps: int = 0  # bias/act/affine/residual steps absorbed into epilogues
    elided_copies: int = 0  # activations rewritten to run in place (no copy)
    aliased_views: int = 0  # flatten/reshape certified zero-copy (also true unoptimized)
    folded_affines: int = 0  # affines folded exactly into producer bias
    blocked_spmm_ops: int = 0  # SpMM steps running as L2-sized row blocks
    spmm_row_blocks: int = 0  # total row blocks across blocked SpMMs
    layout_repacks: int = 0  # operands canonicalized at plan time (repack pass)
    bind_repacks: int = 0  # operands the *binder* still had to copy (0 when optimized)
    depthwise_probes: int = 0  # depthwise steps micro-probed at plan time
    depthwise_grouped_ops: int = 0  # depthwise steps running as block-diagonal groups
    depthwise_groups: int = 0  # total plane groups across grouped depthwise steps
    depthwise_stencil_ops: int = 0  # depthwise steps running as padded-slab stencils
    quant_steps: int = 0  # steps executing with int32 accumulation (quant8)
    quant_chains: int = 0  # int8->int8 fused requantization hand-offs (quant8)

    @property
    def reuse_ratio(self) -> float:
        """Fraction of buffer demand the arena served from reused blocks."""
        if not self.requested_bytes:
            return 0.0
        return 1.0 - self.arena_bytes / self.requested_bytes

    def merged(self, other: "PlanStats") -> "PlanStats":
        return PlanStats(
            arena_bytes=self.arena_bytes + other.arena_bytes,
            arena_blocks=self.arena_blocks + other.arena_blocks,
            requested_bytes=self.requested_bytes + other.requested_bytes,
            steady_state_allocs=self.steady_state_allocs + other.steady_state_allocs,
            num_steps=self.num_steps + other.num_steps,
            sparse_ops=self.sparse_ops + other.sparse_ops,
            gemm_ops=self.gemm_ops + other.gemm_ops,
            fallback_ops=self.fallback_ops + other.fallback_ops,
            num_plans=self.num_plans + other.num_plans,
            num_workers=max(self.num_workers, other.num_workers),
            fused_steps=self.fused_steps + other.fused_steps,
            elided_copies=self.elided_copies + other.elided_copies,
            aliased_views=self.aliased_views + other.aliased_views,
            folded_affines=self.folded_affines + other.folded_affines,
            blocked_spmm_ops=self.blocked_spmm_ops + other.blocked_spmm_ops,
            spmm_row_blocks=self.spmm_row_blocks + other.spmm_row_blocks,
            layout_repacks=self.layout_repacks + other.layout_repacks,
            bind_repacks=self.bind_repacks + other.bind_repacks,
            depthwise_probes=self.depthwise_probes + other.depthwise_probes,
            depthwise_grouped_ops=self.depthwise_grouped_ops
            + other.depthwise_grouped_ops,
            depthwise_groups=self.depthwise_groups + other.depthwise_groups,
            depthwise_stencil_ops=self.depthwise_stencil_ops
            + other.depthwise_stencil_ops,
            quant_steps=self.quant_steps + other.quant_steps,
            quant_chains=self.quant_chains + other.quant_chains,
        )


# ---------------------------------------------------------------------------
# Bound values
# ---------------------------------------------------------------------------
class _Value:
    """A bound intermediate: column-major storage plus its row shape."""

    __slots__ = ("array", "row_shape", "block_id")

    def __init__(self, array: np.ndarray, row_shape: Tuple[int, ...], block_id: Optional[int]):
        self.array = array  # shape row_shape[1:] + (batch,)
        self.row_shape = tuple(row_shape)
        self.block_id = block_id


def _col_shape(row_shape: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(row_shape[1:]) + (row_shape[0],)


# ---------------------------------------------------------------------------
# Worker pool (persistent daemon threads; shard tasks release the GIL in
# BLAS / sparse kernels, so shards overlap on multi-core hosts)
# ---------------------------------------------------------------------------
class _WorkerPool:
    def __init__(self, workers: int):
        self.workers = workers
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._loop, name=f"repro-engine-{index}", daemon=True
            )
            for index in range(workers - 1)
        ]
        for thread in self._threads:
            thread.start()

    def _loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:  # shutdown sentinel from close()
                return
            fn, done, errors = task
            try:
                fn()
            except BaseException as error:  # surfaced by run_all
                errors.append(error)
            finally:
                done.release()

    def run_all(self, thunks: Sequence[Callable[[], None]]) -> None:
        """Run ``thunks`` concurrently; the caller executes the first itself."""
        if len(thunks) == 1:
            thunks[0]()
            return
        done = threading.Semaphore(0)
        errors: List[BaseException] = []
        for fn in thunks[1:]:
            self._tasks.put((fn, done, errors))
        try:
            thunks[0]()  # the calling thread is worker zero
        except BaseException as error:
            errors.append(error)
        for _ in thunks[1:]:
            done.acquire()
        if errors:
            raise errors[0]

    def close(self) -> None:
        """Stop the worker threads (idempotent; pending tasks drain first)."""
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads = []


# ---------------------------------------------------------------------------
# The binder: IR -> arena-bound closures
# ---------------------------------------------------------------------------
class _Binder:
    def __init__(
        self,
        ir: PlanIR,
        arena: BufferArena,
        stats: PlanStats,
        pool: Optional[_WorkerPool] = None,
        intra_op_workers: int = 1,
    ):
        self.ir = ir
        self.arena = arena
        self.stats = stats
        self.pool = pool
        self.intra_op_workers = intra_op_workers if pool is not None else 1
        self.batch = ir.batch
        self.bindings: Dict[int, _Value] = {}
        self.steps: List[Tuple[str, Callable[[], None]]] = []
        # Per-step records of the quantizable producers (step, operand
        # views, full epilogue with resolved skip arrays) — the quant8
        # overlay compiles replacement closures from these.
        self.records: Dict[int, Dict] = {}
        self.last_read: Dict[int, int] = {}
        self.protected = {ir.root(ir.input)}
        for vid in ir.outputs.values():
            self.protected.add(ir.root(vid))
        for index, step in enumerate(ir.steps):
            for vid in step.reads():
                self.last_read[ir.root(vid)] = index

    # -- value plumbing -------------------------------------------------
    def define(self, vid: int) -> np.ndarray:
        root = self.ir.root(vid)
        if root not in self.bindings:
            row_shape = self.ir.values[root].row_shape
            block_id, array = self.arena.acquire(_col_shape(row_shape))
            self.bindings[root] = _Value(array, row_shape, block_id)
        return self.resolve(vid)

    def resolve(self, vid: int) -> np.ndarray:
        root = self.ir.root(vid)
        bound = self.bindings[root]
        row_shape = self.ir.values[vid].row_shape
        if row_shape == bound.row_shape:
            return bound.array
        return bound.array.reshape(_col_shape(row_shape))

    def scratch(self, shape: Tuple[int, ...]) -> Tuple[int, np.ndarray]:
        return self.arena.acquire(shape)

    def _canon(self, arr: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """C-contiguous float32 view of a weight-like operand.

        After the repack_layouts pass this is a no-op; when it still has
        to copy (unoptimized plans, or a pass regression) the copy is
        plan-time-only but counted as a ``bind_repack`` so tests can
        assert optimized plans never need one.
        """
        if arr is None or (arr.flags.c_contiguous and arr.dtype == np.float32):
            return arr
        self.stats.bind_repacks += 1
        return np.ascontiguousarray(arr, dtype=np.float32)

    def _record(self, step: Step, **payload) -> None:
        epi = [
            ("add", self.resolve(entry[1])) if entry[0] == "add" else entry
            for entry in step.epilogue
        ]
        payload["step"] = step
        payload["epi"] = epi
        payload["ir_index"] = self._index
        payload["fn_index"] = len(self.steps) - 1  # emit precedes _record
        self.records[self._index] = payload

    def emit(self, label: str, fn: Callable[[], None]) -> None:
        self.steps.append((label, fn))
        self.stats.num_steps += 1

    def _release_dead(self, index: int, step: Step) -> None:
        for vid in step.reads():
            root = self.ir.root(vid)
            if (
                root not in self.protected
                and root in self.bindings
                and self.last_read.get(root) == index
            ):
                bound = self.bindings[root]
                if bound.block_id is not None:
                    self.arena.release(bound.block_id)

    # -- epilogue -------------------------------------------------------
    def _bind_epilogue(
        self, step: Step, out: np.ndarray, skip_first: int = 0
    ) -> List[Callable[[], None]]:
        """Compile the epilogue entries (minus the first ``skip_first``,
        which the main kernel already absorbed) into in-place closures."""
        ops: List[Callable[[], None]] = []
        entries = step.epilogue[skip_first:]
        for entry in entries:
            if entry[0] == "bias":
                bias = entry[1]
                y2 = out.reshape(bias.shape[0], -1)
                ops.append(lambda y=y2, b=bias: np.add(y, b, out=y))
            elif entry[0] == "affine":
                scale, shift = entry[1], entry[2]
                y2 = out.reshape(scale.shape[0], -1)

                def run_affine(y=y2, s=scale, b=shift):
                    np.multiply(y, s, out=y)
                    np.add(y, b, out=y)

                ops.append(run_affine)
            elif entry[0] == "act":
                name, slope = entry[1], entry[2]
                scratch = None
                sid = None
                if kernels.act_needs_scratch(name):
                    sid, scratch = self.scratch(out.shape)
                ops.append(
                    lambda y=out, s=scratch, nm=name, sl=slope: apply_act(nm, y, s, sl)
                )
                if sid is not None:
                    self.arena.release(sid)
            elif entry[0] == "add":
                skip = self.resolve(entry[1])
                ops.append(lambda y=out, s=skip: np.add(y, s, out=y))
        return ops

    @staticmethod
    def _chain(main: Callable[[], None], ops: List[Callable[[], None]]):
        if not ops:
            return main
        if len(ops) == 1:
            tail = ops[0]

            def run_one(main=main, tail=tail):
                main()
                tail()

            return run_one

        def run_chain(main=main, ops=tuple(ops)):
            main()
            for op in ops:
                op()

        return run_chain

    # -- per-kind binding ----------------------------------------------
    def bind(self) -> None:
        for index, step in enumerate(self.ir.steps):
            handler = getattr(self, f"_bind_{step.kind}", None)
            if handler is None:
                raise Unplannable(f"no binding for step kind {step.kind!r}")
            self._index = index
            handler(step)
            self._release_dead(index, step)

    def _bind_view(self, step: Step) -> None:
        pass  # pure alias: no runtime work, no buffer

    def _row_parallel(self, thunk_builder, rows: int):
        """Split ``rows`` across the pool when the intra-op hook is active.

        ``thunk_builder(lo, hi)`` returns the closure for one row slice.
        Returns a list of thunks (length 1 when splitting is off or not
        worthwhile).
        """
        workers = self.intra_op_workers
        if workers <= 1 or rows < 2 * workers:
            return [thunk_builder(0, rows)]
        bounds = np.linspace(0, rows, workers + 1).astype(int)
        return [
            thunk_builder(int(bounds[i]), int(bounds[i + 1]))
            for i in range(workers)
            if bounds[i + 1] > bounds[i]
        ]

    def _bind_conv_gemm(self, step: Step) -> None:
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        weight = self._canon(step.attrs["weight"])
        c_out, c_in = weight.shape
        x2 = x.reshape(c_in, -1)
        y2 = out.reshape(c_out, -1)
        beta = bool(step.attrs.get("beta_gemm") and step.epilogue)
        folded_add = (
            beta
            and len(step.epilogue) >= 2
            and step.epilogue[1][0] == "add"
        )
        if folded_add:
            # conv -> bias -> residual add: seed the output with
            # ``skip + bias`` in one pass, then accumulate the GEMM onto
            # it — two whole-tensor passes become one.
            skip2 = self.resolve(step.epilogue[1][1]).reshape(c_out, -1)
            bias = step.epilogue[0][1]

            def build(lo, hi):
                def run(
                    W=weight[lo:hi], x=x2, y=y2[lo:hi],
                    b=bias[lo:hi], s=skip2[lo:hi],
                ):
                    np.add(s, b, out=y)
                    kernels.beta_gemm(W, x, y)

                return run

        elif beta:
            bias = step.epilogue[0][1]

            def build(lo, hi):
                def run(W=weight[lo:hi], x=x2, y=y2[lo:hi], b=bias[lo:hi]):
                    np.copyto(y, b)  # row-constant fill, then sgemm(beta=1)
                    kernels.beta_gemm(W, x, y)

                return run

        else:

            def build(lo, hi):
                return lambda W=weight[lo:hi], x=x2, y=y2[lo:hi]: np.matmul(
                    W, x, out=y
                )

        thunks = self._row_parallel(build, c_out)
        if len(thunks) == 1:
            main = thunks[0]
        else:
            pool = self.pool

            def main(pool=pool, thunks=tuple(thunks)):
                pool.run_all(thunks)

        self.emit(
            step.describe(),
            self._chain(
                main,
                self._bind_epilogue(
                    step, out, skip_first=2 if folded_add else (1 if beta else 0)
                ),
            ),
        )
        self._record(step, kind="gemm", x2=x2, y2=y2, out=out, weight=weight)
        self.stats.gemm_ops += 1

    _bind_gemm = _bind_conv_gemm  # linear layers bind identically

    def _bind_conv_spmm(self, step: Step) -> None:
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        n = self.batch
        x2 = x.reshape(-1, n)
        y2 = out.reshape(-1, n)
        matrix = step.attrs["matrix"]
        blocks = step.attrs.get("row_blocks")
        prefill = bool(step.attrs.get("bias_prefill") and step.epilogue)
        if prefill:
            bias = step.epilogue[0][1]
            c = bias.shape[0]
            yc = y2.reshape(c, -1)  # 2-D row-constant broadcast fills fast

            def fill(y=yc, b=bias):
                np.copyto(y, b)

        else:

            def fill(y=y2):
                y.fill(0.0)

        dw_kernel = step.attrs.get("dw_kernel")
        if dw_kernel == "group_csr":
            groups_dw = tuple(step.attrs["dw_groups"])

            def main(g=groups_dw, x=x2, y=y2, fill=fill):
                fill()
                for block in g:
                    block.run(x, y)

        elif dw_kernel == "stencil":
            stencil = step.attrs["dw_stencil"]
            pad_shape, mul_shape = stencil.scratch_shapes(n)
            pad_id, pad = self.scratch(pad_shape)
            mul_id, mul = self.scratch(mul_shape)

            def main(st=stencil, x=x, y=out, pad=pad, mul=mul, fill=fill):
                fill()
                st.run(x, y, pad, mul)

            self.arena.release(pad_id)
            self.arena.release(mul_id)
        elif blocks is None:

            def main(m=matrix, x=x2, y=y2, fill=fill):
                fill()
                kernels.spmm_accumulate(m, x, y)

        else:
            groups = [
                blocks[i :: self.intra_op_workers]
                for i in range(min(self.intra_op_workers, len(blocks)))
            ] if self.intra_op_workers > 1 else [blocks]
            if len(groups) > 1:
                pool = self.pool
                thunks = tuple(
                    (lambda g=tuple(group), x=x2, y=y2: spmm_blocks(list(g), x, y))
                    for group in groups
                )

                def main(pool=pool, thunks=thunks, fill=fill):
                    fill()
                    pool.run_all(thunks)

            else:

                def main(b=tuple(blocks), x=x2, y=y2, fill=fill):
                    fill()
                    spmm_blocks(list(b), x, y)

        self.emit(
            step.describe(),
            self._chain(
                main, self._bind_epilogue(step, out, skip_first=1 if prefill else 0)
            ),
        )
        self._record(
            step, kind="spmm", x2=x2, y2=y2, out=out, matrix=matrix,
            c_out=step.op.c_out,
        )
        self.stats.sparse_ops += 1

    def _bind_conv_gather_gemm(self, step: Step) -> None:
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        n = self.batch
        gather = step.attrs["gather"]
        weight = self._canon(step.attrs["weight"])
        c_out, ckk = weight.shape
        plane = gather.shape[0] // ckk
        x2 = x.reshape(-1, n)
        y2 = out.reshape(c_out, plane * n)
        cid, cols = self.scratch((gather.shape[0], n))
        blocks = step.attrs.get("row_blocks")
        beta = bool(step.attrs.get("beta_gemm") and step.epilogue)
        bias = step.epilogue[0][1] if beta else None

        def run_gemm(c2, y=y2, W=weight, b=bias):
            if b is None:
                np.matmul(W, c2, out=y)
            else:
                np.copyto(y, b)
                kernels.beta_gemm(W, c2, y)

        if blocks is None:

            def main(G=gather, x=x2, c=cols, gemm=run_gemm, ckk=ckk):
                spmm(G, x, c)
                gemm(c.reshape(ckk, -1))

        else:

            def main(b=tuple(blocks), x=x2, c=cols, gemm=run_gemm, ckk=ckk):
                c.fill(0.0)
                spmm_blocks(list(b), x, c)
                gemm(c.reshape(ckk, -1))

        self.emit(
            step.describe(),
            self._chain(
                main, self._bind_epilogue(step, out, skip_first=1 if beta else 0)
            ),
        )
        self._record(
            step, kind="gather_gemm", x2=x2, y2=y2, out=out,
            gather=gather, weight=weight, ckk=ckk, plane=plane,
        )
        self.stats.sparse_ops += 1
        self.stats.gemm_ops += 1
        self.arena.release(cid)

    def _bind_conv_rowwise(self, step: Step) -> None:
        # scipy-less fallback: run the fused kernel in row layout (the op
        # applies its own bias and activation).
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        row_shape = self.ir.values[step.inputs[0]].row_shape
        op = step.op

        def main(op=op, x=x, y=out, shape=row_shape):
            row = np.ascontiguousarray(np.moveaxis(x, -1, 0)).reshape(shape)
            np.copyto(y, np.moveaxis(op(row), 0, -1))

        self.emit(step.describe(), main)
        self.stats.fallback_ops += 1
        self.stats.steady_state_allocs += 2

    def _bind_bias(self, step: Step) -> None:
        out = self.define(step.output)
        bias = self._canon(step.attrs["bias"])
        y2 = out.reshape(bias.shape[0], -1)
        self.emit(step.describe(), lambda y=y2, b=bias: np.add(y, b, out=y))

    def _bind_affine(self, step: Step) -> None:
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        scale = self._canon(step.attrs["scale"])
        shift = self._canon(step.attrs["shift"])
        channels = scale.shape[0]
        x2 = x.reshape(channels, -1)
        y2 = out.reshape(channels, -1)

        def main(x=x2, y=y2, s=scale, b=shift):
            np.multiply(x, s, out=y)
            np.add(y, b, out=y)

        self.emit(
            step.describe(), self._chain(main, self._bind_epilogue(step, out))
        )

    def _bind_act(self, step: Step) -> None:
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        name = step.attrs["name"]
        custom = step.attrs.get("kernel")
        if custom is not None:

            def main(x=x, y=out, k=custom):
                np.copyto(y, x)
                np.copyto(y, k(y))

            self.emit(step.describe(), main)
            return
        slope = step.attrs.get("slope", 0.0)
        scratch = None
        sid = None
        if kernels.act_needs_scratch(name):
            sid, scratch = self.scratch(out.shape)
        if step.in_place:

            def main(y=out, s=scratch, nm=name, sl=slope):
                apply_act(nm, y, s, sl)

        else:

            def main(x=x, y=out, s=scratch, nm=name, sl=slope):
                np.copyto(y, x)
                apply_act(nm, y, s, sl)

        self.emit(step.describe(), main)
        if sid is not None:
            self.arena.release(sid)

    def _bind_max_pool(self, step: Step) -> None:
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        _, ho, wo = self.ir.values[step.output].row_shape[1:]
        kh, kw = step.attrs["kh"], step.attrs["kw"]
        sh, sw = step.attrs["sh"], step.attrs["sw"]
        eh, ew = (ho - 1) * sh + 1, (wo - 1) * sw + 1

        def main(x=x, y=out):
            np.copyto(y, x[:, 0:eh:sh, 0:ew:sw, :])
            for i in range(kh):
                for j in range(kw):
                    if i == 0 and j == 0:
                        continue
                    np.maximum(y, x[:, i : i + eh : sh, j : j + ew : sw, :], out=y)

        self.emit(
            step.describe(), self._chain(main, self._bind_epilogue(step, out))
        )

    def _bind_avg_pool(self, step: Step) -> None:
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        _, ho, wo = self.ir.values[step.output].row_shape[1:]
        kh, kw = step.attrs["kh"], step.attrs["kw"]
        sh, sw = step.attrs["sh"], step.attrs["sw"]
        eh, ew = (ho - 1) * sh + 1, (wo - 1) * sw + 1
        inv = 1.0 / (kh * kw)

        def main(x=x, y=out):
            np.copyto(y, x[:, 0:eh:sh, 0:ew:sw, :])
            for i in range(kh):
                for j in range(kw):
                    if i == 0 and j == 0:
                        continue
                    y += x[:, i : i + eh : sh, j : j + ew : sw, :]
            y *= inv

        self.emit(
            step.describe(), self._chain(main, self._bind_epilogue(step, out))
        )

    def _bind_global_avg_pool(self, step: Step) -> None:
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        c, h, w = self.ir.values[step.inputs[0]].row_shape[1:]
        n = self.batch
        x3 = x.reshape(c, h * w, n)
        # Canonical kernel: the axis mean as a GEMM.  Both the optimized
        # and unoptimized binders take this path so plans stay bit-exact
        # across the optimizer (np.mean over the middle axis of a column
        # tensor is also an order of magnitude slower than BLAS here).
        weights = mean_weights(h * w)
        y3 = out.reshape(c, 1, n)
        main = lambda W=weights, x=x3, y=y3: np.matmul(W, x, out=y)  # noqa: E731
        self.emit(
            step.describe(), self._chain(main, self._bind_epilogue(step, out))
        )

    def _bind_squeeze_excite(self, step: Step) -> None:
        op = step.op
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        c, h, w = self.ir.values[step.inputs[0]].row_shape[1:]
        n = self.batch
        # The repack pass stages the transposed weights C-contiguously on
        # the step; unoptimized plans canonicalize here (counted).
        reduce_w = step.attrs.get("reduce_w")
        if reduce_w is None:
            reduce_w = self._canon(op.reduce_wt.T)  # (reduced, c)
            expand_w = self._canon(op.expand_wt.T)  # (c, reduced)
            reduce_b = self._canon(op.reduce_b.reshape(-1, 1))
            expand_b = self._canon(op.expand_b.reshape(-1, 1))
        else:
            expand_w = step.attrs["expand_w"]
            reduce_b = step.attrs["reduce_b"]
            expand_b = step.attrs["expand_b"]
        reduced = reduce_w.shape[0]
        pid, pooled = self.scratch((c, n))
        hid, hidden = self.scratch((reduced, n))
        gid, gate = self.scratch((c, n))
        needs_scratch = (
            op.bottleneck_name in kernels.SCRATCH_ACTS
            or op.gate_name in kernels.SCRATCH_ACTS
        )
        sid, scratch = (
            self.scratch((max(reduced, c), n)) if needs_scratch else (None, None)
        )
        x3 = x.reshape(c, h * w, n)
        y3 = out.reshape(c, h * w, n)
        bottleneck, gate_name = op.bottleneck_name, op.gate_name
        # Canonical GEMM mean (see _bind_global_avg_pool): keeping the
        # kernel choice pass-independent keeps optimized and unoptimized
        # plans bit-identical.
        weights = mean_weights(h * w)
        pooled3 = pooled.reshape(c, 1, n)

        def main(
            x=x3, y=y3, pooled=pooled, hidden=hidden, gate=gate, scratch=scratch
        ):
            np.matmul(weights, x, out=pooled3)
            np.matmul(reduce_w, pooled, out=hidden)
            hidden += reduce_b
            apply_act(
                bottleneck,
                hidden,
                None if scratch is None else scratch[: hidden.shape[0]],
            )
            np.matmul(expand_w, hidden, out=gate)
            gate += expand_b
            apply_act(
                gate_name,
                gate,
                None if scratch is None else scratch[: gate.shape[0]],
            )
            np.multiply(x, gate[:, None, :], out=y)

        self.emit(
            step.describe(), self._chain(main, self._bind_epilogue(step, out))
        )
        self.stats.gemm_ops += 2
        for block_id in (pid, hid, gid, sid):
            if block_id is not None:
                self.arena.release(block_id)

    def _bind_residual_add(self, step: Step) -> None:
        inner_vid, skip_vid = step.inputs
        inner_root = self.ir.root(inner_vid)
        skip_root = self.ir.root(skip_vid)
        inner = self.resolve(inner_vid)
        skip = self.resolve(skip_vid)
        index = self._index
        in_place = (
            inner_root != skip_root
            and inner_root not in self.protected
            and self.last_read.get(inner_root) == index
        )
        if in_place:
            # The output takes over inner's storage, so inner's block
            # inherits the output's liveness and protection — the
            # precomputed last_read/protected predate this realias, and
            # without the merge the block would be freed at this step
            # and handed to a later value while downstream steps still
            # read the sum through the alias.
            out_root = self.ir.root(step.output)
            self.ir.realias(step.output, inner_vid)
            self.last_read[inner_root] = max(
                self.last_read.get(inner_root, index),
                self.last_read.get(out_root, index),
            )
            if out_root in self.protected:
                self.protected.add(inner_root)
            out = self.resolve(step.output)
            self.emit(
                step.describe(), lambda y=out, s=skip: np.add(y, s, out=y)
            )
        else:
            out = self.define(step.output)
            self.emit(
                step.describe(),
                lambda a=inner, b=skip, y=out: np.add(a, b, out=y),
            )

    def _bind_copy(self, step: Step) -> None:
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        self.emit(step.describe(), lambda x=x, y=out: np.copyto(y, x))

    def _bind_fallback(self, step: Step) -> None:
        x = self.resolve(step.inputs[0])
        out = self.define(step.output)
        row_shape = self.ir.values[step.inputs[0]].row_shape
        op = step.op

        def main(op=op, x=x, y=out, shape=row_shape):
            row = np.ascontiguousarray(np.moveaxis(x, -1, 0)).reshape(shape)
            result = op(row)
            np.copyto(y, np.moveaxis(np.asarray(result, dtype=np.float32), 0, -1))

        self.emit(step.describe(), main)
        self.stats.fallback_ops += 1
        self.stats.steady_state_allocs += 2


# ---------------------------------------------------------------------------
# ExecutionPlan
# ---------------------------------------------------------------------------
class ExecutionPlan:
    """A compiled session bound to one batch shape, arena and step list.

    Lowering emits the typed plan-IR, the optimizer passes rewrite it
    (unless ``optimize=False``), and the binder compiles the result
    against a private :class:`BufferArena`.  ``run`` executes the bound
    steps and writes results either into caller-provided output arrays
    (``out=``) or into plan-owned row-major result buffers (valid until
    the next ``run``).
    """

    def __init__(
        self,
        session: InferenceSession,
        batch_shape: Tuple[int, ...],
        optimize: bool = True,
        pool: Optional[_WorkerPool] = None,
        intra_op_workers: int = 1,
        l2_bytes: int = L2_BUDGET_BYTES,
        probe: bool = True,
        disabled_passes: Tuple[str, ...] = (),
    ):
        self.session = session
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.optimized = bool(optimize)
        self.arena = BufferArena()
        self.stats = PlanStats(num_plans=1)

        self.ir = lower_session(session, self.batch_shape)
        if optimize:
            run_passes(
                self.ir, self.stats, l2_bytes=l2_bytes,
                intra_op_workers=intra_op_workers,
                probe=probe, disabled=tuple(disabled_passes),
            )

        binder = _Binder(
            self.ir, self.arena, self.stats,
            pool=pool, intra_op_workers=intra_op_workers,
        )
        in_array = binder.define(self.ir.input)
        binder.bind()
        self._steps = binder.steps
        self._step_fns = [fn for _, fn in binder.steps]
        self._records = binder.records  # quant8 overlay inputs
        self._in_view = np.moveaxis(in_array, -1, 0)  # row-shaped strided view

        self._outputs: Dict[Optional[str], _Value] = {}
        for name, vid in self.ir.outputs.items():
            array = binder.resolve(vid)
            self._outputs[name] = _Value(
                array, self.ir.values[vid].row_shape, None
            )
        self.stats.arena_bytes = self.arena.nbytes
        self.stats.arena_blocks = self.arena.num_blocks
        self.stats.requested_bytes = self.arena.requested_bytes
        # Row-shaped views of the column outputs (the final transpose reads
        # through these); the row-major result buffers are created lazily —
        # shard plans inside an executor only ever run with ``out=``.
        self._results: Optional[Dict[Optional[str], np.ndarray]] = None
        self._out_views = {
            name: np.moveaxis(val.array, -1, 0)
            for name, val in self._outputs.items()
        }

    # -- execution ------------------------------------------------------
    def run(self, x: np.ndarray, out=None):
        x = np.asarray(x, dtype=np.float32)
        if tuple(x.shape) != self.batch_shape:
            raise ValueError(
                f"plan compiled for batch shape {self.batch_shape}, got {tuple(x.shape)}"
            )
        np.copyto(self._in_view, x)
        for fn in self._step_fns:
            fn()
        return self._collect(out)

    __call__ = run

    def _collect(self, out):
        """Copy arena output views into ``out`` (or cached result arrays).

        Shared with the quant8 overlay, which runs its own step list but
        reuses the plan's arena, views and output buffers."""
        if out is None:
            if self._results is None:
                self._results = {
                    name: np.empty(val.row_shape, dtype=np.float32)
                    for name, val in self._outputs.items()
                }
            out = self._results if None not in self._outputs else self._results[None]
        if None in self._outputs:
            np.copyto(out, self._out_views[None])
            return out
        outputs = {}
        for name, view in self._out_views.items():
            np.copyto(out[name], view)
            outputs[name] = out[name]
        return outputs

    def describe(self) -> str:
        stats = self.stats
        lines = [
            f"ExecutionPlan(batch={self.batch_shape}, "
            f"arena={self.arena.nbytes / 1024:.0f} KiB in {self.arena.num_blocks} "
            f"blocks, reuse={stats.reuse_ratio:.0%})",
            f"optimizer: {'on' if self.optimized else 'off'} — "
            f"{stats.fused_steps} fused epilogue step(s), "
            f"{stats.elided_copies} copy(ies) elided (in-place acts), "
            f"{stats.aliased_views} view(s) aliased, "
            f"{stats.folded_affines} affine(s) folded exactly, "
            f"{stats.layout_repacks} operand(s) repacked, "
            f"{stats.depthwise_grouped_ops + stats.depthwise_stencil_ops} "
            f"depthwise rewrite(s) ({stats.depthwise_probes} probed), "
            f"{stats.blocked_spmm_ops} blocked SpMM(s) "
            f"({stats.spmm_row_blocks} row blocks)",
        ]
        for step in self.ir.steps:
            label = step.describe()
            if step.kind == "view":
                lines.append(f"{label} (zero-copy alias)")
                continue
            flops, nbytes = estimate_step_cost(self.ir, step)
            passes = step.attrs.get("passes") or []
            provenance = ",".join(passes) if passes else "lower"
            dw = step.attrs.get("dw_kernel")
            if dw:
                provenance += f"->{dw}"
            probe = step.attrs.get("dw_probe")
            if probe and not dw:
                provenance += "->csr(probed)"
            note = " (copy elided, in place)" if step.attrs.get("elided") else ""
            lines.append(
                f"{label}{note}  "
                f"[~{flops / 1e6:.1f} MFLOP, {nbytes / 2**20:.2f} MiB | {provenance}]"
            )
            if probe:
                times = ", ".join(
                    f"{name}={ms:.2f}ms" for name, ms in probe["times_ms"].items()
                )
                lines.append(f"    probe: winner={probe['winner']} ({times})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan(batch={self.batch_shape}, steps={len(self._steps)}, "
            f"arena_bytes={self.arena.nbytes})"
        )


# ---------------------------------------------------------------------------
# PlannedExecutor
# ---------------------------------------------------------------------------
class _PreparedBatch:
    __slots__ = ("parts", "outputs")

    def __init__(self, parts, outputs):
        self.parts = parts  # list of (slice, ExecutionPlan)
        self.outputs = outputs  # None | ndarray | dict name -> ndarray


class PlannedExecutor:
    """Batch-sharded, plan-cached executor with the ``InferenceSession`` API.

    One :class:`ExecutionPlan` (with its own arena) is built lazily per
    worker shard for each observed batch shape and reused afterwards, so
    steady-state traffic with stable batch sizes runs allocation-free.
    The per-shape cache is a bounded LRU (``max_plans``): a long-running
    deployment serving many input shapes evicts its least-recently-used
    plans instead of growing arena memory without limit.

    With ``num_workers > 1`` the batch is split along dim 0 and the
    shards execute concurrently on a persistent thread pool; with
    ``intra_op=True`` the batch stays whole and eligible steps split
    their *output rows* across the same pool instead (the lone-request
    latency lever — no speedup on 1-core hosts, by design of the host).

    Outputs are executor-owned buffers overwritten by the next ``run``;
    pass ``copy_outputs=True`` to hand back private copies instead (the
    server runtime does, because callers keep its logits).
    """

    def __init__(
        self,
        session: InferenceSession,
        num_workers: int = 1,
        copy_outputs: bool = False,
        max_plans: int = 8,
        optimize: bool = True,
        intra_op: bool = False,
        compute: str = "float32",
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_plans < 1:
            raise ValueError(f"max_plans must be >= 1, got {max_plans}")
        if compute not in ("float32", "quant8"):
            raise ValueError(
                f"compute must be 'float32' or 'quant8', got {compute!r}"
            )
        self.session = session
        self.num_workers = int(num_workers)
        self.copy_outputs = copy_outputs
        self.max_plans = int(max_plans)
        self.optimize = bool(optimize)
        self.intra_op = bool(intra_op)
        self.compute = compute
        self._prepared: "OrderedDict[Tuple[int, ...], _PreparedBatch]" = OrderedDict()
        self._pool = _WorkerPool(self.num_workers) if self.num_workers > 1 else None
        self._unplannable = False

    # -- plan management ------------------------------------------------
    def _wrap(self, plan: ExecutionPlan):
        """Overlay the quant8 compute tier on a float plan when selected."""
        if self.compute != "quant8":
            return plan
        from .quant import QuantizedPlan

        return QuantizedPlan(plan)

    def _prepare(self, shape: Tuple[int, ...]) -> _PreparedBatch:
        prepared = self._prepared.get(shape)
        if prepared is not None:
            self._prepared.move_to_end(shape)  # LRU touch
            return prepared
        n = shape[0]
        if self.intra_op and self.num_workers > 1:
            if self._pool is None:  # closed earlier: rebuild on demand
                self._pool = _WorkerPool(self.num_workers)
            plan = self._wrap(ExecutionPlan(
                self.session, shape, optimize=self.optimize,
                pool=self._pool, intra_op_workers=self.num_workers,
            ))
            parts = [(slice(0, n), plan)]
        else:
            workers = max(1, min(self.num_workers, n))
            bounds = np.linspace(0, n, workers + 1).astype(int)
            parts = []
            for index in range(workers):
                lo, hi = int(bounds[index]), int(bounds[index + 1])
                if hi > lo:
                    shard_shape = (hi - lo,) + tuple(shape[1:])
                    parts.append(
                        (
                            slice(lo, hi),
                            self._wrap(ExecutionPlan(
                                self.session, shard_shape, optimize=self.optimize
                            )),
                        )
                    )
        sample = parts[0][1]
        if len(parts) == 1:
            outputs = None  # single shard returns its own result buffers
        elif None in sample._outputs:
            outputs = np.empty(
                (n,) + sample._outputs[None].row_shape[1:], dtype=np.float32
            )
        else:
            outputs = {
                name: np.empty((n,) + val.row_shape[1:], dtype=np.float32)
                for name, val in sample._outputs.items()
            }
        prepared = _PreparedBatch(parts, outputs)
        if len(self._prepared) >= self.max_plans:
            self._prepared.popitem(last=False)  # evict least recently used
        self._prepared[shape] = prepared
        return prepared

    # -- execution ------------------------------------------------------
    def run(self, x: np.ndarray):
        # No ascontiguousarray here: it silently re-copied every strided
        # input batch in steady state (an allocation the counter never
        # saw).  The plans copy into their arena input views with
        # np.copyto, which handles any stride layout.
        x = np.asarray(x, dtype=np.float32)
        if self._unplannable or (x.ndim and x.shape[0] == 0):
            return self.session.run(x)
        try:
            prepared = self._prepare(tuple(x.shape))
        except Unplannable:
            self._unplannable = True
            return self.session.run(x)
        if len(prepared.parts) == 1:
            result = prepared.parts[0][1].run(x)
        else:
            if self._pool is None:  # closed earlier: rebuild on demand
                self._pool = _WorkerPool(self.num_workers)
            thunks = []
            for sl, plan in prepared.parts:
                if isinstance(prepared.outputs, dict):
                    shard_out = {name: arr[sl] for name, arr in prepared.outputs.items()}
                else:
                    shard_out = prepared.outputs[sl]
                thunks.append(lambda p=plan, xs=x[sl], o=shard_out: p.run(xs, out=o))
            self._pool.run_all(thunks)
            result = prepared.outputs
        if self.copy_outputs:
            if isinstance(result, dict):
                return {name: arr.copy() for name, arr in result.items()}
            return result.copy()
        return result

    __call__ = run

    def close(self) -> None:
        """Release the worker threads.  Idempotent; single-worker runs keep
        working afterwards, sharded runs rebuild the pool on next use."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._prepared.clear()  # sharded plans expect a live pool

    def __enter__(self) -> "PlannedExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown timing
        try:
            self.close()
        except Exception:
            pass

    # -- introspection --------------------------------------------------
    @property
    def planned(self) -> bool:
        return not self._unplannable

    @property
    def stats(self) -> PlanStats:
        total = PlanStats(num_workers=self.num_workers)
        for prepared in self._prepared.values():
            for _, plan in prepared.parts:
                total = total.merged(plan.stats)
        total.num_workers = self.num_workers
        return total

    @property
    def num_ops(self) -> int:
        return self.session.num_ops

    def describe(self) -> str:
        header = (
            f"PlannedExecutor(workers={self.num_workers}, "
            f"plans={sum(len(p.parts) for p in self._prepared.values())}, "
            f"optimize={self.optimize}, intra_op={self.intra_op}, "
            f"compute={self.compute})"
        )
        return "\n".join([header, self.session.describe()])

    def __repr__(self) -> str:
        return (
            f"PlannedExecutor(workers={self.num_workers}, "
            f"shapes={list(self._prepared)}, session={self.session!r})"
        )


def plan_session(
    session: InferenceSession,
    num_workers: int = 1,
    copy_outputs: bool = False,
    max_plans: int = 8,
    optimize: bool = True,
    intra_op: bool = False,
    compute: str = "float32",
) -> PlannedExecutor:
    """Wrap a compiled session in a lazily-planning, batch-sharded executor."""
    return PlannedExecutor(
        session,
        num_workers=num_workers,
        copy_outputs=copy_outputs,
        max_plans=max_plans,
        optimize=optimize,
        intra_op=intra_op,
        compute=compute,
    )
