"""quant8 compute tier: int8 operands, int32 accumulation, fused requant.

The float engine keeps every activation in float32; this module overlays
a *compute* tier on a bound :class:`~.executor.ExecutionPlan` that runs
the GEMM/SpMM producers (pointwise convs, linears, depthwise convs,
gather convs) with symmetric int8 operands and exact int32 accumulation:

* **weights** are quantized at plan time, per output channel
  (``scale = max|W_c| / 127``, zero point 0 — symmetric quantization is
  required so the CSR's dropped padding entries stay exactly zero);
* **activations** use one per-tensor scale, calibrated on the first
  batch the plan serves (the calibration batch itself runs the float
  plan and returns bit-exact float results);
* each quantized step computes ``acc = Wq @ Xq`` in int32 (numpy's
  int32 matmul / scipy's int32 ``csr_matvecs`` — both exact), then
  dequantizes with the per-channel multiplier ``s_x * s_w`` and applies
  the step's float epilogue;
* where a quantized step's *only* consumer is the next quantized step
  and its epilogue is a bias and/or relu, the hand-off runs entirely in
  integers — bias folded to int32, relu on the accumulator, and a
  **fused requantization epilogue** rescales straight into the
  consumer's int8 input buffer, skipping the float round-trip
  (``PlanStats.quant_chains`` counts these).

Accumulator safety: ``|acc| <= 127^2 * K`` for dot length ``K``; steps
where that bound could reach int32 range keep their float closure (none
of the repo's backbones come near it, but the guard is cheap).

Mirroring the PR 2 wire-codec fix, quantization *rejects* NaN/Inf
instead of silently saturating: calibration and every quantized run
validate the input batch and raise :class:`QuantizationError`.

Accuracy is measured, never assumed: ``benchmarks/test_bench_edge_quant8.py``
records quant8-vs-float32 latency and max |accuracy delta| per scenario
into ``BENCH_edge_quant8.json`` (see docs/benchmarking.md for the
policy — deltas are recorded and bounded in CI, latency is reported
honestly either way).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from . import kernels

try:
    from scipy.sparse import _sparsetools
except ImportError:  # pragma: no cover - scipy-less hosts use float fallback
    _sparsetools = None

__all__ = [
    "QuantizationError",
    "QuantizedPlan",
    "symmetric_scale",
    "quantize_int8",
    "dequantize",
    "requantize",
]

#: Largest magnitude representable in symmetric int8.
QMAX = 127

#: int32 accumulator headroom: dot products longer than this could
#: overflow ``127^2 * K`` past int32 range and keep their float kernel.
_MAX_DOT_LENGTH = (2**31 - 1) // (QMAX * QMAX) // 2


class QuantizationError(ValueError):
    """Raised when a tensor cannot be quantized (NaN/Inf, bad scale)."""


# ---------------------------------------------------------------------------
# Pure helpers (property-tested directly)
# ---------------------------------------------------------------------------
def symmetric_scale(amax: float) -> float:
    """Per-tensor/per-channel scale mapping ``[-amax, amax]`` onto int8.

    Rejects non-finite ranges; floors degenerate (all-zero) ranges so
    the inverse scale stays finite.
    """
    amax = float(amax)
    if not np.isfinite(amax) or amax < 0.0:
        raise QuantizationError(f"cannot derive a scale from amax={amax!r}")
    return max(amax, 1e-12) / QMAX


def quantize_int8(x: np.ndarray, scale: float) -> np.ndarray:
    """Symmetric quantization to int32-held int8 values (round-to-even).

    Values beyond ``127 * scale`` saturate at the int8 edges; NaN/Inf
    raise instead of saturating (mirroring the wire codec's policy).
    """
    x = np.asarray(x, dtype=np.float32)
    if not np.all(np.isfinite(x)):
        raise QuantizationError("refusing to quantize NaN/Inf values")
    if not np.isfinite(scale) or scale <= 0.0:
        raise QuantizationError(f"invalid quantization scale {scale!r}")
    q = np.rint(x / np.float32(scale))
    return np.clip(q, -QMAX, QMAX).astype(np.int32)

def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_int8` (exact for representable values)."""
    return np.asarray(q, dtype=np.float32) * np.float32(scale)


def requantize(acc: np.ndarray, multiplier) -> np.ndarray:
    """Rescale an int32 accumulator into the int8 range of the next step.

    ``multiplier`` is ``s_x * s_w / s_next`` (scalar or per-channel
    column); the result is int32-held int8 values.
    """
    scaled = np.asarray(acc, dtype=np.float32) * np.asarray(
        multiplier, dtype=np.float32
    )
    return np.clip(np.rint(scaled), -QMAX, QMAX).astype(np.int32)


def _per_channel_scales(weight2d: np.ndarray) -> np.ndarray:
    """(c_out, 1) symmetric scales, floored like :func:`symmetric_scale`."""
    amax = np.max(np.abs(weight2d), axis=1, keepdims=True)
    if not np.all(np.isfinite(amax)):
        raise QuantizationError("non-finite weights cannot be quantized")
    return np.maximum(amax, 1e-12).astype(np.float32) / QMAX


# ---------------------------------------------------------------------------
# Plan-time weight quantization per record kind
# ---------------------------------------------------------------------------
def _quantize_gemm_weights(weight: np.ndarray):
    sw = _per_channel_scales(weight)
    wq = np.clip(np.rint(weight / sw), -QMAX, QMAX).astype(np.int32)
    return {"wq": wq, "sw": sw}


def _quantize_csr_weights(matrix, channels: int):
    rows = matrix.shape[0]
    plane = rows // channels
    entry_row = np.repeat(
        np.arange(rows, dtype=np.int64), np.diff(matrix.indptr)
    )
    entry_channel = entry_row // plane
    sw = np.zeros(channels, dtype=np.float32)
    np.maximum.at(sw, entry_channel, np.abs(matrix.data))
    if not np.all(np.isfinite(sw)):
        raise QuantizationError("non-finite weights cannot be quantized")
    sw = np.maximum(sw, 1e-12) / QMAX
    dataq = np.clip(
        np.rint(matrix.data / sw[entry_channel]), -QMAX, QMAX
    ).astype(np.int32)
    return {
        "indptr": matrix.indptr,
        "indices": matrix.indices,
        "dataq": dataq,
        "sw": sw.reshape(-1, 1),
        "max_row_nnz": int(np.max(np.diff(matrix.indptr), initial=0)),
    }


# ---------------------------------------------------------------------------
# The overlay
# ---------------------------------------------------------------------------
class QuantizedPlan:
    """int8/int32 execution overlay on a bound float :class:`ExecutionPlan`.

    Weights are quantized immediately (plan time).  Activation scales
    need data, so the **first** batch runs the float plan while per-step
    input ranges are captured — that batch's results are bit-exact
    float32 — and the quantized closures are compiled from the captured
    ranges; every later batch runs the mixed int/float step list.  The
    overlay reuses the float plan's arena, input/output views and
    non-producer closures, and preallocates its int buffers once, so
    steady state stays allocation-free.
    """

    def __init__(self, plan):
        if _sparsetools is None:
            raise QuantizationError("quant8 compute requires scipy")
        self.plan = plan
        self.batch_shape = plan.batch_shape
        self._records: Dict[int, Dict] = {}
        self._weights: Dict[int, Dict] = {}
        self._fns: Optional[List[Callable[[], None]]] = None
        for index, rec in plan._records.items():
            if rec["x2"].size == 0 or rec["y2"].size == 0:
                continue
            if rec["kind"] == "gemm":
                if rec["weight"].shape[1] > _MAX_DOT_LENGTH:
                    continue  # int32 headroom guard: keep the float kernel
                self._weights[index] = _quantize_gemm_weights(rec["weight"])
            elif rec["kind"] == "spmm":
                payload = _quantize_csr_weights(rec["matrix"], rec["c_out"])
                if payload["max_row_nnz"] > _MAX_DOT_LENGTH:
                    continue
                self._weights[index] = payload
            elif rec["kind"] == "gather_gemm":
                if rec["weight"].shape[1] > _MAX_DOT_LENGTH:
                    continue
                payload = _quantize_gemm_weights(rec["weight"])
                payload["gather_data_q"] = rec["gather"].data.astype(np.int32)
                self._weights[index] = payload
            else:  # pragma: no cover - no other record kinds exist
                continue
            self._records[index] = rec
        plan.stats.quant_steps = len(self._records)

    # -- delegation (PlannedExecutor pokes these on its sample plan) ----
    @property
    def stats(self):
        return self.plan.stats

    @property
    def _outputs(self):
        return self.plan._outputs

    @property
    def ir(self):
        return self.plan.ir

    @property
    def arena(self):
        return self.plan.arena

    @property
    def calibrated(self) -> bool:
        return self._fns is not None

    # -- execution ------------------------------------------------------
    def run(self, x: np.ndarray, out=None):
        plan = self.plan
        x = np.asarray(x, dtype=np.float32)
        if tuple(x.shape) != plan.batch_shape:
            raise ValueError(
                f"plan compiled for batch shape {plan.batch_shape}, "
                f"got {tuple(x.shape)}"
            )
        if not np.all(np.isfinite(x)):
            raise QuantizationError(
                "quant8 compute rejects NaN/Inf inputs (wire-codec policy)"
            )
        if self._fns is None:
            return self._calibrate(x, out)
        np.copyto(plan._in_view, x)
        for fn in self._fns:
            fn()
        return plan._collect(out)

    __call__ = run

    def _calibrate(self, x: np.ndarray, out):
        """First batch: run float, capture ranges, compile the int tier."""
        plan = self.plan
        np.copyto(plan._in_view, x)
        rec_by_fn = {
            rec["fn_index"]: index for index, rec in self._records.items()
        }
        amax_in: Dict[int, float] = {}
        for fn_index, fn in enumerate(plan._step_fns):
            index = rec_by_fn.get(fn_index)
            if index is not None:
                amax_in[index] = float(np.max(np.abs(self._records[index]["x2"])))
            fn()
        for index, amax in amax_in.items():
            if not np.isfinite(amax):
                raise QuantizationError(
                    "non-finite activations during quant8 calibration"
                )
        self._compile(amax_in)
        return plan._collect(out)

    # -- compilation ----------------------------------------------------
    def _compile(self, amax_in: Dict[int, float]) -> None:
        plan = self.plan
        chains = self._find_chains()
        states: Dict[int, Dict] = {}
        for index, rec in self._records.items():
            x2 = rec["x2"]
            states[index] = {
                "sx": symmetric_scale(amax_in[index]),
                "xf": np.empty(x2.shape, dtype=np.float32),
                "xq": np.empty(x2.shape, dtype=np.int32),
                "acc": np.empty(rec["y2"].shape, dtype=np.int32),
                "pre_quantized": False,
            }
        fns = list(plan._step_fns)
        chained = 0
        for index in sorted(self._records):
            consumer = chains.get(index)
            if consumer is not None:
                states[consumer]["pre_quantized"] = True
                chained += 1
            fns[self._records[index]["fn_index"]] = self._compile_record(
                index, states, consumer
            )
        self._fns = fns
        plan.stats.quant_chains = chained

    def _find_chains(self) -> Dict[int, int]:
        """Map record index -> consumer record index for int8 hand-offs.

        A hand-off is legal when the producer's epilogue is at most
        bias + relu, its output is not a plan output, and its *only*
        reader is the consumer record's first input — then no float
        value is ever observed between the two steps.
        """
        ir = self.plan.ir
        by_ir_index = {
            rec["ir_index"]: index for index, rec in self._records.items()
        }
        chains: Dict[int, int] = {}
        for index, rec in self._records.items():
            if not self._int_epilogue(rec["epi"]):
                continue
            root = ir.root(rec["step"].output)
            if any(ir.root(vid) == root for vid in ir.outputs.values()):
                continue
            readers = [
                (k, s)
                for k, s in enumerate(ir.steps)
                if k > rec["ir_index"]
                and any(ir.root(vid) == root for vid in s.reads())
            ]
            if len(readers) != 1:
                continue
            reader_ir, reader_step = readers[0]
            consumer = by_ir_index.get(reader_ir)
            if consumer is None or ir.root(reader_step.inputs[0]) != root:
                continue
            chains[index] = consumer
        return chains

    @staticmethod
    def _int_epilogue(epi) -> bool:
        """True when the epilogue runs exactly on int32 (bias and/or relu)."""
        if len(epi) > 2:
            return False
        for position, entry in enumerate(epi):
            if entry[0] == "bias" and position == 0:
                continue
            if entry[0] == "act" and entry[1] == "relu":
                continue
            return False
        return True

    def _compile_record(
        self, index: int, states: Dict[int, Dict], consumer: Optional[int]
    ) -> Callable[[], None]:
        rec = self._records[index]
        state = states[index]
        payload = self._weights[index]
        kind = rec["kind"]
        sx = np.float32(state["sx"])
        inv_sx = np.float32(1.0 / state["sx"])
        x2, y2 = rec["x2"], rec["y2"]
        xf, xq, acc = state["xf"], state["xq"], state["acc"]
        sw = payload["sw"]  # (c_out, 1) scales
        channels = sw.shape[0]
        accc = acc.reshape(channels, -1)  # per-channel view of the acc
        m = (sw * sx).astype(np.float32)  # dequant multiplier

        if state["pre_quantized"]:
            quantize_in = None
        else:

            def quantize_in():
                np.multiply(x2, inv_sx, out=xf)
                np.rint(xf, out=xf)
                np.clip(xf, -float(QMAX), float(QMAX), out=xf)
                np.copyto(xq, xf, casting="unsafe")

        if kind == "gemm":
            wq = payload["wq"]

            def accumulate(wq=wq, xq=xq, acc=acc):
                np.matmul(wq, xq, out=acc)

        elif kind == "spmm":
            indptr, indices, dataq = (
                payload["indptr"], payload["indices"], payload["dataq"]
            )
            rows, n_vecs = y2.shape
            cols = x2.shape[0]
            xq_flat, acc_flat = xq.reshape(-1), acc.reshape(-1)

            def accumulate():
                acc.fill(0)
                _sparsetools.csr_matvecs(
                    rows, cols, n_vecs, indptr, indices, dataq, xq_flat, acc_flat
                )

        else:  # gather_gemm
            gather = rec["gather"]
            gq_data = payload["gather_data_q"]
            wq = payload["wq"]
            ckk = rec["ckk"]
            colsq = np.empty((gather.shape[0], x2.shape[1]), dtype=np.int32)
            colsq_flat = colsq.reshape(-1)
            colsq2 = colsq.reshape(ckk, -1)
            xq_flat = xq.reshape(-1)
            g_rows, g_cols = gather.shape
            g_indptr, g_indices = gather.indptr, gather.indices
            n_vecs = x2.shape[1]

            def accumulate():
                colsq.fill(0)
                _sparsetools.csr_matvecs(
                    g_rows, g_cols, n_vecs, g_indptr, g_indices, gq_data,
                    xq_flat, colsq_flat,
                )
                np.matmul(wq, colsq2, out=acc)

        if consumer is not None:
            # Fused requantization epilogue: bias and relu run on the
            # int32 accumulator, then one rescale writes the consumer's
            # int8 input directly — no float tensor in between.
            epi = rec["epi"]
            bias = next((e[1] for e in epi if e[0] == "bias"), None)
            relu = any(e[0] == "act" for e in epi)
            bq = None
            if bias is not None:
                bq = np.clip(
                    np.rint(bias / m), -(2**30), 2**30
                ).astype(np.int32)
            next_state = states[consumer]
            mj = (m / np.float32(next_state["sx"])).astype(np.float32)
            xq_next = next_state["xq"].reshape(accc.shape)
            rf = np.empty(accc.shape, dtype=np.float32)

            def run():
                if quantize_in is not None:
                    quantize_in()
                accumulate()
                if bq is not None:
                    np.add(accc, bq, out=accc)
                if relu:
                    np.maximum(acc, 0, out=acc)
                np.multiply(accc, mj, out=rf)
                np.rint(rf, out=rf)
                np.clip(rf, -float(QMAX), float(QMAX), out=rf)
                np.copyto(xq_next, rf, casting="unsafe")

            return run

        # General path: dequantize per channel, run the float epilogue.
        y2c = y2.reshape(channels, -1)
        epi_ops = self._compile_epilogue(rec)

        def run():
            if quantize_in is not None:
                quantize_in()
            accumulate()
            np.multiply(accc, m, out=y2c)
            for op in epi_ops:
                op()

        return run

    def _compile_epilogue(self, rec) -> List[Callable[[], None]]:
        """Float epilogue closures over the record's full output view."""
        out = rec["out"]
        ops: List[Callable[[], None]] = []
        for entry in rec["epi"]:
            if entry[0] == "bias":
                bias = entry[1]
                y2 = out.reshape(bias.shape[0], -1)
                ops.append(lambda y=y2, b=bias: np.add(y, b, out=y))
            elif entry[0] == "affine":
                scale, shift = entry[1], entry[2]
                y2 = out.reshape(scale.shape[0], -1)

                def run_affine(y=y2, s=scale, b=shift):
                    np.multiply(y, s, out=y)
                    np.add(y, b, out=y)

                ops.append(run_affine)
            elif entry[0] == "act":
                name, slope = entry[1], entry[2]
                scratch = (
                    np.empty(out.shape, dtype=np.float32)
                    if kernels.act_needs_scratch(name)
                    else None
                )
                ops.append(
                    lambda y=out, s=scratch, nm=name, sl=slope: kernels.apply_act(
                        nm, y, s, sl
                    )
                )
            elif entry[0] == "add":
                skip = entry[1]
                ops.append(lambda y=out, s=skip: np.add(y, s, out=y))
        return ops

    # -- introspection --------------------------------------------------
    def describe(self) -> str:
        state = "calibrated" if self.calibrated else "pending first batch"
        stats = self.plan.stats
        header = (
            f"quant8 overlay: {stats.quant_steps} int step(s), "
            f"{stats.quant_chains} fused requant chain(s), "
            f"activation scales {state}"
        )
        return f"{header}\n{self.plan.describe()}"

    def __repr__(self) -> str:
        return f"QuantizedPlan({self.plan!r}, steps={len(self._records)})"
