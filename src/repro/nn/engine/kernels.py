"""Numeric kernels backing the planned engine's bound steps.

Everything here operates on caller-owned storage — the binder hands in
arena views and the kernels write results with ``out=`` / in place, so
steady-state execution allocates nothing.  The module also owns the
plan-time constructions: CSR lowering of convolutions, L2-sized row
blocking of those matrices, and the tiny mean-weight vectors that turn
axis reductions into GEMMs.

Two kernel families exist for the operations the optimizer tunes:

* **reference** — the straight-line forms PR 2 shipped (``np.mean``
  reductions, ``np.clip``-based activations, zero-fill + accumulate
  SpMM).  Unoptimized plans bind these, which is what makes
  ``optimize=False`` an honest same-host baseline;
* **selected** — the forms the kernel-selection pass enables where they
  measure faster on slow-strided-numpy hosts: axis means as GEMMs with a
  precomputed ``1/n`` row vector (the reduction runs in BLAS), clip
  chains as ``minimum``/``maximum`` pairs, and bias pre-filled into the
  SpMM output so ``csr_matvecs`` accumulates straight onto it and the
  separate whole-tensor bias pass disappears.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import fuse

try:  # scipy ships in the supported environments; degrade gracefully without
    from scipy import sparse as _sparse
    from scipy.sparse import _sparsetools
    from scipy.linalg import blas as _blas
except ImportError:  # pragma: no cover - exercised only on scipy-less hosts
    _sparse = None
    _sparsetools = None
    _blas = None

HAVE_SPARSE = _sparse is not None
HAVE_BLAS = _blas is not None

__all__ = [
    "HAVE_BLAS",
    "HAVE_SPARSE",
    "spmm",
    "spmm_accumulate",
    "spmm_blocks",
    "pack_row_blocks",
    "weight_csr",
    "gather_csr",
    "conv_csr_cached",
    "mean_weights",
    "beta_gemm",
    "apply_act",
    "SCRATCH_ACTS",
    "DepthwiseGroup",
    "DepthwiseStencil",
    "pack_depthwise_groups",
    "spmm_depthwise_groups",
]


def beta_gemm(weight: np.ndarray, x2d: np.ndarray, out2d: np.ndarray) -> None:
    """``out2d = weight @ x2d + out2d`` through BLAS ``sgemm(beta=1)``.

    ``out2d`` arrives pre-filled with the bias, so the bias add happens
    inside the GEMM's accumulator instead of as a separate whole-tensor
    pass.  All three arrays are C-contiguous; their transposes are
    Fortran-contiguous views, so ``overwrite_c=1`` updates ``out2d`` in
    place with no copies.  Bit-identical to ``matmul`` + bias add (the
    same BLAS dot kernel runs either way).
    """
    _blas.sgemm(1.0, x2d.T, weight.T, beta=1.0, c=out2d.T, overwrite_c=1)


# ---------------------------------------------------------------------------
# Zero-allocation sparse matmul (+ row-blocked variant)
# ---------------------------------------------------------------------------
def spmm_accumulate(matrix, x2d: np.ndarray, out2d: np.ndarray) -> None:
    """``out2d += matrix @ x2d`` into caller-owned (pre-filled) storage.

    ``scipy.sparse`` has no ``out=`` interface, but its C kernel
    ``csr_matvecs`` accumulates ``Y += A @ X`` — which is also what lets
    the bias-prefill epilogue fold the bias pass into the SpMM.
    """
    _sparsetools.csr_matvecs(
        matrix.shape[0],
        matrix.shape[1],
        x2d.shape[1],
        matrix.indptr,
        matrix.indices,
        matrix.data,
        x2d.reshape(-1),
        out2d.reshape(-1),
    )


def spmm(matrix, x2d: np.ndarray, out2d: np.ndarray) -> None:
    """``out2d[...] = matrix @ x2d`` without allocating the result."""
    out2d.fill(0.0)
    spmm_accumulate(matrix, x2d, out2d)


class RowBlock:
    """One pre-packed row range of a CSR matrix.

    ``indptr`` is rebased to the block (small copy at plan time);
    ``indices``/``data`` are zero-copy views into the parent matrix, so
    blocking costs a few hundred bytes per block, not a second matrix.
    """

    __slots__ = ("lo", "hi", "indptr", "indices", "data", "n_cols")

    def __init__(self, matrix, lo: int, hi: int):
        self.lo = lo
        self.hi = hi
        start, end = int(matrix.indptr[lo]), int(matrix.indptr[hi])
        self.indptr = np.ascontiguousarray(matrix.indptr[lo : hi + 1] - start)
        self.indices = matrix.indices[start:end]
        self.data = matrix.data[start:end]
        self.n_cols = matrix.shape[1]

    def run(self, x_flat: np.ndarray, out2d: np.ndarray) -> None:
        """Accumulate this block's rows into ``out2d[lo:hi]`` (pre-filled)."""
        _sparsetools.csr_matvecs(
            self.hi - self.lo,
            self.n_cols,
            out2d.shape[1],
            self.indptr,
            self.indices,
            self.data,
            x_flat,
            out2d[self.lo : self.hi].reshape(-1),
        )


def pack_row_blocks(
    matrix, rows_per_block: int, align: int = 1
) -> List[RowBlock]:
    """Split ``matrix`` into pre-packed row blocks of ``rows_per_block``.

    ``align`` keeps block boundaries on multiples of a row-group size
    (one output plane of a convolution), so a block never splits a
    channel's spatial rows.
    """
    rows = matrix.shape[0]
    step = max(align, (rows_per_block // align) * align)
    blocks = []
    for lo in range(0, rows, step):
        blocks.append(RowBlock(matrix, lo, min(rows, lo + step)))
    return blocks


def spmm_blocks(
    blocks: List[RowBlock], x2d: np.ndarray, out2d: np.ndarray
) -> None:
    """Row-blocked ``out2d[...] = A @ x2d`` (``out2d`` already pre-filled)."""
    x_flat = x2d.reshape(-1)
    for block in blocks:
        block.run(x_flat, out2d)


# ---------------------------------------------------------------------------
# Depthwise-specific kernels: block-diagonal plane groups + padded-slab
# stencil (plan-time constructions; runtime is allocation-free)
# ---------------------------------------------------------------------------
class DepthwiseGroup:
    """A block-diagonal slice of a depthwise CSR covering planes [p0, p1).

    A depthwise conv's CSR is block diagonal: output plane ``p`` only
    reads input plane ``p``.  Slicing a plane *group* out of the cached
    full matrix and rebasing its column indices yields a small standalone
    CSR whose input slice, output slice and matrix slice are sized to
    stay L2-resident together — the same amortisation the row-blocked
    SpMM pass applies, but cutting the *input* working set too.

    ``indptr``/``indices`` are small rebased copies made at plan time;
    ``data`` is a zero-copy view, so the entries (values *and* their
    order) are exactly the full matrix's — ``csr_matvecs`` therefore
    produces bit-identical sums to the unsliced call.
    """

    __slots__ = ("indptr", "indices", "data", "row_lo", "row_hi", "col_lo", "col_hi")

    def __init__(self, matrix, p0: int, p1: int, plane_out: int, plane_in: int):
        self.row_lo, self.row_hi = p0 * plane_out, p1 * plane_out
        self.col_lo, self.col_hi = p0 * plane_in, p1 * plane_in
        start = int(matrix.indptr[self.row_lo])
        end = int(matrix.indptr[self.row_hi])
        self.indptr = np.ascontiguousarray(
            matrix.indptr[self.row_lo : self.row_hi + 1] - start
        )
        self.indices = np.ascontiguousarray(matrix.indices[start:end] - self.col_lo)
        self.data = matrix.data[start:end]

    def run(self, x2d: np.ndarray, out2d: np.ndarray) -> None:
        """Accumulate this group's planes into ``out2d`` (pre-filled)."""
        _sparsetools.csr_matvecs(
            self.row_hi - self.row_lo,
            self.col_hi - self.col_lo,
            out2d.shape[1],
            self.indptr,
            self.indices,
            self.data,
            x2d[self.col_lo : self.col_hi].reshape(-1),
            out2d[self.row_lo : self.row_hi].reshape(-1),
        )


def pack_depthwise_groups(
    matrix, channels: int, plane_in: int, plane_out: int, planes_per_group: int
) -> List[DepthwiseGroup]:
    """Split a depthwise CSR into block-diagonal groups of whole planes."""
    step = max(1, planes_per_group)
    return [
        DepthwiseGroup(matrix, p0, min(channels, p0 + step), plane_out, plane_in)
        for p0 in range(0, channels, step)
    ]


def spmm_depthwise_groups(
    groups: List[DepthwiseGroup], x2d: np.ndarray, out2d: np.ndarray
) -> None:
    """Group-blocked ``out2d += A @ x2d`` (``out2d`` already pre-filled)."""
    for group in groups:
        group.run(x2d, out2d)


class DepthwiseStencil:
    """Depthwise conv as per-tap multiply-accumulate over a padded slab.

    For a group of planes the input is copied once into a zero-padded
    contiguous scratch ``(g, h+2ph, w+2pw, n)``; each of the ``kh*kw``
    taps is then one uniform strided ``multiply`` + one contiguous
    ``add`` over the whole group — ``2*kh*kw`` numpy calls per group
    instead of one ``csr_matvecs`` row walk, which measures ~2x faster
    on large stride-1 planes and *slower* on strided/small ones (the
    plan-time probe in :func:`passes.block_depthwise` decides per step).

    Tap order ``(ki, kj)`` matches the CSR's sorted column order, so the
    accumulation sequence is the same as ``csr_matvecs``; padded taps
    add exact zeros the CSR drops.  The result is observed bit-identical
    on probe inputs (the pass requires exact equality before selecting
    this kernel) but not structurally guaranteed, unlike
    :class:`DepthwiseGroup`.
    """

    __slots__ = (
        "channels", "h", "w", "ho", "wo", "kh", "kw", "sh", "sw", "ph", "pw",
        "hp", "wp", "eh", "ew", "group", "weight",
    )

    def __init__(self, op, h: int, w: int, ho: int, wo: int, group: int):
        self.channels = op.c_out
        self.h, self.w, self.ho, self.wo = h, w, ho, wo
        self.kh, self.kw, self.sh, self.sw = op.kh, op.kw, op.sh, op.sw
        self.ph, self.pw = op.ph, op.pw
        self.hp, self.wp = h + 2 * op.ph, w + 2 * op.pw
        self.eh = (ho - 1) * op.sh + 1
        self.ew = (wo - 1) * op.sw + 1
        self.group = max(1, min(self.channels, group))
        self.weight = np.ascontiguousarray(
            op.weight.reshape(self.channels, op.kh, op.kw), dtype=np.float32
        )

    def scratch_shapes(self, batch: int):
        """(padded-slab shape, multiply-scratch shape) for one group."""
        return (
            (self.group, self.hp, self.wp, batch),
            (self.group, self.ho, self.wo, batch),
        )

    def run(self, x: np.ndarray, y: np.ndarray, pad: np.ndarray, mul: np.ndarray) -> None:
        """``y += conv(x)`` per plane; ``y`` arrives pre-filled (bias/zero).

        ``x`` is ``(c, h, w, n)``, ``y`` is ``(c, ho, wo, n)``; ``pad`` and
        ``mul`` are caller-owned scratch of :meth:`scratch_shapes` — their
        borders may hold garbage from arena reuse, so the pad border is
        re-zeroed here (four thin slabs, negligible next to the taps).
        """
        if self.ph:
            pad[:, : self.ph].fill(0.0)
            pad[:, self.hp - self.ph :].fill(0.0)
        if self.pw:
            pad[:, :, : self.pw].fill(0.0)
            pad[:, :, self.wp - self.pw :].fill(0.0)
        interior = pad[:, self.ph : self.ph + self.h, self.pw : self.pw + self.w, :]
        for p0 in range(0, self.channels, self.group):
            p1 = min(self.channels, p0 + self.group)
            g = p1 - p0
            np.copyto(interior[:g], x[p0:p1])
            xg = pad[:g]
            yg = y[p0:p1]
            sc = mul[:g]
            for ki in range(self.kh):
                for kj in range(self.kw):
                    xs = xg[
                        :,
                        ki : ki + self.eh : self.sh,
                        kj : kj + self.ew : self.sw,
                        :,
                    ]
                    wv = self.weight[p0:p1, ki, kj].reshape(-1, 1, 1, 1)
                    np.multiply(xs, wv, out=sc)
                    np.add(yg, sc, out=yg)


# ---------------------------------------------------------------------------
# Sparse lowering of convolutions (plan-time, cached per geometry)
# ---------------------------------------------------------------------------
def weight_csr(op, c_in: int, h: int, w: int, ho: int, wo: int):
    """CSR of the full linear map (c_out*ho*wo, c_in*h*w), weights inlined.

    Entries that would read padding are simply dropped (they multiply
    implicit zeros), so the matrix consumes the *unpadded* input and no
    padded copy of the activation is ever materialised.
    """
    cig, kh, kw = op.c_in_g, op.kh, op.kw
    cog = op.c_out // op.groups
    o = np.arange(op.c_out).reshape(-1, 1, 1, 1, 1, 1)
    oi = np.arange(ho).reshape(1, -1, 1, 1, 1, 1)
    oj = np.arange(wo).reshape(1, 1, -1, 1, 1, 1)
    q = np.arange(cig).reshape(1, 1, 1, -1, 1, 1)
    ki = np.arange(kh).reshape(1, 1, 1, 1, -1, 1)
    kj = np.arange(kw).reshape(1, 1, 1, 1, 1, -1)
    in_i = oi * op.sh + ki - op.ph
    in_j = oj * op.sw + kj - op.pw
    ci = (o // cog) * cig + q
    shape6 = (op.c_out, ho, wo, cig, kh, kw)
    valid = np.broadcast_to(
        (in_i >= 0) & (in_i < h) & (in_j >= 0) & (in_j < w), shape6
    )
    rows = np.broadcast_to((o * ho + oi) * wo + oj, shape6)[valid]
    cols = np.broadcast_to((ci * h + in_i) * w + in_j, shape6)[valid]
    data = np.broadcast_to(op.weight[:, None, None, :, :, :], shape6)[valid]
    matrix = _sparse.csr_matrix(
        (data.astype(np.float32), (rows, cols)),
        shape=(op.c_out * ho * wo, c_in * h * w),
        dtype=np.float32,
    )
    matrix.sort_indices()
    return matrix


def gather_csr(op, c_in: int, h: int, w: int, ho: int, wo: int):
    """0/1 CSR gathering im2col rows: (c_in*kh*kw*ho*wo, c_in*h*w)."""
    kh, kw = op.kh, op.kw
    ci = np.arange(c_in).reshape(-1, 1, 1, 1, 1)
    ki = np.arange(kh).reshape(1, -1, 1, 1, 1)
    kj = np.arange(kw).reshape(1, 1, -1, 1, 1)
    oi = np.arange(ho).reshape(1, 1, 1, -1, 1)
    oj = np.arange(wo).reshape(1, 1, 1, 1, -1)
    in_i = oi * op.sh + ki - op.ph
    in_j = oj * op.sw + kj - op.pw
    shape5 = (c_in, kh, kw, ho, wo)
    valid = np.broadcast_to(
        (in_i >= 0) & (in_i < h) & (in_j >= 0) & (in_j < w), shape5
    )
    rows = np.broadcast_to(
        (((ci * kh + ki) * kw + kj) * ho + oi) * wo + oj, shape5
    )[valid]
    cols = np.broadcast_to((ci * h + in_i) * w + in_j, shape5)[valid]
    matrix = _sparse.csr_matrix(
        (np.ones(rows.size, dtype=np.float32), (rows, cols)),
        shape=(c_in * kh * kw * ho * wo, c_in * h * w),
        dtype=np.float32,
    )
    matrix.sort_indices()
    return matrix


def conv_csr_cached(op, kind: str, builder, c_in, h, w, ho, wo):
    """Build (or fetch) a conv's CSR.  The matrices are independent of the
    batch size, so worker shards and re-plans for new batch sizes share
    one matrix per input geometry."""
    cache = getattr(op, "_engine_csr_cache", None)
    if cache is None:
        cache = {}
        op._engine_csr_cache = cache
    key = (kind, h, w)
    matrix = cache.get(key)
    if matrix is None:
        matrix = builder(op, c_in, h, w, ho, wo)
        cache[key] = matrix
    return matrix


# ---------------------------------------------------------------------------
# Axis means as GEMMs
# ---------------------------------------------------------------------------
def mean_weights(count: int) -> np.ndarray:
    """A ``(1, count)`` row of ``1/count`` — ``W @ x`` averages axis -2.

    ``np.mean`` over the middle axis of a ``(c, s, n)`` column tensor is
    a strided reduction numpy runs an order of magnitude slower than
    BLAS on the benchmark hosts; a dot with this vector is the same
    arithmetic in GEMM form.
    """
    return np.full((1, count), 1.0 / count, dtype=np.float32)


# ---------------------------------------------------------------------------
# In-place activations with explicit scratch (the fuse kernels for silu /
# hard_swish / gelu / leaky_relu allocate temporaries; the planned engine
# may not)
# ---------------------------------------------------------------------------
#: Activations whose allocation-free form needs a scratch buffer.
SCRATCH_ACTS = frozenset({"silu", "hard_swish", "gelu", "leaky_relu"})


def apply_act(
    name: str,
    y: np.ndarray,
    scratch: Optional[np.ndarray],
    slope: float = 0.0,
) -> None:
    """Run activation ``name`` in place on ``y`` using ``scratch`` if needed."""
    if name == "silu":
        np.copyto(scratch, y)
        fuse._sigmoid_(scratch)
        y *= scratch
    elif name == "hard_swish":
        np.add(y, 3.0, out=scratch)
        np.clip(scratch, 0.0, 6.0, out=scratch)
        scratch *= 1.0 / 6.0
        y *= scratch
    elif name == "gelu":
        np.multiply(y, y, out=scratch)
        scratch *= y
        scratch *= 0.044715
        scratch += y
        scratch *= 0.7978845608028654  # sqrt(2/pi)
        np.tanh(scratch, out=scratch)
        scratch += 1.0
        scratch *= 0.5
        y *= scratch
    elif name == "leaky_relu":
        # leaky(y) = max(y, 0) + slope * min(y, 0), allocation-free.
        np.maximum(y, 0.0, out=scratch)
        np.minimum(y, 0.0, out=y)
        y *= slope
        y += scratch
    else:
        fuse._ACT_KERNELS[name](y)


def act_needs_scratch(name: str) -> bool:
    return name in SCRATCH_ACTS
