"""Arena-planned, multicore execution engine for compiled inference.

:mod:`repro.nn.fuse` removed the autograd graph from deployment forward
passes; this package removes the remaining steady-state costs and then
optimizes what is left.  Compilation is a three-phase pipeline:

1. **lowering** (:mod:`~repro.nn.engine.ir`) — a one-time dry shape trace
   turns the fused op list into a *plan-IR*: a typed step graph (op kind,
   input/output values, weight references) in column-major
   ``(features..., batch)`` layout, where pointwise convolutions, linear
   layers and squeeze-excite gates are contiguous GEMMs and
   padded/strided/grouped convolutions are plan-time CSR matrices run
   through ``scipy.sparse``'s C kernels (padding baked into the matrix);
2. **optimization** (:mod:`~repro.nn.engine.passes`) — rewrites of the
   step graph before any buffer exists: *epilogue fusion* collapses
   bias/activation/affine/residual-add chains into their producing
   GEMM/SpMM step (folding affines into the bias where exact), *copy
   elision* turns flatten/reshape views and sole-reader activations into
   storage aliases, *kernel selection* flips reductions to GEMM form and
   pre-fills SpMM outputs with the bias, *layout repacking* canonicalises
   every GEMM operand to C-contiguous float32 at plan time (transpose
   folded into the stored weight, so sgemm always takes the BLAS fast
   path with zero runtime copies), *depthwise rewriting* probes
   group-blocked CSR and a padded-slab stencil against per-plane CSR and
   keeps the measured winner (bit-identical results required), and *SpMM
   row blocking* partitions large CSR matrices into pre-packed, L2-sized
   row blocks;
3. **binding** (:mod:`~repro.nn.engine.executor`) — liveness analysis on
   the *optimized* graph assigns every value to a
   :class:`BufferArena` block, so steady-state inference reuses a small
   set of preallocated buffers and performs **zero large allocations**
   per batch (``PlanStats.steady_state_allocs`` counts the exceptions,
   e.g. fallback ops).

:class:`PlannedExecutor` wraps plans behind the ``InferenceSession.run``
API, caches plans per observed batch shape in a bounded LRU, and — with
``num_workers > 1`` — either shards the batch across a persistent thread
pool, or (``intra_op=True``) splits single steps' output rows across the
same pool for lone-request latency.

Optimized plans match the unoptimized plan and the unplanned compiled
forward within 1e-6 — the property the engine tests assert across
backbones, split indices, batch sizes and worker counts.

A fourth, optional phase is the **quant8 compute tier**
(:mod:`~repro.nn.engine.quant`): ``plan_session(..., compute="quant8")``
overlays the bound float plan with int8 operands and exact int32
accumulation (per-channel weight scales at plan time, activation scales
calibrated on the first batch, fused int8→int8 requantization between
adjacent quantized steps).
"""

from .executor import (
    BufferArena,
    ExecutionPlan,
    PlanStats,
    PlannedExecutor,
    plan_session,
)
from .ir import PlanIR, Step, Unplannable, estimate_step_cost, lower_session
from .kernels import HAVE_SPARSE
from .passes import L2_BUDGET_BYTES, run_passes
from .quant import QuantizationError, QuantizedPlan

# Backwards-compatible aliases (the pre-package module exposed these).
_Unplannable = Unplannable
_HAVE_SPARSE = HAVE_SPARSE

__all__ = [
    "BufferArena",
    "ExecutionPlan",
    "PlanIR",
    "PlanStats",
    "PlannedExecutor",
    "Step",
    "Unplannable",
    "lower_session",
    "run_passes",
    "L2_BUDGET_BYTES",
    "plan_session",
    "estimate_step_cost",
    "QuantizationError",
    "QuantizedPlan",
]
