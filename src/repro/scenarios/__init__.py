"""``repro.scenarios`` — the declarative workload registry.

A :class:`Scenario` is a frozen, JSON-round-tripped description of one
workload regime — backbone × input size × batch geometry × split policy
× wire format × engine knobs — that compiles into a ready-to-run
:class:`~repro.serve.spec.DeploymentSpec` plus a deterministic synthetic
traffic generator.  The curated built-in matrix names a scenario for
every backbone family at every tier, from the 32px quick scale up to
the 224px high-resolution tier::

    from repro import scenarios

    scn = scenarios.get_scenario("mobilenetv3_hires_224px")
    spec = scn.deployment_spec()          # ready-to-run DeploymentSpec
    batches = scn.make_batches()          # deterministic 224px traffic
    result = scenarios.run_scenario(scn)  # deploy + stream + account

    scn == scenarios.Scenario.from_json(scn.to_json())   # True

CLI equivalents: ``repro scenarios list | describe | run``.  The
scenario-matrix benchmark (``benchmarks/test_bench_scenarios.py``)
sweeps the whole matrix and records per-scenario engine accounting to
``BENCH_scenario_matrix.json``.
"""

from .registry import (
    BACKBONE_FAMILIES,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario_matrix,
)
from .runner import ScenarioRun, run_scenario
from .spec import TIERS, Scenario, ScenarioError

__all__ = [
    "BACKBONE_FAMILIES",
    "Scenario",
    "ScenarioError",
    "ScenarioRun",
    "TIERS",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_matrix",
]
