"""Name-based registry for workload scenarios + the curated matrix.

The built-in matrix covers every backbone family at every tier, from the
32px quick scale the paper tables run at up to the 224px
high-resolution tier — the regime where wire format and split placement
actually matter, and where the engine's L2-blocked SpMM pass (idle at
32px on non-VGG backbones, where every conv working set fits the cache
budget) finally earns its keep.

Tier conventions in the curated matrix:

===========  ======  =========  ========  ===============  ==================
tier         pixels  batch      wire      channel          split policy
===========  ======  =========  ========  ===============  ==================
``quick``    32      4 x 16     float32   gigabit          backbone/heads
``mid``      64      3 x 8      float16   wifi             ``"auto"`` (optimal)
``hires``    224     3 x 2      quant8    LTE uplink       backbone/heads
===========  ======  =========  ========  ===============  ==================

The hires tier keeps the whole backbone on the edge (the paper's
default cut) so the large-input conv stack — the part the SpMM blocking
and arena sizing were built for — stays on the measured critical path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .spec import Scenario, ScenarioError

__all__ = [
    "BACKBONE_FAMILIES",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "scenario_matrix",
]

#: Backbone family -> training-scale registry backbone used by the
#: curated matrix (the full-scale variants exist in the model registry,
#: but the matrix must stay runnable on the 1-core CI host).
BACKBONE_FAMILIES: Dict[str, str] = {
    "mobilenetv3": "mobilenet_v3_tiny",
    "efficientnet": "efficientnet_tiny",
    "vgg": "vgg_tiny",
}

_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Register ``scenario`` under its name (duplicate names rejected)."""
    if scenario.name in _SCENARIOS:
        raise ScenarioError(
            f"scenario {scenario.name!r} is already registered; "
            "pick a distinct name or use Scenario.replace(name=...)"
        )
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Return the registered scenario for ``name``.

    Raises :class:`ScenarioError` naming the known scenarios when
    unknown.
    """
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from None


def available_scenarios(tier: Optional[str] = None) -> List[str]:
    """Sorted scenario names, optionally restricted to one tier."""
    return sorted(
        name
        for name, scenario in _SCENARIOS.items()
        if tier is None or scenario.tier == tier
    )


def scenario_matrix(tier: Optional[str] = None) -> List[Scenario]:
    """The registered scenarios (optionally one tier), sorted by
    ``(tier-scale, family, name)`` so listings read small-to-large."""
    order = {"quick": 0, "mid": 1, "hires": 2}
    return sorted(
        (s for s in _SCENARIOS.values() if tier is None or s.tier == tier),
        key=lambda s: (order.get(s.tier, 99), s.input_size, s.backbone, s.name),
    )


# ---------------------------------------------------------------------------
# The curated built-in matrix: every family x every tier.
# ---------------------------------------------------------------------------
_TIER_SETTINGS = {
    # tier: (input_size, batch_size, batches, wire, channel, split_index)
    "quick": (32, 16, 4, "float32", "gigabit_ethernet", None),
    "mid": (64, 8, 3, "float16", "wifi_5", "auto"),
    "hires": (224, 2, 3, "quant8", "lte_uplink", None),
}

_TIER_BLURBS = {
    "quick": "paper-table scale; the regime every accuracy benchmark runs at",
    "mid": "intermediate scale with the latency-optimal cut chosen per channel",
    "hires": "high-resolution tier: large Z_b payloads, L2-blocked SpMM regime",
}

for _family, _backbone in BACKBONE_FAMILIES.items():
    for _tier, (_px, _bs, _nb, _wire, _channel, _split) in _TIER_SETTINGS.items():
        register_scenario(
            Scenario(
                name=f"{_family}_{_tier}_{_px}px",
                backbone=_backbone,
                tier=_tier,
                input_size=_px,
                batch_size=_bs,
                batches=_nb,
                split_index=_split,
                wire=_wire,
                channel=_channel,
                description=f"{_family} at {_px}px — {_TIER_BLURBS[_tier]}",
            )
        )

# quant8 *compute*-tier variants of every hires scenario.  Additive, not
# a flip of the float32 rows: the float32 hires scenarios are the
# reference points every equivalence gate compares against, while these
# run the edge half in the int8 tier (int32 accumulation, per-channel
# weight scales) so the accuracy-vs-latency trade is measured per
# backbone — see BENCH_edge_quant8 and docs/benchmarking.md.
for _family, _backbone in BACKBONE_FAMILIES.items():
    _px, _bs, _nb, _wire, _channel, _split = _TIER_SETTINGS["hires"]
    register_scenario(
        Scenario(
            name=f"{_family}_hires_{_px}px_quant8",
            backbone=_backbone,
            tier="hires",
            input_size=_px,
            batch_size=_bs,
            batches=_nb,
            split_index=_split,
            wire=_wire,
            channel=_channel,
            compute="quant8",
            description=(
                f"{_family} at {_px}px, edge in the quant8 compute tier — "
                "int8 operands / int32 accumulation on the planned engine"
            ),
        )
    )
