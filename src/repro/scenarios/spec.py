"""The :class:`Scenario` spec: one named, reproducible workload regime.

A scenario pins down *everything* that defines a workload —
backbone × input size × batch geometry × split policy × wire format ×
engine knobs — as a frozen, eagerly-validated, JSON-round-trippable
value, the same contract :class:`~repro.serve.spec.DeploymentSpec`
established for deployments.  The difference in altitude: a
``DeploymentSpec`` says how to *serve*; a ``Scenario`` additionally says
what *traffic* to serve (how many batches of what size at what
resolution) and under which named tier the regime belongs, so
benchmarks, the CLI and future PRs can all refer to "the 224px
high-resolution MobileNetV3 workload" by one name instead of re-wiring
ad-hoc bench scripts.

A scenario *compiles* into the two runnable halves:

* :meth:`Scenario.deployment_spec` — the ready-to-run
  :class:`~repro.serve.spec.DeploymentSpec`;
* :meth:`Scenario.make_batches` / :meth:`Scenario.iter_batches` — the
  deterministic synthetic traffic at the scenario's resolution
  (:mod:`repro.data.streams`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..deployment.channel import available_channels
from ..deployment.wire import WireFormat
from ..models.registry import available_backbones

__all__ = ["Scenario", "ScenarioError", "TIERS"]

#: Canonical scenario tiers, ordered by input scale.  ``quick`` is the
#: 32px regime every paper-table benchmark runs at; ``hires`` is the
#: 224px regime where wire format, split placement and the engine's
#: L2-blocked SpMM actually matter.
TIERS: Tuple[str, ...] = ("quick", "mid", "hires")

#: ``split_index`` sentinel (same convention as ``DeploymentSpec``).
AUTO = "auto"


class ScenarioError(ValueError):
    """A :class:`Scenario` field failed validation.

    Subclasses ``ValueError`` for the same reason
    :class:`~repro.serve.spec.SpecError` does: generic ``except
    ValueError`` call sites keep working, while config loaders can catch
    scenario problems distinctly.
    """


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


@dataclass(frozen=True)
class Scenario:
    """Frozen description of one named workload regime.

    Parameters
    ----------
    name:
        Registry key and display name (non-empty, no whitespace).
    backbone:
        Backbone registry name; unlike ``DeploymentSpec`` a scenario is
        always serialisable, so in-memory modules are not accepted.
    tasks:
        ``(name, num_classes)`` pairs for the task heads.
    tier:
        One of :data:`TIERS` — the input-scale band the scenario
        belongs to (``quick``/``mid``/``hires``).
    input_size:
        Square input resolution in pixels.
    batch_size / batches:
        Traffic geometry: a standard run streams ``batches`` batches of
        ``batch_size`` images each.
    split_index:
        Split policy: a positive int (stages on the edge), ``None`` for
        the paper's backbone/heads cut, or ``"auto"`` for the
        latency-optimal cut.
    wire:
        ``Z_b`` encoding: ``"float32"``, ``"float16"`` or ``"quant8"``.
    channel:
        A channel *preset name* (scenarios are named curated workloads;
        custom channel objects belong in a ``DeploymentSpec``).
    num_workers / optimize / planned:
        Engine knobs forwarded to the deployment.
    compute:
        Numeric tier for the edge half: ``"float32"`` (default) or
        ``"quant8"`` (int8 operands / int32 accumulation on the planned
        edge engine; the server half stays float32).  Distinct from
        ``wire``, which only quantizes the transmitted tensor.
    noise_amount:
        Salt-and-pepper corruption applied to the synthetic traffic.
    arrival:
        Optional open-loop arrival schedule in
        :meth:`~repro.data.streams.ArrivalSpec.from_string` form (e.g.
        ``"poisson:rate=200"``); ``None`` keeps the scenario's standard
        closed-loop batch-stream traffic.
    seed:
        Seed for both the (untrained) net build and the traffic.
    description:
        One human sentence on why the scenario exists.
    """

    name: str
    backbone: str
    tasks: Tuple[Tuple[str, int], ...] = field(default=(("scale", 8), ("shape", 4)))
    tier: str = "quick"
    input_size: int = 32
    batch_size: int = 16
    batches: int = 4
    split_index: Union[int, str, None] = None
    wire: str = "float32"
    channel: str = "gigabit_ethernet"
    num_workers: int = 1
    optimize: bool = True
    planned: bool = True
    compute: str = "float32"
    noise_amount: float = 0.1
    arrival: Optional[str] = None
    seed: int = 0
    description: str = ""

    # ------------------------------------------------------------------
    # Validation / normalisation
    # ------------------------------------------------------------------
    def __post_init__(self):
        set_ = object.__setattr__  # frozen dataclass: normalise in place

        _check(
            isinstance(self.name, str) and self.name != "" and not any(
                c.isspace() for c in self.name
            ),
            f"name must be a non-empty string without whitespace, got {self.name!r}",
        )
        _check(
            self.backbone in available_backbones(),
            f"unknown backbone {self.backbone!r}; "
            f"available: {available_backbones()}",
        )
        tasks = tuple((str(n), int(c)) for n, c in self.tasks)
        _check(len(tasks) > 0, "tasks must be non-empty (name, num_classes) pairs")
        for task_name, classes in tasks:
            _check(
                classes >= 1,
                f"task {task_name!r} needs num_classes >= 1, got {classes}",
            )
        names = [n for n, _ in tasks]
        _check(
            len(set(names)) == len(names),
            f"task names must be unique, got {names}",
        )
        set_(self, "tasks", tasks)

        _check(
            self.tier in TIERS,
            f"tier must be one of {TIERS}, got {self.tier!r}",
        )
        _check(
            isinstance(self.input_size, int) and self.input_size >= 16,
            "input_size must be an int >= 16 (the renderer's floor), "
            f"got {self.input_size!r}",
        )
        for attr in ("batch_size", "batches"):
            value = getattr(self, attr)
            _check(
                isinstance(value, int) and not isinstance(value, bool) and value >= 1,
                f"{attr} must be a positive int, got {value!r}",
            )
        if self.split_index is not None and self.split_index != AUTO:
            _check(
                isinstance(self.split_index, int)
                and not isinstance(self.split_index, bool)
                and self.split_index >= 1,
                "split_index must be a positive int, None, or 'auto'; "
                f"got {self.split_index!r}",
            )
        if isinstance(self.wire, WireFormat):
            set_(self, "wire", self.wire.dtype)
        try:
            WireFormat(self.wire)
        except ValueError as error:
            raise ScenarioError(str(error)) from None
        _check(
            isinstance(self.channel, str) and self.channel in available_channels(),
            f"channel must be a preset name from {available_channels()}, "
            f"got {self.channel!r}",
        )
        _check(
            isinstance(self.num_workers, int)
            and not isinstance(self.num_workers, bool)
            and self.num_workers >= 1,
            f"num_workers must be a positive int, got {self.num_workers!r}",
        )
        _check(
            self.compute in ("float32", "quant8"),
            f"compute must be 'float32' or 'quant8', got {self.compute!r}",
        )
        _check(
            self.compute == "float32" or self.planned,
            "compute='quant8' requires the planned engine (planned=True)",
        )
        _check(
            0.0 <= float(self.noise_amount) <= 1.0,
            f"noise_amount must be in [0, 1], got {self.noise_amount!r}",
        )
        set_(self, "noise_amount", float(self.noise_amount))
        if self.arrival is not None:
            from ..data.streams import ArrivalSpec  # deferred: keep import light

            try:
                canonical = ArrivalSpec.from_string(self.arrival).to_string()
            except ValueError as error:
                raise ScenarioError(f"bad arrival spec: {error}") from None
            set_(self, "arrival", canonical)
        _check(
            isinstance(self.description, str),
            f"description must be a string, got {type(self.description).__name__}",
        )

    # ------------------------------------------------------------------
    # Compilation: spec + traffic
    # ------------------------------------------------------------------
    def deployment_spec(self, **overrides) -> "Any":
        """The ready-to-run :class:`~repro.serve.spec.DeploymentSpec`.

        ``overrides`` lets callers flip knobs without re-declaring the
        scenario — the benchmark harness uses
        ``deployment_spec(optimize=False)`` for its same-run baseline.
        """
        from ..serve.spec import DeploymentSpec  # deferred: avoid import cycle

        payload = dict(
            model=self.backbone,
            tasks=self.tasks,
            input_size=self.input_size,
            split_index=self.split_index,
            wire=self.wire,
            channel=self.channel,
            num_workers=self.num_workers,
            optimize=self.optimize,
            planned=self.planned,
            compute=self.compute,
            max_batch_size=max(self.batch_size, 1),
            seed=self.seed,
        )
        payload.update(overrides)
        return DeploymentSpec(**payload)

    def iter_batches(self, batches: Optional[int] = None) -> Iterator[np.ndarray]:
        """Lazily render the scenario's deterministic synthetic traffic."""
        from ..data.streams import iter_image_batches

        return iter_image_batches(
            self.batches if batches is None else batches,
            self.batch_size,
            image_size=self.input_size,
            noise_amount=self.noise_amount,
            seed=self.seed,
        )

    def make_batches(self, batches: Optional[int] = None) -> List[np.ndarray]:
        """Eager list form of :meth:`iter_batches`."""
        return list(self.iter_batches(batches))

    def arrival_spec(self) -> "Any":
        """The parsed :class:`~repro.data.streams.ArrivalSpec`, or
        ``None`` for closed-loop scenarios."""
        if self.arrival is None:
            return None
        from ..data.streams import ArrivalSpec

        return ArrivalSpec.from_string(self.arrival)

    @property
    def images_per_run(self) -> int:
        return self.batches * self.batch_size

    def replace(self, **overrides) -> "Scenario":
        """A copy with ``overrides`` applied (re-validated)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialisation (exact dict/JSON round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON-types dict that :meth:`from_dict` inverts exactly."""
        return {
            "name": self.name,
            "backbone": self.backbone,
            "tasks": [[n, c] for n, c in self.tasks],
            "tier": self.tier,
            "input_size": self.input_size,
            "batch_size": self.batch_size,
            "batches": self.batches,
            "split_index": self.split_index,
            "wire": self.wire,
            "channel": self.channel,
            "num_workers": self.num_workers,
            "optimize": self.optimize,
            "planned": self.planned,
            "compute": self.compute,
            "noise_amount": self.noise_amount,
            "arrival": self.arrival,
            "seed": self.seed,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        _check(
            not unknown,
            f"unknown Scenario keys {unknown}; known keys: {sorted(known)}",
        )
        payload = dict(data)
        if "tasks" in payload:
            try:
                payload["tasks"] = tuple((n, c) for n, c in payload["tasks"])
            except (TypeError, ValueError):
                raise ScenarioError(
                    f"tasks must be (name, num_classes) pairs, got {payload['tasks']!r}"
                ) from None
        return cls(**payload)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"invalid Scenario JSON: {error}") from None
        _check(isinstance(data, dict), "Scenario JSON must be an object")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human summary for CLI listings and logs."""
        cut = self.split_index if self.split_index is not None else "backbone/heads"
        return (
            f"{self.name}: {self.backbone} @{self.input_size}px [{self.tier}], "
            f"{self.batches}x{self.batch_size} images, split={cut}, "
            f"wire={self.wire}, channel={self.channel}, "
            f"workers={self.num_workers}"
            + ("" if self.compute == "float32" else f", compute={self.compute}")
        )
