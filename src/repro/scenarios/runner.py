"""Run a scenario end-to-end: deploy, stream its traffic, account it.

One function, :func:`run_scenario`, shared by the CLI (``repro
scenarios run``), the smoke tests and anything that wants a scenario's
measured behaviour without hand-wiring a deployment.  The benchmark
harness does *not* go through this (it interleaves an optimize=False
baseline round by round — see ``benchmarks/test_bench_scenarios.py``),
but it builds its deployments from the same
:meth:`~repro.scenarios.spec.Scenario.deployment_spec` compilation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .spec import Scenario

__all__ = ["ScenarioRun", "run_scenario"]


@dataclass(frozen=True)
class ScenarioRun:
    """Everything a scenario run measured, ready for rendering."""

    scenario: Scenario
    deployment_description: str
    report: "object"  # repro.serve.ThroughputReport
    payload_bytes_per_batch: float
    edge_seconds: float
    transfer_seconds: float
    server_seconds: float

    @property
    def edge_ms(self) -> float:
        return self.edge_seconds * 1e3


def run_scenario(
    scenario: Scenario,
    batches: Optional[int] = None,
    warmup: bool = True,
    **spec_overrides,
) -> ScenarioRun:
    """Deploy ``scenario`` and stream its synthetic traffic once.

    ``batches`` overrides the scenario's standard run length;
    ``spec_overrides`` are forwarded to
    :meth:`~repro.scenarios.spec.Scenario.deployment_spec` (e.g.
    ``optimize=False`` for an unoptimized reference run).  The
    deployment is closed before returning — worker threads never leak
    past a run.
    """
    from ..serve.deployment import deploy

    traffic = scenario.make_batches(batches)
    with deploy(scenario.deployment_spec(**spec_overrides)) as deployment:
        if warmup:
            deployment.warmup([scenario.batch_size])
        _, report = deployment.stream(traffic)
        traces = deployment.traces
        return ScenarioRun(
            scenario=scenario,
            deployment_description=deployment.describe(),
            report=report,
            payload_bytes_per_batch=deployment.pipeline.mean_payload_bytes(),
            edge_seconds=sum(t.edge_seconds for t in traces),
            transfer_seconds=sum(t.transfer_seconds for t in traces),
            server_seconds=sum(t.server_seconds for t in traces),
        )
