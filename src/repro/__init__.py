"""MTL-Split reproduction (DAC 2024).

A from-scratch, numpy-based reproduction of *MTL-Split: Multi-Task
Learning for Edge Devices using Split Computing* (Capogrosso et al., DAC
2024): the shared-backbone + task-heads architecture, its training and
fine-tuning strategies, the STL-vs-MTL evaluation protocol, and the
LoC/RoC/SC deployment analysis — plus every substrate they need (a
deep-learning framework, the backbone zoo, synthetic dataset generators
and a deployment simulator).

Sub-packages
------------
``repro.nn``
    Numpy autograd deep-learning framework (tensors, conv nets, AdamW).
``repro.models``
    VGG16 / MobileNetV3 / EfficientNet specs, builders and MLP heads.
``repro.data``
    Multi-task dataset substrates: 3D-Shapes-like, MEDIC-like, FACES-like.
``repro.core``
    The paper's contribution: MTLSplitNet, trainers, fine-tuning,
    STL-vs-MTL protocol, split-point analysis.
``repro.deployment``
    Profiling, device/channel models, paradigm comparison, runnable
    split pipeline.
``repro.serve``
    The declarative deployment API: :func:`deploy` turns a frozen
    :class:`DeploymentSpec` into a live :class:`~repro.serve.Deployment`
    with synchronous, streaming and dynamically-batched async serving.
``repro.scenarios``
    The declarative workload registry: named, JSON-round-tripped
    :class:`Scenario` specs spanning the 32px quick tier to the 224px
    high-resolution tier, compiling into deployment + traffic.
``repro.attest``
    Golden-digest attestation: SHA-256 provenance over specs, optimized
    plan-IR text and every task output of the scenario matrix, verified
    bit-for-bit against the committed goldens in CI.
"""

from . import core, data, deployment, models, nn, scenarios, serve
from . import attest
from .scenarios import Scenario
from .serve import (
    CachePolicy,
    ClusterDeployment,
    ClusterSpec,
    Deployment,
    DeploymentSpec,
    deploy,
    deploy_cluster,
)

__version__ = "1.0.0"

__all__ = [
    "nn",
    "models",
    "data",
    "core",
    "deployment",
    "scenarios",
    "serve",
    "attest",
    "CachePolicy",
    "ClusterDeployment",
    "ClusterSpec",
    "Deployment",
    "DeploymentSpec",
    "Scenario",
    "deploy",
    "deploy_cluster",
    "__version__",
]
