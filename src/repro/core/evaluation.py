"""STL-vs-MTL experiment protocol and paper-style reporting.

The paper's protocol (Sec. 4.1): *"our experimental protocol involves
benchmarking our models against their respective single-task
performance"*.  :func:`run_stl_mtl_experiment` trains one STL net per task
plus one MTL net per task group on the same splits and seeds, and
:class:`ComparisonTable` renders the result in the layout of the paper's
Tables 1-3 (STL columns, MTL columns with signed deltas).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.base import MultiTaskDataset
from .architecture import MTLSplitNet
from .finetune import FineTuneConfig, fine_tune
from .trainer import MultiTaskTrainer, TrainConfig, evaluate

__all__ = [
    "ExperimentResult",
    "ComparisonTable",
    "run_stl_mtl_experiment",
    "format_accuracy_table",
]


@dataclass
class ExperimentResult:
    """Accuracies for one backbone on one dataset.

    ``stl`` maps task name to single-task test accuracy; ``mtl`` maps a
    task-group key (e.g. ``"T1+T2"``) to per-task accuracies under joint
    training.
    """

    backbone: str
    dataset: str
    stl: Dict[str, float] = field(default_factory=dict)
    mtl: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def delta(self, group: str, task: str) -> float:
        """MTL-minus-STL accuracy difference for one task in one group."""
        return self.mtl[group][task] - self.stl[task]


@dataclass
class ComparisonTable:
    """Collection of :class:`ExperimentResult` rows with rendering."""

    title: str
    task_labels: Dict[str, str]  # task name -> "T1" style label
    results: List[ExperimentResult] = field(default_factory=list)

    def add(self, result: ExperimentResult) -> None:
        self.results.append(result)

    def render(self) -> str:
        """Render in the layout of the paper's accuracy tables.

        Group keys are ``"+"``-joined *task names*; the display uses the
        short ``T1``-style labels from ``task_labels``.
        """
        lines = [self.title]
        groups: List[str] = []
        for result in self.results:
            for group in result.mtl:
                if group not in groups:
                    groups.append(group)
        header = ["Model"]
        stl_tasks = list(self.task_labels)
        header += [f"STL {self.task_labels[t]}" for t in stl_tasks]
        for group in groups:
            tasks_in_group = group.split("+")
            short = "+".join(self.task_labels[t] for t in tasks_in_group)
            header += [f"MTL({short}) {self.task_labels[t]}" for t in tasks_in_group]
        widths = [max(18, len(h) + 2) for h in header]
        lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("-" * sum(widths))
        for result in self.results:
            row = [result.backbone]
            for task in stl_tasks:
                row.append(f"{100 * result.stl.get(task, float('nan')):.2f}")
            for group in groups:
                for task in group.split("+"):
                    if group in result.mtl and task in result.mtl[group]:
                        acc = 100 * result.mtl[group][task]
                        if task in result.stl:
                            delta = 100 * result.delta(group, task)
                            row.append(f"{acc:.2f} ({delta:+.2f})")
                        else:
                            row.append(f"{acc:.2f}")
                    else:
                        row.append("-")
            lines.append("".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _group_key(tasks: Sequence[str]) -> str:
    return "+".join(tasks)


def run_stl_mtl_experiment(
    backbone: str,
    train_set: MultiTaskDataset,
    test_set: MultiTaskDataset,
    task_groups: Sequence[Sequence[str]],
    config: Optional[TrainConfig] = None,
    input_size: Optional[int] = None,
    pretrained_backbone: Optional[Dict[str, np.ndarray]] = None,
    finetune_config: Optional[FineTuneConfig] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run the paper's protocol for one backbone on one dataset.

    Trains one STL net per task appearing in any group, then one MTL net
    per group, all from the same initialisation seed and training
    configuration.  When ``pretrained_backbone`` is given every net starts
    from those backbone weights and is adapted with the two-rate
    fine-tuning of Sec. 3.3 (the paper's FACES setting); otherwise nets
    train from scratch with the standard trainer.

    Returns per-task test accuracies for every configuration.
    """
    cfg = config if config is not None else TrainConfig()
    size = input_size if input_size is not None else train_set.image_shape[-1]
    result = ExperimentResult(backbone=backbone, dataset=train_set.name)

    all_tasks: List[str] = []
    for group in task_groups:
        for task in group:
            if task not in all_tasks:
                all_tasks.append(task)

    def _train(tasks: Sequence[str]) -> MTLSplitNet:
        infos = [train_set.task_info(t) for t in tasks]
        net = MTLSplitNet.from_tasks(backbone, infos, input_size=size, seed=seed)
        subset = train_set.select_tasks(tasks)
        if pretrained_backbone is not None:
            net.backbone.load_state_dict(pretrained_backbone)
            fine_tune(net, subset, config=finetune_config)
        else:
            MultiTaskTrainer(cfg).fit(net, subset)
        return net

    # Single-task baselines: one dedicated network per task (paper's STL).
    for task in all_tasks:
        net = _train([task])
        accuracy = evaluate(net, test_set.select_tasks([task]))
        result.stl[task] = accuracy[task]

    # Joint training: one shared backbone per task group (paper's MTL).
    for group in task_groups:
        if len(group) < 2:
            continue
        net = _train(list(group))
        accuracy = evaluate(net, test_set.select_tasks(list(group)))
        result.mtl[_group_key(group)] = {t: accuracy[t] for t in group}
    return result


def format_accuracy_table(
    title: str,
    results: Sequence[ExperimentResult],
    task_labels: Dict[str, str],
) -> str:
    """Format results in the paper's table layout (helper for benches)."""
    table = ComparisonTable(title=title, task_labels=task_labels)
    for result in results:
        table.add(result)
    return table.render()
