"""Task-affinity analysis: which tasks should share a backbone?

The paper's related work (Sec. 2.2) highlights that MTL's benefit hinges
on "the relationship between tasks and how much a shared representation
can be transferred across tasks" (Taskonomy [30], Standley et al. [27]).
This module measures that relationship directly on an
:class:`~repro.core.architecture.MTLSplitNet`:

* **gradient cosine affinity** — for each pair of tasks, the cosine
  similarity between their loss gradients on the *shared* parameters
  ``psi``.  Positive affinity means the tasks pull the backbone in
  compatible directions (transfer is likely to help); strongly negative
  affinity is the gradient-conflict signature of negative transfer.
* **grouping suggestion** — a greedy partition of tasks into groups with
  non-negative pairwise affinity, usable to decide which heads should
  share one MTL-Split backbone and which deserve their own.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..data.base import MultiTaskDataset
from ..nn.tensor import Tensor
from .architecture import MTLSplitNet
from .losses import MultiTaskLoss

__all__ = [
    "task_gradients",
    "affinity_matrix",
    "suggest_task_groups",
]


def task_gradients(
    net: MTLSplitNet,
    dataset: MultiTaskDataset,
    batch_size: int = 64,
) -> Dict[str, np.ndarray]:
    """Per-task loss gradients on the shared backbone parameters.

    Runs one forward pass per task over (up to) one batch and returns the
    flattened, concatenated gradient of that task's loss with respect to
    ``psi``.  Gradients are averaged over the batch by the criterion's
    mean reduction.
    """
    tasks = [dataset.task_info(name) for name in net.task_names]
    criterion = MultiTaskLoss(tasks)
    images = dataset.images[:batch_size]
    targets = {k: v[:batch_size] for k, v in dataset.labels.items()}
    gradients: Dict[str, np.ndarray] = {}
    net.train()
    backbone_params = list(net.backbone_parameters())
    for task in net.task_names:
        net.zero_grad()
        outputs = net(Tensor(images))
        loss = criterion.task_losses(outputs, targets)[task]
        loss.backward()
        pieces = [
            (p.grad if p.grad is not None else np.zeros_like(p.data)).reshape(-1)
            for p in backbone_params
        ]
        gradients[task] = np.concatenate(pieces).astype(np.float64)
    net.zero_grad()
    return gradients


def affinity_matrix(
    net: MTLSplitNet,
    dataset: MultiTaskDataset,
    batch_size: int = 64,
) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Pairwise gradient-cosine affinity between the net's tasks.

    Returns ``(matrix, task_names)`` where ``matrix[i, j]`` is the cosine
    similarity between task ``i``'s and task ``j``'s backbone gradients
    (diagonal is 1).
    """
    gradients = task_gradients(net, dataset, batch_size=batch_size)
    names = net.task_names
    k = len(names)
    matrix = np.eye(k)
    for i in range(k):
        for j in range(i + 1, k):
            gi, gj = gradients[names[i]], gradients[names[j]]
            denom = np.linalg.norm(gi) * np.linalg.norm(gj)
            cosine = float(gi @ gj / denom) if denom > 0 else 0.0
            matrix[i, j] = matrix[j, i] = cosine
    return matrix, names


def suggest_task_groups(
    matrix: np.ndarray,
    names: Sequence[str],
    threshold: float = 0.0,
) -> List[List[str]]:
    """Greedy grouping: tasks join a group when their affinity with every
    member is at least ``threshold``.

    Tasks are visited in order of total affinity (most compatible first),
    so strongly-transferring tasks seed the groups.  The result is a
    partition: every task appears in exactly one group.
    """
    matrix = np.asarray(matrix)
    if matrix.shape != (len(names), len(names)):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match {len(names)} tasks"
        )
    order = np.argsort(-matrix.sum(axis=1))
    groups: List[List[int]] = []
    for index in order:
        placed = False
        for group in groups:
            if all(matrix[index, member] >= threshold for member in group):
                group.append(int(index))
                placed = True
                break
        if not placed:
            groups.append([int(index)])
    return [[names[i] for i in sorted(group)] for group in groups]
