"""Multi-task objectives.

The paper's training objective (Eq. 4) is the *unweighted sum* of the
per-task losses:

.. math:: L_{total} = \\sum_{j=1}^{N} L_j(y_i, \\hat y_j)

:class:`MultiTaskLoss` implements that sum plus two weighting strategies
used by the ablation benchmarks: static per-task weights, and the
homoscedastic-uncertainty weighting of Kendall et al. (2018), which the
paper cites ([16]) as the loss-centric alternative to its model-centric
approach.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..data.base import TaskInfo
from ..nn.tensor import Tensor

__all__ = ["MultiTaskLoss", "UncertaintyWeighting"]


class UncertaintyWeighting(nn.Module):
    """Learnable homoscedastic-uncertainty task weighting (Kendall 2018).

    Each task ``j`` owns a log-variance ``s_j``; the combined loss is
    ``sum_j exp(-s_j) * L_j + s_j``, letting the optimiser discover task
    weights instead of fixing them.
    """

    def __init__(self, task_names: Sequence[str]):
        super().__init__()
        self.task_names = tuple(task_names)
        self.log_vars = nn.Parameter(np.zeros(len(self.task_names), dtype=np.float32))

    def forward(self, losses: Dict[str, Tensor]) -> Tensor:
        total: Optional[Tensor] = None
        for j, name in enumerate(self.task_names):
            s_j = self.log_vars[j]
            term = (-s_j).exp() * losses[name] + s_j
            total = term if total is None else total + term
        assert total is not None
        return total


class MultiTaskLoss(nn.Module):
    """Combine per-task criterion outputs into ``L_total``.

    Parameters
    ----------
    tasks:
        Task metadata; one cross-entropy criterion is created per task.
    weighting:
        ``"uniform"`` (paper's Eq. 4), ``"static"`` (requires
        ``static_weights``), or ``"uncertainty"`` (Kendall et al. 2018,
        adds learnable parameters).
    static_weights:
        Mapping from task name to a fixed positive weight.
    label_smoothing:
        Optional label smoothing passed to every criterion.
    """

    def __init__(
        self,
        tasks: Sequence[TaskInfo],
        weighting: str = "uniform",
        static_weights: Optional[Dict[str, float]] = None,
        label_smoothing: float = 0.0,
    ):
        super().__init__()
        if weighting not in ("uniform", "static", "uncertainty"):
            raise ValueError(f"unknown weighting {weighting!r}")
        self.tasks = tuple(tasks)
        self.task_names = tuple(t.name for t in tasks)
        self._kinds = {t.name: t.kind for t in tasks}
        self.weighting = weighting
        self.criterion = nn.CrossEntropyLoss(label_smoothing=label_smoothing)
        self.regression_criterion = nn.MSELoss()
        if weighting == "static":
            if static_weights is None:
                raise ValueError("static weighting requires static_weights")
            missing = set(self.task_names) - set(static_weights)
            if missing:
                raise ValueError(f"static_weights missing tasks {sorted(missing)}")
            if any(w <= 0 for w in static_weights.values()):
                raise ValueError("static weights must be positive")
            self.static_weights = dict(static_weights)
        else:
            self.static_weights = None
        if weighting == "uncertainty":
            self.uncertainty = UncertaintyWeighting(self.task_names)
        else:
            self.uncertainty = None

    # ------------------------------------------------------------------
    def task_losses(
        self, outputs: Dict[str, Tensor], targets: Dict[str, np.ndarray]
    ) -> Dict[str, Tensor]:
        """Per-task criterion values ``L_j(y_i, yhat_j)``.

        Cross-entropy for classification tasks, MSE for regression tasks
        (the paper's motivating classification + bounding-box pairing).
        """
        losses = {}
        for name in self.task_names:
            if name not in outputs:
                raise KeyError(f"model produced no output for task {name!r}")
            if self._kinds.get(name) == "regression":
                target = np.asarray(targets[name], dtype=np.float32)
                if target.ndim == 1:
                    target = target[:, None]
                prediction = outputs[name]
                if prediction.shape != target.shape:
                    prediction = prediction.reshape(target.shape)
                losses[name] = self.regression_criterion(prediction, target)
            else:
                losses[name] = self.criterion(outputs[name], targets[name])
        return losses

    def forward(
        self, outputs: Dict[str, Tensor], targets: Dict[str, np.ndarray]
    ) -> Tuple[Tensor, Dict[str, float]]:
        """Return ``(L_total, per-task float losses)`` for logging."""
        losses = self.task_losses(outputs, targets)
        scalars = {name: float(loss.item()) for name, loss in losses.items()}
        if self.weighting == "uncertainty":
            assert self.uncertainty is not None
            return self.uncertainty(losses), scalars
        total: Optional[Tensor] = None
        for name in self.task_names:
            term = losses[name]
            if self.weighting == "static":
                assert self.static_weights is not None
                term = term * self.static_weights[name]
            total = term if total is None else total + term
        assert total is not None
        return total, scalars

    def extra_parameters(self):
        """Learnable parameters of the loss itself (uncertainty weights)."""
        if self.uncertainty is not None:
            return list(self.uncertainty.parameters())
        return []
