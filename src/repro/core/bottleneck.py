"""Bottleneck compression of the shared representation ``Z_b``.

The SC literature the paper builds on compresses the split tensor with a
learned autoencoder: an encoder on the edge shrinks the payload, a
decoder on the server restores it (Matsubara et al. [20], BottleNet
[11]).  MTL-Split's ``Z_b`` is already compact, but a bottleneck buys a
further payload reduction at a small accuracy cost — the trade-off the
ablation benchmark quantifies.

``d(x, x_bar)`` — the encode/decode distortion the paper's Sec. 2.1
defines — is exposed by :meth:`BottleneckAutoencoder.distortion`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import nn
from ..data.base import MultiTaskDataset
from ..data.loader import DataLoader
from ..nn.tensor import Tensor
from .architecture import MTLSplitNet

__all__ = [
    "BottleneckAutoencoder",
    "train_bottleneck",
    "BottleneckedSplit",
]


class BottleneckAutoencoder(nn.Module):
    """Linear encoder/decoder pair ``Z_b -> latent -> Z_b``.

    The encoder ``F`` runs on the edge after the backbone; the decoder
    ``G`` runs on the server before the heads.  ``latent_dim`` controls
    the wire payload (elements transmitted per sample).
    """

    def __init__(self, feature_dim: int, latent_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if latent_dim >= feature_dim:
            raise ValueError(
                f"latent_dim {latent_dim} must be smaller than feature_dim "
                f"{feature_dim} (otherwise the bottleneck does not compress)"
            )
        self.feature_dim = feature_dim
        self.latent_dim = latent_dim
        self.encoder = nn.Linear(feature_dim, latent_dim, rng=rng)
        self.decoder = nn.Linear(latent_dim, feature_dim, rng=rng)

    def encode(self, z_b: Tensor) -> Tensor:
        """Edge-side compression ``z_l = F(Z_b)``."""
        return self.encoder(z_b)

    def decode(self, z_latent: Tensor) -> Tensor:
        """Server-side reconstruction ``Z_b_bar = G(z_l)``."""
        return self.decoder(z_latent)

    def forward(self, z_b: Tensor) -> Tensor:
        return self.decode(self.encode(z_b))

    def distortion(self, z_b: Tensor) -> float:
        """Mean squared encode/decode error ``d(Z_b, Z_b_bar)``."""
        with nn.no_grad():
            reconstructed = self(z_b)
            diff = reconstructed.data - z_b.data
        return float(np.mean(diff * diff))

    @property
    def compression_ratio(self) -> float:
        """Payload shrink factor relative to raw ``Z_b``."""
        return self.feature_dim / self.latent_dim


def train_bottleneck(
    net: MTLSplitNet,
    dataset: MultiTaskDataset,
    latent_dim: int,
    epochs: int = 3,
    batch_size: int = 64,
    lr: float = 1e-3,
    seed: int = 0,
) -> BottleneckAutoencoder:
    """Fit an autoencoder to reconstruct the (frozen) backbone's ``Z_b``.

    The backbone is not updated — the bottleneck is retrofitted onto a
    trained MTL-Split system, matching how the SC literature adds
    compression to an existing network.
    """
    rng = np.random.default_rng(seed)
    probe = Tensor(dataset.images[:1])
    with nn.no_grad():
        feature_dim = net.forward_backbone(probe).shape[1]
    autoencoder = BottleneckAutoencoder(feature_dim, latent_dim, rng=rng)
    optimizer = nn.AdamW(list(autoencoder.parameters()), lr=lr)
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True,
                        rng=np.random.default_rng(seed))
    net.eval()
    for _epoch in range(epochs):
        for images, _labels in loader:
            with nn.no_grad():
                z_b = net.forward_backbone(Tensor(images)).detach()
            optimizer.zero_grad()
            reconstructed = autoencoder(z_b)
            loss = nn.functional.mse_loss(reconstructed, z_b)
            loss.backward()
            optimizer.step()
    return autoencoder


@dataclass
class BottleneckedSplit:
    """A split deployment with bottleneck compression on the wire.

    ``infer`` runs edge backbone + encoder, "transmits" the latent, then
    decoder + heads — and reports the payload element count so callers
    can price the transfer.
    """

    net: MTLSplitNet
    autoencoder: BottleneckAutoencoder

    def payload_elements(self, batch_size: int) -> int:
        """Elements crossing the network for a batch."""
        return self.autoencoder.latent_dim * batch_size

    def infer(self, images: np.ndarray) -> Tuple[Dict[str, np.ndarray], int]:
        """Return ``(per-task logits, transmitted element count)``."""
        self.net.eval()
        with nn.no_grad():
            z_b = self.net.forward_backbone(Tensor(images))
            latent = self.autoencoder.encode(z_b)           # edge side
            reconstructed = self.autoencoder.decode(latent)  # server side
            outputs = self.net.forward_heads(reconstructed)
        logits = {name: outputs[name].data for name in self.net.task_names}
        return logits, int(latent.size)

    def accuracy(self, dataset: MultiTaskDataset, batch_size: int = 128) -> Dict[str, float]:
        """Top-1 accuracy per task through the compressed path."""
        correct = {name: 0 for name in self.net.task_names}
        total = 0
        loader = DataLoader(dataset, batch_size=batch_size)
        for images, labels in loader:
            logits, _ = self.infer(images)
            total += images.shape[0]
            for name in self.net.task_names:
                pred = logits[name].argmax(axis=1)
                correct[name] += int((pred == labels[name]).sum())
        return {name: correct[name] / total for name in self.net.task_names}
