"""Fine-tuning strategy (paper Sec. 3.3, Eqs. 5-7).

The paper fine-tunes with two learning rates: the task heads are updated
aggressively,

.. math:: \\theta_j := \\theta_j - \\alpha \\nabla_{\\theta_j} L_j    (Eq. 5)

while the shared backbone is updated conservatively (or frozen),

.. math:: \\psi := \\psi - \\eta \\nabla_{\\psi} L_{total}            (Eq. 6)

with ``eta`` much smaller than ``alpha``, jointly minimising ``L_total``
(Eq. 7).  This module realises that scheme with optimiser parameter
groups and also provides :func:`add_task`, the "introduce new tasks to
the system" use-case the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from .. import nn
from ..data.base import MultiTaskDataset, TaskInfo
from ..data.loader import DataLoader
from ..models.heads import MLPHead
from .architecture import MTLSplitNet
from .losses import MultiTaskLoss
from .trainer import History, MultiTaskTrainer, TrainConfig

__all__ = ["FineTuneConfig", "fine_tune", "add_task", "pretrain_backbone"]


@dataclass
class FineTuneConfig:
    """Two-rate fine-tuning hyper-parameters.

    ``alpha`` is the heads' learning rate (Eq. 5) and ``eta`` the
    backbone's (Eq. 6); the paper requires ``eta`` to be "a small value
    compared to" ``alpha``.  ``eta = 0`` freezes the backbone entirely.
    """

    alpha: float = 1e-3
    eta: float = 1e-5
    epochs: int = 3
    batch_size: int = 64
    weight_decay: float = 0.01
    grad_clip: Optional[float] = 5.0
    seed: int = 0
    verbose: bool = False

    def __post_init__(self):
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.eta < 0:
            raise ValueError(f"eta must be non-negative, got {self.eta}")
        if self.eta > self.alpha:
            raise ValueError(
                "the paper requires eta (backbone rate) << alpha (head rate); "
                f"got eta={self.eta} > alpha={self.alpha}"
            )


def fine_tune(
    net: MTLSplitNet,
    train_set: MultiTaskDataset,
    config: Optional[FineTuneConfig] = None,
    val_set: Optional[MultiTaskDataset] = None,
    tasks: Optional[Sequence[TaskInfo]] = None,
) -> History:
    """Fine-tune ``net`` with the paper's two-rate update rules.

    Builds an AdamW optimiser with two parameter groups — heads at
    ``alpha``, backbone at ``eta`` — and minimises ``L_total`` (Eq. 7).
    A frozen backbone (``eta = 0``) excludes ``psi`` from the optimiser
    and from gradient computation entirely.
    """
    cfg = config if config is not None else FineTuneConfig()
    if tasks is None:
        tasks = [train_set.task_info(name) for name in net.task_names]

    head_params = list(net.head_parameters())
    backbone_params = list(net.backbone_parameters())
    groups = [dict(params=head_params, lr=cfg.alpha)]
    if cfg.eta > 0:
        groups.append(dict(params=backbone_params, lr=cfg.eta))
        net.backbone.requires_grad_(True)
    else:
        net.backbone.requires_grad_(False)
    optimizer = nn.AdamW(groups, lr=cfg.alpha, weight_decay=cfg.weight_decay)

    criterion = MultiTaskLoss(tasks)
    loader = DataLoader(
        train_set,
        batch_size=cfg.batch_size,
        shuffle=True,
        rng=np.random.default_rng(cfg.seed),
    )
    trainer = MultiTaskTrainer(
        TrainConfig(
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            grad_clip=cfg.grad_clip,
            seed=cfg.seed,
            verbose=cfg.verbose,
        )
    )
    try:
        return trainer._run_epochs(net, criterion, optimizer, loader, val_set)
    finally:
        # Leave the network fully trainable for subsequent stages.
        net.backbone.requires_grad_(True)


def add_task(
    net: MTLSplitNet,
    task: TaskInfo,
    input_size: int = 32,
    head_hidden: Optional[int] = None,
    seed: int = 0,
) -> MTLSplitNet:
    """Return a new net with an extra task head on the same backbone.

    This is the paper's "introduce new tasks to the system" scenario:
    the shared backbone (and the existing heads) keep their trained
    weights; only the new head is freshly initialised.  Follow with
    :func:`fine_tune` to adapt.
    """
    if task.name in net.task_names:
        raise ValueError(f"net already solves task {task.name!r}")
    rng = np.random.default_rng(seed)
    z_dim = net.backbone.feature_dim(input_size)
    heads = {name: net.head(name) for name in net.task_names}
    heads[task.name] = MLPHead(z_dim, task.num_classes, hidden_features=head_hidden, rng=rng)
    return MTLSplitNet(net.backbone, heads)


def pretrain_backbone(
    backbone_name: str,
    dataset: MultiTaskDataset,
    input_size: int = 32,
    config: Optional[TrainConfig] = None,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Pre-train a backbone on an auxiliary multi-task dataset.

    Stands in for the paper's ImageNet-pretrained initialisation (no
    downloads are possible offline): train on a related synthetic task,
    then reuse the backbone ``state_dict`` as the starting point for
    fine-tuning, exactly like the paper's FACES experiment starts from
    pre-trained weights.

    Returns the backbone ``state_dict`` (not the head weights).
    """
    cfg = config if config is not None else TrainConfig(epochs=3)
    net = MTLSplitNet.from_tasks(
        backbone_name, list(dataset.tasks), input_size=input_size, seed=seed
    )
    MultiTaskTrainer(cfg).fit(net, dataset)
    return net.backbone.state_dict()
