"""The MTL-Split architecture (paper Fig. 1).

:class:`MTLSplitNet` is the paper's proposed system: a shared backbone
``M_b(x; psi)`` producing the flattened representation ``Z_b`` (Eq. 2),
followed by one task-solving head ``H_j(Z_b; theta_j)`` per task (Eq. 3).
The backbone/head interface is the *splitting point* — the backbone is
deployed on the edge device, the heads on the remote server, and ``Z_b``
is what crosses the network.

:meth:`MTLSplitNet.split` materialises that deployment decomposition as
two independent modules (edge side, server side) whose composition is
numerically identical to the monolithic forward pass — the property the
integration tests assert.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..data.base import TaskInfo
from ..models.builder import Backbone
from ..models.heads import MLPHead
from ..models.registry import create_backbone
from ..nn import fuse
from ..nn.tensor import Tensor

__all__ = ["MTLSplitNet", "EdgeModel", "ServerModel"]


class EdgeModel(nn.Module):
    """The edge-resident half of a split deployment.

    Runs the first ``split_index`` backbone stages and flattens the
    result into the transmissible representation ``Z_b``.
    """

    def __init__(self, stages: Sequence[nn.Module]):
        super().__init__()
        self.stages = nn.Sequential(*stages)

    def forward(self, x: Tensor) -> Tensor:
        return self.stages(x).flatten(1)


class ServerModel(nn.Module):
    """The server-resident half: remaining stages plus all task heads.

    ``feature_shape`` records the unflattened shape of the tensor the
    edge transmits, so the server can undo the wire flattening when
    convolutional stages remain on its side.
    """

    def __init__(
        self,
        stages: Sequence[nn.Module],
        heads: Dict[str, nn.Module],
        feature_shape: Tuple[int, ...],
    ):
        super().__init__()
        self.stages = nn.Sequential(*stages)
        self.heads = nn.ModuleList(list(heads.values()))
        self._head_names = tuple(heads.keys())
        self.feature_shape = tuple(feature_shape)

    def forward(self, z_flat: Tensor) -> Dict[str, Tensor]:
        z = z_flat.reshape((z_flat.shape[0],) + self.feature_shape)
        z = self.stages(z).flatten(1)
        return {
            name: head(z) for name, head in zip(self._head_names, self.heads)
        }


class MTLSplitNet(nn.Module):
    """Shared backbone + N task-solving heads (the paper's architecture).

    Parameters
    ----------
    backbone:
        The shared feature extractor ``M_b``.
    heads:
        Mapping from task name to head module ``H_j``.
    """

    def __init__(self, backbone: Backbone, heads: Dict[str, nn.Module]):
        super().__init__()
        if not heads:
            raise ValueError("MTLSplitNet needs at least one task head")
        self.backbone = backbone
        self.heads = nn.ModuleList(list(heads.values()))
        self._head_names: Tuple[str, ...] = tuple(heads.keys())

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_tasks(
        cls,
        backbone_name: str,
        tasks: Sequence[TaskInfo],
        input_size: int = 32,
        head_hidden: Optional[int] = None,
        seed: int = 0,
    ) -> "MTLSplitNet":
        """Build a net for ``tasks`` on a registry backbone.

        The head width defaults to the paper's small-MLP regime
        (see :class:`repro.models.heads.MLPHead`).
        """
        rng = np.random.default_rng(seed)
        backbone = create_backbone(backbone_name, rng=rng)
        z_dim = backbone.feature_dim(input_size)
        heads = {
            task.name: MLPHead(z_dim, task.num_classes, hidden_features=head_hidden, rng=rng)
            for task in tasks
        }
        return cls(backbone, heads)

    # ------------------------------------------------------------------
    # Forward paths
    # ------------------------------------------------------------------
    @property
    def task_names(self) -> Tuple[str, ...]:
        return self._head_names

    @property
    def num_tasks(self) -> int:
        return len(self._head_names)

    def head(self, name: str) -> nn.Module:
        """Return the head for one task by name."""
        try:
            index = self._head_names.index(name)
        except ValueError:
            raise KeyError(f"unknown task {name!r}; have {self._head_names}") from None
        return self.heads[index]

    def forward_backbone(self, x: Tensor) -> Tensor:
        """Compute the shared representation ``Z_b = M_b(x; psi)`` (Eq. 2)."""
        return self.backbone(x)

    def forward_heads(self, z_b: Tensor) -> Dict[str, Tensor]:
        """Compute every head output ``yhat_j = H_j(Z_b; theta_j)`` (Eq. 3)."""
        return {
            name: head(z_b) for name, head in zip(self._head_names, self.heads)
        }

    def forward(self, x: Tensor) -> Dict[str, Tensor]:
        """Full pass: input image batch to per-task logits."""
        return self.forward_heads(self.forward_backbone(x))

    # ------------------------------------------------------------------
    # Parameter groups (psi vs theta_j) — used by the training strategy
    # ------------------------------------------------------------------
    def backbone_parameters(self) -> Iterator[nn.Parameter]:
        """The shared parameters ``psi``."""
        return self.backbone.parameters()

    def head_parameters(self, task: Optional[str] = None) -> Iterator[nn.Parameter]:
        """The head parameters ``theta_j`` (one task, or all)."""
        if task is not None:
            yield from self.head(task).parameters()
            return
        for head in self.heads:
            yield from head.parameters()

    # ------------------------------------------------------------------
    # Split deployment
    # ------------------------------------------------------------------
    def split(self, split_index: Optional[int] = None, input_size: int = 32) -> Tuple[EdgeModel, ServerModel]:
        """Cut the network into (edge, server) halves at a backbone stage.

        ``split_index`` counts backbone stages kept on the edge; the
        default (all stages) is the paper's configuration, where the
        entire backbone runs on the edge device and only the heads are
        remote.  The two halves share parameters with this network (no
        copies), so training the monolith updates the deployment too.
        """
        if not hasattr(self.backbone, "stages"):
            raise TypeError(
                "split() requires a staged backbone (repro.models.Backbone); "
                f"{type(self.backbone).__name__} exposes no stages"
            )
        stages = list(self.backbone.stages)
        if split_index is None:
            split_index = len(stages)
        if not 1 <= split_index <= len(stages):
            raise ValueError(
                f"split_index must be in [1, {len(stages)}], got {split_index}"
            )
        edge = EdgeModel(stages[:split_index])
        with nn.no_grad():
            probe = Tensor(
                np.zeros((1, self.backbone.spec.input_channels, input_size, input_size),
                         dtype=np.float32)
            )
            feature_shape = edge.stages(probe).shape[1:]
        heads = {name: self.head(name) for name in self._head_names}
        server = ServerModel(stages[split_index:], heads, feature_shape)
        return edge, server

    def __repr__(self) -> str:
        heads = ", ".join(self._head_names)
        spec = getattr(self.backbone, "spec", None)
        backbone_name = spec.name if spec is not None else type(self.backbone).__name__
        return (
            f"MTLSplitNet(backbone={backbone_name!r}, tasks=[{heads}], "
            f"params={self.num_parameters()})"
        )


# ---------------------------------------------------------------------------
# Inference-compiler lowering rules (see repro.nn.fuse)
# ---------------------------------------------------------------------------
@fuse.register_lowerer(EdgeModel)
def _lower_edge_model(model: EdgeModel):
    return fuse.lower_module(model.stages) + [fuse.FlattenOp(1)]


def _compiled_heads(names, heads) -> dict:
    return {name: fuse.compile_ops(head) for name, head in zip(names, heads)}


@fuse.register_lowerer(ServerModel)
def _build_server_session(model: ServerModel) -> fuse.InferenceSession:
    trunk = (
        [fuse.ReshapeOp(model.feature_shape)]
        + fuse.lower_module(model.stages)
        + [fuse.FlattenOp(1)]
    )
    return fuse.InferenceSession(
        fuse.optimise_ops(trunk), _compiled_heads(model._head_names, model.heads)
    )


@fuse.register_lowerer(MTLSplitNet)
def _build_mtl_session(net: MTLSplitNet) -> fuse.InferenceSession:
    return fuse.InferenceSession(
        fuse.compile_ops(net.backbone), _compiled_heads(net._head_names, net.heads)
    )
