"""Split-point analysis.

The paper's related-work section surveys two families of methods for
choosing *where* to cut a DNN for split computing:

* **architecture-based** (Sbai et al. [24]): candidate split locations
  are "where the size of the DNN layers decreases" — the network itself
  compresses information there, so the transmitted tensor is small;
* **saliency/neuron-based** (Cunico et al. [8], I-Split): split after
  layers housing impactful neurons, measured by the gradient of the
  correct decision with respect to the layer's output.

MTL-Split itself splits at the backbone/heads interface, but the library
exposes both analyses so the ablation benchmarks can quantify how good
that default is: :func:`architecture_split_candidates` works analytically
on a spec, :func:`saliency_profile` measures gradients on a trained net,
and :func:`recommend_split` combines them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..models.specs import BackboneSpec, PrimitiveRecord, iter_primitives
from ..nn.tensor import Tensor
from .architecture import MTLSplitNet
from .losses import MultiTaskLoss

__all__ = [
    "SplitPoint",
    "stage_activation_profile",
    "architecture_split_candidates",
    "saliency_profile",
    "recommend_split",
]


@dataclass(frozen=True)
class SplitPoint:
    """One candidate cut after top-level backbone stage ``stage_index``.

    ``transmit_elements`` is the per-sample size of the tensor that would
    cross the network if the cut were placed here; ``compression`` is the
    ratio of the input size to that tensor (higher = cheaper to send).
    """

    stage_index: int
    stage_name: str
    transmit_elements: int
    compression: float
    saliency: Optional[float] = None


def _stage_records(
    spec: BackboneSpec, input_size: Optional[int]
) -> List[List[PrimitiveRecord]]:
    """Group primitive records by top-level spec layer index."""
    grouped: Dict[int, List[PrimitiveRecord]] = {}
    for record in iter_primitives(spec, input_size):
        index = int(record.name.split(".")[0].removeprefix("layer"))
        grouped.setdefault(index, []).append(record)
    return [grouped[i] for i in sorted(grouped)]


def stage_activation_profile(
    spec: BackboneSpec, input_size: Optional[int] = None
) -> List[SplitPoint]:
    """Per-stage output sizes for every possible cut (analytic).

    Stage ``i`` in the result corresponds to cutting after spec layer
    ``i``; the transmitted tensor is that stage's final output.
    """
    size = input_size if input_size is not None else spec.input_size
    input_elements = spec.input_channels * size * size
    points = []
    for index, records in enumerate(_stage_records(spec, input_size)):
        out = records[-1].out_shape
        elements = int(np.prod(out))
        points.append(
            SplitPoint(
                stage_index=index,
                stage_name=f"layer{index}",
                transmit_elements=elements,
                compression=input_elements / elements,
            )
        )
    return points


def architecture_split_candidates(
    spec: BackboneSpec,
    input_size: Optional[int] = None,
    min_compression: float = 1.0,
) -> List[SplitPoint]:
    """Candidate splits in the style of Sbai et al. [24].

    A stage qualifies when its output is smaller than every earlier
    stage's output (the architecture is actively compressing there) and
    beats ``min_compression`` relative to the raw input.
    """
    profile = stage_activation_profile(spec, input_size)
    candidates: List[SplitPoint] = []
    best_so_far = float("inf")
    for point in profile:
        if point.transmit_elements < best_so_far and point.compression >= min_compression:
            candidates.append(point)
        best_so_far = min(best_so_far, point.transmit_elements)
    return candidates


def saliency_profile(
    net: MTLSplitNet,
    images: np.ndarray,
    targets: Dict[str, np.ndarray],
) -> List[float]:
    """Mean absolute gradient of ``L_total`` at each backbone stage output.

    This is the I-Split-style neuron-saliency signal [8]: stages whose
    outputs carry large gradients house decision-critical information, so
    a split placed *after* them preserves that information flow.
    """
    tasks = [
        # num_classes recovered from the head's output layer.
        _task_info_from_head(net, name)
        for name in net.task_names
    ]
    criterion = MultiTaskLoss(tasks)
    net.train()
    x = Tensor(images)
    intermediates: List[Tensor] = []
    out = x
    for stage in net.backbone.stages:
        out = stage(out)
        out.retain_grad()
        intermediates.append(out)
    z_b = out.flatten(1)
    outputs = net.forward_heads(z_b)
    total, _ = criterion(outputs, targets)
    total.backward()
    saliencies = []
    for tensor in intermediates:
        grad = tensor.grad
        saliencies.append(float(np.abs(grad).mean()) if grad is not None else 0.0)
    net.zero_grad()
    return saliencies


def _task_info_from_head(net: MTLSplitNet, name: str):
    from ..data.base import TaskInfo

    head = net.head(name)
    num_classes = getattr(head, "num_classes", None)
    if num_classes is None:
        raise ValueError(f"head for task {name!r} does not expose num_classes")
    return TaskInfo(name, num_classes)


def recommend_split(
    net: MTLSplitNet,
    images: np.ndarray,
    targets: Dict[str, np.ndarray],
    input_size: Optional[int] = None,
    saliency_weight: float = 0.5,
) -> SplitPoint:
    """Pick the best cut combining compression and saliency.

    Scores each stage by ``(1 - w) * normalised compression + w *
    normalised cumulative saliency`` and returns the argmax.  With the
    default weights, late high-compression stages win — which is exactly
    the paper's choice of splitting at the backbone/heads boundary; the
    ablation bench verifies that.
    """
    profile = stage_activation_profile(net.backbone.spec, input_size)
    saliencies = np.asarray(saliency_profile(net, images, targets))
    compressions = np.asarray([p.compression for p in profile])
    if len(profile) != len(saliencies):
        raise RuntimeError(
            "spec stages and module stages disagree: "
            f"{len(profile)} vs {len(saliencies)}"
        )
    # Information preserved up to a cut = total saliency of stages before it.
    preserved = np.cumsum(saliencies)
    norm_comp = compressions / (compressions.max() + 1e-12)
    norm_sal = preserved / (preserved.max() + 1e-12)
    scores = (1.0 - saliency_weight) * norm_comp + saliency_weight * norm_sal
    best = int(np.argmax(scores))
    point = profile[best]
    return SplitPoint(
        stage_index=point.stage_index,
        stage_name=point.stage_name,
        transmit_elements=point.transmit_elements,
        compression=point.compression,
        saliency=float(saliencies[best]),
    )
