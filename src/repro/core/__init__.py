"""``repro.core`` — the MTL-Split architecture, training and analysis.

This package is the paper's primary contribution: the shared-backbone +
task-heads architecture (Fig. 1), the joint training strategy (Eq. 4),
the two-rate fine-tuning (Eqs. 5-7), the STL-vs-MTL evaluation protocol
(Tables 1-3) and split-point analysis utilities.
"""

from .affinity import affinity_matrix, suggest_task_groups, task_gradients
from .architecture import EdgeModel, MTLSplitNet, ServerModel
from .bottleneck import BottleneckAutoencoder, BottleneckedSplit, train_bottleneck
from .evaluation import (
    ComparisonTable,
    ExperimentResult,
    format_accuracy_table,
    run_stl_mtl_experiment,
)
from .finetune import FineTuneConfig, add_task, fine_tune, pretrain_backbone
from .losses import MultiTaskLoss, UncertaintyWeighting
from .splitting import (
    SplitPoint,
    architecture_split_candidates,
    recommend_split,
    saliency_profile,
    stage_activation_profile,
)
from .trainer import (
    EpochStats,
    History,
    MultiTaskTrainer,
    TrainConfig,
    evaluate,
    recalibrate_batch_norm,
)

__all__ = [
    "MTLSplitNet",
    "EdgeModel",
    "ServerModel",
    "BottleneckAutoencoder",
    "BottleneckedSplit",
    "train_bottleneck",
    "task_gradients",
    "affinity_matrix",
    "suggest_task_groups",
    "MultiTaskLoss",
    "UncertaintyWeighting",
    "TrainConfig",
    "MultiTaskTrainer",
    "History",
    "EpochStats",
    "evaluate",
    "recalibrate_batch_norm",
    "FineTuneConfig",
    "fine_tune",
    "add_task",
    "pretrain_backbone",
    "ExperimentResult",
    "ComparisonTable",
    "run_stl_mtl_experiment",
    "format_accuracy_table",
    "SplitPoint",
    "stage_activation_profile",
    "architecture_split_candidates",
    "saliency_profile",
    "recommend_split",
]
